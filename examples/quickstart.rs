//! Quickstart: compile a loop, inspect its analysis, and print its
//! time-optimal software-pipelining schedule.
//!
//! Run: `cargo run --example quickstart`

use tpn::CompiledLoop;

fn main() -> Result<(), tpn::Error> {
    // A first-order recurrence (Livermore loop 5): X[i] depends on X[i-1],
    // so iterations cannot be fully parallelised — but they can overlap.
    let source = "do i from 2 to n { X[i] := Z[i] * (Y[i] - X[i-1]); }";
    println!("source:\n{source}\n");

    let lp = CompiledLoop::from_source(source)?;
    println!("loop body size n = {} instructions", lp.size());

    // Critical-cycle analysis: what bounds the loop's throughput?
    let analysis = lp.analyze()?;
    println!(
        "critical cycle through [{}] => cycle time {} => optimal rate {}",
        analysis.critical_nodes.join(", "),
        analysis.cycle_time,
        analysis.optimal_rate
    );

    // Detect the cyclic frustum and derive the schedule.
    let frustum = lp.frustum()?;
    println!(
        "cyclic frustum: repeated state first at t={}, again at t={} (period {})",
        frustum.start_time,
        frustum.repeat_time,
        frustum.period()
    );

    let schedule = lp.schedule()?;
    println!(
        "\nschedule kernel (II = {} cycles/iteration):\n{}",
        schedule.initiation_interval(),
        schedule.render_kernel()
    );

    // The schedule is provably as fast as the dependences allow.
    let report = lp.rate_report()?;
    assert!(report.is_time_optimal());
    println!(
        "rate {} equals the critical-cycle bound: time-optimal",
        report.measured
    );
    Ok(())
}
