//! The method and its successor side by side: derive a schedule for the
//! same loop with the paper's Petri-net simulation and with iterative
//! modulo scheduling, then execute both on the verifying machine.
//!
//! Run: `cargo run --example modulo_vs_petri`

use tpn::codegen::{emit, emit_from_starts, run, run_with_width};
use tpn::dataflow::interp::Env;
use tpn::sched::modulo::{modulo_schedule, rec_mii, res_mii};
use tpn::CompiledLoop;

const LOOP: &str = "do i from 1 to n {\n\
    A[i] := X[i] + 5;\n\
    B[i] := Y[i] + A[i];\n\
    C[i] := A[i] + E[i-1];\n\
    D[i] := B[i] + C[i];\n\
    E[i] := W[i] + D[i];\n\
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lp = CompiledLoop::from_source(LOOP)?;
    let sdsp = lp.sdsp();
    println!("loop L2, n = {}\n", lp.size());

    // The paper's pipeline: simulate the SDSP-PN, read off the frustum.
    let pn_schedule = lp.schedule()?;
    println!(
        "Petri-net schedule (ideal dataflow machine): II = {}",
        pn_schedule.initiation_interval()
    );
    print!("{}", pn_schedule.render_kernel());

    // The successor: search for a flat kernel directly, per machine width.
    println!(
        "\nmodulo scheduling bounds: RecMII = {}, ResMII(w=1) = {}, ResMII(w=2) = {}",
        rec_mii(sdsp),
        res_mii(sdsp, 1),
        res_mii(sdsp, 2)
    );
    for width in [1usize, 2, 4] {
        let m = modulo_schedule(sdsp, width)?;
        m.validate(sdsp).map_err(|e| format!("invalid: {e}"))?;
        println!(
            "modulo schedule @ width {width}: II = {}, flat starts {:?}, buffers {:?}",
            m.ii(),
            m.flat_starts(),
            m.buffer_requirements(sdsp)
        );
    }

    // Execute both on the machine and cross-check values.
    let iterations = 20u64;
    let env = Env::ramp(&["X", "Y", "W"], 32, |ai, i| ai as f64 * 0.25 + i as f64);
    let pn_program = emit(sdsp, &pn_schedule, iterations);
    let pn_out = run(&pn_program, sdsp, &env)?;

    let m2 = modulo_schedule(sdsp, 2)?;
    let mut m2_program = emit_from_starts(
        sdsp,
        |node, iter| m2.start_time(node, iter),
        iterations,
        m2.ii(),
        1,
    );
    m2_program.buffer_capacity = m2.buffer_requirements(sdsp);
    let m2_out = run_with_width(&m2_program, sdsp, &env, Some(2))?;

    let e = sdsp.names()["E"];
    assert_eq!(
        pn_out.value(e, iterations - 1),
        m2_out.value(e, iterations - 1)
    );
    println!(
        "\nboth schedules computed E@{} = {} — identical results, different kernels",
        iterations - 1,
        pn_out.value(e, iterations - 1)
    );
    println!(
        "machine cycles for {iterations} iterations: PN {} vs modulo(w=2) {}",
        pn_out.cycles, m2_out.cycles
    );
    Ok(())
}
