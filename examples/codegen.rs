//! From loop source to executable VLIW code: emit the time-optimal
//! schedule as bundles over the loop's storage locations, run it on the
//! verifying machine simulator, and compare against the reference
//! interpreter.
//!
//! Run: `cargo run --example codegen`

use tpn::codegen::{run, run_with_width};
use tpn::dataflow::interp::{execute, Env};
use tpn::CompiledLoop;

const L2: &str = "do i from 1 to n {\n\
    A[i] := X[i] + 5;\n\
    B[i] := Y[i] + A[i];\n\
    C[i] := A[i] + E[i-1];\n\
    D[i] := B[i] + C[i];\n\
    E[i] := W[i] + D[i];\n\
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lp = CompiledLoop::from_source(L2)?;
    let iterations = 12u64;
    let program = lp.emit(iterations)?;

    println!(
        "emitted program: {} bundles, kernel of {} cycles, peak width {}, {} buffers",
        program.bundles.len(),
        program.period,
        program.max_width,
        program.buffer_capacity.len()
    );
    println!(
        "compact deployment size (prologue + one kernel): {} operations vs {} unrolled\n",
        program.compact_size(),
        lp.size() as u64 * iterations
    );
    println!("first 10 bundles:\n{}", program.render(lp.sdsp(), 10));

    let env = Env::ramp(&["X", "Y", "W"], 32, |ai, i| ai as f64 + i as f64);
    let outcome = run(&program, lp.sdsp(), &env)?;
    let reference = execute(lp.sdsp(), &env, iterations as usize)?;
    let e = lp.sdsp().names()["E"];
    for iter in [0u64, 5, 11] {
        assert_eq!(
            outcome.value(e, iter),
            reference.value(e, iter as usize),
            "iteration {iter}"
        );
    }
    println!(
        "verified: machine run matches the interpreter bit for bit; {} cycles total",
        outcome.cycles
    );

    // The SCP schedule fits a width-1 machine; the unconstrained one does
    // not.
    let scp = lp.scp(8)?;
    let scp_program = tpn::codegen::emit(lp.sdsp(), &scp.schedule, iterations);
    run_with_width(&scp_program, lp.sdsp(), &env, Some(1))?;
    println!("SCP schedule verified on a width-1 machine (one issue per cycle)");
    assert!(run_with_width(&program, lp.sdsp(), &env, Some(1)).is_err());
    println!("unconstrained schedule correctly rejected by the width-1 machine");
    Ok(())
}
