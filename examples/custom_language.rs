//! Writing your own loops in the SISAL-flavoured front-end: conditionals,
//! `old` accumulators, multi-distance recurrences — and what the
//! diagnostics look like when a loop is malformed.
//!
//! Run: `cargo run --example custom_language`

use tpn::CompiledLoop;
use tpn_lang::parse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A loop exercising most of the language: a conditional (lowered to
    // the merge actor: both branches execute, the merge selects), a
    // running maximum via `old`, and a second-order recurrence (the
    // front-end inserts a buffer actor for the distance-2 reference).
    let source = "do i from 1 to n {\n\
        Smooth[i] := (S[i] + Smooth[i-1] + Smooth[i-2]) / 3;\n\
        Peak := max(old Peak, Smooth[i]);\n\
        Clip[i] := if Smooth[i] > Limit then Limit else S[i] end;\n\
    }";
    println!("source:\n{source}\n");

    let lp = CompiledLoop::from_source(source)?;
    println!(
        "compiled: {} instructions ({} after buffer insertion), {} data arcs, LCD: {}",
        lp.sdsp()
            .nodes()
            .filter(|(_, n)| !n.name.contains('~'))
            .count(),
        lp.size(),
        lp.sdsp().arcs().count(),
        lp.sdsp().has_loop_carried_dependence()
    );
    println!(
        "input arrays: {:?}, parameters: {:?}",
        lp.sdsp().input_arrays(),
        lp.sdsp().params()
    );

    let analysis = lp.analyze()?;
    println!(
        "\noptimal rate {} (critical cycle through [{}])",
        analysis.optimal_rate,
        analysis.critical_nodes.join(", ")
    );
    let schedule = lp.schedule()?;
    println!("kernel:\n{}", schedule.render_kernel());

    // Diagnostics carry source positions.
    println!("diagnostics for malformed loops:");
    for bad in [
        "doall i from 1 to n { A[i] := A[i-1]; }",
        "do i from 1 to n { A[i] := B[i]; B[i] := A[i]; }",
        "do i from 1 to n { A[i] := X[j]; }",
        "do i from 1 to n { A[i] := 1 }",
    ] {
        match parse(bad)
            .map_err(tpn::Error::Lang)
            .and_then(|ast| tpn_lang::lower(&ast).map_err(tpn::Error::Lang).map(|_| ()))
        {
            Ok(()) => println!("  (unexpectedly fine) {bad}"),
            Err(tpn::Error::Lang(e)) => println!("  {}", e.render(bad)),
            Err(e) => println!("  {e}"),
        }
    }
    Ok(())
}
