//! The resource-constrained model (§5.2): executing L1 on machines with a
//! single clean pipeline of varying depth, and reading the issue schedule
//! off the cyclic frustum of the SDSP-SCP-PN.
//!
//! Run: `cargo run --example scp_machine`

use tpn::CompiledLoop;

const L1: &str = "doall i from 1 to n {\n\
    A[i] := X[i] + 5;\n\
    B[i] := Y[i] + A[i];\n\
    C[i] := A[i] + Z[i];\n\
    D[i] := B[i] + C[i];\n\
    E[i] := W[i] + D[i];\n\
}";

fn main() -> Result<(), tpn::Error> {
    let lp = CompiledLoop::from_source(L1)?;
    let n = lp.size();
    println!("loop L1 (n = {n}) on single-clean-pipeline machines:\n");
    println!(
        "{:>5}  {:>8}  {:>8}  {:>8}  {:>10}  {:>8}",
        "depth", "period", "rate", "1/n", "usage", "repeat@"
    );
    for depth in [1u64, 2, 4, 8, 16] {
        let run = lp.scp(depth)?;
        println!(
            "{:>5}  {:>8}  {:>8}  {:>8}  {:>10}  {:>8}",
            depth,
            run.frustum.period(),
            run.rates.measured.to_string(),
            run.rates.resource_bound.to_string(),
            run.rates.utilization.to_string(),
            run.frustum.repeat_time
        );
        assert!(run.rates.respects_resource_bound());
    }

    let run = lp.scp(8)?;
    println!("\nissue kernel at depth 8 (one instruction per cycle at most):");
    print!("{}", run.schedule.render_kernel());

    let sequence: Vec<String> = run
        .frustum
        .frustum_steps()
        .iter()
        .flat_map(|s| {
            s.started
                .iter()
                .filter(|t| run.model.is_sdsp[t.index()])
                .map(|&t| run.model.net.transition(t).name().to_string())
                .collect::<Vec<_>>()
        })
        .collect();
    println!("\nsteady-state firing sequence: {}", sequence.join(" "));
    Ok(())
}
