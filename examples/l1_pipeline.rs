//! The paper's Figure 1 end to end: loop L1 from source text through the
//! dataflow graph, the SDSP-PN, the behaviour graph, the cyclic frustum,
//! the steady-state equivalent net, and finally the time-optimal schedule.
//!
//! Run: `cargo run --example l1_pipeline`

use tpn::sched::behavior::BehaviorGraph;
use tpn::sched::steady::steady_state_net;
use tpn::CompiledLoop;

const L1: &str = "doall i from 1 to n {\n\
    A[i] := X[i] + 5;\n\
    B[i] := Y[i] + A[i];\n\
    C[i] := A[i] + Z[i];\n\
    D[i] := B[i] + C[i];\n\
    E[i] := W[i] + D[i];\n\
}";

fn main() -> Result<(), tpn::Error> {
    println!("(a) loop L1:\n{L1}\n");
    let lp = CompiledLoop::from_source(L1)?;

    println!(
        "(b/c) SDSP: {} nodes, {} data arcs, {} acknowledgement arcs",
        lp.sdsp().num_nodes(),
        lp.sdsp().arcs().count(),
        lp.sdsp().acks().count()
    );

    let pn = lp.petri_net();
    println!(
        "(d) SDSP-PN: {} transitions, {} places, marked graph: {}",
        pn.net.num_transitions(),
        pn.net.num_places(),
        pn.net.is_marked_graph()
    );

    let frustum = lp.frustum()?;
    let bg = BehaviorGraph::build(&pn.net, &pn.marking, &frustum.steps);
    println!("\n(e) behaviour graph under the earliest firing rule:");
    print!("{}", bg.render(&pn.net));
    println!(
        "initial instantaneous state at t={}, terminal at t={}",
        frustum.start_time, frustum.repeat_time
    );

    let steady = steady_state_net(&pn.net, &frustum);
    println!(
        "\n(f) steady-state equivalent net: {} firing instances, {} token-flow places, {} period-crossing tokens",
        steady.net.num_transitions(),
        steady.net.num_places(),
        steady.marking.total()
    );

    let schedule = lp.schedule()?;
    println!(
        "\n(g) time-optimal schedule, II = {} (each node fires every {} cycles):",
        schedule.initiation_interval(),
        schedule.initiation_interval()
    );
    print!("{}", schedule.render_kernel());
    Ok(())
}
