//! Run the full Livermore suite of the paper's evaluation: schedule each
//! kernel on both machine models, validate every schedule against the
//! dependence structure, and prove semantics preservation by replaying
//! the schedules on real inputs.
//!
//! Run: `cargo run --example livermore_suite`

use tpn::sched::validate::{check_schedule, replay_semantics};
use tpn::CompiledLoop;
use tpn_livermore::kernels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const ITERS: u64 = 100;
    println!(
        "{:<12} {:>4} {:>6} {:>9} {:>10} {:>10} {:>9}",
        "kernel", "n", "II", "SCP8 II", "deps", "SCP deps", "values"
    );
    for kernel in kernels() {
        let lp = CompiledLoop::from_source(kernel.source)?;
        let schedule = lp.schedule()?;
        let scp = lp.scp(8)?;

        // Independent validation: dependences with full latency, no node
        // self-overlap; SCP additionally checks the 1-wide issue limit and
        // the l-1 cycle pipeline transit.
        check_schedule(lp.sdsp(), &schedule, ITERS, None, 0)
            .map_err(|v| format!("{}: {v}", kernel.name))?;
        check_schedule(
            lp.sdsp(),
            &scp.schedule,
            ITERS,
            Some(1),
            scp.model.depth - 1,
        )
        .map_err(|v| format!("{} (SCP): {v}", kernel.name))?;

        // Semantic replay on generated inputs.
        let env = kernel.env(ITERS as usize);
        let outcome = replay_semantics(lp.sdsp(), &schedule, &env, ITERS)?;
        assert!(outcome.semantics_preserved(), "{} diverged", kernel.name);

        println!(
            "{:<12} {:>4} {:>6} {:>9} {:>10} {:>10} {:>9}",
            kernel.name,
            lp.size(),
            schedule.initiation_interval().to_string(),
            scp.schedule.initiation_interval().to_string(),
            "ok",
            "ok",
            format!("{} ok", outcome.values_checked),
        );
    }
    println!("\nall schedules dependence-clean, resource-clean, and semantics-preserving");
    Ok(())
}
