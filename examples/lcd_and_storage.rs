//! Loop-carried dependences and storage minimisation: the paper's loop L2
//! (Figure 2) and its Figure 4 optimisation, plus the full greedy
//! fixpoint, with a semantics check proving the optimised loop computes
//! identical values.
//!
//! Run: `cargo run --example lcd_and_storage`

use tpn::dataflow::interp::Env;
use tpn::sched::validate::replay_semantics;
use tpn::CompiledLoop;
use tpn_storage::{balancing_report, minimize_storage, minimize_storage_steps};

const L2: &str = "do i from 1 to n {\n\
    A[i] := X[i] + 5;\n\
    B[i] := Y[i] + A[i];\n\
    C[i] := A[i] + E[i-1];\n\
    D[i] := B[i] + C[i];\n\
    E[i] := W[i] + D[i];\n\
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("loop L2 (C[i] reads E[i-1]):\n{L2}\n");
    let lp = CompiledLoop::from_source(L2)?;

    let analysis = lp.analyze()?;
    println!(
        "critical cycle [{}]: cycle time {}, optimal rate {}\n",
        analysis.critical_nodes.join(" -> "),
        analysis.cycle_time,
        analysis.optimal_rate
    );

    println!("balancing ratios of every cycle (tokens per cycle time):");
    for cycle in balancing_report(lp.sdsp(), 256)? {
        let names: Vec<String> = cycle
            .nodes
            .iter()
            .map(|&n| lp.sdsp().node(n).name.clone())
            .collect();
        println!(
            "  {:<16} ratio {}{}",
            names.join("-"),
            cycle.ratio,
            if cycle.critical {
                "   <- critical (fixed by the program)"
            } else {
                ""
            }
        );
    }

    // Figure 4: one merge.
    let (_, fig4) = minimize_storage_steps(lp.sdsp(), 1)?;
    println!(
        "\nFigure 4 (single merge): {} -> {} locations, saving {} of the storage",
        fig4.before,
        fig4.after,
        fig4.saving_fraction()
    );

    // Greedy fixpoint: strictly better than the illustrated merge.
    let (optimised, full) = minimize_storage(lp.sdsp())?;
    println!(
        "greedy fixpoint: {} -> {} locations at the same optimal rate {}",
        full.before,
        full.after,
        full.cycle_time.recip()
    );

    // Prove the optimised loop still computes the same values, on a real
    // input, under its own (re-derived) time-optimal schedule.
    let optimised_lp = CompiledLoop::from_sdsp(optimised);
    let schedule = optimised_lp.schedule()?;
    let env = Env::ramp(&["X", "Y", "W"], 128, |ai, i| ai as f64 * 0.5 + i as f64);
    let outcome = replay_semantics(optimised_lp.sdsp(), &schedule, &env, 128)?;
    println!(
        "\nsemantics check: {} values compared against the reference interpreter, {} mismatches",
        outcome.values_checked, outcome.mismatches
    );
    assert!(outcome.semantics_preserved());
    assert_eq!(schedule.rate(), analysis.optimal_rate);
    println!("optimised loop still runs at rate {}", schedule.rate());
    Ok(())
}
