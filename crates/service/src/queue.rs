//! The bounded admission queue: a `Mutex<VecDeque>` + `Condvar` MPMC
//! channel that rejects instead of blocking when full. Rejection (not
//! waiting) at the admission edge is what turns saturation into an
//! explicit, typed [`Overloaded`] signal the client can act on.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Typed backpressure signal: the admission queue was full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overloaded {
    /// Queue depth observed at rejection (equals `capacity`).
    pub depth: usize,
    /// The configured queue capacity.
    pub capacity: usize,
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "service overloaded: admission queue full ({} of {})",
            self.depth, self.capacity
        )
    }
}

impl std::error::Error for Overloaded {}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue. `push` never blocks — it returns the item when
/// the queue is full; `pop` blocks until an item arrives or the queue is
/// closed and drained.
pub(crate) struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    takers: Condvar,
    capacity: usize,
    max_depth: AtomicU64,
}

impl<T> BoundedQueue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            takers: Condvar::new(),
            capacity: capacity.max(1),
            max_depth: AtomicU64::new(0),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest depth observed at admission.
    pub(crate) fn max_depth(&self) -> u64 {
        self.max_depth.load(Ordering::Relaxed)
    }

    /// Enqueues `item`, or hands it back with an [`Overloaded`] when the
    /// queue is at capacity (or closed).
    pub(crate) fn push(&self, item: T) -> Result<(), (T, Overloaded)> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed || state.items.len() >= self.capacity {
            let depth = state.items.len();
            drop(state);
            return Err((
                item,
                Overloaded {
                    depth,
                    capacity: self.capacity,
                },
            ));
        }
        state.items.push_back(item);
        let depth = state.items.len() as u64;
        self.max_depth.fetch_max(depth, Ordering::Relaxed);
        drop(state);
        self.takers.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the queue is empty and
    /// open. Returns `None` once the queue is closed and drained.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.takers.wait(state).expect("queue lock");
        }
    }

    /// Closes the queue: further pushes are rejected, poppers drain the
    /// backlog and then observe `None`.
    pub(crate) fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.takers.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_rejects_at_capacity_with_depth() {
        let q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        let (item, over) = q.push(3).unwrap_err();
        assert_eq!(item, 3);
        assert_eq!(over.depth, 2);
        assert_eq!(over.capacity, 2);
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push('a').unwrap();
        q.close();
        assert!(q.push('b').is_err());
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.pop(), None);
    }
}
