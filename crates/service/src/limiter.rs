//! Per-client fairness: a deterministic token-bucket rate limiter plus a
//! per-client in-flight cap, keyed by the request envelope's client id.
//!
//! One hot client cannot starve the bounded admission queue: its bucket
//! drains, it gets a typed [`RateLimited`] rejection with a computed
//! `retry_after_ms`, and other clients' buckets are untouched. Buckets
//! refill continuously at `per_second` tokens per second up to `burst`.
//!
//! Time is injectable — [`ClientLimiter::acquire_at`] takes an explicit
//! microsecond clock so refill arithmetic is exactly testable; the
//! production path ([`ClientLimiter::acquire`]) feeds it a monotonic
//! elapsed-since-boot clock.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Per-client limits, applied independently to every client id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RateLimit {
    /// Sustained request rate, tokens per second.
    pub per_second: u64,
    /// Bucket capacity: the largest burst admitted from a full bucket.
    pub burst: u64,
    /// Maximum requests one client may have in flight at once.
    pub max_in_flight: usize,
}

/// The typed rejection: this client must wait `retry_after_ms` before
/// the bucket holds a whole token again (or an in-flight slot frees).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RateLimited {
    /// The rejected client id.
    pub client: String,
    /// Milliseconds until a retry can succeed (at least 1).
    pub retry_after_ms: u64,
    /// `"token bucket empty"` or `"in-flight cap reached"`.
    pub reason: &'static str,
}

impl fmt::Display for RateLimited {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "client {:?} rate limited ({}); retry after {} ms",
            self.client, self.reason, self.retry_after_ms
        )
    }
}

impl std::error::Error for RateLimited {}

/// Token balances are tracked in micro-tokens so refill stays in integer
/// arithmetic: one request costs `TOKEN`, and a bucket refills at
/// `per_second` micro-tokens per microsecond.
const TOKEN: u64 = 1_000_000;

struct Bucket {
    token_micros: u64,
    last_micros: u64,
    in_flight: usize,
}

type Buckets = Arc<Mutex<HashMap<String, Bucket>>>;

/// The per-client limiter: one token bucket and in-flight count per
/// client id.
pub struct ClientLimiter {
    limit: RateLimit,
    epoch: Instant,
    buckets: Buckets,
}

/// An admitted request's in-flight slot; dropping it (when the response
/// is filled) frees the slot.
pub struct InFlightGuard {
    buckets: Buckets,
    client: String,
}

impl fmt::Debug for InFlightGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InFlightGuard")
            .field("client", &self.client)
            .finish()
    }
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        if let Some(bucket) = self
            .buckets
            .lock()
            .expect("limiter lock")
            .get_mut(&self.client)
        {
            bucket.in_flight = bucket.in_flight.saturating_sub(1);
        }
    }
}

impl ClientLimiter {
    /// A limiter enforcing `limit` per client id.
    pub fn new(limit: RateLimit) -> ClientLimiter {
        ClientLimiter {
            limit,
            epoch: Instant::now(),
            buckets: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The configured limits.
    pub fn limit(&self) -> RateLimit {
        self.limit
    }

    /// Tries to admit one request for `client` now.
    ///
    /// # Errors
    ///
    /// [`RateLimited`] when the client's bucket lacks a whole token or
    /// its in-flight cap is reached.
    pub fn acquire(&self, client: &str) -> Result<InFlightGuard, RateLimited> {
        let now = self.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.acquire_at(client, now)
    }

    /// [`acquire`](Self::acquire) against an explicit microsecond clock
    /// (monotone per client; a stale `now` refills nothing).
    ///
    /// # Errors
    ///
    /// [`RateLimited`] as for [`acquire`](Self::acquire).
    pub fn acquire_at(&self, client: &str, now_micros: u64) -> Result<InFlightGuard, RateLimited> {
        let mut buckets = self.buckets.lock().expect("limiter lock");
        let full = self.limit.burst.saturating_mul(TOKEN);
        let bucket = buckets.entry(client.to_string()).or_insert(Bucket {
            token_micros: full,
            last_micros: now_micros,
            in_flight: 0,
        });
        let elapsed = now_micros.saturating_sub(bucket.last_micros);
        bucket.last_micros = bucket.last_micros.max(now_micros);
        bucket.token_micros = bucket
            .token_micros
            .saturating_add(elapsed.saturating_mul(self.limit.per_second))
            .min(full);
        if bucket.in_flight >= self.limit.max_in_flight {
            return Err(RateLimited {
                client: client.into(),
                retry_after_ms: 1,
                reason: "in-flight cap reached",
            });
        }
        if bucket.token_micros < TOKEN {
            let deficit = TOKEN - bucket.token_micros;
            let retry_micros = deficit.div_ceil(self.limit.per_second.max(1));
            return Err(RateLimited {
                client: client.into(),
                retry_after_ms: retry_micros.div_ceil(1_000).max(1),
                reason: "token bucket empty",
            });
        }
        bucket.token_micros -= TOKEN;
        bucket.in_flight += 1;
        Ok(InFlightGuard {
            buckets: self.buckets.clone(),
            client: client.to_string(),
        })
    }

    /// This client's current in-flight count (test observability).
    pub fn in_flight(&self, client: &str) -> usize {
        self.buckets
            .lock()
            .expect("limiter lock")
            .get(client)
            .map_or(0, |b| b.in_flight)
    }
}
