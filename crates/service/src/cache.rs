//! The sharded LRU result cache. Values are `Arc<CompiledLoop>`, so one
//! cached entry shares every memoized artifact (frustum report, schedule,
//! rate reports, SCP runs by depth) across concurrent requests; keys are
//! the canonical digest of [`cache_key`](crate::protocol::cache_key).
//!
//! Sharding bounds lock contention: a key maps to one shard, each shard
//! has its own mutex and LRU order, and capacity is split evenly across
//! shards. Recency is a monotone cache-global tick stamped on every hit,
//! so eviction scans a shard (small by construction) for the minimum
//! stamp instead of maintaining an intrusive list.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tpn::metrics::CacheCounters;
use tpn::CompiledLoop;

/// Weighs one cached entry; the shard evicts by total weight. The
/// default weigher charges a loop its node count (minimum 1), so
/// capacity is roughly "total loop nodes held".
pub type Weigher = fn(&CompiledLoop) -> u64;

/// The default weigher: `lp.size().max(1)`.
pub fn default_weigher(lp: &CompiledLoop) -> u64 {
    lp.size().max(1) as u64
}

struct Entry {
    value: Arc<CompiledLoop>,
    weight: u64,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<u64, Entry>,
    weight: u64,
}

/// A sharded, weight-bounded LRU cache of compiled loops.
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: u64,
    capacity: u64,
    weigher: Weigher,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ShardedCache {
    /// A cache of `shards` shards holding at most `capacity` total
    /// weight (split evenly; each shard gets at least 1).
    pub fn new(shards: usize, capacity: u64, weigher: Weigher) -> Self {
        let shards = shards.max(1);
        ShardedCache {
            shard_capacity: (capacity / shards as u64).max(1),
            capacity,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            weigher,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Looks `key` up, stamping recency on a hit. Counts a hit or miss.
    pub fn get(&self, key: u64) -> Option<Arc<CompiledLoop>> {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_of(key).lock().expect("cache shard lock");
        match shard.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `value` under `key`, then evicts least-recently-used
    /// entries until the shard is back within its weight budget (the
    /// newly inserted entry is evicted last, so an oversized loop still
    /// caches — alone).
    pub fn insert(&self, key: u64, value: Arc<CompiledLoop>) {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        let weight = (self.weigher)(&value).max(1);
        let mut shard = self.shard_of(key).lock().expect("cache shard lock");
        if let Some(old) = shard.entries.insert(
            key,
            Entry {
                value,
                weight,
                last_used: stamp,
            },
        ) {
            shard.weight -= old.weight;
        }
        shard.weight += weight;
        while shard.weight > self.shard_capacity && shard.entries.len() > 1 {
            let victim = shard
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("len > 1 leaves a non-key victim");
            let evicted = shard.entries.remove(&victim).expect("victim exists");
            shard.weight -= evicted.weight;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops `key`'s entry if present. The service evicts entries whose
    /// pipeline panicked: a panic inside a stage can poison the loop's
    /// internal memoization locks, so the entry must not be served
    /// again. Not counted as an eviction.
    pub fn remove(&self, key: u64) -> bool {
        let mut shard = self.shard_of(key).lock().expect("cache shard lock");
        match shard.entries.remove(&key) {
            Some(entry) => {
                shard.weight -= entry.weight;
                true
            }
            None => false,
        }
    }

    /// Live entry count across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").entries.len())
            .sum()
    }

    /// Whether no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent snapshot of the cache's counters.
    pub fn counters(&self) -> CacheCounters {
        let (mut entries, mut weight) = (0, 0);
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard lock");
            entries += shard.entries.len() as u64;
            weight += shard.weight;
        }
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            weight,
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(n: usize) -> Arc<CompiledLoop> {
        let body: String = (0..n)
            .map(|i| format!("X{i}[i] := X{i}[i-1] + 1; "))
            .collect();
        let source = format!("do i from 2 to n {{ {body} }}");
        Arc::new(CompiledLoop::from_source(&source).expect("compiles"))
    }

    #[test]
    fn hit_miss_and_eviction_counters() {
        let cache = ShardedCache::new(1, 2, default_weigher);
        assert!(cache.get(1).is_none());
        cache.insert(1, lp(1));
        cache.insert(2, lp(1));
        assert!(cache.get(1).is_some());
        // Third unit-weight entry overflows capacity 2: the LRU entry
        // (key 2, never read) is evicted.
        cache.insert(3, lp(1));
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        let c = cache.counters();
        assert_eq!(c.evictions, 1);
        assert_eq!(c.entries, 2);
        assert_eq!(c.weight, 2);
        assert_eq!(c.hits, 3);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn oversized_entry_still_caches_alone() {
        let cache = ShardedCache::new(1, 2, default_weigher);
        cache.insert(1, lp(1));
        cache.insert(2, lp(5)); // weight 5 > capacity 2
        assert!(cache.get(2).is_some(), "oversized entry is kept");
        assert!(cache.get(1).is_none(), "everything else was evicted");
        assert_eq!(cache.len(), 1);
    }
}
