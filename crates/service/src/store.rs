//! The persistent, digest-keyed artifact store behind `tpnc serve
//! --store DIR`: compiled-loop payloads spilled to an on-disk
//! content-addressed directory, warm-starting the result cache on boot.
//!
//! Layout under the store root:
//!
//! ```text
//! INDEX                     one "<16-hex-key>" line per committed entry,
//!                           oldest first (the warm-start order)
//! objects/<16-hex-key>.tpnart   one entry per cache key
//! quarantine/               corrupt entries moved here, never served
//! ```
//!
//! Each entry is a one-line JSON header followed by the loop's A-code
//! dump ([`tpn::dataflow::acode`]):
//!
//! ```text
//! {"v":1,"key":"<16 hex>","checksum":"<16 hex>","bytes":N,"options":{...}}
//! .sdsp
//! actor 0 "X[i]" add time=1 ...
//! ```
//!
//! Crash consistency: entries are written to a unique temp file, synced,
//! then renamed into place — a `kill -9` at any instant leaves either no
//! entry or a complete one, never a torn one. The index is append-only
//! with one short line per commit; a torn final line is ignored at load,
//! and entries present in `objects/` but missing from the index are
//! self-healed back into it. A header/checksum/length mismatch at load
//! moves the entry to `quarantine/` and keeps booting.

use std::collections::HashSet;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tpn::metrics::StoreCounters;
use tpn::{CompileOptions, CompiledLoop};

use crate::protocol::{self, JsonValue};

/// The entry-format version written to every header.
const FORMAT_VERSION: u64 = 1;

/// 64-bit FNV-1a over a byte slice — the entry checksum (the same hash
/// family as [`protocol::cache_key`], but over the payload bytes).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct StoreState {
    index: File,
    indexed: HashSet<u64>,
}

/// A persistent artifact store rooted at one directory. Handles are
/// cheap to share (`Arc` internally is not needed; the service owns one)
/// and safe to use from many worker threads at once.
pub struct ArtifactStore {
    root: PathBuf,
    state: Mutex<StoreState>,
    loaded: AtomicU64,
    spilled: AtomicU64,
    quarantined: AtomicU64,
    spill_errors: AtomicU64,
    tmp_seq: AtomicU64,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the layout or opening the index.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<ArtifactStore> {
        let root = root.into();
        fs::create_dir_all(root.join("objects"))?;
        fs::create_dir_all(root.join("quarantine"))?;
        let index = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(root.join("INDEX"))?;
        let indexed = read_index(&root);
        Ok(ArtifactStore {
            root,
            state: Mutex::new(StoreState { index, indexed }),
            loaded: AtomicU64::new(0),
            spilled: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            spill_errors: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn object_path(&self, key: u64) -> PathBuf {
        self.root.join("objects").join(format!("{key:016x}.tpnart"))
    }

    /// Spills one compiled loop under `key`. Content-addressed: a key
    /// already committed is a no-op. Crash-safe: write-temp, sync,
    /// rename.
    ///
    /// # Errors
    ///
    /// Any I/O error; the caller treats persistence as best-effort (the
    /// in-memory response already succeeded).
    pub fn spill(&self, key: u64, lp: &CompiledLoop, options: &CompileOptions) -> io::Result<()> {
        {
            let state = self.state.lock().expect("store lock");
            if state.indexed.contains(&key) {
                return Ok(());
            }
        }
        let payload = tpn::dataflow::acode::write(lp.sdsp());
        let header = format!(
            "{{\"v\":{FORMAT_VERSION},\"key\":\"{key:016x}\",\"checksum\":\"{:016x}\",\
             \"bytes\":{},\"options\":{}}}\n",
            fnv1a(payload.as_bytes()),
            payload.len(),
            protocol::options_to_json(options),
        );
        // Unique temp name per (process, handle, attempt): concurrent
        // writers never clobber each other's in-progress file.
        let tmp = self.root.join("objects").join(format!(
            ".{key:016x}.{}.{}.tmp",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| {
            let mut file = File::create(&tmp)?;
            file.write_all(header.as_bytes())?;
            file.write_all(payload.as_bytes())?;
            file.sync_all()?;
            fs::rename(&tmp, self.object_path(key))?;
            let mut state = self.state.lock().expect("store lock");
            if state.indexed.insert(key) {
                writeln!(state.index, "{key:016x}")?;
                state.index.sync_all()?;
            }
            Ok(())
        })();
        match &result {
            Ok(()) => {
                self.spilled.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                let _ = fs::remove_file(&tmp);
                self.spill_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }

    /// Loads every committed entry, oldest first — the warm-start path.
    /// Corrupt entries are moved to `quarantine/` and skipped; entries on
    /// disk but missing from the index are self-healed back into it.
    pub fn load(&self) -> Vec<(u64, Arc<CompiledLoop>)> {
        let mut keys: Vec<u64> = {
            let state = self.state.lock().expect("store lock");
            let mut keys: Vec<u64> = state.indexed.iter().copied().collect();
            keys.sort_unstable();
            // Re-read the index file for its order (oldest first); the
            // sorted set above only backs the membership test.
            let ordered = read_index_ordered(&self.root);
            if ordered.len() == keys.len() {
                ordered
            } else {
                keys
            }
        };
        // Self-heal: adopt committed objects the index lost (e.g. a
        // crash between rename and the index append).
        for orphan in scan_objects(&self.root) {
            let mut state = self.state.lock().expect("store lock");
            if state.indexed.insert(orphan) {
                let _ = writeln!(state.index, "{orphan:016x}");
                keys.push(orphan);
            }
        }
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            match self.load_entry(key) {
                Ok(lp) => {
                    self.loaded.fetch_add(1, Ordering::Relaxed);
                    out.push((key, Arc::new(lp)));
                }
                Err(reason) => self.quarantine(key, &reason),
            }
        }
        out
    }

    fn load_entry(&self, key: u64) -> Result<CompiledLoop, String> {
        let mut bytes = Vec::new();
        File::open(self.object_path(key))
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| format!("unreadable entry: {e}"))?;
        let newline = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or("missing header line")?;
        let header = std::str::from_utf8(&bytes[..newline]).map_err(|_| "header not UTF-8")?;
        let header = protocol::parse_json(header).map_err(|e| format!("bad header: {e}"))?;
        let version = match header.get("v") {
            Some(JsonValue::Num(n)) => *n as u64,
            _ => return Err("missing format version".into()),
        };
        if version != FORMAT_VERSION {
            return Err(format!("unsupported entry format v{version}"));
        }
        match header.get("key") {
            Some(JsonValue::Str(s)) if *s == format!("{key:016x}") => {}
            _ => return Err("header key does not match file name".into()),
        }
        let payload = &bytes[newline + 1..];
        let expected_len = match header.get("bytes") {
            Some(JsonValue::Num(n)) => *n as usize,
            _ => return Err("missing payload length".into()),
        };
        if payload.len() != expected_len {
            return Err(format!(
                "payload truncated: {} of {expected_len} bytes",
                payload.len()
            ));
        }
        match header.get("checksum") {
            Some(JsonValue::Str(s)) if *s == format!("{:016x}", fnv1a(payload)) => {}
            _ => return Err("checksum mismatch".into()),
        }
        let options = match header.get("options") {
            Some(value) => protocol::options_from_json(value)
                .map_err(|e| format!("bad stored options: {e}"))?,
            None => CompileOptions::new(),
        };
        let payload = std::str::from_utf8(payload).map_err(|_| "payload not UTF-8")?;
        let sdsp =
            tpn::dataflow::acode::read(payload).map_err(|e| format!("bad A-code payload: {e}"))?;
        Ok(CompiledLoop::from_sdsp_with(sdsp, options))
    }

    /// Moves a corrupt entry to `quarantine/` and drops it from the
    /// index set (the index file keeps its line; load tolerates index
    /// lines without a backing object).
    fn quarantine(&self, key: u64, _reason: &str) {
        let from = self.object_path(key);
        let to = self
            .root
            .join("quarantine")
            .join(format!("{key:016x}.tpnart"));
        let _ = fs::rename(&from, &to);
        self.state.lock().expect("store lock").indexed.remove(&key);
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Committed entries currently tracked (after quarantines).
    pub fn len(&self) -> usize {
        self.state.lock().expect("store lock").indexed.len()
    }

    /// Whether no entries are committed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the store's counters (the `metrics` payload's
    /// `store` object).
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            entries: self.len() as u64,
            loaded: self.loaded.load(Ordering::Relaxed),
            spilled: self.spilled.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            spill_errors: self.spill_errors.load(Ordering::Relaxed),
        }
    }
}

/// Reads the index's key set, tolerating a missing file and torn or
/// duplicate lines.
fn read_index(root: &Path) -> HashSet<u64> {
    read_index_ordered(root).into_iter().collect()
}

/// Reads the index's keys in file order, deduplicated, skipping lines
/// that do not parse as 16 hex digits (a torn final append) and keys
/// without a committed object (a quarantined entry's stale line).
fn read_index_ordered(root: &Path) -> Vec<u64> {
    let text = fs::read_to_string(root.join("INDEX")).unwrap_or_default();
    let mut seen = HashSet::new();
    let mut keys = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.len() != 16 {
            continue;
        }
        if let Ok(key) = u64::from_str_radix(line, 16) {
            if root
                .join("objects")
                .join(format!("{key:016x}.tpnart"))
                .is_file()
                && seen.insert(key)
            {
                keys.push(key);
            }
        }
    }
    keys
}

/// Scans `objects/` for committed entries (ignoring in-progress `.tmp`
/// files), sorted for determinism.
fn scan_objects(root: &Path) -> Vec<u64> {
    let mut keys = Vec::new();
    let Ok(entries) = fs::read_dir(root.join("objects")) else {
        return keys;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name.strip_suffix(".tpnart") else {
            continue;
        };
        if stem.len() == 16 {
            if let Ok(key) = u64::from_str_radix(stem, 16) {
                keys.push(key);
            }
        }
    }
    keys.sort_unstable();
    keys
}
