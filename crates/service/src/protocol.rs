//! The service's NDJSON request protocol: one JSON object per line in,
//! one per line out.
//!
//! The response **payloads** are the same serde rows `tpnc --format
//! json` prints (the CLI imports them from here), so a service response
//! and a one-shot CLI run serialize byte-identically — and, because the
//! builders only read memoized [`CompiledLoop`] artifacts, a cached and
//! an uncached response are byte-identical too.
//!
//! The offline `serde_json` shim only *serializes*, so incoming requests
//! are parsed by the small recursive-descent [`parse_json`] parser here.
//!
//! ## Request schema
//!
//! ```json
//! {"id":1,"verb":"analyze","source":"do i from 2 to n { X[i] := X[i-1] + 1; }"}
//! {"id":2,"verb":"schedule","source":"...","depth":2,"deadline_ms":500,
//!  "options":{"node_time":3,"step_budget":100000,"issue_policy":"priority",
//!             "trace":true,"trace_capacity":4096}}
//! {"id":3,"verb":"metrics"}
//! {"id":4,"verb":"cancel","target":2}
//! ```
//!
//! Verbs: `analyze`, `schedule` (optional `depth` switches to the SCP
//! model), `rate`, `scp` (requires `depth`), `trace` (optional `depth`),
//! `storage`, `explain` (the self-validated scheduling witness),
//! `metrics`, `metrics_prometheus` (the same counters as a Prometheus
//! text exposition), `journal` (the last-N request-journal ring, when
//! journalling is enabled), and `cancel` (the last four are handled by
//! the serve front-end, not the worker pool).
//!
//! ## Response schema
//!
//! ```json
//! {"id":1,"ok":true,"verb":"analyze","payload":{...}}
//! {"id":9,"ok":false,"verb":"schedule","error":{"kind":"overloaded",
//!  "message":"...","queue_depth":64}}
//! ```
//!
//! Error kinds: `overloaded` (typed backpressure, carries
//! `queue_depth`), `rate_limited` (per-client fairness, carries
//! `retry_after_ms`), `deadline`, `cancelled`, `panic`, `compile`,
//! `bad_request`, `unsupported_version`.
//!
//! ## The v2 envelope
//!
//! A request whose top level carries `"v":2` uses the versioned
//! envelope: correlation and routing fields (`id`, `verb`, `client`)
//! stay at the top level and everything verb-specific moves into
//! `body`:
//!
//! ```json
//! {"v":2,"id":7,"verb":"schedule","client":"ci-bot",
//!  "body":{"source":"do i ...","depth":2,"options":{"node_time":3}}}
//! ```
//!
//! Responses echo the version: `{"v":2,"id":7,"ok":true,...}`. A
//! request without `"v"` is a v1 request and gets the exact v1 response
//! bytes; any other version gets a typed `unsupported_version` error.
//! `client` keys the per-client fairness limiter (absent ⇒ the
//! anonymous bucket).

use serde::Serialize;
use tpn::petri::rational::Ratio;
use tpn::{CompileOptions, CompiledLoop, Error, IssuePolicy, SchedulePolicy};

// ---------------------------------------------------------------------------
// Cache key: canonical digest of (normalized source, options fingerprint).
// ---------------------------------------------------------------------------

/// Canonicalizes loop source for cache keying: `//` comments are
/// stripped and whitespace runs collapse to single spaces — exactly the
/// characters the lexer ignores — so formatting variants of one loop
/// share a cache entry while any token change produces a new key.
pub fn normalize_source(source: &str) -> String {
    let mut out = String::new();
    for line in source.lines() {
        let code = match line.find("//") {
            Some(at) => &line[..at],
            None => line,
        };
        for token in code.split_whitespace() {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(token);
        }
    }
    out
}

/// The cache key: a 64-bit FNV-1a digest over the normalized source
/// followed by the [`CompileOptions::fingerprint`], so equal loops
/// compiled under different options occupy distinct entries.
pub fn cache_key(source: &str, options: &CompileOptions) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in normalize_source(source).bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    for byte in options.fingerprint().to_le_bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------------

/// A protocol verb.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Verb {
    /// Critical-cycle analysis (Theorem 3.3.1 summary).
    Analyze,
    /// The periodic schedule; with `depth`, the depth-limited SCP one.
    Schedule,
    /// Measured-versus-optimal rate report.
    Rate,
    /// SCP run at a required `depth`.
    Scp,
    /// Replay-validated firing trace (Chrome trace JSON payload).
    Trace,
    /// Storage minimisation summary.
    Storage,
    /// The self-validated scheduling witness (critical cycle, runner-up
    /// slack, engine audit, balanced issue word).
    Explain,
    /// Service counters snapshot (never queued, never cached).
    Metrics,
    /// The same counters as a Prometheus text exposition (never queued,
    /// never cached).
    MetricsPrometheus,
    /// The last-N entries of the request journal (never queued, never
    /// cached).
    Journal,
    /// Cooperative cancellation of an in-flight request (serve layer).
    Cancel,
}

impl Verb {
    /// Every verb, in wire-name order — the canonical iteration order for
    /// per-verb counters.
    pub const ALL: [Verb; 11] = [
        Verb::Analyze,
        Verb::Schedule,
        Verb::Rate,
        Verb::Scp,
        Verb::Trace,
        Verb::Storage,
        Verb::Explain,
        Verb::Metrics,
        Verb::MetricsPrometheus,
        Verb::Journal,
        Verb::Cancel,
    ];

    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Verb::Analyze => "analyze",
            Verb::Schedule => "schedule",
            Verb::Rate => "rate",
            Verb::Scp => "scp",
            Verb::Trace => "trace",
            Verb::Storage => "storage",
            Verb::Explain => "explain",
            Verb::Metrics => "metrics",
            Verb::MetricsPrometheus => "metrics_prometheus",
            Verb::Journal => "journal",
            Verb::Cancel => "cancel",
        }
    }

    /// This verb's position in [`Verb::ALL`].
    pub fn index(self) -> usize {
        Verb::ALL
            .iter()
            .position(|&v| v == self)
            .expect("every verb is in ALL")
    }

    fn parse(name: &str) -> Option<Verb> {
        Some(match name {
            "analyze" => Verb::Analyze,
            "schedule" => Verb::Schedule,
            "rate" => Verb::Rate,
            "scp" => Verb::Scp,
            "trace" => Verb::Trace,
            "storage" => Verb::Storage,
            "explain" => Verb::Explain,
            "metrics" => Verb::Metrics,
            "metrics_prometheus" => Verb::MetricsPrometheus,
            "journal" => Verb::Journal,
            "cancel" => Verb::Cancel,
            _ => return None,
        })
    }
}

/// One parsed request line.
#[derive(Clone, Debug)]
pub struct Request {
    /// The envelope version this request arrived under (1 or 2);
    /// responses are rendered in the same version.
    pub v: u8,
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// What to do.
    pub verb: Verb,
    /// The client id keying per-client fairness (v2 envelope;
    /// `None` ⇒ the anonymous bucket).
    pub client: Option<String>,
    /// The loop source (empty for `metrics` / `cancel`).
    pub source: String,
    /// SCP depth: required for `scp`, optional for
    /// `schedule`/`rate`/`trace`.
    pub depth: Option<u64>,
    /// Compile options (fingerprinted into the cache key).
    pub options: CompileOptions,
    /// Wall-clock deadline from admission, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// The id a `cancel` request targets.
    pub target: Option<u64>,
}

impl Request {
    /// A v1 request with defaulted optional fields — the in-process
    /// construction path (tests, benches, the chaos harness).
    pub fn basic(id: u64, verb: Verb, source: impl Into<String>) -> Request {
        Request {
            v: 1,
            id,
            verb,
            client: None,
            source: source.into(),
            depth: None,
            options: CompileOptions::new(),
            deadline_ms: None,
            target: None,
        }
    }
}

/// Why a request line failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The line carried a `"v"` this server does not speak; the serve
    /// layer answers with a typed `unsupported_version` error. The `id`
    /// is echoed when the line carried a usable one.
    UnsupportedVersion {
        /// The request's correlation id, when present.
        id: Option<u64>,
        /// The version the client asked for.
        v: u64,
    },
    /// Anything else — invalid JSON, a missing or mistyped field; the
    /// serve layer answers `bad_request` with the message.
    Bad(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnsupportedVersion { v, .. } => {
                write!(
                    f,
                    "unsupported envelope version {v} (this server speaks 1 and 2)"
                )
            }
            ParseError::Bad(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<String> for ParseError {
    fn from(message: String) -> ParseError {
        ParseError::Bad(message)
    }
}

impl From<&str> for ParseError {
    fn from(message: &str) -> ParseError {
        ParseError::Bad(message.into())
    }
}

/// Parses one NDJSON request line (either envelope version).
///
/// # Errors
///
/// [`ParseError::UnsupportedVersion`] for an unknown `"v"`, otherwise
/// [`ParseError::Bad`] with a human-readable message; the serve layer
/// turns them into `unsupported_version` / `bad_request` responses.
pub fn parse_request(line: &str) -> Result<Request, ParseError> {
    let value = parse_json(line)?;
    let obj = value.as_object().ok_or("request must be a JSON object")?;
    let v = match get_u64(obj, "v")? {
        None => 1,
        Some(v @ (1 | 2)) => v as u8,
        Some(v) => {
            return Err(ParseError::UnsupportedVersion {
                id: get_u64(obj, "id").ok().flatten(),
                v,
            })
        }
    };
    let id = get_u64(obj, "id")?.ok_or("missing \"id\"")?;
    let verb = match obj.iter().find(|(k, _)| k == "verb") {
        Some((_, JsonValue::Str(name))) => {
            Verb::parse(name).ok_or_else(|| format!("unknown verb {name:?}"))?
        }
        Some(_) => return Err("\"verb\" must be a string".into()),
        None => return Err("missing \"verb\"".into()),
    };
    let client = match obj.iter().find(|(k, _)| k == "client") {
        Some((_, JsonValue::Str(s))) => Some(s.clone()),
        Some((_, JsonValue::Null)) | None => None,
        Some(_) => return Err("\"client\" must be a string".into()),
    };
    // The verb-specific fields live at the top level in v1 and inside
    // "body" in v2; everything below reads from `body`.
    let empty_body: Vec<(String, JsonValue)> = Vec::new();
    let body: &[(String, JsonValue)] = if v == 2 {
        match obj.iter().find(|(k, _)| k == "body") {
            None => &empty_body,
            Some((_, value)) => value.as_object().ok_or("\"body\" must be a JSON object")?,
        }
    } else {
        obj
    };
    let source = match body.iter().find(|(k, _)| k == "source") {
        Some((_, JsonValue::Str(s))) => s.clone(),
        Some(_) => return Err("\"source\" must be a string".into()),
        None => String::new(),
    };
    if source.is_empty()
        && !matches!(
            verb,
            Verb::Metrics | Verb::MetricsPrometheus | Verb::Journal | Verb::Cancel
        )
    {
        return Err(format!("verb {:?} requires \"source\"", verb.as_str()).into());
    }
    let depth = get_u64(body, "depth")?;
    if verb == Verb::Scp && depth.is_none() {
        return Err("verb \"scp\" requires \"depth\"".into());
    }
    if depth == Some(0) {
        return Err("\"depth\" must be >= 1".into());
    }
    let deadline_ms = get_u64(body, "deadline_ms")?;
    let target = get_u64(body, "target")?;
    if verb == Verb::Cancel && target.is_none() {
        return Err("verb \"cancel\" requires \"target\"".into());
    }
    let options = match body.iter().find(|(k, _)| k == "options") {
        None => CompileOptions::new(),
        Some((_, value)) => {
            let opts = value
                .as_object()
                .ok_or("\"options\" must be a JSON object")?;
            parse_options(opts)?
        }
    };
    Ok(Request {
        v,
        id,
        verb,
        client,
        source,
        depth,
        options,
        deadline_ms,
        target,
    })
}

/// Serializes compile options to the same JSON object shape
/// [`parse_request`] accepts under `"options"` — only non-default fields
/// are written, so defaults round-trip to `{}`. This is the persistence
/// form the artifact store records next to each spilled entry.
pub fn options_to_json(options: &CompileOptions) -> String {
    let mut out = String::from("{");
    let push = |out: &mut String, field: String| {
        if out.len() > 1 {
            out.push(',');
        }
        out.push_str(&field);
    };
    if let Some(t) = options.get_node_time() {
        push(&mut out, format!("\"node_time\":{t}"));
    }
    if let Some(b) = options.get_step_budget() {
        push(&mut out, format!("\"step_budget\":{b}"));
    }
    if let Some(c) = options.get_trace_capacity() {
        push(&mut out, format!("\"trace_capacity\":{c}"));
    }
    if options.get_profile() {
        push(&mut out, "\"profile\":true".into());
    }
    if options.get_trace() {
        push(&mut out, "\"trace\":true".into());
    }
    if options.get_issue_policy() != IssuePolicy::Fifo {
        push(&mut out, "\"issue_policy\":\"priority\"".into());
    }
    if options.get_engine() != SchedulePolicy::Auto {
        push(
            &mut out,
            format!("\"engine\":\"{}\"", options.get_engine().as_str()),
        );
    }
    out.push('}');
    out
}

/// Parses the `"options"` object form back to [`CompileOptions`] — the
/// inverse of [`options_to_json`].
///
/// # Errors
///
/// A human-readable message on an unknown key or a mistyped value.
pub fn options_from_json(value: &JsonValue) -> Result<CompileOptions, String> {
    let obj = value
        .as_object()
        .ok_or("\"options\" must be a JSON object")?;
    parse_options(obj)
}

fn parse_options(obj: &[(String, JsonValue)]) -> Result<CompileOptions, String> {
    let mut options = CompileOptions::new();
    for (key, value) in obj {
        match key.as_str() {
            "node_time" => options = options.node_time(expect_u64(key, value)?),
            "step_budget" => options = options.step_budget(expect_u64(key, value)?),
            "trace_capacity" => {
                options = options.trace_capacity(expect_u64(key, value)? as usize);
            }
            "profile" => options = options.profile(expect_bool(key, value)?),
            "trace" => options = options.trace(expect_bool(key, value)?),
            "issue_policy" => match value {
                JsonValue::Str(s) if s == "fifo" => {
                    options = options.issue_policy(IssuePolicy::Fifo);
                }
                JsonValue::Str(s) if s == "priority" => {
                    options = options.issue_policy(IssuePolicy::Priority);
                }
                _ => return Err("\"issue_policy\" must be \"fifo\" or \"priority\"".into()),
            },
            "engine" => match value {
                JsonValue::Str(s) if SchedulePolicy::parse(s).is_some() => {
                    options = options.engine(SchedulePolicy::parse(s).expect("just checked"));
                }
                _ => return Err("\"engine\" must be \"auto\", \"analytic\" or \"frustum\"".into()),
            },
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(options)
}

fn get_u64(obj: &[(String, JsonValue)], key: &str) -> Result<Option<u64>, String> {
    match obj.iter().find(|(k, _)| k == key) {
        None | Some((_, JsonValue::Null)) => Ok(None),
        Some((_, value)) => expect_u64(key, value).map(Some),
    }
}

fn expect_u64(key: &str, value: &JsonValue) -> Result<u64, String> {
    match value {
        JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
            Ok(*n as u64)
        }
        _ => Err(format!("{key:?} must be a non-negative integer")),
    }
}

fn expect_bool(key: &str, value: &JsonValue) -> Result<bool, String> {
    match value {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(format!("{key:?} must be a boolean")),
    }
}

// ---------------------------------------------------------------------------
// Response payloads — shared with `tpnc --format json`.
// ---------------------------------------------------------------------------

/// An exact rational rendered as a JSON object, emitted alongside every
/// `"p/q"` ratio string so clients get the `{num, den}` pair (and a
/// convenience float) without parsing the string form.
#[derive(Serialize)]
pub struct RationalJson {
    /// Numerator, lowest terms.
    pub num: u64,
    /// Denominator, lowest terms (never zero).
    pub den: u64,
    /// `num / den` as a double — lossy, for display only.
    pub float: f64,
}

impl From<Ratio> for RationalJson {
    fn from(r: Ratio) -> Self {
        RationalJson {
            num: r.numer(),
            den: r.denom(),
            float: r.to_f64(),
        }
    }
}

/// The `analyze` row (also `tpnc analyze --format json`).
#[derive(Serialize)]
pub struct AnalyzeJson {
    /// Source file, when invoked on one (the service sends `null`).
    pub file: Option<String>,
    /// Always `"analyze"`.
    pub command: String,
    /// Loop nodes.
    pub size: usize,
    /// Input (read-only) arrays.
    pub input_arrays: Vec<String>,
    /// Scalar parameters.
    pub params: Vec<String>,
    /// Names on a critical cycle.
    pub critical_cycle: Vec<String>,
    /// `α* = max Ω(C)/M(C)` as an exact ratio string.
    pub cycle_time: String,
    /// `α*` as an exact `{num, den}` pair.
    pub cycle_time_rational: RationalJson,
    /// `1/α*` as an exact ratio string.
    pub optimal_rate: String,
    /// `1/α*` as an exact `{num, den}` pair.
    pub optimal_rate_rational: RationalJson,
    /// Storage locations of the naive allocation.
    pub storage_locations: usize,
}

/// The `schedule` / `scp` row (also `tpnc schedule --format json`).
#[derive(Serialize)]
pub struct ScheduleJson {
    /// Source file, when invoked on one.
    pub file: Option<String>,
    /// Always `"schedule"`.
    pub command: String,
    /// The SCP depth, when scheduling the shared-pipeline model.
    pub scp_depth: Option<u64>,
    /// The initiation interval as an exact ratio string.
    pub initiation_interval: String,
    /// The initiation interval as an exact `{num, den}` pair.
    pub initiation_interval_rational: RationalJson,
    /// Steady-state period in cycles.
    pub period: u64,
    /// Iterations initiated per period.
    pub iterations_per_period: u64,
    /// Measured SCP rate (SCP rows only).
    pub rate: Option<String>,
    /// Measured SCP rate as an exact `{num, den}` pair (SCP rows only).
    pub rate_rational: Option<RationalJson>,
    /// Issue-slot utilization (SCP rows only).
    pub utilization: Option<String>,
    /// Issue-slot utilization as an exact `{num, den}` pair (SCP rows
    /// only).
    pub utilization_rational: Option<RationalJson>,
    /// The rendered kernel.
    pub kernel: String,
}

/// The `rate` row: measured-versus-bound rates.
#[derive(Serialize)]
pub struct RateJson {
    /// Source file, when invoked on one.
    pub file: Option<String>,
    /// Always `"rate"`.
    pub command: String,
    /// The SCP depth, when rating the shared-pipeline model.
    pub scp_depth: Option<u64>,
    /// The steady-state rate of every loop node.
    pub measured: String,
    /// The measured rate as an exact `{num, den}` pair.
    pub measured_rational: RationalJson,
    /// The critical-cycle bound (plain SDSP-PN rows only).
    pub optimal: Option<String>,
    /// The bound as an exact `{num, den}` pair (plain rows only).
    pub optimal_rational: Option<RationalJson>,
    /// The `1/n` resource ceiling (SCP rows only).
    pub resource_bound: Option<String>,
    /// The ceiling as an exact `{num, den}` pair (SCP rows only).
    pub resource_bound_rational: Option<RationalJson>,
    /// Issue-slot occupancy (SCP rows only).
    pub utilization: Option<String>,
    /// Issue-slot occupancy as an exact `{num, den}` pair (SCP rows
    /// only).
    pub utilization_rational: Option<RationalJson>,
    /// Whether the schedule attains the critical-cycle bound (plain
    /// rows only; Theorem 4.1.1 says it always does).
    pub time_optimal: Option<bool>,
}

/// The `storage` row in minimisation mode (also `tpnc storage --format
/// json`).
#[derive(Serialize)]
pub struct StorageJson {
    /// Source file, when invoked on one.
    pub file: Option<String>,
    /// Always `"storage"`.
    pub command: String,
    /// `"minimize"` or `"balance"`.
    pub mode: String,
    /// Locations before the transformation.
    pub locations_before: usize,
    /// Locations after.
    pub locations_after: usize,
    /// Rate before balancing (balance mode only).
    pub rate_before: Option<String>,
    /// Rate before balancing as an exact `{num, den}` pair (balance mode
    /// only).
    pub rate_before_rational: Option<RationalJson>,
    /// Rate after the transformation.
    pub rate_after: String,
    /// Rate after the transformation as an exact `{num, den}` pair.
    pub rate_after_rational: RationalJson,
}

/// The `trace` row: the replay-validated firing trace with its Chrome
/// trace-event JSON inlined (deterministic, single line).
#[derive(Serialize)]
pub struct TraceJson {
    /// Source file, when invoked on one.
    pub file: Option<String>,
    /// Always `"trace"`.
    pub command: String,
    /// The SCP depth, when tracing the shared-pipeline model.
    pub scp_depth: Option<u64>,
    /// Frustum start instant.
    pub start_time: u64,
    /// Frustum repeat instant.
    pub repeat_time: u64,
    /// Frustum period.
    pub period: u64,
    /// Events in the trace.
    pub events: usize,
    /// Events the replay validator checked.
    pub events_checked: usize,
    /// The `chrome://tracing` JSON document.
    pub chrome: String,
}

/// Builds the `analyze` payload.
///
/// # Errors
///
/// Whatever [`CompiledLoop::analyze`] reports.
pub fn analyze_payload(lp: &CompiledLoop, file: Option<String>) -> Result<AnalyzeJson, Error> {
    let a = lp.analyze()?;
    Ok(AnalyzeJson {
        file,
        command: "analyze".into(),
        size: lp.size(),
        input_arrays: lp.sdsp().input_arrays(),
        params: lp.sdsp().params(),
        critical_cycle: a.critical_nodes,
        cycle_time: a.cycle_time.to_string(),
        cycle_time_rational: a.cycle_time.into(),
        optimal_rate: a.optimal_rate.to_string(),
        optimal_rate_rational: a.optimal_rate.into(),
        storage_locations: lp.sdsp().storage_locations(),
    })
}

/// Builds the `schedule` payload; `depth` switches to the SCP model.
///
/// # Errors
///
/// Whatever [`CompiledLoop::schedule`] / [`CompiledLoop::scp`] report.
pub fn schedule_payload(
    lp: &CompiledLoop,
    depth: Option<u64>,
    file: Option<String>,
) -> Result<ScheduleJson, Error> {
    Ok(match depth {
        None => {
            let s = lp.schedule()?;
            ScheduleJson {
                file,
                command: "schedule".into(),
                scp_depth: None,
                initiation_interval: s.initiation_interval().to_string(),
                initiation_interval_rational: s.initiation_interval().into(),
                period: s.period(),
                iterations_per_period: s.iterations_per_period(),
                rate: None,
                rate_rational: None,
                utilization: None,
                utilization_rational: None,
                kernel: s.render_kernel(),
            }
        }
        Some(depth) => {
            let run = lp.scp(depth)?;
            ScheduleJson {
                file,
                command: "schedule".into(),
                scp_depth: Some(depth),
                initiation_interval: run.schedule.initiation_interval().to_string(),
                initiation_interval_rational: run.schedule.initiation_interval().into(),
                period: run.schedule.period(),
                iterations_per_period: run.schedule.iterations_per_period(),
                rate: Some(run.rates.measured.to_string()),
                rate_rational: Some(run.rates.measured.into()),
                utilization: Some(run.rates.utilization.to_string()),
                utilization_rational: Some(run.rates.utilization.into()),
                kernel: run.schedule.render_kernel(),
            }
        }
    })
}

/// Builds the `rate` payload; `depth` switches to the SCP model.
///
/// # Errors
///
/// Whatever [`CompiledLoop::rate_report`] / [`CompiledLoop::scp`]
/// report.
pub fn rate_payload(
    lp: &CompiledLoop,
    depth: Option<u64>,
    file: Option<String>,
) -> Result<RateJson, Error> {
    Ok(match depth {
        None => {
            let r = lp.rate_report()?;
            RateJson {
                file,
                command: "rate".into(),
                scp_depth: None,
                measured: r.measured.to_string(),
                measured_rational: r.measured.into(),
                optimal: Some(r.optimal.to_string()),
                optimal_rational: Some(r.optimal.into()),
                resource_bound: None,
                resource_bound_rational: None,
                utilization: None,
                utilization_rational: None,
                time_optimal: Some(r.is_time_optimal()),
            }
        }
        Some(depth) => {
            let run = lp.scp(depth)?;
            RateJson {
                file,
                command: "rate".into(),
                scp_depth: Some(depth),
                measured: run.rates.measured.to_string(),
                measured_rational: run.rates.measured.into(),
                optimal: None,
                optimal_rational: None,
                resource_bound: Some(run.rates.resource_bound.to_string()),
                resource_bound_rational: Some(run.rates.resource_bound.into()),
                utilization: Some(run.rates.utilization.to_string()),
                utilization_rational: Some(run.rates.utilization.into()),
                time_optimal: None,
            }
        }
    })
}

/// Builds the `storage` payload (minimisation mode).
///
/// # Errors
///
/// Whatever [`CompiledLoop::storage`] reports.
pub fn storage_payload(lp: &CompiledLoop, file: Option<String>) -> Result<StorageJson, Error> {
    let run = lp.storage()?;
    Ok(StorageJson {
        file,
        command: "storage".into(),
        mode: "minimize".into(),
        locations_before: run.report.before,
        locations_after: run.report.after,
        rate_before: None,
        rate_before_rational: None,
        rate_after: run.report.cycle_time.recip().to_string(),
        rate_after_rational: run.report.cycle_time.recip().into(),
    })
}

/// Builds the `trace` payload: replay-validates the firing trace, then
/// inlines its Chrome trace JSON.
///
/// # Errors
///
/// Whatever [`CompiledLoop::validate_trace`] /
/// [`CompiledLoop::validate_scp_trace`] report.
pub fn trace_payload(
    lp: &CompiledLoop,
    depth: Option<u64>,
    file: Option<String>,
) -> Result<TraceJson, Error> {
    let (validation, trace) = match depth {
        None => (lp.validate_trace()?, lp.firing_trace()?),
        Some(depth) => (lp.validate_scp_trace(depth)?, lp.scp_trace(depth)?),
    };
    Ok(TraceJson {
        file,
        command: "trace".into(),
        scp_depth: depth,
        start_time: trace.start_time,
        repeat_time: trace.repeat_time,
        period: trace.period(),
        events: trace.events.len(),
        events_checked: validation.events_checked,
        chrome: trace.chrome_trace_json(),
    })
}

/// One cycle row of the `explain` payload.
#[derive(Serialize)]
pub struct ExplainCycleJson {
    /// Names of the loop nodes (and liveness buffers) on the cycle.
    pub transitions: Vec<String>,
    /// `Ω(C)`: summed execution time of the cycle's transitions.
    pub total_time: u64,
    /// `M(C)`: the cycle's token count.
    pub token_count: u64,
    /// `Ω(C)/M(C)` as an exact ratio string.
    pub cycle_time: String,
    /// `Ω(C)/M(C)` as an exact `{num, den}` pair.
    pub cycle_time_rational: RationalJson,
    /// `α* − Ω(C)/M(C)` as an exact ratio string (zero iff critical).
    pub slack: String,
    /// The slack as an exact `{num, den}` pair.
    pub slack_rational: RationalJson,
    /// Whether this cycle attains `α*`.
    pub critical: bool,
}

/// One issue-word row of the `explain` payload.
#[derive(Serialize)]
pub struct ExplainWordJson {
    /// The loop node.
    pub node: String,
    /// `'1'`/`'0'` per cycle of the kernel window; `'1'` = starts a
    /// firing.
    pub word: String,
}

/// The `explain` row (also `tpnc explain --format json`): the
/// self-validated scheduling witness.
#[derive(Serialize)]
pub struct ExplainJson {
    /// Source file, when invoked on one (the service sends `null`).
    pub file: Option<String>,
    /// Always `"explain"`.
    pub command: String,
    /// Loop nodes.
    pub size: usize,
    /// `α* = max Ω(C)/M(C)` as an exact ratio string.
    pub cycle_time: String,
    /// `α*` as an exact `{num, den}` pair.
    pub cycle_time_rational: RationalJson,
    /// `1/α*` as an exact ratio string.
    pub rate: String,
    /// `1/α*` as an exact `{num, den}` pair.
    pub rate_rational: RationalJson,
    /// Names on the critical witness cycle (empty for a self-loop
    /// witness).
    pub witness_transitions: Vec<String>,
    /// The dominating slow node, when the bound is a single node's
    /// non-reentrance rather than a token-carrying cycle.
    pub witness_self_loop: Option<String>,
    /// `Ω(C)` of the witness cycle (`null` for a self-loop witness).
    pub total_time: Option<u64>,
    /// `M(C)` of the witness cycle (`null` for a self-loop witness).
    pub token_count: Option<u64>,
    /// Every simple cycle, critical first then by ascending slack;
    /// `null` when the net exceeded the enumeration budget (the witness
    /// above is still exact).
    pub cycles: Option<Vec<ExplainCycleJson>>,
    /// The engine the compile options asked for.
    pub engine_configured: String,
    /// The engine actually used after `auto` resolution.
    pub engine_resolved: String,
    /// Whether the compiled net is a pure marked graph.
    pub marked_graph: bool,
    /// A one-line engine-decision reason.
    pub engine_reason: String,
    /// Kernel length `p` in cycles (marked graphs only).
    pub issue_period: Option<u64>,
    /// Iterations per kernel `q` (marked graphs only).
    pub issue_iterations: Option<u64>,
    /// First cycle of the steady-state window (marked graphs only).
    pub issue_anchor: Option<u64>,
    /// Balanced issue words, one row per loop node (marked graphs only).
    pub issue_words: Option<Vec<ExplainWordJson>>,
    /// Whether every reported quantity re-derived exactly in process.
    pub validated: bool,
    /// The discrepancies found during re-validation (empty when
    /// `validated`).
    pub validation_errors: Vec<String>,
}

/// Builds the `explain` payload from the memoized witness.
///
/// # Errors
///
/// Whatever [`CompiledLoop::explain`] reports.
pub fn explain_payload(lp: &CompiledLoop, file: Option<String>) -> Result<ExplainJson, Error> {
    let e = lp.explain()?;
    Ok(ExplainJson {
        file,
        command: "explain".into(),
        size: lp.size(),
        cycle_time: e.cycle_time.to_string(),
        cycle_time_rational: e.cycle_time.into(),
        rate: e.rate.to_string(),
        rate_rational: e.rate.into(),
        witness_transitions: e.witness_transitions.clone(),
        witness_self_loop: e.witness_self_loop.clone(),
        total_time: e.total_time,
        token_count: e.token_count,
        cycles: e.cycles.as_ref().map(|cycles| {
            cycles
                .iter()
                .map(|c| ExplainCycleJson {
                    transitions: c.transitions.clone(),
                    total_time: c.total_time,
                    token_count: c.token_count,
                    cycle_time: c.cycle_time.to_string(),
                    cycle_time_rational: c.cycle_time.into(),
                    slack: c.slack.to_string(),
                    slack_rational: c.slack.into(),
                    critical: c.critical,
                })
                .collect()
        }),
        engine_configured: e.engine.configured.as_str().into(),
        engine_resolved: e.engine.resolved.as_str().into(),
        marked_graph: e.engine.marked_graph,
        engine_reason: e.engine.reason.clone(),
        issue_period: e.issue_words.as_ref().map(|w| w.period),
        issue_iterations: e.issue_words.as_ref().map(|w| w.iterations),
        issue_anchor: e.issue_words.as_ref().map(|w| w.anchor),
        issue_words: e.issue_words.as_ref().map(|w| {
            w.words
                .iter()
                .map(|(node, word)| ExplainWordJson {
                    node: node.clone(),
                    word: word.clone(),
                })
                .collect()
        }),
        validated: e.validated,
        validation_errors: e.validation_errors.clone(),
    })
}

// ---------------------------------------------------------------------------
// Response envelopes.
// ---------------------------------------------------------------------------

/// Renders a success envelope around an already-serialized payload, in
/// the v1 wire form (no `"v"` key — byte-stable since PR 4).
pub fn ok_line(id: u64, verb: Verb, payload_json: &str) -> String {
    ok_envelope(1, id, verb, payload_json)
}

/// Renders a success envelope in the requested version: v1 is the bare
/// historical form, v2 leads with `"v":2`.
pub fn ok_envelope(v: u8, id: u64, verb: Verb, payload_json: &str) -> String {
    let mut out = String::new();
    out.push('{');
    if v >= 2 {
        out.push_str(&format!("\"v\":{v},"));
    }
    out.push_str(&format!(
        "\"id\":{id},\"ok\":true,\"verb\":\"{}\",\"payload\":{payload_json}}}",
        verb.as_str()
    ));
    out
}

/// Renders a v1 error envelope. `queue_depth` is set for `overloaded`.
pub fn error_line(
    id: u64,
    verb: Option<Verb>,
    kind: &str,
    message: &str,
    queue_depth: Option<usize>,
) -> String {
    error_envelope(1, id, verb, kind, message, queue_depth, None)
}

/// Renders an error envelope in the requested version. `queue_depth`
/// is set for `overloaded`, `retry_after_ms` for `rate_limited`.
pub fn error_envelope(
    v: u8,
    id: u64,
    verb: Option<Verb>,
    kind: &str,
    message: &str,
    queue_depth: Option<usize>,
    retry_after_ms: Option<u64>,
) -> String {
    let mut out = String::from("{");
    if v >= 2 {
        out.push_str(&format!("\"v\":{v},"));
    }
    out.push_str(&format!("\"id\":{id},\"ok\":false"));
    if let Some(verb) = verb {
        out.push_str(&format!(",\"verb\":\"{}\"", verb.as_str()));
    }
    out.push_str(&format!(",\"error\":{{\"kind\":\"{kind}\",\"message\":"));
    serde::write_json_string(message, &mut out);
    if let Some(depth) = queue_depth {
        out.push_str(&format!(",\"queue_depth\":{depth}"));
    }
    if let Some(retry) = retry_after_ms {
        out.push_str(&format!(",\"retry_after_ms\":{retry}"));
    }
    out.push_str("}}");
    out
}

// ---------------------------------------------------------------------------
// A minimal JSON parser (the serde_json shim only serializes).
// ---------------------------------------------------------------------------

/// A parsed JSON value. Objects keep insertion order (a `Vec` of
/// key/value pairs), which is all the protocol needs.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The key/value pairs when this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Looks a key up when this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Parses a complete JSON document (rejects trailing garbage).
///
/// # Errors
///
/// A message with the byte offset of the first syntax error.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing characters at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("invalid low surrogate".into());
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(unit).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(format!("invalid escape \\{}", char::from(other)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar from the source text.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = end;
        Ok(unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_shim_output() {
        #[derive(Serialize)]
        struct Row {
            name: String,
            n: u64,
            rate: Option<String>,
            flags: Vec<bool>,
        }
        let row = Row {
            name: "a\"b\\c\nd".into(),
            n: 42,
            rate: None,
            flags: vec![true, false],
        };
        let text = serde_json::to_string(&row).unwrap();
        let value = parse_json(&text).unwrap();
        assert_eq!(
            value.get("name"),
            Some(&JsonValue::Str("a\"b\\c\nd".into()))
        );
        assert_eq!(value.get("n"), Some(&JsonValue::Num(42.0)));
        assert_eq!(value.get("rate"), Some(&JsonValue::Null));
        assert_eq!(
            value.get("flags"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Bool(true),
                JsonValue::Bool(false)
            ]))
        );
    }

    #[test]
    fn parser_handles_unicode_escapes() {
        let value = parse_json(r#"{"s":"é😀"}"#).unwrap();
        assert_eq!(value.get("s"), Some(&JsonValue::Str("é😀".into())));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{\"a\":1,}").is_err());
        assert!(parse_json("[1,2] trailing").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn request_parsing_validates_fields() {
        let req = parse_request(
            r#"{"id":7,"verb":"schedule","source":"do i from 2 to n { X[i] := X[i-1]; }",
               "depth":2,"deadline_ms":100,
               "options":{"node_time":3,"issue_policy":"priority","trace":true}}"#,
        )
        .unwrap();
        assert_eq!(req.id, 7);
        assert_eq!(req.verb, Verb::Schedule);
        assert_eq!(req.depth, Some(2));
        assert_eq!(req.deadline_ms, Some(100));
        assert_eq!(req.options.get_node_time(), Some(3));
        assert!(req.options.get_trace());

        assert!(parse_request(r#"{"verb":"analyze","source":"x"}"#).is_err());
        assert!(parse_request(r#"{"id":1,"verb":"warp","source":"x"}"#).is_err());
        assert!(parse_request(r#"{"id":1,"verb":"analyze"}"#).is_err());
        assert!(parse_request(r#"{"id":1,"verb":"scp","source":"x"}"#).is_err());
        assert!(parse_request(r#"{"id":1,"verb":"scp","source":"x","depth":0}"#).is_err());
        assert!(parse_request(r#"{"id":1,"verb":"cancel"}"#).is_err());
        assert!(parse_request(r#"{"id":1,"verb":"metrics"}"#).is_ok());
        // The other front-end verbs need no source either…
        assert!(parse_request(r#"{"id":1,"verb":"metrics_prometheus"}"#).is_ok());
        assert!(parse_request(r#"{"id":1,"verb":"journal"}"#).is_ok());
        // …but explain compiles a loop, so it does.
        assert!(parse_request(r#"{"id":1,"verb":"explain"}"#).is_err());
        assert!(parse_request(r#"{"id":1,"verb":"explain","source":"x"}"#).is_ok());
    }

    #[test]
    fn v2_envelope_parses_and_unknown_versions_are_typed() {
        let req = parse_request(
            r#"{"v":2,"id":7,"verb":"schedule","client":"ci-bot",
               "body":{"source":"do i from 2 to n { X[i] := X[i-1]; }","depth":2,
                       "options":{"node_time":3}}}"#,
        )
        .unwrap();
        assert_eq!(req.v, 2);
        assert_eq!(req.id, 7);
        assert_eq!(req.client.as_deref(), Some("ci-bot"));
        assert_eq!(req.depth, Some(2));
        assert_eq!(req.options.get_node_time(), Some(3));

        // v absent => v1; explicit v1 keeps the top-level field form.
        let v1 = parse_request(r#"{"id":1,"verb":"analyze","source":"x"}"#).unwrap();
        assert_eq!((v1.v, v1.client), (1, None));
        let v1e = parse_request(r#"{"v":1,"id":1,"verb":"analyze","source":"x"}"#).unwrap();
        assert_eq!(v1e.v, 1);

        // v2 requires verb fields inside body, not at the top level.
        assert!(parse_request(r#"{"v":2,"id":1,"verb":"analyze","source":"x"}"#).is_err());
        // Unknown versions are a typed error echoing the id.
        assert_eq!(
            parse_request(r#"{"v":3,"id":9,"verb":"analyze","source":"x"}"#).unwrap_err(),
            ParseError::UnsupportedVersion { id: Some(9), v: 3 }
        );
        assert_eq!(
            parse_request(r#"{"v":99,"verb":"analyze"}"#).unwrap_err(),
            ParseError::UnsupportedVersion { id: None, v: 99 }
        );
        // v2 metrics needs no body at all.
        assert!(parse_request(r#"{"v":2,"id":1,"verb":"metrics"}"#).is_ok());
    }

    #[test]
    fn versioned_envelopes_differ_only_by_the_v_prefix() {
        assert_eq!(
            ok_envelope(2, 3, Verb::Analyze, "{\"x\":1}"),
            format!("{{\"v\":2,{}", &ok_line(3, Verb::Analyze, "{\"x\":1}")[1..])
        );
        let err = error_envelope(
            2,
            4,
            Some(Verb::Schedule),
            "rate_limited",
            "client \"a\" rate limited",
            None,
            Some(12),
        );
        assert!(err.starts_with("{\"v\":2,\"id\":4,\"ok\":false"));
        assert!(err.ends_with("\"retry_after_ms\":12}}"));
        assert!(parse_json(&err).is_ok());
    }

    #[test]
    fn options_json_round_trips_non_default_fields() {
        let options = CompileOptions::new()
            .node_time(3)
            .step_budget(1_000)
            .trace_capacity(64)
            .profile(true)
            .trace(true)
            .issue_policy(IssuePolicy::Priority)
            .engine(SchedulePolicy::Frustum);
        let json = options_to_json(&options);
        let back = options_from_json(&parse_json(&json).unwrap()).unwrap();
        assert_eq!(back, options);
        assert_eq!(back.fingerprint(), options.fingerprint());

        // Defaults serialize to the empty object and round-trip.
        assert_eq!(options_to_json(&CompileOptions::new()), "{}");
        let empty = options_from_json(&parse_json("{}").unwrap()).unwrap();
        assert_eq!(empty, CompileOptions::new());
    }

    #[test]
    fn verb_table_round_trips_names_and_indices() {
        for (i, verb) in Verb::ALL.iter().enumerate() {
            assert_eq!(verb.index(), i);
            assert_eq!(Verb::parse(verb.as_str()), Some(*verb));
        }
    }

    #[test]
    fn explain_payload_reports_a_validated_witness() {
        let lp = CompiledLoop::from_source("do i from 2 to n { X[i] := X[i-1] + 1; }").unwrap();
        let payload = explain_payload(&lp, None).unwrap();
        assert_eq!(payload.command, "explain");
        assert!(payload.validated, "{:?}", payload.validation_errors);
        assert!(payload.validation_errors.is_empty());
        // rate is exactly the reciprocal of the cycle time.
        assert_eq!(payload.cycle_time_rational.num, payload.rate_rational.den);
        assert_eq!(payload.cycle_time_rational.den, payload.rate_rational.num);
        // A pure marked graph gets the engine audit and the issue words.
        assert!(payload.marked_graph);
        assert_eq!(payload.engine_resolved, "analytic");
        let words = payload.issue_words.as_ref().expect("marked graph");
        assert!(!words.is_empty());
        // The payload is a single serializable line.
        let line = serde_json::to_string(&payload).unwrap();
        assert!(!line.contains('\n'));
        assert!(parse_json(&line).is_ok());
    }

    #[test]
    fn normalization_ignores_formatting_but_not_tokens() {
        let a = "do i from 2 to n { X[i] := X[i-1] + 1; }";
        let b = "do i from 2 to n {\n  X[i] := X[i-1] + 1; // comment\n}";
        let c = "do i from 2 to n { X[i] := X[i-1] + 2; }";
        assert_eq!(normalize_source(a), normalize_source(b));
        assert_ne!(normalize_source(a), normalize_source(c));

        let opts = CompileOptions::new();
        assert_eq!(cache_key(a, &opts), cache_key(b, &opts));
        assert_ne!(cache_key(a, &opts), cache_key(c, &opts));
        assert_ne!(
            cache_key(a, &opts),
            cache_key(a, &CompileOptions::new().node_time(2))
        );
    }

    #[test]
    fn envelopes_are_single_line_json() {
        let ok = ok_line(3, Verb::Analyze, "{\"x\":1}");
        assert_eq!(
            ok,
            "{\"id\":3,\"ok\":true,\"verb\":\"analyze\",\"payload\":{\"x\":1}}"
        );
        let err = error_line(
            9,
            Some(Verb::Schedule),
            "overloaded",
            "queue \"full\"",
            Some(8),
        );
        assert!(!err.contains('\n'));
        assert!(parse_json(&err).is_ok());
        assert_eq!(
            err,
            "{\"id\":9,\"ok\":false,\"verb\":\"schedule\",\"error\":{\"kind\":\"overloaded\",\
             \"message\":\"queue \\\"full\\\"\",\"queue_depth\":8}}"
        );
    }
}
