//! An in-process, thread-safe compile/schedule service on top of
//! [`tpn::CompiledLoop`] — the long-running layer behind `tpnc serve`.
//!
//! Architecture (see DESIGN.md "Service layer"):
//!
//! ```text
//! submit ──► bounded admission queue ──► worker pool ──► response slot
//!                │ full: typed               │
//!                ▼ Overloaded                ▼
//!           (rejected, depth)      sharded LRU cache of
//!                                  Arc<CompiledLoop> (hit: reuse
//!                                  every memoized artifact)
//! ```
//!
//! * **Backpressure**: [`Service::submit`] never blocks — a full queue
//!   returns a typed [`Overloaded`] carrying the observed depth, so
//!   callers shed load instead of hanging.
//! * **Caching**: results are keyed by
//!   [`protocol::cache_key`] (normalized source ⊕ options fingerprint)
//!   and hold `Arc<CompiledLoop>`; the facade's internal memoization
//!   means a hit shares the frustum report, schedule, rate reports and
//!   SCP runs by depth with every other holder.
//! * **Deadlines**: a per-request wall-clock budget checked between
//!   pipeline stages (admission → compile → artifact build), on top of
//!   the engine's own [`tpn::CompileOptions::step_budget`].
//! * **Cancellation**: cooperative — [`Ticket::cancel`] flips a flag the
//!   worker re-checks at the same stage boundaries.
//! * **Panic isolation**: a request that panics mid-compile poisons only
//!   itself (`panic` error response); the worker survives, mirroring
//!   [`tpn::batch`]'s per-item isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod protocol;
mod queue;

pub use queue::Overloaded;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cache::{default_weigher, ShardedCache, Weigher};
use protocol::{error_line, ok_line, Request, Verb};
use tpn::metrics::{latency_histogram, percentile_nanos, ServiceCounters};
use tpn::CompiledLoop;

/// Tuning knobs for one [`Service`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Admission queue capacity; pushes beyond it get [`Overloaded`].
    pub queue_capacity: usize,
    /// Total result-cache weight across all shards.
    pub cache_capacity: u64,
    /// Result-cache shards (locks scale with this).
    pub cache_shards: usize,
    /// Weighs a cached loop; defaults to its node count.
    pub weigher: Weigher,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: tpn::batch::default_threads(),
            queue_capacity: 64,
            cache_capacity: 4096,
            cache_shards: 8,
            weigher: default_weigher,
            default_deadline: None,
        }
    }
}

/// A completed request's outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// The request's correlation id.
    pub id: u64,
    /// The verb that ran.
    pub verb: Verb,
    /// Whether the response is a success envelope.
    pub ok: bool,
    /// Whether the compiled loop came from the result cache. Not part
    /// of [`line`](Self::line): cached and uncached responses are
    /// byte-identical.
    pub cache_hit: bool,
    /// The single-line NDJSON response.
    pub line: String,
}

struct Slot {
    response: Mutex<Option<Response>>,
    ready: Condvar,
}

impl Slot {
    fn fill(&self, response: Response) {
        *self.response.lock().expect("slot lock") = Some(response);
        self.ready.notify_all();
    }
}

/// A handle to one in-flight request.
pub struct Ticket {
    id: u64,
    slot: Arc<Slot>,
    cancel: Arc<AtomicBool>,
}

/// A cancellation handle detached from its [`Ticket`]: the serve
/// front-end keeps these in its in-flight table while a waiter thread
/// owns the ticket itself.
#[derive(Clone)]
pub struct Canceller(Arc<AtomicBool>);

impl Canceller {
    /// Requests cooperative cancellation (see [`Ticket::cancel`]).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

impl Ticket {
    /// The request's correlation id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// A cancellation handle that outlives [`wait`](Self::wait).
    pub fn canceller(&self) -> Canceller {
        Canceller(self.cancel.clone())
    }

    /// Requests cooperative cancellation; the worker honours it at the
    /// next stage boundary (a request already past its last check still
    /// completes normally).
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Blocks until the response is ready.
    pub fn wait(self) -> Response {
        let mut guard = self.slot.response.lock().expect("slot lock");
        loop {
            if let Some(response) = guard.take() {
                return response;
            }
            guard = self.slot.ready.wait(guard).expect("slot lock");
        }
    }

    /// Polls for the response without blocking.
    pub fn try_wait(&self) -> Option<Response> {
        self.slot.response.lock().expect("slot lock").take()
    }
}

struct Job {
    request: Request,
    slot: Arc<Slot>,
    cancel: Arc<AtomicBool>,
    admitted: Instant,
    deadline: Option<Instant>,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected_overloaded: AtomicU64,
    deadline_expired: AtomicU64,
    cancelled: AtomicU64,
    panicked: AtomicU64,
    latencies_nanos: Mutex<Vec<u64>>,
}

struct Inner {
    queue: queue::BoundedQueue<Job>,
    cache: ShardedCache,
    counters: Counters,
    workers: usize,
    default_deadline: Option<Duration>,
}

/// The compile service: a bounded queue, a worker pool, and a sharded
/// result cache. Dropping the service closes the queue and joins the
/// workers (in-flight requests complete first).
pub struct Service {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts `config.workers` worker threads.
    pub fn start(config: ServiceConfig) -> Self {
        let inner = Arc::new(Inner {
            queue: queue::BoundedQueue::new(config.queue_capacity),
            cache: ShardedCache::new(config.cache_shards, config.cache_capacity, config.weigher),
            counters: Counters::default(),
            workers: config.workers.max(1),
            default_deadline: config.default_deadline,
        });
        let threads = (0..config.workers.max(1))
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("tpn-service-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn service worker")
            })
            .collect();
        Service { inner, threads }
    }

    /// Submits a request for asynchronous execution.
    ///
    /// # Errors
    ///
    /// [`Overloaded`] when the admission queue is full — the typed
    /// backpressure signal; nothing was enqueued.
    pub fn submit(&self, request: Request) -> Result<Ticket, Overloaded> {
        let slot = Arc::new(Slot {
            response: Mutex::new(None),
            ready: Condvar::new(),
        });
        let cancel = Arc::new(AtomicBool::new(false));
        let now = Instant::now();
        let deadline = request
            .deadline_ms
            .map(Duration::from_millis)
            .or(self.inner.default_deadline)
            .map(|budget| now + budget);
        let job = Job {
            slot: slot.clone(),
            cancel: cancel.clone(),
            admitted: now,
            deadline,
            request,
        };
        let id = job.request.id;
        match self.inner.queue.push(job) {
            Ok(()) => {
                self.inner.counters.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { id, slot, cancel })
            }
            Err((_, overloaded)) => {
                self.inner
                    .counters
                    .rejected_overloaded
                    .fetch_add(1, Ordering::Relaxed);
                Err(overloaded)
            }
        }
    }

    /// Submits and waits: the synchronous convenience wrapper.
    ///
    /// # Errors
    ///
    /// [`Overloaded`] when the queue rejects the request.
    pub fn call(&self, request: Request) -> Result<Response, Overloaded> {
        self.submit(request).map(Ticket::wait)
    }

    /// A snapshot of the service's counters (the `metrics` verb's
    /// payload).
    pub fn counters(&self) -> ServiceCounters {
        let c = &self.inner.counters;
        let mut latencies = c.latencies_nanos.lock().expect("latency lock").clone();
        let p50 = percentile_nanos(&mut latencies, 0.50).div_ceil(1_000);
        let p99 = percentile_nanos(&mut latencies, 0.99).div_ceil(1_000);
        ServiceCounters {
            workers: self.inner.workers,
            queue_capacity: self.inner.queue.capacity(),
            accepted: c.accepted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            rejected_overloaded: c.rejected_overloaded.load(Ordering::Relaxed),
            deadline_expired: c.deadline_expired.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            panicked: c.panicked.load(Ordering::Relaxed),
            max_queue_depth: self.inner.queue.max_depth(),
            p50_micros: p50,
            p99_micros: p99,
            latency: latency_histogram(&latencies),
            cache: self.inner.cache.counters(),
        }
    }

    /// The result cache's live entry count (tests and the self-test
    /// client use it to assert eviction behaviour).
    pub fn cache_len(&self) -> usize {
        self.inner.cache.len()
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.inner.queue.close();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    while let Some(job) = inner.queue.pop() {
        let id = job.request.id;
        let verb = job.request.verb;
        let admitted = job.admitted;
        let outcome = catch_unwind(AssertUnwindSafe(|| execute(inner, &job)));
        let response = match outcome {
            Ok((ok, cache_hit, line)) => {
                if ok {
                    inner.counters.completed.fetch_add(1, Ordering::Relaxed);
                }
                Response {
                    id,
                    verb,
                    ok,
                    cache_hit,
                    line,
                }
            }
            Err(payload) => {
                inner.counters.panicked.fetch_add(1, Ordering::Relaxed);
                // The panic may have poisoned the compiled loop's
                // internal stage locks; drop it from the cache so the
                // next same-key request recompiles cleanly.
                if verb != Verb::Cancel && verb != Verb::Metrics {
                    inner.cache.remove(protocol::cache_key(
                        &job.request.source,
                        &job.request.options,
                    ));
                }
                Response {
                    id,
                    verb,
                    ok: false,
                    cache_hit: false,
                    line: error_line(
                        id,
                        Some(verb),
                        "panic",
                        &tpn::batch::panic_message(&*payload),
                        None,
                    ),
                }
            }
        };
        let nanos = admitted.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        inner
            .counters
            .latencies_nanos
            .lock()
            .expect("latency lock")
            .push(nanos);
        job.slot.fill(response);
    }
}

/// Runs one request to a rendered response line. Returns
/// `(ok, cache_hit, line)`.
fn execute(inner: &Inner, job: &Job) -> (bool, bool, String) {
    let req = &job.request;
    let id = req.id;
    let verb = req.verb;

    // Stage boundary 1: admission → compile.
    if let Some(line) = interruption(inner, job) {
        return (false, false, line);
    }

    if verb == Verb::Cancel {
        // The serve front-end resolves cancel against its ticket table;
        // a cancel that reaches a worker targets an unknown request.
        let line = error_line(
            id,
            Some(verb),
            "bad_request",
            "cancel target is not in flight",
            None,
        );
        return (false, false, line);
    }

    let key = protocol::cache_key(&req.source, &req.options);
    let (lp, cache_hit) = match inner.cache.get(key) {
        Some(lp) => (lp, true),
        None => match CompiledLoop::from_source_with(&req.source, req.options.clone()) {
            Ok(lp) => {
                let lp = Arc::new(lp);
                inner.cache.insert(key, lp.clone());
                (lp, false)
            }
            Err(e) => {
                let line = error_line(id, Some(verb), "compile", &e.to_string(), None);
                return (false, false, line);
            }
        },
    };

    // Stage boundary 2: compile → artifact build.
    if let Some(line) = interruption(inner, job) {
        return (false, cache_hit, line);
    }

    let file = None;
    let payload = match verb {
        Verb::Analyze => protocol::analyze_payload(&lp, file).map(|p| to_json(&p)),
        Verb::Schedule => protocol::schedule_payload(&lp, req.depth, file).map(|p| to_json(&p)),
        Verb::Rate => protocol::rate_payload(&lp, req.depth, file).map(|p| to_json(&p)),
        Verb::Scp => {
            let depth = req.depth.expect("protocol validated scp depth");
            protocol::schedule_payload(&lp, Some(depth), file).map(|p| to_json(&p))
        }
        Verb::Trace => protocol::trace_payload(&lp, req.depth, file).map(|p| to_json(&p)),
        Verb::Storage => protocol::storage_payload(&lp, file).map(|p| to_json(&p)),
        Verb::Metrics | Verb::Cancel => unreachable!("handled before compilation"),
    };

    // Stage boundary 3: artifact build → response. A request that blew
    // its deadline inside a stage still reports it, matching the step
    // budget's "checked between instants" semantics.
    if let Some(line) = interruption(inner, job) {
        return (false, cache_hit, line);
    }

    match payload {
        Ok(json) => (true, cache_hit, ok_line(id, verb, &json)),
        Err(e) => {
            let line = error_line(id, Some(verb), "compile", &e.to_string(), None);
            (false, cache_hit, line)
        }
    }
}

/// Checks the job's cancel flag and wall-clock deadline; returns the
/// error response line when either fired.
fn interruption(inner: &Inner, job: &Job) -> Option<String> {
    let id = job.request.id;
    let verb = job.request.verb;
    if job.cancel.load(Ordering::Relaxed) {
        inner.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        return Some(error_line(
            id,
            Some(verb),
            "cancelled",
            "request cancelled",
            None,
        ));
    }
    if let Some(deadline) = job.deadline {
        if Instant::now() > deadline {
            inner
                .counters
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            return Some(error_line(
                id,
                Some(verb),
                "deadline",
                "wall-clock deadline expired",
                None,
            ));
        }
    }
    None
}

fn to_json<T: serde::Serialize>(payload: &T) -> String {
    serde_json::to_string(payload).expect("shim serializer is infallible")
}

/// Handles the `metrics` verb against a running service: never queued
/// (it must succeed under overload) and never cached.
pub fn metrics_response(service: &Service, id: u64) -> Response {
    let payload = to_json(&service.counters());
    Response {
        id,
        verb: Verb::Metrics,
        ok: true,
        cache_hit: false,
        line: ok_line(id, Verb::Metrics, &payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOURCE: &str = "do i from 2 to n { X[i] := X[i-1] + 1; }";

    fn request(id: u64, verb: Verb) -> Request {
        Request {
            id,
            verb,
            source: SOURCE.into(),
            depth: None,
            options: tpn::CompileOptions::new(),
            deadline_ms: None,
            target: None,
        }
    }

    #[test]
    fn analyze_twice_hits_cache_with_identical_bytes() {
        let service = Service::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let first = service.call(request(1, Verb::Analyze)).unwrap();
        let second = service.call(request(2, Verb::Analyze)).unwrap();
        assert!(first.ok && second.ok);
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        // Ids differ only in the envelope; payloads are byte-identical.
        let payload = |line: &str| line.split_once("\"payload\":").unwrap().1.to_string();
        assert_eq!(payload(&first.line), payload(&second.line));
        let counters = service.counters();
        assert_eq!(counters.completed, 2);
        assert_eq!(counters.cache.hits, 1);
        assert_eq!(counters.cache.misses, 1);
    }

    #[test]
    fn metrics_never_touches_the_cache() {
        let service = Service::start(ServiceConfig::default());
        let m = metrics_response(&service, 5);
        assert!(m.ok);
        assert!(m.line.contains("\"workers\""));
        assert_eq!(service.cache_len(), 0);
    }

    #[test]
    fn zero_deadline_expires_before_compiling() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let mut req = request(1, Verb::Schedule);
        req.deadline_ms = Some(0);
        let response = service.call(req).unwrap();
        assert!(!response.ok);
        assert!(response.line.contains("\"kind\":\"deadline\""));
        assert_eq!(service.counters().deadline_expired, 1);
    }

    #[test]
    fn panicking_request_gets_panic_response_and_pool_survives() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let mut bad = request(1, Verb::Scp);
        bad.depth = Some(0); // CompiledLoop::scp panics at depth 0.
        let response = service.call(bad).unwrap();
        assert!(!response.ok);
        assert!(response.line.contains("\"kind\":\"panic\""));
        // The single worker is still alive and serves the next request.
        let ok = service.call(request(2, Verb::Analyze)).unwrap();
        assert!(ok.ok);
        assert_eq!(service.counters().panicked, 1);
    }
}
