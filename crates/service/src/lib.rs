//! An in-process, thread-safe compile/schedule service on top of
//! [`tpn::CompiledLoop`] — the long-running layer behind `tpnc serve`.
//!
//! Architecture (see DESIGN.md "Service layer"):
//!
//! ```text
//! submit ──► bounded admission queue ──► worker pool ──► response slot
//!                │ full: typed               │
//!                ▼ Overloaded                ▼
//!           (rejected, depth)      sharded LRU cache of
//!                                  Arc<CompiledLoop> (hit: reuse
//!                                  every memoized artifact)
//! ```
//!
//! * **Backpressure**: [`Service::submit`] never blocks — a full queue
//!   returns a typed [`Overloaded`] carrying the observed depth, so
//!   callers shed load instead of hanging.
//! * **Caching**: results are keyed by
//!   [`protocol::cache_key`] (normalized source ⊕ options fingerprint)
//!   and hold `Arc<CompiledLoop>`; the facade's internal memoization
//!   means a hit shares the frustum report, schedule, rate reports and
//!   SCP runs by depth with every other holder.
//! * **Deadlines**: a per-request wall-clock budget checked between
//!   pipeline stages (admission → compile → artifact build), on top of
//!   the engine's own [`tpn::CompileOptions::step_budget`].
//! * **Cancellation**: cooperative — [`Ticket::cancel`] flips a flag the
//!   worker re-checks at the same stage boundaries.
//! * **Panic isolation**: a request that panics mid-compile poisons only
//!   itself (`panic` error response); the worker survives, mirroring
//!   [`tpn::batch`]'s per-item isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod limiter;
pub mod protocol;
mod queue;
pub mod store;

pub use limiter::{RateLimit, RateLimited};
pub use queue::Overloaded;

use std::collections::{HashSet, VecDeque};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cache::{default_weigher, ShardedCache, Weigher};
use limiter::{ClientLimiter, InFlightGuard};
use protocol::{error_envelope, ok_envelope, Request, Verb};
use serde::Serialize;
use store::ArtifactStore;
use tpn::metrics::{latency_histogram, percentile_nanos, ServiceCounters, VerbCounters};
use tpn::CompiledLoop;

/// Tuning knobs for one [`Service`], built with
/// [`ServiceConfig::builder`]:
///
/// ```
/// use tpn_service::ServiceConfig;
///
/// let config = ServiceConfig::builder()
///     .workers(2)
///     .queue(128)
///     .build()
///     .unwrap();
/// # let _ = config;
/// ```
///
/// `Default` matches the historical knobs: `default_threads()` workers,
/// a 64-deep queue, a 4096-weight cache over 8 shards, no deadline, no
/// journal, no store, no rate limit.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    workers: usize,
    queue_capacity: usize,
    cache_capacity: u64,
    cache_shards: usize,
    weigher: Weigher,
    default_deadline: Option<Duration>,
    journal_capacity: usize,
    store_path: Option<PathBuf>,
    rate_limit: Option<RateLimit>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: tpn::batch::default_threads(),
            queue_capacity: 64,
            cache_capacity: 4096,
            cache_shards: 8,
            weigher: default_weigher,
            default_deadline: None,
            journal_capacity: 0,
            store_path: None,
            rate_limit: None,
        }
    }
}

impl ServiceConfig {
    /// A builder over the defaults.
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder {
            config: ServiceConfig::default(),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured admission-queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// The configured store root, when persistence is on.
    pub fn store_path(&self) -> Option<&std::path::Path> {
        self.store_path.as_deref()
    }
}

/// An invalid knob combination, reported by
/// [`ServiceConfigBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError(String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid service config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Builds a [`ServiceConfig`] fluent-style; validation happens once, at
/// [`build`](Self::build).
#[derive(Clone, Debug)]
pub struct ServiceConfigBuilder {
    config: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Worker threads draining the admission queue (must be ≥ 1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Admission-queue capacity; pushes beyond it get [`Overloaded`]
    /// (must be ≥ 1).
    #[must_use]
    pub fn queue(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Total result-cache weight across all shards (must be ≥ 1).
    #[must_use]
    pub fn cache(mut self, capacity: u64) -> Self {
        self.config.cache_capacity = capacity;
        self
    }

    /// Result-cache shards — locks scale with this (must be ≥ 1).
    #[must_use]
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.config.cache_shards = shards;
        self
    }

    /// Weighs a cached loop; defaults to its node count.
    #[must_use]
    pub fn weigher(mut self, weigher: Weigher) -> Self {
        self.config.weigher = weigher;
        self
    }

    /// Deadline applied to requests that do not carry their own.
    #[must_use]
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.config.default_deadline = Some(deadline);
        self
    }

    /// Request-journal ring capacity; `0` (the default) disables
    /// journalling entirely.
    #[must_use]
    pub fn journal(mut self, capacity: usize) -> Self {
        self.config.journal_capacity = capacity;
        self
    }

    /// Persists compiled artifacts under this directory and warm-starts
    /// the cache from it on boot.
    #[must_use]
    pub fn store(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.store_path = Some(path.into());
        self
    }

    /// Enforces per-client fairness: a token bucket plus an in-flight
    /// cap per client id.
    #[must_use]
    pub fn rate_limit(mut self, limit: RateLimit) -> Self {
        self.config.rate_limit = Some(limit);
        self
    }

    /// Validates and returns the config.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the first invalid knob.
    pub fn build(self) -> Result<ServiceConfig, ConfigError> {
        let c = &self.config;
        if c.workers == 0 {
            return Err(ConfigError("workers must be >= 1".into()));
        }
        if c.queue_capacity == 0 {
            return Err(ConfigError("queue capacity must be >= 1".into()));
        }
        if c.cache_capacity == 0 {
            return Err(ConfigError("cache capacity must be >= 1".into()));
        }
        if c.cache_shards == 0 {
            return Err(ConfigError("cache shards must be >= 1".into()));
        }
        if let Some(limit) = &c.rate_limit {
            if limit.per_second == 0 {
                return Err(ConfigError("rate limit per_second must be >= 1".into()));
            }
            if limit.burst == 0 {
                return Err(ConfigError("rate limit burst must be >= 1".into()));
            }
            if limit.max_in_flight == 0 {
                return Err(ConfigError("rate limit max_in_flight must be >= 1".into()));
            }
        }
        Ok(self.config)
    }
}

/// A typed admission rejection: nothing was enqueued either way.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// The admission queue is full (global backpressure).
    Overloaded(Overloaded),
    /// This client's token bucket is empty or its in-flight cap is
    /// reached (per-client fairness).
    RateLimited(RateLimited),
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::Overloaded(e) => e.fmt(f),
            Rejected::RateLimited(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Rejected {}

// ---------------------------------------------------------------------------
// The structured request journal.
// ---------------------------------------------------------------------------

/// One request's journal record: what ran, where the compiled loop came
/// from, which engine the decision resolved to and why, where the time
/// went, and how it ended. Serialized as one NDJSON line per event.
#[derive(Clone, Debug, Serialize)]
pub struct JournalEvent {
    /// Monotone event number (1-based; survives ring eviction).
    pub seq: u64,
    /// The request's correlation id.
    pub id: u64,
    /// The verb's wire name.
    pub verb: String,
    /// The request's [`protocol::cache_key`] as 16 hex digits.
    pub source_digest: String,
    /// Cache tier: `"hot"` (cache hit), `"warm"` (miss on a previously
    /// seen key), `"miss"` (first-ever key), `"none"` (never reached the
    /// cache).
    pub cache: String,
    /// The resolved schedule engine, once the loop compiled.
    pub engine: Option<String>,
    /// The engine-decision reason ([`tpn::CompiledLoop::engine_audit`]).
    pub engine_reason: Option<String>,
    /// Admission-queue wait before a worker picked the request up.
    pub queue_wait_micros: u64,
    /// Cache lookup + (on miss) compile time.
    pub compile_micros: u64,
    /// Artifact-build time (schedule, trace, witness, …).
    pub build_micros: u64,
    /// Admission-to-response wall time.
    pub total_micros: u64,
    /// `"ok"`, `"overloaded"`, `"deadline"`, `"cancelled"`,
    /// `"panicked"`, `"compile"`, or `"bad_request"`.
    pub outcome: String,
}

struct JournalState {
    seq: u64,
    ring: VecDeque<JournalEvent>,
    seen_keys: HashSet<u64>,
    sink: Option<Box<dyn Write + Send>>,
}

/// The bounded journal: a last-N ring under one cheap lock (events are
/// built outside it), plus an optional NDJSON sink.
struct Journal {
    capacity: usize,
    state: Mutex<JournalState>,
}

impl Journal {
    fn new(capacity: usize) -> Journal {
        Journal {
            capacity,
            state: Mutex::new(JournalState {
                seq: 0,
                ring: VecDeque::with_capacity(capacity),
                seen_keys: HashSet::new(),
                sink: None,
            }),
        }
    }

    /// Classifies a cache lookup: `"hot"` on a hit, else `"warm"` when
    /// the key was seen before and `"miss"` on a first-ever key (which
    /// is recorded as seen).
    fn tier(&self, key: u64, hit: bool) -> &'static str {
        if hit {
            return "hot";
        }
        let mut state = self.state.lock().expect("journal lock");
        if state.seen_keys.insert(key) {
            "miss"
        } else {
            "warm"
        }
    }

    fn record(&self, mut event: JournalEvent) {
        let mut state = self.state.lock().expect("journal lock");
        state.seq += 1;
        event.seq = state.seq;
        if let Some(sink) = state.sink.as_mut() {
            let mut line = serde_json::to_string(&event).expect("shim serializer is infallible");
            line.push('\n');
            let _ = sink.write_all(line.as_bytes());
            let _ = sink.flush();
        }
        if state.ring.len() == self.capacity {
            state.ring.pop_front();
        }
        state.ring.push_back(event);
    }
}

/// A completed request's outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// The request's correlation id.
    pub id: u64,
    /// The verb that ran.
    pub verb: Verb,
    /// Whether the response is a success envelope.
    pub ok: bool,
    /// Whether the compiled loop came from the result cache. Not part
    /// of [`line`](Self::line): cached and uncached responses are
    /// byte-identical.
    pub cache_hit: bool,
    /// The single-line NDJSON response.
    pub line: String,
}

struct Slot {
    response: Mutex<Option<Response>>,
    ready: Condvar,
}

impl Slot {
    fn fill(&self, response: Response) {
        *self.response.lock().expect("slot lock") = Some(response);
        self.ready.notify_all();
    }
}

/// A handle to one in-flight request.
pub struct Ticket {
    id: u64,
    slot: Arc<Slot>,
    cancel: Arc<AtomicBool>,
}

/// A cancellation handle detached from its [`Ticket`]: the serve
/// front-end keeps these in its in-flight table while a waiter thread
/// owns the ticket itself.
#[derive(Clone)]
pub struct Canceller(Arc<AtomicBool>);

impl Canceller {
    /// Requests cooperative cancellation (see [`Ticket::cancel`]).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

impl Ticket {
    /// The request's correlation id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// A cancellation handle that outlives [`wait`](Self::wait).
    pub fn canceller(&self) -> Canceller {
        Canceller(self.cancel.clone())
    }

    /// Requests cooperative cancellation; the worker honours it at the
    /// next stage boundary (a request already past its last check still
    /// completes normally).
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Blocks until the response is ready.
    pub fn wait(self) -> Response {
        let mut guard = self.slot.response.lock().expect("slot lock");
        loop {
            if let Some(response) = guard.take() {
                return response;
            }
            guard = self.slot.ready.wait(guard).expect("slot lock");
        }
    }

    /// Polls for the response without blocking.
    pub fn try_wait(&self) -> Option<Response> {
        self.slot.response.lock().expect("slot lock").take()
    }
}

struct Job {
    request: Request,
    slot: Arc<Slot>,
    cancel: Arc<AtomicBool>,
    admitted: Instant,
    deadline: Option<Instant>,
    /// The client's in-flight slot; released when the job is dropped
    /// (after the response slot is filled).
    _in_flight: Option<InFlightGuard>,
}

#[derive(Default)]
struct PerVerb {
    accepted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
}

struct Counters {
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected_overloaded: AtomicU64,
    rate_limited: AtomicU64,
    deadline_expired: AtomicU64,
    cancelled: AtomicU64,
    panicked: AtomicU64,
    latencies_nanos: Mutex<Vec<u64>>,
    /// One row per [`Verb::ALL`] entry. Counts requests by verb —
    /// including the front-end verbs (`metrics`, `metrics_prometheus`,
    /// `journal`) that never enter the admission queue, so the per-verb
    /// sums can exceed the queue-level `accepted`.
    per_verb: Vec<PerVerb>,
}

impl Counters {
    fn new() -> Counters {
        Counters {
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_overloaded: AtomicU64::new(0),
            rate_limited: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            latencies_nanos: Mutex::new(Vec::new()),
            per_verb: Verb::ALL.iter().map(|_| PerVerb::default()).collect(),
        }
    }

    fn verb(&self, verb: Verb) -> &PerVerb {
        &self.per_verb[verb.index()]
    }
}

struct Inner {
    queue: queue::BoundedQueue<Job>,
    cache: ShardedCache,
    counters: Counters,
    workers: usize,
    default_deadline: Option<Duration>,
    journal: Option<Journal>,
    store: Option<ArtifactStore>,
    limiter: Option<ClientLimiter>,
}

/// The compile service: a bounded queue, a worker pool, and a sharded
/// result cache. Dropping the service closes the queue and joins the
/// workers (in-flight requests complete first).
pub struct Service {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts `config.workers` worker threads, warm-starting the cache
    /// from the persistent store when one is configured.
    ///
    /// # Panics
    ///
    /// When the configured store directory cannot be opened; use
    /// [`try_start`](Self::try_start) to handle that as a result.
    pub fn start(config: ServiceConfig) -> Self {
        Self::try_start(config).expect("open artifact store")
    }

    /// [`start`](Self::start), reporting store I/O errors instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Any I/O error opening the store layout (services without a store
    /// are infallible).
    pub fn try_start(config: ServiceConfig) -> std::io::Result<Self> {
        let store = match &config.store_path {
            Some(path) => Some(ArtifactStore::open(path)?),
            None => None,
        };
        let cache = ShardedCache::new(config.cache_shards, config.cache_capacity, config.weigher);
        if let Some(store) = &store {
            // Warm start: committed entries re-enter the LRU oldest
            // first, so the most recently spilled are the most recent.
            for (key, lp) in store.load() {
                cache.insert(key, lp);
            }
        }
        let inner = Arc::new(Inner {
            queue: queue::BoundedQueue::new(config.queue_capacity),
            cache,
            counters: Counters::new(),
            workers: config.workers.max(1),
            default_deadline: config.default_deadline,
            journal: (config.journal_capacity > 0).then(|| Journal::new(config.journal_capacity)),
            store,
            limiter: config.rate_limit.map(ClientLimiter::new),
        });
        let threads = (0..config.workers.max(1))
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("tpn-service-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn service worker")
            })
            .collect();
        Ok(Service { inner, threads })
    }

    /// Records an admission rejection in the journal.
    fn journal_rejection(&self, request: &Request, outcome: &str) {
        if let Some(journal) = &self.inner.journal {
            journal.record(JournalEvent {
                seq: 0,
                id: request.id,
                verb: request.verb.as_str().into(),
                source_digest: format!(
                    "{:016x}",
                    protocol::cache_key(&request.source, &request.options)
                ),
                cache: "none".into(),
                engine: None,
                engine_reason: None,
                queue_wait_micros: 0,
                compile_micros: 0,
                build_micros: 0,
                total_micros: 0,
                outcome: outcome.into(),
            });
        }
    }

    /// Submits a request for asynchronous execution.
    ///
    /// # Errors
    ///
    /// [`Rejected::Overloaded`] when the admission queue is full,
    /// [`Rejected::RateLimited`] when the client's token bucket is empty
    /// or its in-flight cap is reached; nothing was enqueued either way.
    pub fn submit(&self, request: Request) -> Result<Ticket, Rejected> {
        let in_flight = match &self.inner.limiter {
            Some(limiter) => match limiter.acquire(request.client.as_deref().unwrap_or_default()) {
                Ok(guard) => Some(guard),
                Err(limited) => {
                    self.inner
                        .counters
                        .rate_limited
                        .fetch_add(1, Ordering::Relaxed);
                    self.journal_rejection(&request, "rate_limited");
                    return Err(Rejected::RateLimited(limited));
                }
            },
            None => None,
        };
        let slot = Arc::new(Slot {
            response: Mutex::new(None),
            ready: Condvar::new(),
        });
        let cancel = Arc::new(AtomicBool::new(false));
        let now = Instant::now();
        let deadline = request
            .deadline_ms
            .map(Duration::from_millis)
            .or(self.inner.default_deadline)
            .map(|budget| now + budget);
        let job = Job {
            slot: slot.clone(),
            cancel: cancel.clone(),
            admitted: now,
            deadline,
            request,
            _in_flight: in_flight,
        };
        let id = job.request.id;
        let verb = job.request.verb;
        match self.inner.queue.push(job) {
            Ok(()) => {
                self.inner.counters.accepted.fetch_add(1, Ordering::Relaxed);
                self.inner
                    .counters
                    .verb(verb)
                    .accepted
                    .fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { id, slot, cancel })
            }
            Err((job, overloaded)) => {
                self.inner
                    .counters
                    .rejected_overloaded
                    .fetch_add(1, Ordering::Relaxed);
                self.journal_rejection(&job.request, "overloaded");
                Err(Rejected::Overloaded(overloaded))
            }
        }
    }

    /// Submits and waits: the synchronous convenience wrapper.
    ///
    /// # Errors
    ///
    /// [`Rejected`] when admission turns the request away.
    pub fn call(&self, request: Request) -> Result<Response, Rejected> {
        self.submit(request).map(Ticket::wait)
    }

    /// A snapshot of the service's counters (the `metrics` verb's
    /// payload).
    pub fn counters(&self) -> ServiceCounters {
        let c = &self.inner.counters;
        let mut latencies = c.latencies_nanos.lock().expect("latency lock").clone();
        let p50 = percentile_nanos(&mut latencies, 0.50).div_ceil(1_000);
        let p99 = percentile_nanos(&mut latencies, 0.99).div_ceil(1_000);
        let sum_nanos: u128 = latencies.iter().map(|&n| u128::from(n)).sum();
        let per_verb = Verb::ALL
            .iter()
            .map(|&v| {
                let p = c.verb(v);
                VerbCounters {
                    verb: v.as_str().into(),
                    accepted: p.accepted.load(Ordering::Relaxed),
                    completed: p.completed.load(Ordering::Relaxed),
                    failed: p.failed.load(Ordering::Relaxed),
                }
            })
            .filter(|r| r.accepted + r.completed + r.failed > 0)
            .collect();
        ServiceCounters {
            workers: self.inner.workers,
            queue_capacity: self.inner.queue.capacity(),
            accepted: c.accepted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            rejected_overloaded: c.rejected_overloaded.load(Ordering::Relaxed),
            rate_limited: c.rate_limited.load(Ordering::Relaxed),
            deadline_expired: c.deadline_expired.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            panicked: c.panicked.load(Ordering::Relaxed),
            max_queue_depth: self.inner.queue.max_depth(),
            p50_micros: p50,
            p99_micros: p99,
            latency_sum_micros: u64::try_from(sum_nanos.div_ceil(1_000)).unwrap_or(u64::MAX),
            latency: latency_histogram(&latencies),
            per_verb,
            cache: self.inner.cache.counters(),
            store: self.inner.store.as_ref().map(ArtifactStore::counters),
        }
    }

    /// The result cache's live entry count (tests and the self-test
    /// client use it to assert eviction behaviour).
    pub fn cache_len(&self) -> usize {
        self.inner.cache.len()
    }

    /// The last-N journal events, oldest first; `None` when journalling
    /// is disabled ([`ServiceConfigBuilder::journal`] was never set).
    pub fn journal_events(&self) -> Option<Vec<JournalEvent>> {
        self.inner.journal.as_ref().map(|j| {
            let state = j.state.lock().expect("journal lock");
            state.ring.iter().cloned().collect()
        })
    }

    /// The journal ring's capacity (`0` when disabled).
    pub fn journal_capacity(&self) -> usize {
        self.inner.journal.as_ref().map_or(0, |j| j.capacity)
    }

    /// Attaches an NDJSON sink: every journal event is also written to
    /// it as one line (`tpnc serve --journal FILE`). Returns `false`
    /// without installing when journalling is disabled.
    pub fn set_journal_sink(&self, sink: Box<dyn Write + Send>) -> bool {
        match &self.inner.journal {
            Some(j) => {
                j.state.lock().expect("journal lock").sink = Some(sink);
                true
            }
            None => false,
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.inner.queue.close();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One executed request's full outcome: the response pieces plus the
/// audit fields the journal records.
struct Exec {
    ok: bool,
    cache_hit: bool,
    line: String,
    outcome: &'static str,
    tier: &'static str,
    engine: Option<String>,
    engine_reason: Option<String>,
    compile_micros: u64,
    build_micros: u64,
}

impl Exec {
    fn failed(line: String, outcome: &'static str) -> Exec {
        Exec {
            ok: false,
            cache_hit: false,
            line,
            outcome,
            tier: "none",
            engine: None,
            engine_reason: None,
            compile_micros: 0,
            build_micros: 0,
        }
    }
}

fn duration_micros(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

fn worker_loop(inner: &Inner) {
    while let Some(job) = inner.queue.pop() {
        let started = Instant::now();
        let id = job.request.id;
        let verb = job.request.verb;
        let admitted = job.admitted;
        let outcome = catch_unwind(AssertUnwindSafe(|| execute(inner, &job)));
        let exec = match outcome {
            Ok(exec) => {
                if exec.ok {
                    inner.counters.completed.fetch_add(1, Ordering::Relaxed);
                    inner
                        .counters
                        .verb(verb)
                        .completed
                        .fetch_add(1, Ordering::Relaxed);
                } else {
                    inner
                        .counters
                        .verb(verb)
                        .failed
                        .fetch_add(1, Ordering::Relaxed);
                }
                exec
            }
            Err(payload) => {
                inner.counters.panicked.fetch_add(1, Ordering::Relaxed);
                inner
                    .counters
                    .verb(verb)
                    .failed
                    .fetch_add(1, Ordering::Relaxed);
                // The panic may have poisoned the compiled loop's
                // internal stage locks; drop it from the cache so the
                // next same-key request recompiles cleanly.
                if !matches!(
                    verb,
                    Verb::Cancel | Verb::Metrics | Verb::MetricsPrometheus | Verb::Journal
                ) {
                    inner.cache.remove(protocol::cache_key(
                        &job.request.source,
                        &job.request.options,
                    ));
                }
                Exec::failed(
                    error_envelope(
                        job.request.v,
                        id,
                        Some(verb),
                        "panic",
                        &tpn::batch::panic_message(&*payload),
                        None,
                        None,
                    ),
                    "panicked",
                )
            }
        };
        let nanos = admitted.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        inner
            .counters
            .latencies_nanos
            .lock()
            .expect("latency lock")
            .push(nanos);
        if let Some(journal) = &inner.journal {
            journal.record(JournalEvent {
                seq: 0,
                id,
                verb: verb.as_str().into(),
                source_digest: format!(
                    "{:016x}",
                    protocol::cache_key(&job.request.source, &job.request.options)
                ),
                cache: exec.tier.into(),
                engine: exec.engine.clone(),
                engine_reason: exec.engine_reason.clone(),
                queue_wait_micros: duration_micros(started.duration_since(admitted)),
                compile_micros: exec.compile_micros,
                build_micros: exec.build_micros,
                total_micros: nanos.div_ceil(1_000),
                outcome: exec.outcome.into(),
            });
        }
        job.slot.fill(Response {
            id,
            verb,
            ok: exec.ok,
            cache_hit: exec.cache_hit,
            line: exec.line,
        });
    }
}

/// Runs one request to a rendered response line plus its audit fields.
fn execute(inner: &Inner, job: &Job) -> Exec {
    let req = &job.request;
    let id = req.id;
    let verb = req.verb;

    // Stage boundary 1: admission → compile.
    if let Some((line, kind)) = interruption(inner, job) {
        return Exec::failed(line, kind);
    }

    if verb == Verb::Cancel {
        // The serve front-end resolves cancel against its ticket table;
        // a cancel that reaches a worker targets an unknown request.
        let line = error_envelope(
            req.v,
            id,
            Some(verb),
            "bad_request",
            "cancel target is not in flight",
            None,
            None,
        );
        return Exec::failed(line, "bad_request");
    }
    if matches!(
        verb,
        Verb::Metrics | Verb::MetricsPrometheus | Verb::Journal
    ) {
        // These read service state the worker pool cannot see; the
        // serve front-end answers them without queueing.
        let line = error_envelope(
            req.v,
            id,
            Some(verb),
            "bad_request",
            &format!(
                "verb {:?} is served by the serve front-end, not the worker pool",
                verb.as_str()
            ),
            None,
            None,
        );
        return Exec::failed(line, "bad_request");
    }

    let key = protocol::cache_key(&req.source, &req.options);
    let compile_start = Instant::now();
    let lookup = inner.cache.get(key);
    // Tier (and the seen-key set behind warm/miss) is tracked only when
    // the journal is on — disabled journalling costs nothing here.
    let tier = inner
        .journal
        .as_ref()
        .map_or("none", |j| j.tier(key, lookup.is_some()));
    let (lp, cache_hit) = match lookup {
        Some(lp) => (lp, true),
        None => match CompiledLoop::from_source_with(&req.source, req.options.clone()) {
            Ok(lp) => {
                let lp = Arc::new(lp);
                inner.cache.insert(key, lp.clone());
                if let Some(store) = &inner.store {
                    // Best-effort persistence: a spill failure only
                    // bumps the store's error counter; the in-memory
                    // response already succeeded.
                    let _ = store.spill(key, &lp, &req.options);
                }
                (lp, false)
            }
            Err(e) => {
                let line =
                    error_envelope(req.v, id, Some(verb), "compile", &e.to_string(), None, None);
                let mut exec = Exec::failed(line, "compile");
                exec.tier = tier;
                exec.compile_micros = duration_micros(compile_start.elapsed());
                return exec;
            }
        },
    };
    let (engine, engine_reason) = match &inner.journal {
        Some(_) => {
            let audit = lp.engine_audit();
            (
                Some(audit.resolved.as_str().to_string()),
                Some(audit.reason),
            )
        }
        None => (None, None),
    };
    let mut exec = Exec {
        ok: false,
        cache_hit,
        line: String::new(),
        outcome: "ok",
        tier,
        engine,
        engine_reason,
        compile_micros: duration_micros(compile_start.elapsed()),
        build_micros: 0,
    };

    // Stage boundary 2: compile → artifact build.
    if let Some((line, kind)) = interruption(inner, job) {
        exec.line = line;
        exec.outcome = kind;
        return exec;
    }

    let file = None;
    let build_start = Instant::now();
    let payload = match verb {
        Verb::Analyze => protocol::analyze_payload(&lp, file).map(|p| to_json(&p)),
        Verb::Schedule => protocol::schedule_payload(&lp, req.depth, file).map(|p| to_json(&p)),
        Verb::Rate => protocol::rate_payload(&lp, req.depth, file).map(|p| to_json(&p)),
        Verb::Scp => {
            let depth = req.depth.expect("protocol validated scp depth");
            protocol::schedule_payload(&lp, Some(depth), file).map(|p| to_json(&p))
        }
        Verb::Trace => protocol::trace_payload(&lp, req.depth, file).map(|p| to_json(&p)),
        Verb::Storage => protocol::storage_payload(&lp, file).map(|p| to_json(&p)),
        Verb::Explain => protocol::explain_payload(&lp, file).map(|p| to_json(&p)),
        Verb::Metrics | Verb::MetricsPrometheus | Verb::Journal | Verb::Cancel => {
            unreachable!("front-end verbs return early above")
        }
    };
    exec.build_micros = duration_micros(build_start.elapsed());

    // Stage boundary 3: artifact build → response. A request that blew
    // its deadline inside a stage still reports it, matching the step
    // budget's "checked between instants" semantics.
    if let Some((line, kind)) = interruption(inner, job) {
        exec.line = line;
        exec.outcome = kind;
        return exec;
    }

    match payload {
        Ok(json) => {
            exec.ok = true;
            exec.line = ok_envelope(req.v, id, verb, &json);
        }
        Err(e) => {
            exec.line =
                error_envelope(req.v, id, Some(verb), "compile", &e.to_string(), None, None);
            exec.outcome = "compile";
        }
    }
    exec
}

/// Checks the job's cancel flag and wall-clock deadline; returns the
/// error response line and the journal outcome when either fired.
fn interruption(inner: &Inner, job: &Job) -> Option<(String, &'static str)> {
    let v = job.request.v;
    let id = job.request.id;
    let verb = job.request.verb;
    if job.cancel.load(Ordering::Relaxed) {
        inner.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        return Some((
            error_envelope(
                v,
                id,
                Some(verb),
                "cancelled",
                "request cancelled",
                None,
                None,
            ),
            "cancelled",
        ));
    }
    if let Some(deadline) = job.deadline {
        if Instant::now() > deadline {
            inner
                .counters
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            return Some((
                error_envelope(
                    v,
                    id,
                    Some(verb),
                    "deadline",
                    "wall-clock deadline expired",
                    None,
                    None,
                ),
                "deadline",
            ));
        }
    }
    None
}

fn to_json<T: serde::Serialize>(payload: &T) -> String {
    serde_json::to_string(payload).expect("shim serializer is infallible")
}

/// Records a front-end verb (never queued) in the per-verb counters.
fn front_end_counts(service: &Service, verb: Verb, ok: bool) {
    let p = service.inner.counters.verb(verb);
    p.accepted.fetch_add(1, Ordering::Relaxed);
    if ok {
        p.completed.fetch_add(1, Ordering::Relaxed);
    } else {
        p.failed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Handles the `metrics` verb against a running service: never queued
/// (it must succeed under overload) and never cached. `v` picks the
/// response envelope version.
pub fn metrics_response_v(service: &Service, id: u64, v: u8) -> Response {
    front_end_counts(service, Verb::Metrics, true);
    let payload = to_json(&service.counters());
    Response {
        id,
        verb: Verb::Metrics,
        ok: true,
        cache_hit: false,
        line: ok_envelope(v, id, Verb::Metrics, &payload),
    }
}

/// [`metrics_response_v`] in the v1 envelope.
pub fn metrics_response(service: &Service, id: u64) -> Response {
    metrics_response_v(service, id, 1)
}

/// Handles the `metrics_prometheus` verb: the same counters snapshot as
/// [`metrics_response`], rendered as a Prometheus text exposition and
/// wrapped in the usual NDJSON envelope.
pub fn metrics_prometheus_response_v(service: &Service, id: u64, v: u8) -> Response {
    #[derive(Serialize)]
    struct PrometheusJson {
        content_type: &'static str,
        exposition: String,
    }
    front_end_counts(service, Verb::MetricsPrometheus, true);
    let payload = to_json(&PrometheusJson {
        content_type: tpn::metrics::PROMETHEUS_CONTENT_TYPE,
        exposition: tpn::metrics::prometheus_service(&service.counters()),
    });
    Response {
        id,
        verb: Verb::MetricsPrometheus,
        ok: true,
        cache_hit: false,
        line: ok_envelope(v, id, Verb::MetricsPrometheus, &payload),
    }
}

/// [`metrics_prometheus_response_v`] in the v1 envelope.
pub fn metrics_prometheus_response(service: &Service, id: u64) -> Response {
    metrics_prometheus_response_v(service, id, 1)
}

/// Handles the `journal` verb: the last-N journal events, oldest first.
/// Answers `bad_request` when journalling is disabled.
pub fn journal_response_v(service: &Service, id: u64, v: u8) -> Response {
    #[derive(Serialize)]
    struct JournalJson {
        capacity: usize,
        events: Vec<JournalEvent>,
    }
    match service.journal_events() {
        Some(events) => {
            front_end_counts(service, Verb::Journal, true);
            let payload = to_json(&JournalJson {
                capacity: service.journal_capacity(),
                events,
            });
            Response {
                id,
                verb: Verb::Journal,
                ok: true,
                cache_hit: false,
                line: ok_envelope(v, id, Verb::Journal, &payload),
            }
        }
        None => {
            front_end_counts(service, Verb::Journal, false);
            Response {
                id,
                verb: Verb::Journal,
                ok: false,
                cache_hit: false,
                line: error_envelope(
                    v,
                    id,
                    Some(Verb::Journal),
                    "bad_request",
                    "journalling is disabled (start the service with journal_capacity > 0)",
                    None,
                    None,
                ),
            }
        }
    }
}

/// [`journal_response_v`] in the v1 envelope.
pub fn journal_response(service: &Service, id: u64) -> Response {
    journal_response_v(service, id, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOURCE: &str = "do i from 2 to n { X[i] := X[i-1] + 1; }";

    fn request(id: u64, verb: Verb) -> Request {
        Request::basic(id, verb, SOURCE)
    }

    fn workers(n: usize) -> ServiceConfig {
        ServiceConfig::builder().workers(n).build().unwrap()
    }

    #[test]
    fn analyze_twice_hits_cache_with_identical_bytes() {
        let service = Service::start(workers(2));
        let first = service.call(request(1, Verb::Analyze)).unwrap();
        let second = service.call(request(2, Verb::Analyze)).unwrap();
        assert!(first.ok && second.ok);
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        // Ids differ only in the envelope; payloads are byte-identical.
        let payload = |line: &str| line.split_once("\"payload\":").unwrap().1.to_string();
        assert_eq!(payload(&first.line), payload(&second.line));
        let counters = service.counters();
        assert_eq!(counters.completed, 2);
        assert_eq!(counters.cache.hits, 1);
        assert_eq!(counters.cache.misses, 1);
    }

    #[test]
    fn metrics_never_touches_the_cache() {
        let service = Service::start(ServiceConfig::default());
        let m = metrics_response(&service, 5);
        assert!(m.ok);
        assert!(m.line.contains("\"workers\""));
        assert_eq!(service.cache_len(), 0);
    }

    #[test]
    fn zero_deadline_expires_before_compiling() {
        let service = Service::start(workers(1));
        let mut req = request(1, Verb::Schedule);
        req.deadline_ms = Some(0);
        let response = service.call(req).unwrap();
        assert!(!response.ok);
        assert!(response.line.contains("\"kind\":\"deadline\""));
        assert_eq!(service.counters().deadline_expired, 1);
    }

    #[test]
    fn explain_verb_round_trips_and_self_validates() {
        let service = Service::start(workers(1));
        let first = service.call(request(1, Verb::Explain)).unwrap();
        assert!(first.ok, "{}", first.line);
        assert!(first.line.contains("\"validated\":true"));
        assert!(first.line.contains("\"engine_resolved\":\"analytic\""));
        let second = service.call(request(2, Verb::Explain)).unwrap();
        assert!(second.cache_hit);
    }

    #[test]
    fn per_verb_counters_split_outcomes_in_wire_order() {
        let service = Service::start(workers(1));
        assert!(service.call(request(1, Verb::Analyze)).unwrap().ok);
        assert!(service.call(request(2, Verb::Analyze)).unwrap().ok);
        let mut bad = request(3, Verb::Analyze);
        bad.source = "not a loop".into();
        assert!(!service.call(bad).unwrap().ok);
        let m = metrics_response(&service, 4);
        // Snapshot of the per-verb rows: nonzero rows only, wire order,
        // including the front-end metrics request itself.
        assert!(
            m.line.contains(
                "\"per_verb\":[\
                 {\"verb\":\"analyze\",\"accepted\":3,\"completed\":2,\"failed\":1},\
                 {\"verb\":\"metrics\",\"accepted\":1,\"completed\":1,\"failed\":0}]"
            ),
            "{}",
            m.line
        );
        let counters = service.counters();
        assert!(counters.latency_sum_micros >= counters.p50_micros);
    }

    #[test]
    fn journal_records_tiers_engine_and_caps_the_ring() {
        struct SharedSink(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let service = Service::start(
            ServiceConfig::builder()
                .workers(1)
                .journal(2)
                .build()
                .unwrap(),
        );
        let sink = Arc::new(Mutex::new(Vec::new()));
        assert!(service.set_journal_sink(Box::new(SharedSink(sink.clone()))));

        assert!(service.call(request(1, Verb::Analyze)).unwrap().ok);
        assert!(service.call(request(2, Verb::Analyze)).unwrap().ok);
        assert!(service.call(request(3, Verb::Rate)).unwrap().ok);

        // Ring capacity 2: the first event fell off, seq keeps counting.
        let events = service.journal_events().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!((events[0].seq, events[1].seq), (2, 3));
        assert_eq!(events[0].cache, "hot");
        assert_eq!(events[1].verb, "rate");
        // Same source and options -> same key -> hot again.
        assert_eq!(events[1].cache, "hot");
        assert_eq!(events[1].outcome, "ok");
        assert_eq!(events[1].engine.as_deref(), Some("analytic"));
        assert!(events[1]
            .engine_reason
            .as_deref()
            .unwrap()
            .starts_with("auto:"));
        assert_eq!(events[0].source_digest.len(), 16);

        // The sink saw all three as parseable NDJSON lines; the first
        // request was the first-ever key, so a miss.
        let text = String::from_utf8(sink.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(protocol::parse_json(line).is_ok());
        }
        assert!(lines[0].contains("\"cache\":\"miss\""));

        // The journal verb returns the same ring through the envelope.
        let r = journal_response(&service, 9);
        assert!(r.ok);
        assert!(r.line.contains("\"capacity\":2"));
        assert!(r.line.contains("\"seq\":3"));
    }

    #[test]
    fn journal_is_disabled_by_default() {
        let service = Service::start(ServiceConfig::default());
        assert!(service.journal_events().is_none());
        assert_eq!(service.journal_capacity(), 0);
        assert!(!service.set_journal_sink(Box::new(std::io::sink())));
        let r = journal_response(&service, 9);
        assert!(!r.ok);
        assert!(r.line.contains("\"kind\":\"bad_request\""));
    }

    #[test]
    fn prometheus_verb_wraps_the_exposition_in_the_envelope() {
        let service = Service::start(ServiceConfig::default());
        assert!(service.call(request(1, Verb::Analyze)).unwrap().ok);
        let r = metrics_prometheus_response(&service, 2);
        assert!(r.ok);
        assert!(r.line.contains("tpn_service_accepted_total 1"));
        assert!(r.line.contains("text/plain; version=0.0.4"));
        assert!(protocol::parse_json(&r.line).is_ok());
    }

    #[test]
    fn front_end_verbs_reaching_a_worker_are_bad_requests() {
        let service = Service::start(ServiceConfig::default());
        for verb in [Verb::Metrics, Verb::MetricsPrometheus, Verb::Journal] {
            let mut req = request(10 + verb.index() as u64, verb);
            req.source = String::new();
            let r = service.call(req).unwrap();
            assert!(!r.ok);
            assert!(r.line.contains("\"kind\":\"bad_request\""), "{}", r.line);
        }
        // The pool survives and still answers real work.
        assert!(service.call(request(99, Verb::Analyze)).unwrap().ok);
        assert_eq!(service.counters().panicked, 0);
    }

    #[test]
    fn panicking_request_gets_panic_response_and_pool_survives() {
        let service = Service::start(workers(1));
        let mut bad = request(1, Verb::Scp);
        bad.depth = Some(0); // CompiledLoop::scp panics at depth 0.
        let response = service.call(bad).unwrap();
        assert!(!response.ok);
        assert!(response.line.contains("\"kind\":\"panic\""));
        // The single worker is still alive and serves the next request.
        let ok = service.call(request(2, Verb::Analyze)).unwrap();
        assert!(ok.ok);
        assert_eq!(service.counters().panicked, 1);
    }
}
