//! Integration tests of the compile service: concurrent cache
//! behaviour, typed backpressure, panic isolation, deadlines,
//! cancellation, and a cached/uncached byte-identity property across
//! every protocol verb.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use tpn_service::protocol::{self, Request, Verb};
use tpn_service::{Rejected, Service, ServiceConfig};

fn source(nodes: usize, seed: u64) -> String {
    let body: String = (0..nodes.max(1))
        .map(|j| format!("X{j}[i] := X{j}[i-1] + {}; ", seed + 1))
        .collect();
    format!("do i from 2 to n {{ {body}}}")
}

fn request(id: u64, verb: Verb, source: String, depth: Option<u64>) -> Request {
    let mut request = Request::basic(id, verb, source);
    request.depth = depth;
    request
}

/// N client threads hammering M distinct + repeated keys through the
/// pool: no deadlock, deterministic responses, every response matches
/// the one-shot answer for its key.
#[test]
fn threaded_stress_is_deterministic() {
    let service = Arc::new(Service::start(
        ServiceConfig::builder()
            .workers(4)
            .queue(256)
            .build()
            .unwrap(),
    ));
    let distinct = 8;
    // One reference response per key, computed single-threaded first.
    let references: Vec<String> = (0..distinct)
        .map(|k| {
            let response = service
                .call(request(
                    k,
                    Verb::Analyze,
                    source(1 + k as usize % 3, k),
                    None,
                ))
                .expect("reference not overloaded");
            assert!(response.ok);
            response.line
        })
        .collect();

    let errors = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let service = service.clone();
            let references = references.clone();
            let errors = errors.clone();
            std::thread::spawn(move || {
                for i in 0..32u64 {
                    let k = (t * 7 + i) % distinct;
                    let response = service
                        .call(request(
                            k,
                            Verb::Analyze,
                            source(1 + k as usize % 3, k),
                            None,
                        ))
                        .expect("blocking callers never overflow the queue");
                    if !response.ok || response.line != references[k as usize] {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }
    assert_eq!(errors.load(Ordering::Relaxed), 0);
    let counters = service.counters();
    assert_eq!(counters.completed, 8 + 8 * 32);
    // Every request past the 8 reference compiles was a hit.
    assert_eq!(counters.cache.misses, 8);
    assert_eq!(counters.cache.hits, 8 * 32);
}

/// Eviction honours the configured capacity under concurrent inserts.
#[test]
fn eviction_honours_capacity_under_threads() {
    // 1 shard × weight 4, unit-weight loops: at most 4 live entries.
    let service = Arc::new(Service::start(
        ServiceConfig::builder()
            .workers(4)
            .cache_shards(1)
            .cache(4)
            .build()
            .unwrap(),
    ));
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let service = service.clone();
            std::thread::spawn(move || {
                for i in 0..16u64 {
                    let k = t * 16 + i;
                    let response = service
                        .call(request(k, Verb::Analyze, source(1, 1000 + k), None))
                        .expect("not overloaded");
                    assert!(response.ok, "{}", response.line);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }
    assert!(
        service.cache_len() <= 4,
        "cache holds {} entries over capacity 4",
        service.cache_len()
    );
    let counters = service.counters();
    assert_eq!(counters.cache.entries, service.cache_len() as u64);
    assert!(counters.cache.evictions >= 60, "64 keys into 4 slots");
}

/// A full queue rejects with the typed signal, and rejected requests
/// leave the service consistent.
#[test]
fn overload_is_a_typed_rejection() {
    let service = Service::start(
        ServiceConfig::builder()
            .workers(1)
            .queue(2)
            .build()
            .unwrap(),
    );
    let mut tickets = Vec::new();
    let mut rejections = 0;
    for id in 0..32 {
        match service.submit(request(id, Verb::Schedule, source(3, id), Some(2))) {
            Ok(ticket) => tickets.push(ticket),
            Err(Rejected::Overloaded(overloaded)) => {
                assert_eq!(overloaded.capacity, 2);
                assert!(overloaded.depth <= 2);
                rejections += 1;
            }
            Err(other) => panic!("unconfigured limiter rejected: {other}"),
        }
    }
    assert!(rejections > 0, "a 32-burst must overflow capacity 2");
    for ticket in tickets {
        assert!(ticket.wait().ok);
    }
    let counters = service.counters();
    assert_eq!(counters.rejected_overloaded, rejections);
    assert_eq!(counters.accepted + rejections, 32);
}

/// A panicking request (SCP depth 0 trips the documented panic) is
/// confined: typed `panic` response, pool survives, and the poisoned
/// cache entry is dropped so the key still works afterwards.
#[test]
fn worker_pool_survives_a_mid_compile_panic() {
    let service = Service::start(ServiceConfig::builder().workers(2).build().unwrap());
    let src = source(2, 7);
    let mut bad = request(1, Verb::Scp, src.clone(), Some(2));
    bad.depth = Some(0);
    let response = service.call(bad).expect("not overloaded");
    assert!(!response.ok);
    assert!(
        response.line.contains("\"kind\":\"panic\""),
        "{}",
        response.line
    );

    // Same key, valid depth: the pool is alive and the entry recompiles.
    for id in 2..6 {
        let ok = service
            .call(request(id, Verb::Scp, src.clone(), Some(2)))
            .expect("not overloaded");
        assert!(ok.ok, "{}", ok.line);
    }
    let counters = service.counters();
    assert_eq!(counters.panicked, 1);
    assert_eq!(counters.completed, 4);
}

/// An expired wall-clock deadline yields a `deadline` response between
/// stages, not a hang.
#[test]
fn deadlines_expire_between_stages() {
    let service = Service::start(ServiceConfig::builder().workers(1).build().unwrap());
    let mut req = request(1, Verb::Trace, source(3, 3), None);
    req.deadline_ms = Some(0);
    let response = service.call(req).expect("not overloaded");
    assert!(!response.ok);
    assert!(
        response.line.contains("\"kind\":\"deadline\""),
        "{}",
        response.line
    );
    assert_eq!(service.counters().deadline_expired, 1);
}

/// Cancellation before execution yields a `cancelled` response.
#[test]
fn cancellation_is_cooperative() {
    // Plug the single worker with a slow request so the victim is still
    // queued when the cancel lands.
    let service = Service::start(
        ServiceConfig::builder()
            .workers(1)
            .queue(8)
            .build()
            .unwrap(),
    );
    let plugs: Vec<_> = (0..3)
        .map(|i| {
            service
                .submit(request(i, Verb::Trace, source(3, 11 + i), None))
                .expect("not overloaded")
        })
        .collect();
    let victim = service
        .submit(request(9, Verb::Analyze, source(1, 12), None))
        .expect("not overloaded");
    victim.cancel();
    let response = victim.wait();
    assert!(!response.ok);
    assert!(
        response.line.contains("\"kind\":\"cancelled\""),
        "{}",
        response.line
    );
    for plug in plugs {
        assert!(plug.wait().ok);
    }
    assert_eq!(service.counters().cancelled, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every verb and a range of generated loops, the cached
    /// response is byte-identical to the uncached one — same envelope,
    /// same payload, no cache-dependent field anywhere.
    #[test]
    fn cached_and_uncached_responses_are_byte_identical(
        nodes in 1usize..4,
        seed in 0u64..1000,
        verb_idx in 0usize..9,
    ) {
        let verbs = [
            (Verb::Analyze, None),
            (Verb::Schedule, None),
            (Verb::Schedule, Some(2)),
            (Verb::Rate, None),
            (Verb::Rate, Some(3)),
            (Verb::Scp, Some(2)),
            (Verb::Trace, None),
            (Verb::Trace, Some(2)),
            (Verb::Storage, None),
        ];
        let (verb, depth) = verbs[verb_idx];
        let service = Service::start(ServiceConfig::builder().workers(2).build().unwrap());
        let req = request(42, verb, source(nodes, seed), depth);
        let uncached = service.call(req.clone()).expect("not overloaded");
        let cached = service.call(req).expect("not overloaded");
        prop_assert!(uncached.ok, "{}", uncached.line);
        prop_assert!(!uncached.cache_hit);
        prop_assert!(cached.cache_hit);
        prop_assert_eq!(&uncached.line, &cached.line);
        // And the line is valid single-line JSON.
        prop_assert!(!uncached.line.contains('\n'));
        prop_assert!(protocol::parse_json(&uncached.line).is_ok());
    }
}
