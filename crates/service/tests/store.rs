//! Crash-consistency tests for the persistent artifact store: torn
//! entries, lost indexes, concurrent writers, and the service-level
//! restart warm-hit guarantee.

use std::path::PathBuf;
use std::sync::Arc;

use tpn::{CompileOptions, CompiledLoop};
use tpn_service::protocol::{self, Request, Verb};
use tpn_service::store::ArtifactStore;
use tpn_service::{Service, ServiceConfig};

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tpn-store-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn source(seed: u64) -> String {
    format!("do i from 2 to n {{ X[i] := X[i-1] + {seed}; }}")
}

fn compiled(seed: u64) -> (u64, CompiledLoop) {
    let source = source(seed);
    let options = CompileOptions::new();
    let key = protocol::cache_key(&source, &options);
    let lp = CompiledLoop::from_source_with(&source, options).expect("test loop compiles");
    (key, lp)
}

fn object_path(dir: &std::path::Path, key: u64) -> PathBuf {
    dir.join("objects").join(format!("{key:016x}.tpnart"))
}

#[test]
fn entries_survive_reopen_and_round_trip() {
    let dir = temp_store("reopen");
    let mut keys = Vec::new();
    {
        let store = ArtifactStore::open(&dir).unwrap();
        for seed in 0..3 {
            let (key, lp) = compiled(seed);
            store.spill(key, &lp, &CompileOptions::new()).unwrap();
            keys.push(key);
        }
        assert_eq!(store.len(), 3);
        assert_eq!(store.counters().spilled, 3);
    }
    let store = ArtifactStore::open(&dir).unwrap();
    let loaded = store.load();
    assert_eq!(loaded.len(), 3);
    let mut loaded_keys: Vec<u64> = loaded.iter().map(|(k, _)| *k).collect();
    loaded_keys.sort_unstable();
    keys.sort_unstable();
    assert_eq!(loaded_keys, keys);
    // The reloaded loop is semantically the same artifact.
    let (key0, original) = compiled(0);
    let revived = loaded
        .iter()
        .find(|(k, _)| *k == key0)
        .map(|(_, lp)| lp.clone())
        .expect("key 0 reloaded");
    assert_eq!(
        revived.analyze().unwrap().optimal_rate,
        original.analyze().unwrap().optimal_rate
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spill_is_idempotent_per_key() {
    let dir = temp_store("idempotent");
    let store = ArtifactStore::open(&dir).unwrap();
    let (key, lp) = compiled(7);
    store.spill(key, &lp, &CompileOptions::new()).unwrap();
    store.spill(key, &lp, &CompileOptions::new()).unwrap();
    assert_eq!(store.len(), 1);
    assert_eq!(store.counters().spilled, 1, "second spill is a no-op");
    let index = std::fs::read_to_string(dir.join("INDEX")).unwrap();
    assert_eq!(index.lines().count(), 1, "one index line per key");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_entry_is_quarantined_not_served() {
    let dir = temp_store("truncated");
    let (key, lp) = compiled(1);
    {
        let store = ArtifactStore::open(&dir).unwrap();
        store.spill(key, &lp, &CompileOptions::new()).unwrap();
    }
    // Tear the payload the way a torn write would (the header survives,
    // the A-code body loses its tail).
    let path = object_path(&dir, key);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();

    let store = ArtifactStore::open(&dir).unwrap();
    let loaded = store.load();
    assert!(loaded.is_empty(), "torn entry must not be served");
    assert_eq!(store.counters().quarantined, 1);
    assert_eq!(store.len(), 0);
    assert!(!path.exists(), "torn entry removed from objects/");
    assert!(
        dir.join("quarantine")
            .join(format!("{key:016x}.tpnart"))
            .exists(),
        "torn entry parked in quarantine/"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_payload_fails_the_checksum_and_is_quarantined() {
    let dir = temp_store("corrupt");
    let (key, lp) = compiled(2);
    {
        let store = ArtifactStore::open(&dir).unwrap();
        store.spill(key, &lp, &CompileOptions::new()).unwrap();
    }
    // Same length, different bytes: only the checksum can catch it.
    let path = object_path(&dir, key);
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 2;
    bytes[last] = bytes[last].wrapping_add(1);
    std::fs::write(&path, &bytes).unwrap();

    let store = ArtifactStore::open(&dir).unwrap();
    assert!(store.load().is_empty());
    assert_eq!(store.counters().quarantined, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deleted_index_self_heals_from_the_objects() {
    let dir = temp_store("heal");
    let mut keys = Vec::new();
    {
        let store = ArtifactStore::open(&dir).unwrap();
        for seed in 0..2 {
            let (key, lp) = compiled(seed);
            store.spill(key, &lp, &CompileOptions::new()).unwrap();
            keys.push(key);
        }
    }
    std::fs::remove_file(dir.join("INDEX")).unwrap();

    let store = ArtifactStore::open(&dir).unwrap();
    let loaded = store.load();
    assert_eq!(loaded.len(), 2, "objects adopted despite the lost index");
    let index = std::fs::read_to_string(dir.join("INDEX")).unwrap();
    for key in keys {
        assert!(
            index.contains(&format!("{key:016x}")),
            "self-healed index misses {key:016x}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_index_line_is_ignored() {
    let dir = temp_store("torn-index");
    let (key, lp) = compiled(3);
    {
        let store = ArtifactStore::open(&dir).unwrap();
        store.spill(key, &lp, &CompileOptions::new()).unwrap();
    }
    // A kill -9 mid-append leaves a short final line.
    use std::io::Write as _;
    let mut index = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join("INDEX"))
        .unwrap();
    write!(index, "0123abc").unwrap();
    drop(index);

    let store = ArtifactStore::open(&dir).unwrap();
    assert_eq!(store.load().len(), 1);
    assert_eq!(store.counters().quarantined, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_writers_commit_every_entry_and_leave_no_temp_files() {
    let dir = temp_store("concurrent");
    let store = Arc::new(ArtifactStore::open(&dir).unwrap());
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            let store = store.clone();
            std::thread::spawn(move || {
                // Each thread spills 8 keys; seeds overlap across
                // threads so the same key races its own duplicate.
                for i in 0..8 {
                    let (key, lp) = compiled(t * 4 + i);
                    store.spill(key, &lp, &CompileOptions::new()).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let distinct: std::collections::HashSet<u64> = (0..4u64)
        .flat_map(|t| (0..8).map(move |i| compiled(t * 4 + i).0))
        .collect();
    assert_eq!(store.len(), distinct.len());
    assert_eq!(store.counters().spill_errors, 0);
    for entry in std::fs::read_dir(dir.join("objects")).unwrap().flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        assert!(
            name.ends_with(".tpnart"),
            "leftover in-progress file: {name}"
        );
    }
    drop(store);
    let reopened = ArtifactStore::open(&dir).unwrap();
    assert_eq!(reopened.load().len(), distinct.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn service_restart_serves_warm_hits_byte_identical() {
    let dir = temp_store("service-restart");
    let config = || {
        ServiceConfig::builder()
            .workers(2)
            .store(&dir)
            .build()
            .unwrap()
    };
    let request = || Request::basic(400, Verb::Schedule, source(11));
    let before = {
        let service = Service::try_start(config()).unwrap();
        let response = service.call(request()).unwrap();
        assert!(response.ok);
        response.line
    };
    // The drop above is the in-process kill -9 stand-in: nothing but
    // the store directory survives.
    let service = Service::try_start(config()).unwrap();
    let counters = service.counters();
    let store = counters.store.expect("store counters present");
    assert_eq!(store.loaded, 1, "boot warm-started from the store");
    let after = service.call(request()).unwrap();
    assert!(after.cache_hit, "restart must serve from the warm cache");
    assert_eq!(after.line, before, "post-restart bytes must be identical");
    let _ = std::fs::remove_dir_all(&dir);
}
