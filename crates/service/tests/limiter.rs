//! Deterministic token-bucket tests: every case drives
//! [`ClientLimiter::acquire_at`] with an explicit microsecond clock, so
//! burst, refill, and isolation arithmetic is exact — no sleeps.

use tpn_service::limiter::ClientLimiter;
use tpn_service::RateLimit;

fn limiter(per_second: u64, burst: u64, max_in_flight: usize) -> ClientLimiter {
    ClientLimiter::new(RateLimit {
        per_second,
        burst,
        max_in_flight,
    })
}

#[test]
fn burst_drains_the_bucket_then_rejects_with_exact_retry_advice() {
    let limiter = limiter(10, 3, 16);
    let guards: Vec<_> = (0..3)
        .map(|i| {
            limiter
                .acquire_at("a", 0)
                .unwrap_or_else(|e| panic!("burst request {i} rejected: {e}"))
        })
        .collect();
    let rejected = limiter.acquire_at("a", 0).unwrap_err();
    assert_eq!(rejected.client, "a");
    assert_eq!(rejected.reason, "token bucket empty");
    // An empty bucket at 10 tokens/s owes one whole token in 100 ms.
    assert_eq!(rejected.retry_after_ms, 100);
    drop(guards);
}

#[test]
fn bucket_refills_continuously_at_the_configured_rate() {
    let limiter = limiter(10, 1, 16);
    let _first = limiter.acquire_at("a", 0).unwrap();
    assert!(limiter.acquire_at("a", 0).is_err());
    // 50 ms refills half a token: still rejected, retry halved.
    let midway = limiter.acquire_at("a", 50_000).unwrap_err();
    assert_eq!(midway.retry_after_ms, 50);
    // 100 ms refills the whole token.
    let _second = limiter.acquire_at("a", 100_000).unwrap();
    assert!(limiter.acquire_at("a", 100_000).is_err());
}

#[test]
fn refill_caps_at_burst_capacity() {
    let limiter = limiter(1_000, 2, 16);
    // A long idle period must not bank more than `burst` tokens.
    let _a = limiter.acquire_at("a", 60_000_000).unwrap();
    let _b = limiter.acquire_at("a", 60_000_000).unwrap();
    assert!(limiter.acquire_at("a", 60_000_000).is_err());
}

#[test]
fn a_stale_clock_refills_nothing() {
    let limiter = limiter(1_000, 1, 16);
    let _only = limiter.acquire_at("a", 1_000_000).unwrap();
    // Time going backwards (clock skew across threads) must not mint
    // tokens or panic.
    assert!(limiter.acquire_at("a", 0).is_err());
}

#[test]
fn clients_have_independent_buckets_and_counters() {
    let limiter = limiter(10, 1, 16);
    let _a = limiter.acquire_at("a", 0).unwrap();
    assert!(limiter.acquire_at("a", 0).is_err(), "a's bucket is empty");
    let _b = limiter.acquire_at("b", 0).unwrap();
    assert_eq!(limiter.in_flight("a"), 1);
    assert_eq!(limiter.in_flight("b"), 1);
    assert_eq!(limiter.in_flight("never-seen"), 0);
}

#[test]
fn in_flight_cap_is_enforced_and_guard_drop_frees_the_slot() {
    let limiter = limiter(1_000, 1_000, 2);
    let first = limiter.acquire_at("c", 0).unwrap();
    let _second = limiter.acquire_at("c", 0).unwrap();
    let rejected = limiter.acquire_at("c", 0).unwrap_err();
    assert_eq!(rejected.reason, "in-flight cap reached");
    assert_eq!(rejected.retry_after_ms, 1);
    assert_eq!(limiter.in_flight("c"), 2);
    drop(first);
    assert_eq!(limiter.in_flight("c"), 1);
    let _third = limiter.acquire_at("c", 0).unwrap();
    assert_eq!(limiter.in_flight("c"), 2);
}

#[test]
fn rejections_render_and_compare_as_typed_values() {
    let limiter = limiter(10, 1, 16);
    let _only = limiter.acquire_at("a", 0).unwrap();
    let first = limiter.acquire_at("a", 0).unwrap_err();
    let second = limiter.acquire_at("a", 0).unwrap_err();
    assert_eq!(first, second);
    let message = first.to_string();
    assert!(message.contains("\"a\""), "got: {message}");
    assert!(message.contains("retry after 100 ms"), "got: {message}");
}
