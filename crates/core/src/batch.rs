//! Batched compilation: drive many loops through the pipeline
//! concurrently on a scoped `std::thread` worker pool.
//!
//! The [`parallel_map`] primitive distributes an item slice over a fixed
//! number of workers (work-stealing by atomic index claiming) and returns
//! results **in input order**, so batched runs are deterministic and
//! bit-identical to sequential ones. [`Batch`] layers the façade on top:
//! it compiles each source (or wraps each SDSP) with shared
//! [`CompileOptions`] and *warms* the memoized stages — analysis, frustum
//! detection, schedule derivation — inside the worker, so the expensive
//! work runs concurrently and later calls on the returned
//! [`CompiledLoop`]s are cache hits.
//!
//! ```
//! use tpn::batch::Batch;
//!
//! let sources = [
//!     "do i from 2 to n { X[i] := Z[i] * (Y[i] - X[i-1]); }",
//!     "do i from 1 to n { A[i] := X[i] + 5; B[i] := Y[i] + A[i]; }",
//! ];
//! let loops = Batch::new().compile_sources(&sources);
//! assert_eq!(loops.len(), 2);
//! for lp in &loops {
//!     let lp = lp.as_ref().expect("both loops compile");
//!     assert!(lp.schedule().is_ok()); // already computed by the batch
//! }
//! ```

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use tpn_dataflow::Sdsp;

use crate::metrics::{latency_histogram, BatchCounters};
use crate::{CompileOptions, CompiledLoop, Error};

/// The worker count used when none is configured: the machine's available
/// parallelism, at least 1.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A panic caught inside a batch worker while it processed one item.
///
/// The panic is confined to the item that raised it: the worker keeps
/// draining the queue and every other item's result is unaffected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchPanic {
    /// Input index of the poisoned item.
    pub index: usize,
    /// The panic payload, stringified (`&str` and `String` payloads are
    /// carried verbatim).
    pub message: String,
}

impl fmt::Display for BatchPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch worker panicked on item {}: {}",
            self.index, self.message
        )
    }
}

impl std::error::Error for BatchPanic {}

/// The raw payload of a caught panic.
type Payload = Box<dyn std::any::Any + Send + 'static>;

/// Stringifies a caught panic payload: `&str` and `String` payloads are
/// carried verbatim, anything else becomes a placeholder. Shared with
/// the service layer's worker pool, which isolates per-request panics
/// the same way this pool isolates per-item ones.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn payload_message(payload: &Payload) -> String {
    panic_message(payload.as_ref())
}

/// Work-stealing core shared by every public map flavour: applies `f`
/// under `catch_unwind`, optionally timing each item, and returns
/// per-item results in input order plus (when `collect_stats`) the pool
/// counters.
fn run_items<T, R, F>(
    items: &[T],
    threads: usize,
    f: F,
    collect_stats: bool,
) -> (Vec<Result<R, Payload>>, Option<BatchCounters>)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let started = collect_stats.then(Instant::now);
    let workers = if threads <= 1 || items.len() <= 1 {
        1
    } else {
        threads.min(items.len())
    };
    type WorkerOut<R> = (Vec<(usize, Result<R, Payload>)>, Vec<u64>);
    let run_worker = |next: &AtomicUsize| -> WorkerOut<R> {
        let mut out = Vec::new();
        let mut latencies = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(item) = items.get(i) else { break };
            let item_start = collect_stats.then(Instant::now);
            let result = catch_unwind(AssertUnwindSafe(|| f(i, item)));
            if let Some(t0) = item_start {
                latencies.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }
            out.push((i, result));
        }
        (out, latencies)
    };
    let next = AtomicUsize::new(0);
    let chunks: Vec<WorkerOut<R>> = if workers == 1 {
        vec![run_worker(&next)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| scope.spawn(|| run_worker(&next)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batch worker died outside an item"))
                .collect()
        })
    };
    let stats = started.map(|t0| {
        let drain_nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut all_latencies: Vec<u64> = Vec::with_capacity(items.len());
        for (_, latencies) in &chunks {
            all_latencies.extend_from_slice(latencies);
        }
        BatchCounters {
            threads: workers,
            items: items.len(),
            items_per_worker: chunks.iter().map(|(out, _)| out.len() as u64).collect(),
            drain_nanos,
            latency: latency_histogram(&all_latencies),
        }
    });
    let mut indexed: Vec<(usize, Result<R, Payload>)> =
        chunks.into_iter().flat_map(|(out, _)| out).collect();
    indexed.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), items.len());
    (indexed.into_iter().map(|(_, r)| r).collect(), stats)
}

/// Applies `f` to every item of `items` on `threads` scoped workers and
/// returns the results in input order.
///
/// Items are claimed one at a time from a shared atomic counter, so
/// uneven per-item costs balance across workers. `f` receives the item's
/// index alongside the item. With `threads <= 1` (or a single item) the
/// map runs on the calling thread — the output is identical either way.
///
/// # Panics
///
/// Propagates the panic of the lowest-index panicking item — but only
/// after every other item has been processed (per-item panics are caught,
/// so one poisoned item cannot abandon the rest of the batch). Use
/// [`parallel_map_isolated`] to receive panics as per-item errors instead.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let (results, _) = run_items(items, threads, f, false);
    results
        .into_iter()
        .map(|r| r.unwrap_or_else(|payload| resume_unwind(payload)))
        .collect()
}

/// [`parallel_map`] with per-item panic isolation: a panicking item
/// yields `Err(`[`BatchPanic`]`)` in its slot and every other item
/// completes normally. Results are in input order.
pub fn parallel_map_isolated<T, R, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> Vec<Result<R, BatchPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let (results, _) = run_items(items, threads, f, false);
    to_isolated(results)
}

/// [`parallel_map_isolated`] plus pool statistics: items per worker,
/// queue drain time, and a per-item latency histogram (the
/// [`BatchCounters`] slot of a
/// [`MetricsReport`](crate::metrics::MetricsReport)).
pub fn parallel_map_profiled<T, R, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> (Vec<Result<R, BatchPanic>>, BatchCounters)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let (results, stats) = run_items(items, threads, f, true);
    (to_isolated(results), stats.expect("stats requested"))
}

fn to_isolated<R>(results: Vec<Result<R, Payload>>) -> Vec<Result<R, BatchPanic>> {
    results
        .into_iter()
        .enumerate()
        .map(|(index, r)| {
            r.map_err(|payload| BatchPanic {
                index,
                message: payload_message(&payload),
            })
        })
        .collect()
}

/// A batched compilation driver: shared options, a worker pool, and
/// warmed per-loop stage caches.
#[derive(Clone, Debug, Default)]
pub struct Batch {
    options: CompileOptions,
    threads: Option<usize>,
}

impl Batch {
    /// A batch with default options and [`default_threads`] workers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the [`CompileOptions`] applied to every loop in the batch.
    #[must_use]
    pub fn options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// Fixes the worker count (default: [`default_threads`]).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The effective worker count.
    pub fn effective_threads(&self) -> usize {
        self.threads.unwrap_or_else(default_threads)
    }

    /// Compiles every source concurrently, warming each loop's analysis,
    /// frustum and schedule caches in the worker. Results are in input
    /// order; per-source failures are per-slot `Err`s — including a panic
    /// raised while compiling one source, which surfaces as
    /// [`Error::Panic`] for that slot only.
    pub fn compile_sources<S: AsRef<str> + Sync>(
        &self,
        sources: &[S],
    ) -> Vec<Result<CompiledLoop, Error>> {
        parallel_map_isolated(sources, self.effective_threads(), |_, src| {
            let lp = CompiledLoop::from_source_with(src.as_ref(), self.options.clone())?;
            warm(&lp);
            Ok(lp)
        })
        .into_iter()
        .map(|slot| match slot {
            Ok(result) => result,
            Err(panic) => Err(Error::Panic(panic)),
        })
        .collect()
    }

    /// Wraps every SDSP concurrently (no front-end involved), warming the
    /// stage caches as [`compile_sources`](Self::compile_sources) does.
    pub fn compile_sdsps(&self, sdsps: &[Sdsp]) -> Vec<CompiledLoop> {
        parallel_map(sdsps, self.effective_threads(), |_, sdsp| {
            let lp = CompiledLoop::from_sdsp_with(sdsp.clone(), self.options.clone());
            warm(&lp);
            lp
        })
    }

    /// Runs `f` over already-compiled loops on the batch's worker pool —
    /// the generic escape hatch for custom per-loop stages (SCP runs,
    /// storage rewrites, report rendering, …). Results are in input order.
    pub fn map<R, F>(&self, loops: &[CompiledLoop], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&CompiledLoop) -> R + Sync,
    {
        parallel_map(loops, self.effective_threads(), |_, lp| f(lp))
    }

    /// [`map`](Self::map) with per-loop panic isolation: a panicking stage
    /// poisons only its own slot (see [`parallel_map_isolated`]).
    pub fn map_isolated<R, F>(&self, loops: &[CompiledLoop], f: F) -> Vec<Result<R, BatchPanic>>
    where
        R: Send,
        F: Fn(&CompiledLoop) -> R + Sync,
    {
        parallel_map_isolated(loops, self.effective_threads(), |_, lp| f(lp))
    }
}

/// Forces the memoized stages whose results every downstream consumer
/// needs. Errors are not propagated here — they are memoized too, and
/// surface (cheaply) when the stage accessor is called.
fn warm(lp: &CompiledLoop) {
    let _ = lp.analyze();
    if lp.frustum().is_ok() {
        let _ = lp.schedule();
        let _ = lp.rate_report();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = parallel_map(&items, 8, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_threaded_matches() {
        let items: Vec<u64> = (0..37).collect();
        let seq = parallel_map(&items, 1, |_, &x| x * x);
        let par = parallel_map(&items, 4, |_, &x| x * x);
        assert_eq!(seq, par);
    }

    #[test]
    fn batch_matches_sequential_compilation() {
        let sources = [
            "do i from 2 to n { X[i] := Z[i] * (Y[i] - X[i-1]); }",
            "do i from 1 to n { A[i] := X[i] + 5; B[i] := Y[i] + A[i]; }",
            "not a loop at all",
        ];
        let batched = Batch::new().threads(3).compile_sources(&sources);
        for (src, got) in sources.iter().zip(&batched) {
            match CompiledLoop::from_source(src) {
                Ok(expected) => {
                    let got = got.as_ref().expect(src);
                    assert_eq!(
                        got.schedule().unwrap().kernel(),
                        expected.schedule().unwrap().kernel()
                    );
                    assert_eq!(got.analyze().unwrap(), expected.analyze().unwrap());
                }
                Err(expected) => {
                    assert_eq!(got.as_ref().unwrap_err(), &expected);
                }
            }
        }
    }

    #[test]
    fn batch_applies_shared_options() {
        let sources = ["do i from 2 to n { X[i] := Z[i] * (Y[i] - X[i-1]); }"];
        let loops = Batch::new()
            .options(CompileOptions::new().node_time(2))
            .compile_sources(&sources);
        let lp = loops[0].as_ref().unwrap();
        assert_eq!(lp.analyze().unwrap().optimal_rate.to_string(), "1/4");
    }
}
