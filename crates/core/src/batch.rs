//! Batched compilation: drive many loops through the pipeline
//! concurrently on a scoped `std::thread` worker pool.
//!
//! The [`parallel_map`] primitive distributes an item slice over a fixed
//! number of workers (work-stealing by atomic index claiming) and returns
//! results **in input order**, so batched runs are deterministic and
//! bit-identical to sequential ones. [`Batch`] layers the façade on top:
//! it compiles each source (or wraps each SDSP) with shared
//! [`CompileOptions`] and *warms* the memoized stages — analysis, frustum
//! detection, schedule derivation — inside the worker, so the expensive
//! work runs concurrently and later calls on the returned
//! [`CompiledLoop`]s are cache hits.
//!
//! ```
//! use tpn::batch::Batch;
//!
//! let sources = [
//!     "do i from 2 to n { X[i] := Z[i] * (Y[i] - X[i-1]); }",
//!     "do i from 1 to n { A[i] := X[i] + 5; B[i] := Y[i] + A[i]; }",
//! ];
//! let loops = Batch::new().compile_sources(&sources);
//! assert_eq!(loops.len(), 2);
//! for lp in &loops {
//!     let lp = lp.as_ref().expect("both loops compile");
//!     assert!(lp.schedule().is_ok()); // already computed by the batch
//! }
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

use tpn_dataflow::Sdsp;

use crate::{CompileOptions, CompiledLoop, Error};

/// The worker count used when none is configured: the machine's available
/// parallelism, at least 1.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item of `items` on `threads` scoped workers and
/// returns the results in input order.
///
/// Items are claimed one at a time from a shared atomic counter, so
/// uneven per-item costs balance across workers. `f` receives the item's
/// index alongside the item. With `threads <= 1` (or a single item) the
/// map runs on the calling thread — the output is identical either way.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let workers = threads.min(items.len());
    let mut chunks: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        out.push((i, f(i, item)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });
    let mut indexed: Vec<(usize, R)> = chunks.drain(..).flatten().collect();
    indexed.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// A batched compilation driver: shared options, a worker pool, and
/// warmed per-loop stage caches.
#[derive(Clone, Debug, Default)]
pub struct Batch {
    options: CompileOptions,
    threads: Option<usize>,
}

impl Batch {
    /// A batch with default options and [`default_threads`] workers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the [`CompileOptions`] applied to every loop in the batch.
    #[must_use]
    pub fn options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// Fixes the worker count (default: [`default_threads`]).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The effective worker count.
    pub fn effective_threads(&self) -> usize {
        self.threads.unwrap_or_else(default_threads)
    }

    /// Compiles every source concurrently, warming each loop's analysis,
    /// frustum and schedule caches in the worker. Results are in input
    /// order; per-source failures are per-slot `Err`s.
    pub fn compile_sources<S: AsRef<str> + Sync>(
        &self,
        sources: &[S],
    ) -> Vec<Result<CompiledLoop, Error>> {
        parallel_map(sources, self.effective_threads(), |_, src| {
            let lp = CompiledLoop::from_source_with(src.as_ref(), self.options.clone())?;
            warm(&lp);
            Ok(lp)
        })
    }

    /// Wraps every SDSP concurrently (no front-end involved), warming the
    /// stage caches as [`compile_sources`](Self::compile_sources) does.
    pub fn compile_sdsps(&self, sdsps: &[Sdsp]) -> Vec<CompiledLoop> {
        parallel_map(sdsps, self.effective_threads(), |_, sdsp| {
            let lp = CompiledLoop::from_sdsp_with(sdsp.clone(), self.options.clone());
            warm(&lp);
            lp
        })
    }

    /// Runs `f` over already-compiled loops on the batch's worker pool —
    /// the generic escape hatch for custom per-loop stages (SCP runs,
    /// storage rewrites, report rendering, …). Results are in input order.
    pub fn map<R, F>(&self, loops: &[CompiledLoop], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&CompiledLoop) -> R + Sync,
    {
        parallel_map(loops, self.effective_threads(), |_, lp| f(lp))
    }
}

/// Forces the memoized stages whose results every downstream consumer
/// needs. Errors are not propagated here — they are memoized too, and
/// surface (cheaply) when the stage accessor is called.
fn warm(lp: &CompiledLoop) {
    let _ = lp.analyze();
    if lp.shared_frustum().is_ok() {
        let _ = lp.shared_schedule();
        let _ = lp.rate_report();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = parallel_map(&items, 8, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_threaded_matches() {
        let items: Vec<u64> = (0..37).collect();
        let seq = parallel_map(&items, 1, |_, &x| x * x);
        let par = parallel_map(&items, 4, |_, &x| x * x);
        assert_eq!(seq, par);
    }

    #[test]
    fn batch_matches_sequential_compilation() {
        let sources = [
            "do i from 2 to n { X[i] := Z[i] * (Y[i] - X[i-1]); }",
            "do i from 1 to n { A[i] := X[i] + 5; B[i] := Y[i] + A[i]; }",
            "not a loop at all",
        ];
        let batched = Batch::new().threads(3).compile_sources(&sources);
        for (src, got) in sources.iter().zip(&batched) {
            match CompiledLoop::from_source(src) {
                Ok(expected) => {
                    let got = got.as_ref().expect(src);
                    assert_eq!(
                        got.schedule().unwrap().kernel(),
                        expected.schedule().unwrap().kernel()
                    );
                    assert_eq!(got.analyze().unwrap(), expected.analyze().unwrap());
                }
                Err(expected) => {
                    assert_eq!(got.as_ref().unwrap_err(), &expected);
                }
            }
        }
    }

    #[test]
    fn batch_applies_shared_options() {
        let sources = ["do i from 2 to n { X[i] := Z[i] * (Y[i] - X[i-1]); }"];
        let loops = Batch::new()
            .options(CompileOptions::new().node_time(2))
            .compile_sources(&sources);
        let lp = loops[0].as_ref().unwrap();
        assert_eq!(lp.analyze().unwrap().optimal_rate.to_string(), "1/4");
    }
}
