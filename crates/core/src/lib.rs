//! End-to-end pipeline for timed Petri-net fine-grain loop scheduling.
//!
//! A reproduction of *"A Timed Petri-Net Model for Fine-Grain Loop
//! Scheduling"* (Gao, Wong & Ning, PLDI 1991). This crate is the façade:
//! it wires the front-end ([`tpn_lang`]), the dataflow representation
//! ([`tpn_dataflow`]), the Petri-net substrate ([`tpn_petri`]), the
//! scheduler ([`tpn_sched`]) and the storage optimiser ([`tpn_storage`])
//! into one pipeline:
//!
//! ```text
//! loop source ──parse/lower──▶ SDSP ──to_petri──▶ SDSP-PN
//!      ──earliest firing──▶ cyclic frustum ──▶ time-optimal schedule
//! ```
//!
//! # Quickstart
//!
//! ```
//! use tpn::CompiledLoop;
//!
//! // Livermore loop 5: a first-order recurrence.
//! let lp = CompiledLoop::from_source(
//!     "do i from 2 to n { X[i] := Z[i] * (Y[i] - X[i-1]); }",
//! )?;
//!
//! // The recurrence bounds the loop at one iteration every 2 cycles, and
//! // the earliest-firing schedule attains exactly that.
//! let analysis = lp.analyze()?;
//! assert_eq!(analysis.optimal_rate.to_string(), "1/2");
//!
//! let schedule = lp.schedule()?;
//! assert_eq!(schedule.initiation_interval().to_string(), "2");
//!
//! // On a machine with a single clean 8-stage pipeline:
//! let scp = lp.scp(8)?;
//! assert!(scp.rates.respects_resource_bound());
//! # Ok::<(), tpn::Error>(())
//! ```

use std::fmt;

pub use tpn_codegen as codegen;
pub use tpn_dataflow as dataflow;
pub use tpn_lang as lang;
pub use tpn_petri as petri;
pub use tpn_sched as sched;
pub use tpn_storage as storage;

use tpn_dataflow::to_petri::{to_petri, SdspPn};
use tpn_dataflow::{DataflowError, Sdsp};
use tpn_lang::LangError;
use tpn_petri::ratio::{critical_ratio, CriticalWitness};
use tpn_petri::rational::Ratio;
use tpn_petri::PetriError;
use tpn_sched::frustum::{detect_frustum, detect_frustum_eager, FrustumReport};
use tpn_sched::policy::FifoPolicy;
use tpn_sched::rate::{RateReport, ScpRateReport};
use tpn_sched::schedule::LoopSchedule;
use tpn_sched::scp::{build_scp, ScpPn};
use tpn_sched::SchedError;
use tpn_storage::{minimize_storage, StorageError, StorageReport};

/// Unified error type of the pipeline.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Front-end (parse / semantic) failure.
    Lang(LangError),
    /// SDSP construction or interpretation failure.
    Dataflow(DataflowError),
    /// Petri-net analysis failure.
    Petri(PetriError),
    /// Frustum detection or schedule derivation failure.
    Sched(SchedError),
    /// Storage optimisation failure.
    Storage(StorageError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lang(e) => write!(f, "{e}"),
            Error::Dataflow(e) => write!(f, "{e}"),
            Error::Petri(e) => write!(f, "{e}"),
            Error::Sched(e) => write!(f, "{e}"),
            Error::Storage(e) => write!(f, "{e}"),
        }
    }
}

macro_rules! impl_from_error {
    ($($variant:ident($ty:ty)),* $(,)?) => {
        $(impl From<$ty> for Error {
            fn from(e: $ty) -> Self {
                Error::$variant(e)
            }
        })*
    };
}

impl_from_error!(
    Lang(LangError),
    Dataflow(DataflowError),
    Petri(PetriError),
    Sched(SchedError),
    Storage(StorageError),
);

impl std::error::Error for Error {}

/// Critical-cycle analysis of a compiled loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Analysis {
    /// The critical cycle time `α* = max Ω(C)/M(C)`.
    pub cycle_time: Ratio,
    /// The optimal computation rate `1/α*`.
    pub optimal_rate: Ratio,
    /// Names of the loop nodes on a critical cycle (empty if the bound
    /// comes from a single slow node's non-reentrance).
    pub critical_nodes: Vec<String>,
}

/// A loop compiled through the full pipeline, with cached SDSP and
/// SDSP-PN forms.
#[derive(Clone, Debug)]
pub struct CompiledLoop {
    sdsp: Sdsp,
    pn: SdspPn,
}

/// An SCP (single-clean-pipeline) execution of a compiled loop.
#[derive(Clone, Debug)]
pub struct ScpRun {
    /// The SDSP-SCP-PN model.
    pub model: ScpPn,
    /// The detected cyclic frustum.
    pub frustum: FrustumReport,
    /// The issue schedule derived from it.
    pub schedule: LoopSchedule,
    /// Rates and pipeline utilisation (Table 2's columns).
    pub rates: ScpRateReport,
}

impl CompiledLoop {
    /// Compiles loop source text through the front-end.
    ///
    /// # Errors
    ///
    /// [`Error::Lang`] for parse or semantic failures.
    pub fn from_source(source: &str) -> Result<Self, Error> {
        Ok(Self::from_sdsp(tpn_lang::compile(source)?))
    }

    /// Wraps an already-built SDSP.
    pub fn from_sdsp(sdsp: Sdsp) -> Self {
        let pn = to_petri(&sdsp);
        CompiledLoop { sdsp, pn }
    }

    /// The loop's dataflow graph.
    pub fn sdsp(&self) -> &Sdsp {
        &self.sdsp
    }

    /// The loop's SDSP-PN.
    pub fn petri_net(&self) -> &SdspPn {
        &self.pn
    }

    /// Loop body size `n` (number of instructions).
    pub fn size(&self) -> usize {
        self.sdsp.num_nodes()
    }

    /// A sensible frustum-detection budget: detection is empirically
    /// `O(n)` (§5), so a generous multiple of the `2n` bound plus slack.
    pub fn default_budget(&self) -> u64 {
        (64 * self.size() as u64).max(100_000)
    }

    /// Critical-cycle analysis: cycle time, optimal rate, and the nodes on
    /// a critical cycle.
    ///
    /// # Errors
    ///
    /// [`Error::Petri`] for malformed or dead nets.
    pub fn analyze(&self) -> Result<Analysis, Error> {
        let r = critical_ratio(&self.pn.net, &self.pn.marking)?;
        let critical_nodes = match &r.witness {
            CriticalWitness::Cycle(c) => c
                .transitions()
                .iter()
                .map(|&t| self.pn.net.transition(t).name().to_string())
                .collect(),
            CriticalWitness::SelfLoop(_) => Vec::new(),
        };
        Ok(Analysis {
            cycle_time: r.cycle_time,
            optimal_rate: r.rate,
            critical_nodes,
        })
    }

    /// Detects the cyclic frustum of the SDSP-PN under the earliest firing
    /// rule, with the default budget.
    ///
    /// # Errors
    ///
    /// [`Error::Sched`] if the budget is exhausted (or the net deadlocks).
    pub fn frustum(&self) -> Result<FrustumReport, Error> {
        Ok(detect_frustum_eager(
            &self.pn.net,
            self.pn.marking.clone(),
            self.default_budget(),
        )?)
    }

    /// Derives the time-optimal software-pipelining schedule.
    ///
    /// # Errors
    ///
    /// [`Error::Sched`] on detection or derivation failure.
    pub fn schedule(&self) -> Result<LoopSchedule, Error> {
        let f = self.frustum()?;
        Ok(LoopSchedule::from_frustum(&self.sdsp, &self.pn, &f)?)
    }

    /// Measures the frustum rate against the critical-cycle bound.
    ///
    /// # Errors
    ///
    /// [`Error::Sched`] / [`Error::Petri`] from detection or analysis.
    pub fn rate_report(&self) -> Result<RateReport, Error> {
        let f = self.frustum()?;
        RateReport::for_sdsp_pn(&self.pn, &f).map_err(Error::Petri)
    }

    /// Builds and runs the SDSP-SCP-PN model with an `l`-stage pipeline
    /// under the FIFO issue policy.
    ///
    /// # Errors
    ///
    /// [`Error::Sched`] on detection or derivation failure.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn scp(&self, depth: u64) -> Result<ScpRun, Error> {
        let model = build_scp(&self.pn, depth);
        let budget = self.default_budget().saturating_mul(depth.max(1));
        let frustum = detect_frustum(
            &model.net,
            model.marking.clone(),
            FifoPolicy::new(&model),
            budget,
        )?;
        let schedule = LoopSchedule::from_scp_frustum(&self.sdsp, &model, &frustum)?;
        let rates = ScpRateReport::for_scp(&model, &frustum);
        Ok(ScpRun {
            model,
            frustum,
            schedule,
            rates,
        })
    }

    /// Runs the §6 storage optimiser and returns the optimised loop with
    /// its report.
    ///
    /// # Errors
    ///
    /// [`Error::Storage`] on analysis failure.
    pub fn minimize_storage(&self) -> Result<(CompiledLoop, StorageReport), Error> {
        let (optimised, report) = minimize_storage(&self.sdsp)?;
        Ok((CompiledLoop::from_sdsp(optimised), report))
    }

    /// Emits the time-optimal schedule as a VLIW program over the loop's
    /// storage locations, for `iterations` iterations (see
    /// [`tpn_codegen`]).
    ///
    /// # Errors
    ///
    /// [`Error::Sched`] on detection or derivation failure.
    pub fn emit(&self, iterations: u64) -> Result<tpn_codegen::Program, Error> {
        let schedule = self.schedule()?;
        Ok(tpn_codegen::emit(&self.sdsp, &schedule, iterations))
    }

    /// Balances the loop's buffering (the FIFO-queued extension of §7):
    /// raises acknowledgement capacities until the rate reaches the
    /// data-dependence bound. The inverse trade-off to
    /// [`minimize_storage`](Self::minimize_storage).
    ///
    /// # Errors
    ///
    /// [`Error::Storage`] on analysis failure.
    pub fn balance(&self) -> Result<(CompiledLoop, tpn_storage::BalanceReport), Error> {
        let (balanced, report) = tpn_storage::balance(&self.sdsp)?;
        Ok((CompiledLoop::from_sdsp(balanced), report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L2: &str = "do i from 1 to n {\
        A[i] := X[i] + 5;\
        B[i] := Y[i] + A[i];\
        C[i] := A[i] + E[i-1];\
        D[i] := B[i] + C[i];\
        E[i] := W[i] + D[i];\
    }";

    #[test]
    fn end_to_end_l2() {
        let lp = CompiledLoop::from_source(L2).unwrap();
        assert_eq!(lp.size(), 5);
        let analysis = lp.analyze().unwrap();
        assert_eq!(analysis.optimal_rate, Ratio::new(1, 3));
        assert_eq!(analysis.critical_nodes.len(), 3);
        let schedule = lp.schedule().unwrap();
        assert_eq!(schedule.rate(), Ratio::new(1, 3));
        let report = lp.rate_report().unwrap();
        assert!(report.is_time_optimal());
    }

    #[test]
    fn end_to_end_scp() {
        let lp = CompiledLoop::from_source(L2).unwrap();
        let run = lp.scp(8).unwrap();
        assert!(run.rates.respects_resource_bound());
        assert_eq!(run.model.depth, 8);
        assert!(run.schedule.period() > 0);
    }

    #[test]
    fn end_to_end_storage() {
        let lp = CompiledLoop::from_source(L2).unwrap();
        let (optimised, report) = lp.minimize_storage().unwrap();
        assert!(report.after < report.before);
        // The optimised loop still schedules at the optimal rate.
        let schedule = optimised.schedule().unwrap();
        assert_eq!(schedule.rate(), Ratio::new(1, 3));
    }

    #[test]
    fn error_conversions() {
        let err = CompiledLoop::from_source("garbage").unwrap_err();
        assert!(matches!(err, Error::Lang(_)));
        assert!(!err.to_string().is_empty());
    }
}
