//! End-to-end pipeline for timed Petri-net fine-grain loop scheduling.
//!
//! A reproduction of *"A Timed Petri-Net Model for Fine-Grain Loop
//! Scheduling"* (Gao, Wong & Ning, PLDI 1991). This crate is the façade:
//! it wires the front-end ([`tpn_lang`]), the dataflow representation
//! ([`tpn_dataflow`]), the Petri-net substrate ([`tpn_petri`]), the
//! scheduler ([`tpn_sched`]) and the storage optimiser ([`tpn_storage`])
//! into one pipeline:
//!
//! ```text
//! loop source ──parse/lower──▶ SDSP ──to_petri──▶ SDSP-PN
//!      ──earliest firing──▶ cyclic frustum ──▶ time-optimal schedule
//! ```
//!
//! The façade is a **staged, memoizing pipeline**: a [`CompiledLoop`]
//! parses and lowers its loop exactly once, and every derived product —
//! the critical-cycle [`Analysis`], the cyclic frustum, the schedule, SCP
//! runs per pipeline depth, storage rewrites — is computed on first use
//! and shared (via [`std::sync::Arc`]) by all later calls, so e.g.
//! [`schedule()`](CompiledLoop::schedule) after
//! [`rate_report()`](CompiledLoop::rate_report) does not re-run frustum
//! detection. Compilation is tuned with [`CompileOptions`]; many loops
//! are driven concurrently with [`batch`].
//!
//! # Quickstart
//!
//! ```
//! use tpn::CompiledLoop;
//!
//! // Livermore loop 5: a first-order recurrence.
//! let lp = CompiledLoop::from_source(
//!     "do i from 2 to n { X[i] := Z[i] * (Y[i] - X[i-1]); }",
//! )?;
//!
//! // The recurrence bounds the loop at one iteration every 2 cycles, and
//! // the earliest-firing schedule attains exactly that.
//! let analysis = lp.analyze()?;
//! assert_eq!(analysis.optimal_rate.to_string(), "1/2");
//!
//! let schedule = lp.schedule()?;
//! assert_eq!(schedule.initiation_interval().to_string(), "2");
//!
//! // On a machine with a single clean 8-stage pipeline:
//! let scp = lp.scp(8)?;
//! assert!(scp.rates.respects_resource_bound());
//! # Ok::<(), tpn::Error>(())
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

pub use tpn_codegen as codegen;
pub use tpn_dataflow as dataflow;
pub use tpn_lang as lang;
pub use tpn_petri as petri;
pub use tpn_sched as sched;
pub use tpn_storage as storage;

pub mod batch;
pub mod metrics;

use tpn_dataflow::to_petri::{to_petri, SdspPn};
use tpn_dataflow::{DataflowError, Sdsp};
use tpn_lang::LangError;
use tpn_petri::ratio::{critical_ratio, explain_rate, CriticalWitness};
use tpn_petri::rational::Ratio;
use tpn_petri::timed::EagerPolicy;
use tpn_petri::trace::RingRecorder;
use tpn_petri::PetriError;
use tpn_sched::analytic::AnalyticSchedule;
use tpn_sched::frustum::{
    detect_frustum, detect_frustum_eager, detect_frustum_with_sink, FrustumReport,
};
pub use tpn_sched::policy::SchedulePolicy;
use tpn_sched::policy::{FifoPolicy, PriorityPolicy};
use tpn_sched::rate::{RateReport, ScpRateReport};
use tpn_sched::schedule::LoopSchedule;
use tpn_sched::scp::{build_scp, ScpPn};
use tpn_sched::steady::{steady_state_net, SteadyStateNet};
use tpn_sched::trace::FiringTrace;
use tpn_sched::validate::{replay_trace, TraceValidation};
use tpn_sched::SchedError;
use tpn_storage::{minimize_storage, BalanceReport, StorageError, StorageReport};

/// Unified error type of the pipeline.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Front-end (parse / semantic) failure.
    Lang(LangError),
    /// SDSP construction or interpretation failure.
    Dataflow(DataflowError),
    /// Petri-net analysis failure.
    Petri(PetriError),
    /// Frustum detection or schedule derivation failure.
    Sched(SchedError),
    /// Storage optimisation failure.
    Storage(StorageError),
    /// A batch worker panicked while processing one item; the panic was
    /// confined to that item (see [`batch::BatchPanic`]).
    Panic(batch::BatchPanic),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lang(e) => write!(f, "{e}"),
            Error::Dataflow(e) => write!(f, "{e}"),
            Error::Petri(e) => write!(f, "{e}"),
            Error::Sched(e) => write!(f, "{e}"),
            Error::Storage(e) => write!(f, "{e}"),
            Error::Panic(e) => write!(f, "{e}"),
        }
    }
}

macro_rules! impl_from_error {
    ($($variant:ident($ty:ty)),* $(,)?) => {
        $(impl From<$ty> for Error {
            fn from(e: $ty) -> Self {
                Error::$variant(e)
            }
        })*
    };
}

impl_from_error!(
    Lang(LangError),
    Dataflow(DataflowError),
    Petri(PetriError),
    Sched(SchedError),
    Storage(StorageError),
    Panic(batch::BatchPanic),
);

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Lang(e) => Some(e),
            Error::Dataflow(e) => Some(e),
            Error::Petri(e) => Some(e),
            Error::Sched(e) => Some(e),
            Error::Storage(e) => Some(e),
            Error::Panic(e) => Some(e),
        }
    }
}

/// The issue policy for SCP (resource-constrained) execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum IssuePolicy {
    /// First-come-first-served issue (Assumption 5.2.1's FIFO machine).
    #[default]
    Fifo,
    /// Static-priority issue (lowest node index first).
    Priority,
}

/// Tunable compilation parameters, built fluent-style:
///
/// ```
/// use tpn::{CompileOptions, IssuePolicy};
///
/// let options = CompileOptions::new()
///     .node_time(2)
///     .step_budget(500_000)
///     .issue_policy(IssuePolicy::Priority);
/// # let _ = options;
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompileOptions {
    node_time: Option<u64>,
    step_budget: Option<u64>,
    issue_policy: IssuePolicy,
    profile: bool,
    trace: bool,
    trace_capacity: Option<usize>,
    engine: SchedulePolicy,
}

/// Default ceiling on the live trace recorder's event buffer: enough for
/// every example model's full run while keeping the preallocation tens of
/// kilobytes, not tens of megabytes, on worst-case budgets.
const TRACE_CAPACITY_CAP: usize = 1 << 16;

impl CompileOptions {
    /// Defaults: unit node times, automatic budget, FIFO issue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets every loop node's execution time to `cycles` (the paper's
    /// model permits arbitrary integer times; the front-end assigns 1).
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0` (Assumption A.6.1 requires positive times).
    #[must_use]
    pub fn node_time(mut self, cycles: u64) -> Self {
        assert!(cycles > 0, "node execution times must be positive");
        self.node_time = Some(cycles);
        self
    }

    /// Caps frustum detection at `instants` simulated instants instead of
    /// the size-derived default.
    #[must_use]
    pub fn step_budget(mut self, instants: u64) -> Self {
        self.step_budget = Some(instants);
        self
    }

    /// Selects the SCP issue policy (default FIFO).
    #[must_use]
    pub fn issue_policy(mut self, policy: IssuePolicy) -> Self {
        self.issue_policy = policy;
        self
    }

    /// Enables stage-span profiling (default off). When set, the compiled
    /// loop carries a [`metrics::Profiler`] that records the wall-clock
    /// time of every pipeline stage as it is first computed; collect the
    /// result with [`CompiledLoop::metrics_report`]. When unset no clocks
    /// are read and no profiler is allocated.
    #[must_use]
    pub fn profile(mut self, enabled: bool) -> Self {
        self.profile = enabled;
        self
    }

    /// Enables live firing-event tracing (default off). When set, frustum
    /// detection runs with a preallocated [`RingRecorder`] attached, and
    /// [`CompiledLoop::firing_trace`] / [`CompiledLoop::scp_trace`] return
    /// the recorded stream. When unset the engine's untraced fast path
    /// runs (the trace can still be *derived* on demand from the stored
    /// step records — recording only changes how the trace is obtained,
    /// never its contents).
    #[must_use]
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace = enabled;
        self
    }

    /// Overrides the live recorder's event capacity (default: twice the
    /// worst-case event count, capped at 64 Ki events). If a run outgrows
    /// the ring the oldest events are dropped and the facade falls back to
    /// deriving the complete trace from the step records.
    ///
    /// # Panics
    ///
    /// Panics if `events == 0`.
    #[must_use]
    pub fn trace_capacity(mut self, events: usize) -> Self {
        assert!(events > 0, "trace capacity must be positive");
        self.trace_capacity = Some(events);
        self
    }

    /// Selects the steady-state scheduling engine (default
    /// [`SchedulePolicy::Auto`]: analytic construction from the critical
    /// ratio on pure marked graphs, frustum simulation otherwise). The
    /// choice affects [`CompiledLoop::schedule`] and
    /// [`CompiledLoop::rate_report`]; frustum-specific artifacts
    /// ([`CompiledLoop::frustum`], traces, the steady-state net, SCP runs)
    /// always simulate.
    #[must_use]
    pub fn engine(mut self, engine: SchedulePolicy) -> Self {
        self.engine = engine;
        self
    }

    /// The configured uniform node time, if any.
    ///
    /// Getters mirror the fluent setters with a `get_` prefix (the std
    /// convention when the bare name is taken by a setter); every
    /// configuration field follows this one scheme.
    pub fn get_node_time(&self) -> Option<u64> {
        self.node_time
    }

    /// The configured step budget, if any.
    pub fn get_step_budget(&self) -> Option<u64> {
        self.step_budget
    }

    /// The configured SCP issue policy.
    pub fn get_issue_policy(&self) -> IssuePolicy {
        self.issue_policy
    }

    /// Whether stage-span profiling is enabled.
    pub fn get_profile(&self) -> bool {
        self.profile
    }

    /// Whether live firing-event tracing is enabled.
    pub fn get_trace(&self) -> bool {
        self.trace
    }

    /// The configured recorder capacity, if any.
    pub fn get_trace_capacity(&self) -> Option<usize> {
        self.trace_capacity
    }

    /// The configured scheduling engine.
    pub fn get_engine(&self) -> SchedulePolicy {
        self.engine
    }

    /// A stable 64-bit fingerprint of every configuration field, for use
    /// in content-addressed cache keys: two option sets fingerprint
    /// equally iff they compile loops identically (including whether a
    /// live trace is recorded). FNV-1a over a canonical field encoding,
    /// stable across processes and platforms.
    pub fn fingerprint(&self) -> u64 {
        fn eat(h: u64, byte: u8) -> u64 {
            (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3)
        }
        // Tag each optional field with a presence byte so `None` and
        // `Some(0)` hash apart.
        fn eat_opt(mut h: u64, v: Option<u64>) -> u64 {
            match v {
                None => eat(h, 0),
                Some(v) => {
                    h = eat(h, 1);
                    v.to_le_bytes().into_iter().fold(h, eat)
                }
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325;
        h = eat_opt(h, self.node_time);
        h = eat_opt(h, self.step_budget);
        h = eat(
            h,
            match self.issue_policy {
                IssuePolicy::Fifo => 0,
                IssuePolicy::Priority => 1,
            },
        );
        h = eat(h, u8::from(self.profile));
        h = eat(h, u8::from(self.trace));
        h = eat_opt(h, self.trace_capacity.map(|v| v as u64));
        h = eat(
            h,
            match self.engine {
                SchedulePolicy::Auto => 0,
                SchedulePolicy::Analytic => 1,
                SchedulePolicy::Frustum => 2,
            },
        );
        h
    }
}

/// Critical-cycle analysis of a compiled loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Analysis {
    /// The critical cycle time `α* = max Ω(C)/M(C)`.
    pub cycle_time: Ratio,
    /// The optimal computation rate `1/α*`.
    pub optimal_rate: Ratio,
    /// Names of the loop nodes on a critical cycle (empty if the bound
    /// comes from a single slow node's non-reentrance).
    pub critical_nodes: Vec<String>,
}

/// One enumerated simple cycle of an [`Explanation`], with its exact
/// ratio and its slack against the critical cycle time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExplainedCycle {
    /// Names of the loop nodes (and liveness buffers) on the cycle.
    pub transitions: Vec<String>,
    /// `Ω(C)`: summed execution time of the cycle's transitions.
    pub total_time: u64,
    /// `M(C)`: the cycle's token count.
    pub token_count: u64,
    /// `Ω(C)/M(C)` as an exact rational.
    pub cycle_time: Ratio,
    /// `α* − Ω(C)/M(C)`: zero exactly on critical cycles.
    pub slack: Ratio,
    /// Whether this cycle attains `α*`.
    pub critical: bool,
}

/// Why [`CompiledLoop::engine`] resolved the way it did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineAudit {
    /// The engine the options asked for.
    pub configured: SchedulePolicy,
    /// The engine actually used after `Auto` resolution.
    pub resolved: SchedulePolicy,
    /// Whether the compiled net is a pure marked graph — the structural
    /// test `Auto` resolution is based on.
    pub marked_graph: bool,
    /// A one-line human-readable decision reason.
    pub reason: String,
}

/// The balanced (Sturmian) issue words of the analytic steady state: for
/// each loop node, one `'1'`/`'0'` character per cycle of the kernel
/// window, `'1'` where the node starts a firing. Every word carries
/// exactly `iterations` ones.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IssueWords {
    /// Kernel length `p` in cycles.
    pub period: u64,
    /// Iterations per kernel `q` (`α* = p/q`).
    pub iterations: u64,
    /// First cycle of the steady-state window.
    pub anchor: u64,
    /// `(node name, word)` pairs in loop-node order.
    pub words: Vec<(String, String)>,
}

/// The scheduling witness behind [`CompiledLoop::explain`]: which cycle
/// pins the rate, by how much every runner-up misses it, why the engine
/// decision fell the way it did, and the balanced issue word of the
/// periodic steady state — every quantity re-validated in process (see
/// [`Explanation::validated`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Explanation {
    /// The critical cycle time `α* = max Ω(C)/M(C)`.
    pub cycle_time: Ratio,
    /// The optimal computation rate `1/α*`, exactly.
    pub rate: Ratio,
    /// Names of the transitions on the critical witness cycle (empty when
    /// the bound comes from a single slow node's non-reentrance).
    pub witness_transitions: Vec<String>,
    /// For a self-loop witness: the dominating slow node's name.
    pub witness_self_loop: Option<String>,
    /// `Ω(C)` of the witness cycle (`None` for a self-loop witness).
    pub total_time: Option<u64>,
    /// `M(C)` of the witness cycle (`None` for a self-loop witness).
    pub token_count: Option<u64>,
    /// Every simple cycle from the Johnson enumeration, critical cycles
    /// first then by ascending slack; `None` when the net has more than
    /// the enumeration budget's worth of cycles (the witness above is
    /// still exact — only the runner-up table is unavailable).
    pub cycles: Option<Vec<ExplainedCycle>>,
    /// The engine-decision audit.
    pub engine: EngineAudit,
    /// Balanced issue words of the analytic steady state; `None` when the
    /// net is not a pure marked graph (no closed-form periodic regime).
    pub issue_words: Option<IssueWords>,
    /// Whether every reported quantity re-derived exactly (witness ratio
    /// equals `α*`, rate is its exact reciprocal, per-cycle ratios and
    /// slacks re-compute, issue words are balanced). Always check this —
    /// `false` means the explanation caught an internal inconsistency,
    /// itemised in `validation_errors`.
    pub validated: bool,
    /// The discrepancies found during re-validation (empty when
    /// `validated`).
    pub validation_errors: Vec<String>,
}

/// Cycle-enumeration budget for [`CompiledLoop::explain`]: generous for
/// any hand-written loop; nets beyond it degrade to a witness-only
/// explanation instead of failing.
const EXPLAIN_CYCLE_LIMIT: usize = 4096;

/// The frustum cache entry: the report plus the trace recorded alongside
/// it (present only when tracing was enabled *and* the ring kept every
/// event).
type FrustumEntry = (Arc<FrustumReport>, Option<Arc<FiringTrace>>);

/// Memoized stage results. Every slot is filled at most once (per SCP
/// depth for `scp`) and shared across calls and clones.
#[derive(Default)]
struct Caches {
    analysis: OnceLock<Result<Analysis, Error>>,
    frustum: OnceLock<Result<FrustumEntry, Error>>,
    trace: OnceLock<Result<Arc<FiringTrace>, Error>>,
    schedule: OnceLock<Result<Arc<LoopSchedule>, Error>>,
    rates: OnceLock<Result<RateReport, Error>>,
    explain: OnceLock<Result<Arc<Explanation>, Error>>,
    scp: Mutex<HashMap<u64, Result<Arc<ScpRun>, Error>>>,
    steady: OnceLock<Result<Arc<SteadyStateNet>, Error>>,
    storage: OnceLock<Result<Arc<StorageRun>, Error>>,
    balance: OnceLock<Result<(Sdsp, BalanceReport), Error>>,
}

impl Caches {
    fn clone_lock<T: Clone>(src: &OnceLock<T>) -> OnceLock<T> {
        let dst = OnceLock::new();
        if let Some(v) = src.get() {
            let _ = dst.set(v.clone());
        }
        dst
    }
}

impl Clone for Caches {
    fn clone(&self) -> Self {
        Caches {
            analysis: Self::clone_lock(&self.analysis),
            frustum: Self::clone_lock(&self.frustum),
            trace: Self::clone_lock(&self.trace),
            schedule: Self::clone_lock(&self.schedule),
            rates: Self::clone_lock(&self.rates),
            explain: Self::clone_lock(&self.explain),
            scp: Mutex::new(self.scp.lock().expect("scp cache poisoned").clone()),
            steady: Self::clone_lock(&self.steady),
            storage: Self::clone_lock(&self.storage),
            balance: Self::clone_lock(&self.balance),
        }
    }
}

impl fmt::Debug for Caches {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Caches").finish_non_exhaustive()
    }
}

/// A loop compiled through the full pipeline: the SDSP and SDSP-PN forms
/// are built once, and each analysis/scheduling stage is computed on
/// first use and memoized (see the [crate docs](crate)).
#[derive(Clone, Debug)]
pub struct CompiledLoop {
    sdsp: Sdsp,
    pn: SdspPn,
    options: CompileOptions,
    profiler: Option<Arc<metrics::Profiler>>,
    caches: Caches,
}

/// The outcome of the §6 storage optimiser on a compiled loop (see
/// [`CompiledLoop::storage`]): the optimised loop plus the merge report,
/// memoized and `Arc`-shared like every other stage artifact.
#[derive(Clone, Debug)]
pub struct StorageRun {
    /// The storage-minimised loop, compiled with the source loop's
    /// options. Its own stage caches are shared by all holders of this
    /// run, so scheduling the optimised loop is also computed once.
    pub optimised: CompiledLoop,
    /// The merge report (§6's before/after location counts).
    pub report: StorageReport,
}

/// An SCP (single-clean-pipeline) execution of a compiled loop.
#[derive(Clone, Debug)]
pub struct ScpRun {
    /// The SDSP-SCP-PN model.
    pub model: ScpPn,
    /// The detected cyclic frustum.
    pub frustum: FrustumReport,
    /// The issue schedule derived from it.
    pub schedule: LoopSchedule,
    /// Rates and pipeline utilisation (Table 2's columns).
    pub rates: ScpRateReport,
    /// The firing trace recorded during detection, when
    /// [`CompileOptions::trace`] was set and the ring kept every event
    /// (use [`CompiledLoop::scp_trace`] to get a trace unconditionally).
    pub trace: Option<Arc<FiringTrace>>,
}

impl CompiledLoop {
    /// Compiles loop source text through the front-end with default
    /// options.
    ///
    /// # Errors
    ///
    /// [`Error::Lang`] for parse or semantic failures.
    pub fn from_source(source: &str) -> Result<Self, Error> {
        Self::from_source_with(source, CompileOptions::default())
    }

    /// Compiles loop source text with explicit [`CompileOptions`].
    ///
    /// # Errors
    ///
    /// [`Error::Lang`] for parse or semantic failures.
    pub fn from_source_with(source: &str, options: CompileOptions) -> Result<Self, Error> {
        let profiler = options
            .profile
            .then(|| Arc::new(metrics::Profiler::default()));
        let sdsp = match &profiler {
            Some(p) => {
                let ast = p.time("parse", || tpn_lang::parse(source))?;
                p.time("lower", || tpn_lang::lower(&ast))?
            }
            None => tpn_lang::compile(source)?,
        };
        Ok(Self::build(sdsp, options, profiler))
    }

    /// Wraps an already-built SDSP with default options.
    pub fn from_sdsp(sdsp: Sdsp) -> Self {
        Self::from_sdsp_with(sdsp, CompileOptions::default())
    }

    /// Wraps an already-built SDSP with explicit [`CompileOptions`].
    pub fn from_sdsp_with(sdsp: Sdsp, options: CompileOptions) -> Self {
        let profiler = options
            .profile
            .then(|| Arc::new(metrics::Profiler::default()));
        Self::build(sdsp, options, profiler)
    }

    fn build(
        sdsp: Sdsp,
        options: CompileOptions,
        profiler: Option<Arc<metrics::Profiler>>,
    ) -> Self {
        let translate = || {
            let mut pn = to_petri(&sdsp);
            if let Some(cycles) = options.node_time {
                for &t in &pn.transition_of {
                    pn.net.set_time(t, cycles);
                }
            }
            pn
        };
        let pn = match &profiler {
            Some(p) => p.time("to_petri", translate),
            None => translate(),
        };
        CompiledLoop {
            sdsp,
            pn,
            options,
            profiler,
            caches: Caches::default(),
        }
    }

    /// Times `f` under `stage` when profiling is enabled; otherwise just
    /// runs it.
    fn span<R>(&self, stage: &str, f: impl FnOnce() -> R) -> R {
        match &self.profiler {
            Some(p) => p.time(stage, f),
            None => f(),
        }
    }

    /// The loop's dataflow graph.
    pub fn sdsp(&self) -> &Sdsp {
        &self.sdsp
    }

    /// The loop's SDSP-PN.
    pub fn petri_net(&self) -> &SdspPn {
        &self.pn
    }

    /// The options this loop was compiled with.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// Loop body size `n` (number of instructions).
    pub fn size(&self) -> usize {
        self.sdsp.num_nodes()
    }

    /// A sensible frustum-detection budget: detection is empirically
    /// `O(n)` (§5), so a generous multiple of the `2n` bound plus slack.
    pub fn default_budget(&self) -> u64 {
        (64 * self.size() as u64).max(100_000)
    }

    /// The effective detection budget: the
    /// [`step_budget`](CompileOptions::step_budget) override if set, else
    /// [`default_budget`](Self::default_budget).
    pub fn budget(&self) -> u64 {
        self.options
            .step_budget
            .unwrap_or_else(|| self.default_budget())
    }

    /// Critical-cycle analysis: cycle time, optimal rate, and the nodes on
    /// a critical cycle. Memoized.
    ///
    /// # Errors
    ///
    /// [`Error::Petri`] for malformed or dead nets.
    pub fn analyze(&self) -> Result<Analysis, Error> {
        self.caches
            .analysis
            .get_or_init(|| {
                let r = self.span("analyze", || critical_ratio(&self.pn.net, &self.pn.marking))?;
                let critical_nodes = match &r.witness {
                    CriticalWitness::Cycle(c) => c
                        .transitions()
                        .iter()
                        .map(|&t| self.pn.net.transition(t).name().to_string())
                        .collect(),
                    CriticalWitness::SelfLoop(_) => Vec::new(),
                };
                Ok(Analysis {
                    cycle_time: r.cycle_time,
                    optimal_rate: r.rate,
                    critical_nodes,
                })
            })
            .clone()
    }

    /// The full scheduling witness: the critical cycle with its token
    /// count `M(C)`, total time `Ω(C)` and exact ratio, per-cycle slack
    /// for every runner-up cycle from the Johnson enumeration, the
    /// engine-decision audit, and the balanced issue word of the periodic
    /// steady state. Every quantity is re-derived and cross-checked in
    /// process before being returned — check
    /// [`Explanation::validated`]. Memoized.
    ///
    /// # Errors
    ///
    /// [`Error::Petri`] for malformed, empty or dead nets.
    pub fn explain(&self) -> Result<Arc<Explanation>, Error> {
        self.caches
            .explain
            .get_or_init(|| {
                self.span("explain", || self.build_explanation())
                    .map(Arc::new)
            })
            .clone()
    }

    fn build_explanation(&self) -> Result<Explanation, Error> {
        let net = &self.pn.net;
        let marking = &self.pn.marking;
        let ex = explain_rate(net, marking, EXPLAIN_CYCLE_LIMIT)?;
        let mut validation_errors = ex.validate(net, marking);

        let name_of = |t: tpn_petri::TransitionId| net.transition(t).name().to_string();
        let (witness_transitions, witness_self_loop, total_time, token_count) =
            match &ex.critical.witness {
                CriticalWitness::Cycle(c) => (
                    c.transitions().iter().copied().map(name_of).collect(),
                    None,
                    Some(c.time_sum(net)),
                    Some(c.token_sum(marking)),
                ),
                CriticalWitness::SelfLoop(t) => (Vec::new(), Some(name_of(*t)), None, None),
            };

        let cycles = ex.analysis.as_ref().map(|analysis| {
            let mut rows: Vec<ExplainedCycle> = analysis
                .cycles
                .iter()
                .enumerate()
                .map(|(i, info)| ExplainedCycle {
                    transitions: info
                        .cycle
                        .transitions()
                        .iter()
                        .copied()
                        .map(name_of)
                        .collect(),
                    total_time: info.time_sum,
                    token_count: info.token_sum,
                    cycle_time: info.cycle_time,
                    slack: ex.slack(info).unwrap_or(Ratio::ZERO),
                    critical: analysis.critical.contains(&i),
                })
                .collect();
            rows.sort_by(|a, b| {
                b.critical
                    .cmp(&a.critical)
                    .then(a.slack.cmp(&b.slack))
                    .then(a.transitions.cmp(&b.transitions))
            });
            // Distinct place-level cycles (data vs. liveness-buffer
            // places) can thread the same transitions with the same
            // Ω and M; they are indistinguishable in this view, so
            // collapse exact duplicates.
            rows.dedup();
            rows
        });

        let engine = self.engine_audit();
        let marked_graph = engine.marked_graph;

        let issue_words = if marked_graph {
            AnalyticSchedule::for_sdsp_pn(&self.pn).ok().map(|a| {
                let words: Vec<(String, String)> = self
                    .pn
                    .transition_of
                    .iter()
                    .map(|&t| {
                        let word: String = a
                            .issue_word(t)
                            .into_iter()
                            .map(|fired| if fired { '1' } else { '0' })
                            .collect();
                        (name_of(t), word)
                    })
                    .collect();
                for (name, word) in &words {
                    let ones = word.chars().filter(|&c| c == '1').count() as u64;
                    if ones != a.iterations_per_period() {
                        validation_errors.push(format!(
                            "issue word of {name} has {ones} ones, expected {}",
                            a.iterations_per_period()
                        ));
                    }
                }
                IssueWords {
                    period: a.period(),
                    iterations: a.iterations_per_period(),
                    anchor: a.anchor(),
                    words,
                }
            })
        } else {
            None
        };

        // The acceptance bar stated plainly: the reported rate must be the
        // exact reciprocal of the reported cycle time.
        if ex.critical.rate != ex.critical.cycle_time.recip() {
            validation_errors.push(format!(
                "rate {} != 1 / cycle time {}",
                ex.critical.rate, ex.critical.cycle_time
            ));
        }

        Ok(Explanation {
            cycle_time: ex.critical.cycle_time,
            rate: ex.critical.rate,
            witness_transitions,
            witness_self_loop,
            total_time,
            token_count,
            cycles,
            engine,
            issue_words,
            validated: validation_errors.is_empty(),
            validation_errors,
        })
    }

    /// The cyclic frustum of the SDSP-PN under the earliest firing rule,
    /// detected once and shared by every stage that needs it
    /// ([`schedule`](Self::schedule), [`rate_report`](Self::rate_report),
    /// [`emit`](Self::emit), …).
    ///
    /// Every artifact accessor on `CompiledLoop` returns an
    /// `Arc`-shared result: repeated calls (and clones of the loop)
    /// hand out the same allocation, so services can cache compiled
    /// loops and share their artifacts across threads without copying.
    /// Call `(*lp.frustum()?).clone()` if an owned value is really
    /// needed.
    ///
    /// # Errors
    ///
    /// [`Error::Sched`] if the budget is exhausted (or the net deadlocks).
    pub fn frustum(&self) -> Result<Arc<FrustumReport>, Error> {
        self.frustum_entry().map(|(f, _)| f)
    }

    /// The effective recorder capacity for a net with `transitions`
    /// transitions (see [`CompileOptions::trace_capacity`]).
    fn effective_trace_capacity(&self, transitions: usize) -> usize {
        self.options.trace_capacity.unwrap_or_else(|| {
            // Worst case: every transition starts and completes once per
            // instant of the budget. Cap the preallocation; overflow falls
            // back to derivation.
            2usize
                .saturating_mul(transitions.saturating_add(1))
                .saturating_mul((self.budget() as usize).saturating_add(1))
                .min(TRACE_CAPACITY_CAP)
        })
    }

    fn frustum_entry(&self) -> Result<FrustumEntry, Error> {
        self.caches
            .frustum
            .get_or_init(|| {
                let mut recorder = self.options.trace.then(|| {
                    RingRecorder::with_capacity(
                        self.effective_trace_capacity(self.pn.net.num_transitions()),
                    )
                });
                let report = self.span("frustum_detection", || match &mut recorder {
                    Some(rec) => detect_frustum_with_sink(
                        &self.pn.net,
                        self.pn.marking.clone(),
                        EagerPolicy,
                        self.budget(),
                        rec,
                    ),
                    None => {
                        detect_frustum_eager(&self.pn.net, self.pn.marking.clone(), self.budget())
                    }
                })?;
                let trace = recorder
                    .map(|rec| FiringTrace::from_recorded(&self.pn.net, &report, rec))
                    .filter(FiringTrace::is_complete)
                    .map(Arc::new);
                Ok((Arc::new(report), trace))
            })
            .clone()
    }

    /// The loop's firing trace: the full start/complete event stream of
    /// the detection run with the frustum window annotated as spans (see
    /// [`tpn_sched::trace`]). Memoized; reuses the shared frustum.
    ///
    /// With [`CompileOptions::trace`] set this is the stream recorded live
    /// during detection; otherwise (or if the bounded recorder
    /// overflowed) the identical stream is derived from the stored step
    /// records. A zero-node loop yields the valid empty trace.
    ///
    /// # Errors
    ///
    /// [`Error::Sched`] if frustum detection fails.
    pub fn firing_trace(&self) -> Result<Arc<FiringTrace>, Error> {
        self.caches
            .trace
            .get_or_init(|| {
                if self.size() == 0 {
                    return Ok(Arc::new(FiringTrace::empty()));
                }
                let (frustum, recorded) = self.frustum_entry()?;
                Ok(match recorded {
                    Some(trace) => trace,
                    None => Arc::new(self.span("trace_derivation", || {
                        FiringTrace::from_frustum(&self.pn.net, &self.pn.marking, &frustum)
                    })),
                })
            })
            .clone()
    }

    /// The firing trace of the depth-`depth` SCP run, with dummy
    /// transitions marked as pipeline stages. Recorded live when
    /// [`CompileOptions::trace`] is set, else derived from the run's
    /// step records.
    ///
    /// # Errors
    ///
    /// Same as [`scp`](Self::scp).
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn scp_trace(&self, depth: u64) -> Result<Arc<FiringTrace>, Error> {
        let run = self.scp(depth)?;
        Ok(match &run.trace {
            Some(trace) => trace.clone(),
            None => Arc::new(self.span("trace_derivation", || {
                FiringTrace::from_scp_frustum(&run.model, &run.frustum)
            })),
        })
    }

    /// Independently validates the loop's firing trace: replays markings
    /// from the event stream alone (see
    /// [`tpn_sched::validate::replay_trace`]) confirming safety,
    /// latencies, per-event digests and liveness over the window, then
    /// cross-checks the observed steady-state rate against
    /// [`rate_report`](Self::rate_report)'s min-cycle-ratio. A zero-node
    /// loop validates trivially.
    ///
    /// # Errors
    ///
    /// [`Error::Sched`] wrapping a
    /// [`TraceViolation`](tpn_sched::validate::TraceViolation) on the
    /// first inconsistency, or any detection/analysis failure.
    pub fn validate_trace(&self) -> Result<TraceValidation, Error> {
        let trace = self.firing_trace()?;
        if self.size() == 0 {
            return Ok(TraceValidation {
                events_checked: 0,
                max_tokens: 0,
                bound: 1,
                period: 1,
                window_counts: Vec::new(),
            });
        }
        let validation = self
            .span("trace_validation", || {
                replay_trace(&self.pn.net, &self.pn.marking, &trace)
            })
            .map_err(SchedError::Trace)?;
        let expected = self.rate_report()?.measured;
        validation
            .confirm_rate(self.pn.net.transition_ids(), expected)
            .map_err(SchedError::Trace)?;
        Ok(validation)
    }

    /// [`validate_trace`](Self::validate_trace) for the depth-`depth` SCP
    /// run: rates are cross-checked for the SDSP node transitions against
    /// the run's measured issue rate (dummies are still replayed and
    /// checked for safety/liveness/latency).
    ///
    /// # Errors
    ///
    /// Same as [`validate_trace`](Self::validate_trace).
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn validate_scp_trace(&self, depth: u64) -> Result<TraceValidation, Error> {
        let run = self.scp(depth)?;
        let trace = self.scp_trace(depth)?;
        let validation = self
            .span("trace_validation", || {
                replay_trace(&run.model.net, &run.model.marking, &trace)
            })
            .map_err(SchedError::Trace)?;
        validation
            .confirm_rate(run.model.sdsp_transitions(), run.rates.measured)
            .map_err(SchedError::Trace)?;
        Ok(validation)
    }

    /// The scheduling engine actually used for
    /// [`schedule`](Self::schedule) and [`rate_report`](Self::rate_report):
    /// the configured [`CompileOptions::engine`] with `Auto` resolved
    /// against the compiled net (analytic iff it is a pure marked graph).
    pub fn engine(&self) -> SchedulePolicy {
        self.options.engine.resolve(&self.pn.net)
    }

    /// Why [`engine`](Self::engine) resolved the way it did: the
    /// configured policy, the resolved one, the structural test behind
    /// `Auto` resolution, and a one-line reason. Cheap (one structural
    /// scan) — the service journal records it per request.
    pub fn engine_audit(&self) -> EngineAudit {
        let marked_graph = self.pn.net.is_marked_graph();
        let configured = self.options.engine;
        let reason = match configured {
            SchedulePolicy::Auto if marked_graph => {
                "auto: pure marked graph, closed-form periodic regime exists -> analytic"
            }
            SchedulePolicy::Auto => {
                "auto: not a pure marked graph (structural conflict) -> frustum"
            }
            _ => "forced by compile options",
        }
        .to_string();
        EngineAudit {
            configured,
            resolved: self.engine(),
            marked_graph,
            reason,
        }
    }

    /// The time-optimal software-pipelining schedule, `Arc`-shared by
    /// every caller. Depending on [`engine`](Self::engine) it is either
    /// constructed analytically from the critical ratio (no simulation)
    /// or derived from the shared frustum.
    ///
    /// # Errors
    ///
    /// [`Error::Sched`] on detection or derivation failure.
    pub fn schedule(&self) -> Result<Arc<LoopSchedule>, Error> {
        self.caches
            .schedule
            .get_or_init(|| match self.engine() {
                SchedulePolicy::Frustum => {
                    let f = self.frustum()?;
                    let schedule = self.span("schedule_derivation", || {
                        LoopSchedule::from_frustum(&self.sdsp, &self.pn, &f)
                    })?;
                    Ok(Arc::new(schedule))
                }
                _ => {
                    let schedule = self.span("analytic_schedule", || {
                        tpn_sched::analytic::analytic_schedule(&self.sdsp, &self.pn)
                    })?;
                    Ok(Arc::new(schedule))
                }
            })
            .clone()
    }

    /// The analytic steady-state schedule over *all* transitions (loop
    /// nodes and liveness buffers), built from the critical ratio with no
    /// simulation — available regardless of the configured engine, but
    /// only for pure marked graphs.
    ///
    /// # Errors
    ///
    /// [`Error::Sched`] / [`Error::Petri`] from the analytic construction.
    pub fn analytic_schedule(&self) -> Result<AnalyticSchedule, Error> {
        Ok(self.span("analytic_schedule", || {
            AnalyticSchedule::for_sdsp_pn(&self.pn)
        })?)
    }

    /// Measures the steady-state rate against the critical-cycle bound.
    /// Memoized. Under the frustum engine the measured rate comes from
    /// the detected frustum; under the analytic engine both sides are the
    /// exact critical ratio (Theorem 4.1.1 equates them).
    ///
    /// # Errors
    ///
    /// [`Error::Sched`] / [`Error::Petri`] from detection or analysis.
    pub fn rate_report(&self) -> Result<RateReport, Error> {
        self.caches
            .rates
            .get_or_init(|| match self.engine() {
                SchedulePolicy::Frustum => {
                    let f = self.frustum()?;
                    Ok(RateReport::for_sdsp_pn(&self.pn, &f)?)
                }
                _ => Ok(self.span("analytic_rate", || RateReport::analytic(&self.pn))?),
            })
            .clone()
    }

    /// Builds and runs the SDSP-SCP-PN model with an `l`-stage pipeline
    /// under the configured [`IssuePolicy`]. Memoized per depth and
    /// `Arc`-shared by every caller.
    ///
    /// # Errors
    ///
    /// [`Error::Sched`] on detection or derivation failure.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn scp(&self, depth: u64) -> Result<Arc<ScpRun>, Error> {
        let mut cache = self.caches.scp.lock().expect("scp cache poisoned");
        cache
            .entry(depth)
            .or_insert_with(|| self.run_scp(depth).map(Arc::new))
            .clone()
    }

    fn run_scp(&self, depth: u64) -> Result<ScpRun, Error> {
        let model = self.span(&format!("scp_expansion[l={depth}]"), || {
            build_scp(&self.pn, depth)
        });
        let budget = self.budget().saturating_mul(depth.max(1));
        let mut recorder = self.options.trace.then(|| {
            RingRecorder::with_capacity(self.effective_trace_capacity(model.net.num_transitions()))
        });
        let frustum = self.span(&format!("scp_detection[l={depth}]"), || {
            let marking = model.marking.clone();
            match (&mut recorder, self.options.issue_policy) {
                (None, IssuePolicy::Fifo) => {
                    detect_frustum(&model.net, marking, FifoPolicy::new(&model), budget)
                }
                (None, IssuePolicy::Priority) => {
                    detect_frustum(&model.net, marking, PriorityPolicy::new(&model), budget)
                }
                (Some(rec), IssuePolicy::Fifo) => detect_frustum_with_sink(
                    &model.net,
                    marking,
                    FifoPolicy::new(&model),
                    budget,
                    rec,
                ),
                (Some(rec), IssuePolicy::Priority) => detect_frustum_with_sink(
                    &model.net,
                    marking,
                    PriorityPolicy::new(&model),
                    budget,
                    rec,
                ),
            }
        })?;
        let trace = recorder
            .map(|rec| {
                FiringTrace::from_recorded(&model.net, &frustum, rec).with_node_mask(&model.is_sdsp)
            })
            .filter(FiringTrace::is_complete)
            .map(Arc::new);
        let schedule = LoopSchedule::from_scp_frustum(&self.sdsp, &model, &frustum)?;
        let rates = ScpRateReport::for_scp(&model, &frustum)?;
        Ok(ScpRun {
            model,
            frustum,
            schedule,
            rates,
            trace,
        })
    }

    /// The steady-state net coalesced from the cyclic frustum (§4's
    /// behaviour-graph quotient): one transition per loop-node firing slot
    /// of the repeating segment. Memoized; reuses the shared frustum.
    ///
    /// # Errors
    ///
    /// [`Error::Sched`] if frustum detection fails.
    pub fn steady_net(&self) -> Result<Arc<SteadyStateNet>, Error> {
        self.caches
            .steady
            .get_or_init(|| {
                let f = self.frustum()?;
                let net = self.span("steady_coalescing", || steady_state_net(&self.pn.net, &f));
                Ok(Arc::new(net))
            })
            .clone()
    }

    /// Runs the §6 storage optimiser once and shares the outcome: the
    /// optimised loop (carrying this loop's options, with its own
    /// memoized stage caches shared by every caller) plus the report.
    ///
    /// # Errors
    ///
    /// [`Error::Storage`] on analysis failure.
    pub fn storage(&self) -> Result<Arc<StorageRun>, Error> {
        self.caches
            .storage
            .get_or_init(|| {
                let (optimised, report) =
                    self.span("storage_minimization", || minimize_storage(&self.sdsp))?;
                Ok(Arc::new(StorageRun {
                    optimised: CompiledLoop::from_sdsp_with(optimised, self.options.clone()),
                    report,
                }))
            })
            .clone()
    }

    /// Emits the time-optimal schedule as a VLIW program over the loop's
    /// storage locations, for `iterations` iterations (see
    /// [`tpn_codegen`]). Reuses the shared schedule.
    ///
    /// # Errors
    ///
    /// [`Error::Sched`] on detection or derivation failure.
    pub fn emit(&self, iterations: u64) -> Result<tpn_codegen::Program, Error> {
        let schedule = self.schedule()?;
        Ok(tpn_codegen::emit(&self.sdsp, &schedule, iterations))
    }

    /// Balances the loop's buffering (the FIFO-queued extension of §7):
    /// raises acknowledgement capacities until the rate reaches the
    /// data-dependence bound. The inverse trade-off to
    /// [`storage`](Self::storage). Memoized.
    ///
    /// # Errors
    ///
    /// [`Error::Storage`] on analysis failure.
    pub fn balance(&self) -> Result<(CompiledLoop, BalanceReport), Error> {
        let (balanced, report) = self
            .caches
            .balance
            .get_or_init(|| Ok(self.span("buffer_balancing", || tpn_storage::balance(&self.sdsp))?))
            .clone()?;
        Ok((
            CompiledLoop::from_sdsp_with(balanced, self.options.clone()),
            report,
        ))
    }

    /// The loop's [`metrics::MetricsReport`]: stage spans recorded so far
    /// (empty unless [`CompileOptions::profile`] was set) plus the engine
    /// and detection counters of every detection run that has completed.
    /// Counters are collected unconditionally, so the report is useful
    /// even without profiling; stages that have not run yet simply do not
    /// appear. The `batch` slot is `None` — batched drivers fill it from
    /// [`batch::parallel_map_profiled`].
    pub fn metrics_report(&self) -> metrics::MetricsReport {
        let mut detections = Vec::new();
        if let Some(Ok((f, _))) = self.caches.frustum.get() {
            detections.push(metrics::DetectionCounters::from_stats("frustum", &f.stats));
        }
        let scp = self.caches.scp.lock().expect("scp cache poisoned");
        let mut depths: Vec<u64> = scp
            .iter()
            .filter(|(_, run)| run.is_ok())
            .map(|(&depth, _)| depth)
            .collect();
        depths.sort_unstable();
        for depth in depths {
            if let Some(Ok(run)) = scp.get(&depth) {
                detections.push(metrics::DetectionCounters::from_stats(
                    format!("scp[l={depth}]"),
                    &run.frustum.stats,
                ));
            }
        }
        drop(scp);
        let engine = detections
            .iter()
            .fold(metrics::EngineCounters::default(), |acc, d| {
                acc.merged(d.engine)
            });
        metrics::MetricsReport {
            stages: self
                .profiler
                .as_ref()
                .map(|p| p.spans())
                .unwrap_or_default(),
            engine,
            detections,
            batch: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L2: &str = "do i from 1 to n {\
        A[i] := X[i] + 5;\
        B[i] := Y[i] + A[i];\
        C[i] := A[i] + E[i-1];\
        D[i] := B[i] + C[i];\
        E[i] := W[i] + D[i];\
    }";

    #[test]
    fn end_to_end_l2() {
        let lp = CompiledLoop::from_source(L2).unwrap();
        assert_eq!(lp.size(), 5);
        let analysis = lp.analyze().unwrap();
        assert_eq!(analysis.optimal_rate, Ratio::new(1, 3));
        assert_eq!(analysis.critical_nodes.len(), 3);
        let schedule = lp.schedule().unwrap();
        assert_eq!(schedule.rate(), Ratio::new(1, 3));
        let report = lp.rate_report().unwrap();
        assert!(report.is_time_optimal());
    }

    #[test]
    fn explain_witness_self_validates_on_l2() {
        let lp = CompiledLoop::from_source(L2).unwrap();
        let ex = lp.explain().unwrap();
        assert!(ex.validated, "witness failed: {:?}", ex.validation_errors);
        assert_eq!(ex.cycle_time, Ratio::new(3, 1));
        assert_eq!(ex.rate, Ratio::new(1, 3));
        assert_eq!(ex.rate, ex.cycle_time.recip());
        // The witness cycle's Ω/M re-derives the cycle time exactly.
        assert_eq!(
            Ratio::new(ex.total_time.unwrap(), ex.token_count.unwrap()),
            ex.cycle_time
        );
        assert_eq!(ex.witness_transitions.len(), 3);
        // Enumeration fits easily; critical cycles sort first, runner-ups
        // carry positive slack.
        let cycles = ex.cycles.as_ref().unwrap();
        assert!(!cycles.is_empty());
        assert!(cycles[0].critical);
        assert_eq!(cycles[0].slack, Ratio::ZERO);
        for c in cycles {
            assert_eq!(Ratio::new(c.total_time, c.token_count), c.cycle_time);
            assert_eq!(c.critical, c.slack == Ratio::ZERO);
        }
        // Engine audit: L2 is a pure marked graph, so Auto goes analytic.
        assert!(ex.engine.marked_graph);
        assert_eq!(ex.engine.configured, SchedulePolicy::Auto);
        assert_eq!(ex.engine.resolved, SchedulePolicy::Analytic);
        // Issue words: integer cycle time 3 means one start in each
        // 3-cycle word.
        let words = ex.issue_words.as_ref().unwrap();
        assert_eq!(words.period, 3);
        assert_eq!(words.iterations, 1);
        assert_eq!(words.words.len(), 5);
        for (_, word) in &words.words {
            assert_eq!(word.len(), 3);
            assert_eq!(word.chars().filter(|&c| c == '1').count(), 1);
        }
        // Memoized like every other stage.
        assert!(Arc::ptr_eq(&ex, &lp.explain().unwrap()));
    }

    #[test]
    fn explain_reports_the_forced_engine() {
        let lp = CompiledLoop::from_source_with(
            L2,
            CompileOptions::new().engine(SchedulePolicy::Frustum),
        )
        .unwrap();
        let ex = lp.explain().unwrap();
        assert!(ex.validated);
        assert_eq!(ex.engine.configured, SchedulePolicy::Frustum);
        assert_eq!(ex.engine.resolved, SchedulePolicy::Frustum);
        assert_eq!(ex.engine.reason, "forced by compile options");
        // The witness does not depend on the engine choice.
        assert_eq!(ex.cycle_time, Ratio::new(3, 1));
    }

    #[test]
    fn end_to_end_scp() {
        let lp = CompiledLoop::from_source(L2).unwrap();
        let run = lp.scp(8).unwrap();
        assert!(run.rates.respects_resource_bound());
        assert_eq!(run.model.depth, 8);
        assert!(run.schedule.period() > 0);
    }

    #[test]
    fn end_to_end_storage() {
        let lp = CompiledLoop::from_source(L2).unwrap();
        let run = lp.storage().unwrap();
        assert!(run.report.after < run.report.before);
        // The optimised loop still schedules at the optimal rate.
        let schedule = run.optimised.schedule().unwrap();
        assert_eq!(schedule.rate(), Ratio::new(1, 3));
        // Repeated calls share the same memoized rewrite.
        let again = lp.storage().unwrap();
        assert!(Arc::ptr_eq(&run, &again));
    }

    #[test]
    fn stages_are_memoized_and_shared() {
        let lp = CompiledLoop::from_source(L2).unwrap();
        let f1 = lp.frustum().unwrap();
        let f2 = lp.frustum().unwrap();
        assert!(Arc::ptr_eq(&f1, &f2), "frustum detected more than once");
        let s1 = lp.schedule().unwrap();
        let s2 = lp.schedule().unwrap();
        assert!(Arc::ptr_eq(&s1, &s2));
        let scp1 = lp.scp(8).unwrap();
        let scp2 = lp.scp(8).unwrap();
        assert!(Arc::ptr_eq(&scp1, &scp2));
        // Clones share the already-computed results.
        let clone = lp.clone();
        assert!(Arc::ptr_eq(&f1, &clone.frustum().unwrap()));
    }

    #[test]
    fn options_fingerprint_is_stable_and_field_sensitive() {
        let base = CompileOptions::new();
        assert_eq!(base.fingerprint(), CompileOptions::new().fingerprint());
        let variants = [
            CompileOptions::new().node_time(2),
            CompileOptions::new().step_budget(0),
            CompileOptions::new().step_budget(77),
            CompileOptions::new().issue_policy(IssuePolicy::Priority),
            CompileOptions::new().profile(true),
            CompileOptions::new().trace(true),
            CompileOptions::new().trace_capacity(8),
            CompileOptions::new().engine(SchedulePolicy::Analytic),
            CompileOptions::new().engine(SchedulePolicy::Frustum),
        ];
        let mut prints: Vec<u64> = variants.iter().map(CompileOptions::fingerprint).collect();
        prints.push(base.fingerprint());
        let distinct: std::collections::HashSet<u64> = prints.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            prints.len(),
            "fingerprint collision: {prints:?}"
        );
        // Getters follow the get_* scheme.
        let o = CompileOptions::new()
            .node_time(3)
            .step_budget(9)
            .issue_policy(IssuePolicy::Priority)
            .trace(true)
            .trace_capacity(4)
            .profile(true);
        assert_eq!(o.get_node_time(), Some(3));
        assert_eq!(o.get_step_budget(), Some(9));
        assert_eq!(o.get_issue_policy(), IssuePolicy::Priority);
        assert!(o.get_trace());
        assert_eq!(o.get_trace_capacity(), Some(4));
        assert!(o.get_profile());
        assert_eq!(o.get_engine(), SchedulePolicy::Auto);
        assert_eq!(
            o.engine(SchedulePolicy::Analytic).get_engine(),
            SchedulePolicy::Analytic
        );
    }

    #[test]
    fn options_node_time_scales_the_analysis() {
        let lp = CompiledLoop::from_source_with(L2, CompileOptions::new().node_time(2)).unwrap();
        // Doubling every node time halves the optimal rate: 1/3 -> 1/6.
        let analysis = lp.analyze().unwrap();
        assert_eq!(analysis.optimal_rate, Ratio::new(1, 6));
        let report = lp.rate_report().unwrap();
        assert!(report.is_time_optimal());
    }

    #[test]
    fn options_step_budget_caps_detection() {
        let lp = CompiledLoop::from_source_with(L2, CompileOptions::new().step_budget(2)).unwrap();
        assert_eq!(lp.budget(), 2);
        match lp.frustum() {
            Err(Error::Sched(SchedError::FrustumNotFound { max_steps: 2 })) => {}
            other => panic!("expected FrustumNotFound, got {other:?}"),
        }
    }

    #[test]
    fn options_priority_policy_reaches_a_frustum() {
        let lp = CompiledLoop::from_source_with(
            L2,
            CompileOptions::new().issue_policy(IssuePolicy::Priority),
        )
        .unwrap();
        let run = lp.scp(4).unwrap();
        assert!(run.rates.respects_resource_bound());
    }

    #[test]
    fn error_conversions() {
        let err = CompiledLoop::from_source("garbage").unwrap_err();
        assert!(matches!(err, Error::Lang(_)));
        assert!(!err.to_string().is_empty());
        // The unified error exposes the stage error as its source.
        let source = std::error::Error::source(&err).expect("source");
        assert!(!source.to_string().is_empty());
    }
}
