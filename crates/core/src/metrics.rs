//! End-to-end observability for the compilation pipeline.
//!
//! The paper's method is literally *execute and record*: the behaviour
//! graph (§4) is a trace of the earliest-firing execution. This module
//! makes the recording part first-class for the whole pipeline:
//!
//! * **stage spans** — wall-clock time of each pipeline stage (parse,
//!   lower, to_petri, frustum detection, SCP expansion, steady-state
//!   coalescing, storage minimisation), collected by a [`Profiler`]
//!   attached to a [`CompiledLoop`](crate::CompiledLoop) when
//!   [`CompileOptions::profile`](crate::CompileOptions::profile) is set;
//! * **engine counters** — instants simulated, transitions fired,
//!   startable-set prune efficiency ([`EngineCounters`], mirroring
//!   [`tpn_petri::timed::EngineStats`]);
//! * **detection counters** — digest candidate hits versus
//!   replay-confirmed repetitions, checkpoints written
//!   ([`DetectionCounters`], mirroring
//!   [`tpn_sched::frustum::DetectionStats`]);
//! * **batch counters** — items per worker, queue drain time and a
//!   per-item latency histogram from the [`batch`](crate::batch) pool.
//!
//! Everything funnels into one stable serde type, [`MetricsReport`],
//! surfaced as `tpnc --profile` (text and `--format json`) and by the
//! bench binaries' `--profile` flag.
//!
//! The layer is zero-cost when disabled: without `profile(true)` no
//! [`Profiler`] is allocated and no clocks are read; the engine counters
//! are plain unconditional integer increments on state the engine already
//! touches.

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::Serialize;
use tpn_petri::timed::EngineStats;
use tpn_sched::frustum::DetectionStats;

/// Wall-clock time of one pipeline stage.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct StageSpan {
    /// Stage name (`parse`, `lower`, `to_petri`, `frustum_detection`, …).
    pub stage: String,
    /// Elapsed wall-clock nanoseconds.
    pub nanos: u64,
}

/// Serialisable mirror of the engine's [`EngineStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct EngineCounters {
    /// Instants simulated.
    pub instants: u64,
    /// Transition firings started.
    pub firings: u64,
    /// Transition firings completed.
    pub completions: u64,
    /// Candidates placed on fire-phase startable lists.
    pub startable_scanned: u64,
    /// Candidates removed by incremental pruning (no rescans).
    pub startable_pruned: u64,
}

impl From<EngineStats> for EngineCounters {
    fn from(s: EngineStats) -> Self {
        EngineCounters {
            instants: s.instants,
            firings: s.firings,
            completions: s.completions,
            startable_scanned: s.startable_scanned,
            startable_pruned: s.startable_pruned,
        }
    }
}

impl EngineCounters {
    /// Field-wise sum, for aggregating several runs.
    #[must_use]
    pub fn merged(self, o: EngineCounters) -> EngineCounters {
        EngineCounters {
            instants: self.instants + o.instants,
            firings: self.firings + o.firings,
            completions: self.completions + o.completions,
            startable_scanned: self.startable_scanned + o.startable_scanned,
            startable_pruned: self.startable_pruned + o.startable_pruned,
        }
    }
}

/// Serialisable mirror of one detection run's [`DetectionStats`], tagged
/// with the pipeline context that ran it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct DetectionCounters {
    /// Which detection this was: `frustum` for the plain SDSP-PN run,
    /// `scp[l=N]` for an SCP run at pipeline depth `N`.
    pub context: String,
    /// Instants simulated (trace length).
    pub instants: u64,
    /// Digest-index candidate hits.
    pub digest_candidates: u64,
    /// Checkpoint replays run to verify candidates.
    pub replays: u64,
    /// Replays confirming a true repetition.
    pub confirmed: u64,
    /// Candidates that were 64-bit digest collisions
    /// (`replays − confirmed`).
    pub collisions: u64,
    /// Packed checkpoints written along the trace.
    pub checkpoints: u64,
    /// The engine counters of this run.
    pub engine: EngineCounters,
}

impl DetectionCounters {
    /// Tags `stats` with its pipeline `context`.
    pub fn from_stats(context: impl Into<String>, stats: &DetectionStats) -> Self {
        DetectionCounters {
            context: context.into(),
            instants: stats.instants,
            digest_candidates: stats.digest_candidates,
            replays: stats.replays,
            confirmed: stats.confirmed,
            collisions: stats.replays - stats.confirmed,
            checkpoints: stats.checkpoints,
            engine: stats.engine.into(),
        }
    }
}

/// One bucket of a latency histogram: `count` items took at most
/// `le_micros` microseconds (and more than the previous bucket's bound).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct HistogramBucket {
    /// Inclusive upper bound of the bucket, in microseconds.
    pub le_micros: u64,
    /// Items that fell in this bucket.
    pub count: u64,
}

/// Builds a power-of-two latency histogram (bounds 1 µs, 2 µs, 4 µs, …)
/// over per-item latencies in nanoseconds. Trailing empty buckets are
/// trimmed; the final bucket always covers the slowest item.
pub fn latency_histogram(latencies_nanos: &[u64]) -> Vec<HistogramBucket> {
    let mut buckets = vec![HistogramBucket {
        le_micros: 1,
        count: 0,
    }];
    for &nanos in latencies_nanos {
        let micros = nanos.div_ceil(1_000).max(1);
        // Slot k covers (2^{k-1}, 2^k] µs, so the slot is the exponent of
        // the next power of two at or above `micros` — no scan needed.
        let slot = (u64::BITS - (micros - 1).leading_zeros()) as usize;
        while buckets.len() <= slot {
            let next = buckets.last().expect("nonempty").le_micros * 2;
            buckets.push(HistogramBucket {
                le_micros: next,
                count: 0,
            });
        }
        buckets[slot].count += 1;
    }
    buckets
}

/// The `p`-th percentile (0.0 ≤ `p` ≤ 1.0) of a latency sample in
/// nanoseconds, by the nearest-rank method. Returns 0 for an empty
/// sample. Used by the service layer to report p50/p99 latencies.
pub fn percentile_nanos(latencies_nanos: &mut [u64], p: f64) -> u64 {
    if latencies_nanos.is_empty() {
        return 0;
    }
    latencies_nanos.sort_unstable();
    let rank = ((p.clamp(0.0, 1.0) * latencies_nanos.len() as f64).ceil() as usize)
        .clamp(1, latencies_nanos.len());
    latencies_nanos[rank - 1]
}

/// Hit/miss/eviction counters of the service layer's sharded result
/// cache (see the `tpn-service` crate).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct CacheCounters {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed (and typically inserted afterwards).
    pub misses: u64,
    /// Entries evicted to respect the weight capacity.
    pub evictions: u64,
    /// Live entries across all shards.
    pub entries: u64,
    /// Total weight of live entries across all shards.
    pub weight: u64,
    /// The configured weight capacity.
    pub capacity: u64,
}

impl CacheCounters {
    /// Hit fraction of all lookups so far (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Counters of one persistent artifact store: entries on disk, warm-start
/// loads, spills, and the corrupt entries quarantined instead of served.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct StoreCounters {
    /// Committed entries currently on disk.
    pub entries: u64,
    /// Entries loaded into the cache at warm-start.
    pub loaded: u64,
    /// Entries spilled to disk since boot.
    pub spilled: u64,
    /// Corrupt entries moved to the quarantine directory.
    pub quarantined: u64,
    /// Spill attempts that failed with an I/O error (the request still
    /// succeeded; only persistence was lost).
    pub spill_errors: u64,
}

/// Per-verb request counters of one compile service: how many requests
/// of this protocol verb were admitted, answered successfully, and
/// answered with an error (deadline, cancellation, panic, compile
/// failure — anything with `"ok":false`).
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct VerbCounters {
    /// The protocol verb (`analyze`, `schedule`, …).
    pub verb: String,
    /// Requests of this verb admitted to the queue.
    pub accepted: u64,
    /// Requests of this verb that produced an `"ok":true` response.
    pub completed: u64,
    /// Requests of this verb that produced an error response.
    pub failed: u64,
}

/// Counters of one compile service: admission, completion and rejection
/// counts, queue high-water mark, request latencies, and the result
/// cache's counters. The stable serde payload of the service's
/// `metrics` verb.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ServiceCounters {
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests that produced a successful response.
    pub completed: u64,
    /// Requests rejected with a typed `Overloaded` error at admission.
    pub rejected_overloaded: u64,
    /// Requests rejected with a typed `RateLimited` error at admission
    /// (per-client token bucket or in-flight cap).
    pub rate_limited: u64,
    /// Requests that failed their wall-clock deadline.
    pub deadline_expired: u64,
    /// Requests cancelled cooperatively before completing.
    pub cancelled: u64,
    /// Requests whose pipeline panicked (the panic was confined to the
    /// request; the worker survived).
    pub panicked: u64,
    /// Highest queue depth observed at admission.
    pub max_queue_depth: u64,
    /// p50 request latency, microseconds (admission to response).
    pub p50_micros: u64,
    /// p99 request latency, microseconds.
    pub p99_micros: u64,
    /// Sum of all request latencies, microseconds (exact, unlike a sum
    /// reconstructed from histogram bucket bounds).
    pub latency_sum_micros: u64,
    /// Power-of-two latency histogram over completed requests.
    pub latency: Vec<HistogramBucket>,
    /// Per-verb accepted/completed/failed counts, in protocol verb
    /// order; verbs with no traffic are omitted.
    pub per_verb: Vec<VerbCounters>,
    /// The sharded result cache's counters.
    pub cache: CacheCounters,
    /// The persistent artifact store's counters; `None` when the service
    /// runs without a store.
    pub store: Option<StoreCounters>,
}

/// Worker-pool statistics for one batched run (see
/// [`batch::parallel_map_profiled`](crate::batch::parallel_map_profiled)).
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct BatchCounters {
    /// Workers the pool ran with.
    pub threads: usize,
    /// Items processed.
    pub items: usize,
    /// Items each worker claimed (length = `threads`).
    pub items_per_worker: Vec<u64>,
    /// Wall-clock nanoseconds from first claim to full queue drain.
    pub drain_nanos: u64,
    /// Per-item latency histogram.
    pub latency: Vec<HistogramBucket>,
}

/// The full profile of a compilation: stage spans, aggregated engine
/// counters, per-detection counters, and (for batched runs) pool stats.
///
/// This is the stable serde payload behind `tpnc --profile --format json`
/// and the bench binaries' `--profile` output.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct MetricsReport {
    /// Timed pipeline stages, in execution order. Empty when profiling
    /// was disabled (counters are still collected).
    pub stages: Vec<StageSpan>,
    /// Engine counters summed over every detection run.
    pub engine: EngineCounters,
    /// One entry per detection run (plain frustum, SCP depths).
    pub detections: Vec<DetectionCounters>,
    /// Worker-pool stats, present for batched runs.
    pub batch: Option<BatchCounters>,
}

impl MetricsReport {
    /// Renders the human-readable `--profile` text block.
    pub fn render_text(&self) -> String {
        let mut out = String::from("profile:\n");
        if self.stages.is_empty() {
            out.push_str("  stages: (profiling disabled)\n");
        } else {
            out.push_str("  stages:\n");
            for s in &self.stages {
                let _ = writeln!(out, "    {:<24} {:>12.3} us", s.stage, s.nanos as f64 / 1e3);
            }
        }
        let e = &self.engine;
        let _ = writeln!(
            out,
            "  engine: {} instants, {} firings, {} completions",
            e.instants, e.firings, e.completions
        );
        let _ = writeln!(
            out,
            "  startable pruning: {} scanned, {} pruned without rescan",
            e.startable_scanned, e.startable_pruned
        );
        for d in &self.detections {
            let _ = writeln!(
                out,
                "  detection {}: {} instants, {} digest candidates, {} replays, {} confirmed, {} collisions, {} checkpoints",
                d.context,
                d.instants,
                d.digest_candidates,
                d.replays,
                d.confirmed,
                d.collisions,
                d.checkpoints
            );
        }
        if let Some(b) = &self.batch {
            let _ = writeln!(
                out,
                "  batch: {} items on {} workers, drain {:.3} us, per-worker {:?}",
                b.items,
                b.threads,
                b.drain_nanos as f64 / 1e3,
                b.items_per_worker
            );
            for bucket in &b.latency {
                if bucket.count > 0 {
                    let _ = writeln!(
                        out,
                        "    latency <= {:>8} us: {}",
                        bucket.le_micros, bucket.count
                    );
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Prometheus text exposition (version 0.0.4).
//
// Counters end in `_total`, gauges are bare, and the power-of-two
// latency histograms map onto native Prometheus histograms: per-bucket
// counts become cumulative `_bucket{le="..."}` samples plus `+Inf`,
// `_count` is the sample size, and `_sum` is either the exact sum (the
// service tracks one) or an upper-bound estimate from bucket bounds
// (batch pools only keep the histogram).
// ---------------------------------------------------------------------

/// The content type Prometheus scrapers expect for [`prometheus_service`]
/// and [`prometheus_report`] output.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

fn prom_escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn prom_metric(out: &mut String, name: &str, kind: &str, help: &str, samples: &[(String, u64)]) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    for (labels, value) in samples {
        let _ = writeln!(out, "{name}{labels} {value}");
    }
}

fn prom_scalar(out: &mut String, name: &str, kind: &str, help: &str, value: u64) {
    prom_metric(out, name, kind, help, &[(String::new(), value)]);
}

/// Upper-bound estimate of the sum of a histogram's samples, from each
/// bucket's inclusive upper bound. Used as `_sum` when the exact sum was
/// not tracked alongside the histogram.
pub fn histogram_upper_sum_micros(buckets: &[HistogramBucket]) -> u64 {
    buckets
        .iter()
        .map(|b| b.le_micros.saturating_mul(b.count))
        .fold(0, u64::saturating_add)
}

fn prom_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    buckets: &[HistogramBucket],
    sum_micros: u64,
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for b in buckets {
        cumulative += b.count;
        let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", b.le_micros);
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
    let _ = writeln!(out, "{name}_sum {sum_micros}");
    let _ = writeln!(out, "{name}_count {cumulative}");
}

/// Renders a [`ServiceCounters`] snapshot (including its
/// [`CacheCounters`] and per-verb breakdown) as a Prometheus text
/// exposition. The payload behind the service's `metrics_prometheus`
/// verb.
pub fn prometheus_service(c: &ServiceCounters) -> String {
    let mut out = String::new();
    prom_scalar(
        &mut out,
        "tpn_service_workers",
        "gauge",
        "Worker threads serving the admission queue.",
        c.workers as u64,
    );
    prom_scalar(
        &mut out,
        "tpn_service_queue_capacity",
        "gauge",
        "Admission queue capacity.",
        c.queue_capacity as u64,
    );
    prom_scalar(
        &mut out,
        "tpn_service_accepted_total",
        "counter",
        "Requests admitted to the queue.",
        c.accepted,
    );
    prom_scalar(
        &mut out,
        "tpn_service_completed_total",
        "counter",
        "Requests that produced a successful response.",
        c.completed,
    );
    prom_scalar(
        &mut out,
        "tpn_service_rejected_overloaded_total",
        "counter",
        "Requests rejected with a typed Overloaded error at admission.",
        c.rejected_overloaded,
    );
    prom_scalar(
        &mut out,
        "tpn_service_rate_limited_total",
        "counter",
        "Requests rejected with a typed RateLimited error at admission.",
        c.rate_limited,
    );
    prom_scalar(
        &mut out,
        "tpn_service_deadline_expired_total",
        "counter",
        "Requests that failed their wall-clock deadline.",
        c.deadline_expired,
    );
    prom_scalar(
        &mut out,
        "tpn_service_cancelled_total",
        "counter",
        "Requests cancelled cooperatively before completing.",
        c.cancelled,
    );
    prom_scalar(
        &mut out,
        "tpn_service_panicked_total",
        "counter",
        "Requests whose pipeline panicked (worker survived).",
        c.panicked,
    );
    prom_scalar(
        &mut out,
        "tpn_service_queue_depth_max",
        "gauge",
        "Highest queue depth observed at admission.",
        c.max_queue_depth,
    );
    if !c.per_verb.is_empty() {
        let mut samples = Vec::new();
        for v in &c.per_verb {
            let verb = prom_escape_label(&v.verb);
            samples.push((
                format!("{{verb=\"{verb}\",outcome=\"accepted\"}}"),
                v.accepted,
            ));
            samples.push((
                format!("{{verb=\"{verb}\",outcome=\"completed\"}}"),
                v.completed,
            ));
            samples.push((format!("{{verb=\"{verb}\",outcome=\"failed\"}}"), v.failed));
        }
        prom_metric(
            &mut out,
            "tpn_service_verb_requests_total",
            "counter",
            "Per-verb request outcomes.",
            &samples,
        );
    }
    prom_scalar(
        &mut out,
        "tpn_cache_hits_total",
        "counter",
        "Result cache lookups that found a live entry.",
        c.cache.hits,
    );
    prom_scalar(
        &mut out,
        "tpn_cache_misses_total",
        "counter",
        "Result cache lookups that missed.",
        c.cache.misses,
    );
    prom_scalar(
        &mut out,
        "tpn_cache_evictions_total",
        "counter",
        "Result cache entries evicted to respect the weight capacity.",
        c.cache.evictions,
    );
    prom_scalar(
        &mut out,
        "tpn_cache_entries",
        "gauge",
        "Live result cache entries across all shards.",
        c.cache.entries,
    );
    prom_scalar(
        &mut out,
        "tpn_cache_weight",
        "gauge",
        "Total weight of live result cache entries.",
        c.cache.weight,
    );
    prom_scalar(
        &mut out,
        "tpn_cache_capacity",
        "gauge",
        "Configured result cache weight capacity.",
        c.cache.capacity,
    );
    if let Some(store) = &c.store {
        prom_scalar(
            &mut out,
            "tpn_store_entries",
            "gauge",
            "Committed artifact-store entries on disk.",
            store.entries,
        );
        prom_scalar(
            &mut out,
            "tpn_store_loaded_total",
            "counter",
            "Artifact-store entries loaded into the cache at warm-start.",
            store.loaded,
        );
        prom_scalar(
            &mut out,
            "tpn_store_spilled_total",
            "counter",
            "Artifact-store entries spilled to disk since boot.",
            store.spilled,
        );
        prom_scalar(
            &mut out,
            "tpn_store_quarantined_total",
            "counter",
            "Corrupt artifact-store entries quarantined instead of served.",
            store.quarantined,
        );
        prom_scalar(
            &mut out,
            "tpn_store_spill_errors_total",
            "counter",
            "Artifact-store spill attempts that failed with an I/O error.",
            store.spill_errors,
        );
    }
    prom_histogram(
        &mut out,
        "tpn_request_duration_micros",
        "Request latency from admission to response, microseconds.",
        &c.latency,
        c.latency_sum_micros,
    );
    out
}

/// Renders a [`MetricsReport`] (stage spans, engine/detection counters,
/// batch pool stats) as a Prometheus text exposition. The payload behind
/// `tpnc --format prometheus`.
pub fn prometheus_report(r: &MetricsReport) -> String {
    let mut out = String::new();
    if !r.stages.is_empty() {
        let samples: Vec<(String, u64)> = r
            .stages
            .iter()
            .map(|s| {
                (
                    format!("{{stage=\"{}\"}}", prom_escape_label(&s.stage)),
                    s.nanos,
                )
            })
            .collect();
        prom_metric(
            &mut out,
            "tpn_stage_duration_nanos",
            "gauge",
            "Wall-clock time of each pipeline stage, nanoseconds.",
            &samples,
        );
    }
    prom_scalar(
        &mut out,
        "tpn_engine_instants_total",
        "counter",
        "Instants simulated across every detection run.",
        r.engine.instants,
    );
    prom_scalar(
        &mut out,
        "tpn_engine_firings_total",
        "counter",
        "Transition firings started.",
        r.engine.firings,
    );
    prom_scalar(
        &mut out,
        "tpn_engine_completions_total",
        "counter",
        "Transition firings completed.",
        r.engine.completions,
    );
    prom_scalar(
        &mut out,
        "tpn_engine_startable_scanned_total",
        "counter",
        "Candidates placed on fire-phase startable lists.",
        r.engine.startable_scanned,
    );
    prom_scalar(
        &mut out,
        "tpn_engine_startable_pruned_total",
        "counter",
        "Candidates removed by incremental pruning.",
        r.engine.startable_pruned,
    );
    if !r.detections.is_empty() {
        let mut instants = Vec::new();
        let mut candidates = Vec::new();
        let mut replays = Vec::new();
        let mut confirmed = Vec::new();
        let mut collisions = Vec::new();
        let mut checkpoints = Vec::new();
        for d in &r.detections {
            let labels = format!("{{context=\"{}\"}}", prom_escape_label(&d.context));
            instants.push((labels.clone(), d.instants));
            candidates.push((labels.clone(), d.digest_candidates));
            replays.push((labels.clone(), d.replays));
            confirmed.push((labels.clone(), d.confirmed));
            collisions.push((labels.clone(), d.collisions));
            checkpoints.push((labels, d.checkpoints));
        }
        prom_metric(
            &mut out,
            "tpn_detection_instants_total",
            "counter",
            "Instants simulated by each detection run.",
            &instants,
        );
        prom_metric(
            &mut out,
            "tpn_detection_digest_candidates_total",
            "counter",
            "Digest-index candidate hits.",
            &candidates,
        );
        prom_metric(
            &mut out,
            "tpn_detection_replays_total",
            "counter",
            "Checkpoint replays run to verify candidates.",
            &replays,
        );
        prom_metric(
            &mut out,
            "tpn_detection_confirmed_total",
            "counter",
            "Replays confirming a true repetition.",
            &confirmed,
        );
        prom_metric(
            &mut out,
            "tpn_detection_collisions_total",
            "counter",
            "Candidates that were 64-bit digest collisions.",
            &collisions,
        );
        prom_metric(
            &mut out,
            "tpn_detection_checkpoints_total",
            "counter",
            "Packed checkpoints written along the trace.",
            &checkpoints,
        );
    }
    if let Some(b) = &r.batch {
        prom_scalar(
            &mut out,
            "tpn_batch_threads",
            "gauge",
            "Workers the batch pool ran with.",
            b.threads as u64,
        );
        prom_scalar(
            &mut out,
            "tpn_batch_items",
            "gauge",
            "Items processed by the batch pool.",
            b.items as u64,
        );
        prom_scalar(
            &mut out,
            "tpn_batch_drain_nanos",
            "gauge",
            "Wall-clock nanoseconds from first claim to full queue drain.",
            b.drain_nanos,
        );
        prom_histogram(
            &mut out,
            "tpn_batch_item_duration_micros",
            "Per-item batch latency, microseconds (sum is an upper-bound estimate).",
            &b.latency,
            histogram_upper_sum_micros(&b.latency),
        );
    }
    out
}

/// A thread-safe collector of [`StageSpan`]s, shared (via `Arc`) by a
/// [`CompiledLoop`](crate::CompiledLoop) and its clones so every memoized
/// stage is timed exactly once.
#[derive(Debug, Default)]
pub struct Profiler {
    spans: Mutex<Vec<StageSpan>>,
}

impl Profiler {
    /// Records one finished span.
    pub fn record(&self, stage: impl Into<String>, elapsed: Duration) {
        self.spans
            .lock()
            .expect("profiler poisoned")
            .push(StageSpan {
                stage: stage.into(),
                nanos: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            });
    }

    /// Times `f` and records it under `stage`.
    pub fn time<R>(&self, stage: impl Into<String>, f: impl FnOnce() -> R) -> R {
        let started = Instant::now();
        let r = f();
        self.record(stage, started.elapsed());
        r
    }

    /// The spans recorded so far, in execution order.
    pub fn spans(&self) -> Vec<StageSpan> {
        self.spans.lock().expect("profiler poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_cover_and_count() {
        let h = latency_histogram(&[500, 1_500, 3_000, 3_000, 1_000_000]);
        // Bounds double: 1, 2, 4, ..., 1024 us.
        assert_eq!(h.first().unwrap().le_micros, 1);
        assert_eq!(h.last().unwrap().le_micros, 1024);
        assert_eq!(h.iter().map(|b| b.count).sum::<u64>(), 5);
        assert_eq!(h[0].count, 1); // 500 ns -> <= 1 us
        assert_eq!(h[1].count, 1); // 1.5 us -> <= 2 us
        assert_eq!(h[2].count, 2); // 3 us -> <= 4 us
                                   // Empty input: one empty bucket, no panic.
        let empty = latency_histogram(&[]);
        assert_eq!(empty.len(), 1);
        assert_eq!(empty[0].count, 0);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut lat = vec![50, 10, 40, 30, 20];
        assert_eq!(percentile_nanos(&mut lat, 0.5), 30);
        assert_eq!(percentile_nanos(&mut lat, 0.99), 50);
        assert_eq!(percentile_nanos(&mut lat, 0.0), 10);
        assert_eq!(percentile_nanos(&mut [], 0.5), 0);
        assert_eq!(percentile_nanos(&mut [7], 0.5), 7);
    }

    #[test]
    fn histogram_slots_land_on_power_of_two_boundaries() {
        // Exactly 1 us, 2 us, 4 us sit in slots 0, 1, 2; one past each
        // bound rolls into the next slot.
        let h = latency_histogram(&[1_000, 2_000, 4_000, 1_001, 2_001, 4_001]);
        assert_eq!(h[0].count, 1); // 1 us
        assert_eq!(h[1].count, 2); // 2 us and 1.001 us
        assert_eq!(h[2].count, 2); // 4 us and 2.001 us
        assert_eq!(h[3].count, 1); // 4.001 us
        assert_eq!(h[3].le_micros, 8);
        // Sub-microsecond latencies (including 0 ns) clamp into slot 0.
        let tiny = latency_histogram(&[0, 1, 999]);
        assert_eq!(tiny.len(), 1);
        assert_eq!(tiny[0].count, 3);
    }

    #[test]
    fn percentile_edge_cases() {
        // All-identical sample: every percentile is that value.
        let mut same = vec![42; 9];
        for p in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(percentile_nanos(&mut same, p), 42);
        }
        // p = 0.0 is the minimum, p = 1.0 the maximum, even for n = 1.
        assert_eq!(percentile_nanos(&mut [9], 0.0), 9);
        assert_eq!(percentile_nanos(&mut [9], 1.0), 9);
        assert_eq!(percentile_nanos(&mut [], 0.0), 0);
        assert_eq!(percentile_nanos(&mut [], 1.0), 0);
        // Out-of-range p clamps instead of panicking.
        assert_eq!(percentile_nanos(&mut [1, 2, 3], -0.5), 1);
        assert_eq!(percentile_nanos(&mut [1, 2, 3], 7.0), 3);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        /// Bucket counts always sum to the sample size and the final
        /// bucket's bound covers the slowest sample.
        #[test]
        fn histogram_counts_cover_the_sample(
            sample in proptest::collection::vec(proptest::prelude::any::<u64>(), 0..64usize),
        ) {
            let h = latency_histogram(&sample);
            proptest::prop_assert_eq!(
                h.iter().map(|b| b.count).sum::<u64>(),
                sample.len() as u64
            );
            let max_micros = sample
                .iter()
                .map(|n| n.div_ceil(1_000).max(1))
                .max()
                .unwrap_or(1);
            proptest::prop_assert!(h.last().unwrap().le_micros >= max_micros);
            // Bounds double monotonically from 1 us.
            for (i, b) in h.iter().enumerate() {
                proptest::prop_assert_eq!(b.le_micros, 1u64 << i);
            }
        }
    }

    #[test]
    fn prometheus_service_exposition_is_well_formed() {
        let c = ServiceCounters {
            workers: 4,
            queue_capacity: 64,
            accepted: 10,
            completed: 8,
            rejected_overloaded: 1,
            rate_limited: 2,
            deadline_expired: 1,
            cancelled: 0,
            panicked: 0,
            max_queue_depth: 3,
            p50_micros: 2,
            p99_micros: 7,
            latency_sum_micros: 30,
            latency: latency_histogram(&[500, 1_500, 3_000, 7_000]),
            per_verb: vec![VerbCounters {
                verb: "analyze".into(),
                accepted: 10,
                completed: 8,
                failed: 2,
            }],
            cache: CacheCounters {
                hits: 5,
                misses: 5,
                evictions: 0,
                entries: 5,
                weight: 5,
                capacity: 100,
            },
            store: Some(StoreCounters {
                entries: 5,
                loaded: 3,
                spilled: 2,
                quarantined: 1,
                spill_errors: 0,
            }),
        };
        let text = prometheus_service(&c);
        assert!(text.contains("# TYPE tpn_service_accepted_total counter"));
        assert!(text.contains("tpn_service_accepted_total 10"));
        assert!(text.contains("tpn_service_rate_limited_total 2"));
        assert!(text.contains("tpn_store_entries 5"));
        assert!(text.contains("tpn_store_loaded_total 3"));
        assert!(text.contains("tpn_store_quarantined_total 1"));
        assert!(text
            .contains("tpn_service_verb_requests_total{verb=\"analyze\",outcome=\"completed\"} 8"));
        assert!(text.contains("# TYPE tpn_request_duration_micros histogram"));
        // Buckets are cumulative: 1, 2, 3, 4 over the four samples.
        assert!(text.contains("tpn_request_duration_micros_bucket{le=\"1\"} 1"));
        assert!(text.contains("tpn_request_duration_micros_bucket{le=\"2\"} 2"));
        assert!(text.contains("tpn_request_duration_micros_bucket{le=\"4\"} 3"));
        assert!(text.contains("tpn_request_duration_micros_bucket{le=\"8\"} 4"));
        assert!(text.contains("tpn_request_duration_micros_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("tpn_request_duration_micros_sum 30"));
        assert!(text.contains("tpn_request_duration_micros_count 4"));
        assert!(text.contains("tpn_cache_hits_total 5"));
        // Every non-comment line is `name[labels] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# HELP ") || line.starts_with("# TYPE "));
            } else {
                assert!(line.rsplit_once(' ').is_some(), "bad sample line: {line}");
            }
        }
    }

    #[test]
    fn prometheus_report_covers_stages_detections_and_batch() {
        let report = MetricsReport {
            stages: vec![StageSpan {
                stage: "parse".into(),
                nanos: 1_234,
            }],
            engine: EngineCounters {
                instants: 10,
                firings: 20,
                completions: 18,
                startable_scanned: 25,
                startable_pruned: 5,
            },
            detections: vec![DetectionCounters::from_stats(
                "scp[l=2]",
                &DetectionStats {
                    instants: 10,
                    digest_candidates: 3,
                    replays: 2,
                    confirmed: 1,
                    checkpoints: 0,
                    engine: Default::default(),
                },
            )],
            batch: Some(BatchCounters {
                threads: 2,
                items: 3,
                items_per_worker: vec![2, 1],
                drain_nanos: 5_000,
                latency: latency_histogram(&[1_000, 1_500, 3_000]),
            }),
        };
        let text = prometheus_report(&report);
        assert!(text.contains("tpn_stage_duration_nanos{stage=\"parse\"} 1234"));
        assert!(text.contains("tpn_engine_instants_total 10"));
        assert!(text.contains("tpn_detection_replays_total{context=\"scp[l=2]\"} 2"));
        assert!(text.contains("tpn_batch_item_duration_micros_count 3"));
        // Upper-bound sum: 1 + 2 + 4 us.
        assert!(text.contains("tpn_batch_item_duration_micros_sum 7"));
    }

    #[test]
    fn prometheus_label_escaping() {
        assert_eq!(prom_escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn cache_counters_hit_rate() {
        let mut c = CacheCounters::default();
        assert_eq!(c.hit_rate(), 0.0);
        c.hits = 3;
        c.misses = 1;
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("\"hits\":3"), "got: {json}");
    }

    #[test]
    fn profiler_records_in_order() {
        let p = Profiler::default();
        let v = p.time("first", || 41 + 1);
        assert_eq!(v, 42);
        p.record("second", Duration::from_micros(7));
        let spans = p.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, "first");
        assert_eq!(spans[1].stage, "second");
        assert_eq!(spans[1].nanos, 7_000);
    }

    #[test]
    fn report_serialises_and_renders() {
        let report = MetricsReport {
            stages: vec![StageSpan {
                stage: "parse".into(),
                nanos: 1_234,
            }],
            engine: EngineCounters {
                instants: 10,
                firings: 20,
                completions: 18,
                startable_scanned: 25,
                startable_pruned: 5,
            },
            detections: vec![DetectionCounters::from_stats(
                "frustum",
                &DetectionStats {
                    instants: 10,
                    digest_candidates: 3,
                    replays: 2,
                    confirmed: 1,
                    checkpoints: 0,
                    engine: Default::default(),
                },
            )],
            batch: None,
        };
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"stages\":[{\"stage\":\"parse\",\"nanos\":1234}]"));
        assert!(json.contains("\"collisions\":1"));
        assert!(json.contains("\"batch\":null"));
        let text = report.render_text();
        assert!(text.contains("detection frustum"));
        assert!(text.contains("10 instants"));
    }
}
