//! Degenerate-input hardening: empty sources, zero-node loops, trivial
//! self-feedback loops and poisoned batch items must flow through the
//! whole façade as typed errors (or succeed), never as panics.

use proptest::prelude::*;
use tpn::batch::{parallel_map_isolated, parallel_map_profiled, Batch, BatchPanic};
use tpn::dataflow::SdspBuilder;
use tpn::sched::SchedError;
use tpn::{CompileOptions, CompiledLoop, Error, SchedulePolicy};

fn empty_loop() -> CompiledLoop {
    CompiledLoop::from_sdsp(SdspBuilder::new().finish().unwrap())
}

#[test]
fn empty_source_is_a_clean_language_error() {
    for source in ["", "   ", "\n\n", "do", "do i from 1 to n {"] {
        let err = CompiledLoop::from_source(source).unwrap_err();
        assert!(matches!(err, Error::Lang(_)), "{source:?}: {err:?}");
        assert!(!err.to_string().is_empty());
    }
    // An empty body is grammatical: it compiles to a zero-node loop, whose
    // stages then fail with typed errors (see zero_node_sdsp_never_panics).
    let lp = CompiledLoop::from_source("do i from 1 to n { }").unwrap();
    assert_eq!(lp.size(), 0);
    assert!(lp.schedule().is_err());
}

#[test]
fn zero_node_sdsp_never_panics() {
    let lp = empty_loop();
    assert_eq!(lp.size(), 0);
    // Every stage must return a typed error (or a trivial success such as
    // the storage rewrite of an empty loop) — no stage may panic.
    assert!(lp.analyze().is_err());
    assert!(lp.frustum().is_err());
    assert!(lp.schedule().is_err());
    assert!(lp.rate_report().is_err());
    assert!(lp.emit(4).is_err());
    for depth in 1..=4 {
        assert!(lp.scp(depth).is_err(), "scp depth {depth}");
    }
    let _ = lp.storage();
    let _ = lp.balance();
    let _ = lp.steady_net();
    // The metrics report of a failed pipeline is well-formed and empty.
    let report = lp.metrics_report();
    assert!(report.detections.is_empty());
    assert_eq!(report.engine.instants, 0);
}

#[test]
fn zero_node_rate_errors_are_typed() {
    let lp = empty_loop();
    let err = lp.rate_report().unwrap_err();
    assert!(
        err.to_string().contains("empty") || matches!(err, Error::Sched(_) | Error::Petri(_)),
        "got: {err:?}"
    );
}

#[test]
fn single_node_self_feedback_compiles_end_to_end() {
    let source = "do i from 2 to n { X[i] := X[i-1] + 1; }";
    let lp = CompiledLoop::from_source_with(
        source,
        CompileOptions::new()
            .profile(true)
            .engine(SchedulePolicy::Frustum),
    )
    .unwrap();
    assert_eq!(lp.size(), 1);
    let analysis = lp.analyze().unwrap();
    assert_eq!(analysis.optimal_rate.to_string(), "1");
    let schedule = lp.schedule().unwrap();
    assert_eq!(schedule.initiation_interval().to_string(), "1");
    assert!(lp.rate_report().unwrap().is_time_optimal());
    let run = lp.scp(2).unwrap();
    assert!(run.rates.respects_resource_bound());
    // The profile saw every stage and both detections.
    let report = lp.metrics_report();
    let stages: Vec<&str> = report.stages.iter().map(|s| s.stage.as_str()).collect();
    for expected in [
        "parse",
        "lower",
        "to_petri",
        "analyze",
        "frustum_detection",
        "schedule_derivation",
        "scp_expansion[l=2]",
        "scp_detection[l=2]",
    ] {
        assert!(stages.contains(&expected), "missing stage {expected}");
    }
    assert_eq!(report.detections.len(), 2);
    assert!(report.engine.instants > 0);
}

#[test]
fn auto_engine_takes_the_analytic_path_on_marked_graphs() {
    let source = "do i from 2 to n { X[i] := X[i-1] + 1; }";
    let lp = CompiledLoop::from_source_with(source, CompileOptions::new().profile(true)).unwrap();
    assert_eq!(lp.engine(), SchedulePolicy::Analytic);
    let schedule = lp.schedule().unwrap();
    assert_eq!(schedule.initiation_interval().to_string(), "1");
    assert!(lp.rate_report().unwrap().is_time_optimal());
    // No simulation ran: the profile records the analytic stages and no
    // frustum detection.
    let report = lp.metrics_report();
    let stages: Vec<&str> = report.stages.iter().map(|s| s.stage.as_str()).collect();
    assert!(stages.contains(&"analytic_schedule"), "stages: {stages:?}");
    assert!(!stages.contains(&"frustum_detection"), "stages: {stages:?}");
    assert!(report.detections.is_empty());
}

fn engines(source: &str) -> [CompiledLoop; 2] {
    [SchedulePolicy::Analytic, SchedulePolicy::Frustum].map(|engine| {
        CompiledLoop::from_source_with(source, CompileOptions::new().engine(engine)).unwrap()
    })
}

#[test]
fn zero_node_loops_error_identically_under_both_engines() {
    for engine in [
        SchedulePolicy::Auto,
        SchedulePolicy::Analytic,
        SchedulePolicy::Frustum,
    ] {
        let lp = CompiledLoop::from_sdsp_with(
            SdspBuilder::new().finish().unwrap(),
            CompileOptions::new().engine(engine),
        );
        assert!(
            matches!(
                lp.schedule().unwrap_err(),
                Error::Sched(SchedError::EmptyLoop)
            ),
            "{engine:?} schedule"
        );
        assert!(
            matches!(
                lp.rate_report().unwrap_err(),
                Error::Sched(SchedError::EmptyLoop)
            ),
            "{engine:?} rate"
        );
    }
}

#[test]
fn disconnected_unequal_rate_bodies_error_identically_under_both_engines() {
    // Two independent components: X runs at rate 1, the P/Q recurrence at
    // rate 1/2. No uniform-rate schedule exists; both engines must agree
    // on the typed error rather than one panicking or succeeding.
    let source = "do i from 2 to n {
        X[i] := X[i-1] + 1;
        P[i] := Q[i-1] + 1;
        Q[i] := P[i] + 2;
    }";
    for lp in engines(source) {
        let err = lp.schedule().unwrap_err();
        assert!(
            matches!(err, Error::Sched(SchedError::NonUniformCounts { .. })),
            "{:?}: {err:?}",
            lp.options().get_engine()
        );
    }
}

#[test]
fn engines_agree_on_rates_for_connected_bodies() {
    let source = "do i from 2 to n {
        A[i] := X[i] + 5;
        B[i] := Y[i] + A[i];
        C[i] := A[i] + E[i-1];
        D[i] := B[i] + C[i];
        E[i] := W[i] + D[i];
    }";
    let [analytic, frustum] = engines(source);
    let ra = analytic.rate_report().unwrap();
    let rf = frustum.rate_report().unwrap();
    assert_eq!(ra.measured, rf.measured);
    assert_eq!(ra.optimal, rf.optimal);
    assert_eq!(
        analytic.schedule().unwrap().initiation_interval(),
        frustum.schedule().unwrap().initiation_interval()
    );
}

#[test]
fn poisoned_batch_item_is_isolated() {
    let items: Vec<u64> = (0..16).collect();
    let results = parallel_map_isolated(&items, 4, |i, &x| {
        assert!(i != 5, "poisoned item five");
        x * 2
    });
    assert_eq!(results.len(), 16);
    for (i, r) in results.iter().enumerate() {
        if i == 5 {
            let panic = r.as_ref().unwrap_err();
            assert_eq!(panic.index, 5);
            assert!(panic.message.contains("poisoned item five"));
        } else {
            assert_eq!(*r.as_ref().unwrap(), items[i] * 2);
        }
    }
}

#[test]
fn profiled_batch_reports_pool_stats() {
    let items: Vec<u64> = (0..12).collect();
    let (results, stats) = parallel_map_profiled(&items, 3, |_, &x| x + 1);
    assert!(results.iter().all(|r| r.is_ok()));
    assert_eq!(stats.threads, 3);
    assert_eq!(stats.items, 12);
    assert_eq!(stats.items_per_worker.iter().sum::<u64>(), 12);
    assert_eq!(
        stats.latency.iter().map(|b| b.count).sum::<u64>(),
        12,
        "histogram covers every item"
    );
}

#[test]
fn batch_panic_surfaces_as_typed_error() {
    let panic = BatchPanic {
        index: 7,
        message: "boom".into(),
    };
    let err: Error = panic.into();
    assert!(matches!(err, Error::Panic(_)));
    assert_eq!(err.to_string(), "batch worker panicked on item 7: boom");
    assert!(std::error::Error::source(&err).is_some());
}

#[test]
fn batch_map_isolated_confines_stage_panics() {
    let sources = [
        "do i from 2 to n { X[i] := Z[i] * (Y[i] - X[i-1]); }",
        "do i from 1 to n {\
            A[i] := X[i] + 5;\
            B[i] := Y[i] + A[i];\
            C[i] := A[i] + E[i-1];\
            D[i] := B[i] + C[i];\
            E[i] := W[i] + D[i];\
        }",
    ];
    let batch = Batch::new().threads(2);
    let loops: Vec<CompiledLoop> = batch
        .compile_sources(&sources)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    let results = batch.map_isolated(&loops, |lp| {
        assert!(lp.size() != 5, "no five-node loops allowed");
        lp.size()
    });
    assert_eq!(*results[0].as_ref().unwrap(), 2);
    let panic = results[1].as_ref().unwrap_err();
    assert_eq!(panic.index, 1);
    assert!(panic.message.contains("no five-node loops"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary junk through the front door: compilation returns, it
    /// never panics.
    #[test]
    fn arbitrary_sources_never_panic(source in ".{0,120}") {
        let _ = CompiledLoop::from_source(&source);
    }

    /// Loop-shaped junk exercises the parser deeper; still no panics,
    /// and successful compiles must survive every downstream stage.
    #[test]
    fn loop_shaped_sources_never_panic(
        body in "[A-Z]\\[i\\] := [A-Z]\\[i(-[0-9])?\\]( [+*-] [A-Z]\\[i(-[0-9])?\\])?;( [A-Z]\\[i\\] := [A-Z]\\[i\\] \\+ [0-9];)?",
    ) {
        let source = format!("do i from 2 to n {{ {body} }}");
        if let Ok(lp) = CompiledLoop::from_source(&source) {
            let _ = lp.analyze();
            let _ = lp.schedule();
            let _ = lp.rate_report();
            let _ = lp.scp(2);
            let _ = lp.metrics_report();
        }
    }

    /// Degenerate loops at every SCP depth: typed errors, no panics.
    #[test]
    fn empty_loops_error_at_every_depth(depth in 1u64..6) {
        let lp = empty_loop();
        prop_assert!(lp.scp(depth).is_err());
        prop_assert!(lp.rate_report().is_err());
    }
}
