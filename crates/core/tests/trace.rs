//! End-to-end checks of the firing-event tracing subsystem through the
//! [`CompiledLoop`] facade: byte-level determinism, equality of the
//! live-recorded and step-record-derived traces, and replay validation
//! (safety, liveness, steady-state rate) over every Livermore kernel.

use tpn::{CompileOptions, CompiledLoop};
use tpn_livermore::kernels;

const L5: &str = "do i from 2 to n { X[i] := Z[i] * (Y[i] - X[i-1]); }";

#[test]
fn traces_are_deterministic_across_compilations() {
    let a = CompiledLoop::from_source(L5).unwrap();
    let b = CompiledLoop::from_source(L5).unwrap();
    let ta = a.firing_trace().unwrap();
    let tb = b.firing_trace().unwrap();
    assert_eq!(ta.chrome_trace_json(), tb.chrome_trace_json());
    assert_eq!(ta.jsonl(), tb.jsonl());
}

#[test]
fn recorded_and_derived_traces_are_byte_identical() {
    for k in kernels() {
        let recorded =
            CompiledLoop::from_source_with(k.source, CompileOptions::new().trace(true)).unwrap();
        let derived = CompiledLoop::from_source(k.source).unwrap();
        let tr = recorded.firing_trace().unwrap();
        let td = derived.firing_trace().unwrap();
        assert!(tr.is_complete(), "{}: recording overflowed", k.name);
        assert_eq!(
            tr.chrome_trace_json(),
            td.chrome_trace_json(),
            "{}: recorded and derived Chrome exports differ",
            k.name
        );
        assert_eq!(tr.jsonl(), td.jsonl(), "{}: JSONL exports differ", k.name);
    }
}

#[test]
fn replay_validation_confirms_every_kernel() {
    for k in kernels() {
        let lp = CompiledLoop::from_source(k.source).unwrap();
        let v = lp
            .validate_trace()
            .unwrap_or_else(|e| panic!("{}: trace replay rejected a genuine run: {e}", k.name));
        assert!(v.is_safe(), "{}: marking exceeded one token", k.name);
        assert!(v.events_checked > 0, "{}: empty event stream", k.name);
    }
}

#[test]
fn replay_validation_confirms_scp_runs() {
    for k in kernels().iter().take(4) {
        let lp = CompiledLoop::from_source(k.source).unwrap();
        let v = lp
            .validate_scp_trace(8)
            .unwrap_or_else(|e| panic!("{}: SCP trace replay rejected a genuine run: {e}", k.name));
        assert!(v.events_checked > 0, "{}: empty SCP event stream", k.name);
    }
}

#[test]
fn an_overflowed_recording_falls_back_to_the_derived_trace() {
    // Two events of capacity cannot hold a whole detection run; the
    // facade must discard the clipped ring and derive the full trace
    // from the step records instead.
    let clipped =
        CompiledLoop::from_source_with(L5, CompileOptions::new().trace(true).trace_capacity(2))
            .unwrap();
    let reference = CompiledLoop::from_source(L5).unwrap();
    let tc = clipped.firing_trace().unwrap();
    assert!(tc.is_complete());
    assert_eq!(
        tc.chrome_trace_json(),
        reference.firing_trace().unwrap().chrome_trace_json()
    );
    clipped.validate_trace().unwrap();
}

#[test]
fn degenerate_loops_trace_and_validate() {
    // A zero-node body has nothing to fire: the trace is empty but well
    // formed, and validation accepts it trivially.
    let empty = CompiledLoop::from_source("do i from 1 to n { }").unwrap();
    let trace = empty.firing_trace().unwrap();
    assert!(trace.events.is_empty());
    assert!(trace.chrome_trace_json().starts_with("{\"traceEvents\":["));
    let v = empty.validate_trace().unwrap();
    assert_eq!(v.events_checked, 0);
    // A single node feeding itself is the smallest real recurrence.
    let single = CompiledLoop::from_source("do i from 2 to n { X[i] := X[i-1] + 1; }").unwrap();
    let trace = single.firing_trace().unwrap();
    assert!(!trace.events.is_empty());
    let v = single.validate_trace().unwrap();
    assert!(v.is_safe());
    assert!(v.events_checked > 0);
}

#[test]
fn tracing_does_not_change_analysis_results() {
    for k in kernels().iter().take(4) {
        let traced =
            CompiledLoop::from_source_with(k.source, CompileOptions::new().trace(true)).unwrap();
        let plain = CompiledLoop::from_source(k.source).unwrap();
        let ft = traced.frustum().unwrap();
        let fp = plain.frustum().unwrap();
        assert_eq!(ft.start_time, fp.start_time, "{}", k.name);
        assert_eq!(ft.repeat_time, fp.repeat_time, "{}", k.name);
        assert_eq!(
            traced.rate_report().unwrap().measured,
            plain.rate_report().unwrap().measured,
            "{}",
            k.name
        );
    }
}
