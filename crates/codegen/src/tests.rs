//! Tests for emission and the verifying simulator.

use super::*;
use tpn_dataflow::interp::execute;
use tpn_dataflow::to_petri::to_petri;
use tpn_dataflow::Sdsp;
use tpn_livermore::kernels;
use tpn_sched::frustum::detect_frustum_eager;

fn schedule_of(sdsp: &Sdsp) -> LoopSchedule {
    let pn = to_petri(sdsp);
    let f = detect_frustum_eager(&pn.net, pn.marking.clone(), 100_000).unwrap();
    LoopSchedule::from_frustum(sdsp, &pn, &f).unwrap()
}

const L2: &str = "do i from 1 to n {\
    A[i] := X[i] + 5;\
    B[i] := Y[i] + A[i];\
    C[i] := A[i] + E[i-1];\
    D[i] := B[i] + C[i];\
    E[i] := W[i] + D[i];\
}";

#[test]
fn emitted_l2_matches_the_interpreter() {
    let sdsp = tpn_lang::compile(L2).unwrap();
    let schedule = schedule_of(&sdsp);
    let program = emit(&sdsp, &schedule, 50);
    let env = Env::ramp(&["X", "Y", "W"], 64, |ai, i| ai as f64 + i as f64 * 0.5);
    let outcome = run(&program, &sdsp, &env).unwrap();
    let reference = execute(&sdsp, &env, 50).unwrap();
    for (nid, _) in sdsp.nodes() {
        for iter in 0..50u64 {
            assert_eq!(
                outcome.value(nid, iter).to_bits(),
                reference.value(nid, iter as usize).to_bits(),
                "node {nid} iteration {iter}"
            );
        }
    }
}

#[test]
fn all_kernels_emit_and_run_cleanly() {
    for kernel in kernels() {
        let sdsp = kernel.sdsp();
        let schedule = schedule_of(&sdsp);
        let program = emit(&sdsp, &schedule, 40);
        let env = kernel.env(64);
        let outcome = run(&program, &sdsp, &env).unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        let reference = execute(&sdsp, &env, 40).unwrap();
        for (nid, _) in sdsp.nodes() {
            assert_eq!(
                outcome.value(nid, 39).to_bits(),
                reference.value(nid, 39).to_bits(),
                "{}: node {nid}",
                kernel.name
            );
        }
    }
}

#[test]
fn program_shape_reflects_the_schedule() {
    let sdsp = tpn_lang::compile(L2).unwrap();
    let schedule = schedule_of(&sdsp);
    let program = emit(&sdsp, &schedule, 30);
    assert_eq!(program.period, schedule.period());
    assert_eq!(program.iterations, 30);
    assert_eq!(program.buffer_capacity.len(), sdsp.acks().count());
    // Total ops = nodes × iterations.
    let total: usize = program.bundles.iter().map(|b| b.ops.len()).sum();
    assert_eq!(total, sdsp.num_nodes() * 30);
    // Bundles are strictly ordered by cycle.
    assert!(program.bundles.windows(2).all(|w| w[0].cycle < w[1].cycle));
    assert!(program.max_width >= 1);
}

#[test]
fn compact_size_is_small_relative_to_unrolled() {
    let sdsp = tpn_lang::compile(L2).unwrap();
    let schedule = schedule_of(&sdsp);
    let program = emit(&sdsp, &schedule, 100);
    // Deployed as prologue + kernel loop, the code is a few copies of the
    // body — far less than 100 unrolled iterations.
    assert!(program.compact_size() <= 3 * sdsp.num_nodes());
}

#[test]
fn render_mentions_buffers_and_nodes() {
    let sdsp = tpn_lang::compile(L2).unwrap();
    let schedule = schedule_of(&sdsp);
    let program = emit(&sdsp, &schedule, 5);
    let text = program.render(&sdsp, 10);
    assert!(text.contains("A@0"));
    assert!(text.contains("buf"));
    assert!(text.contains("||") || text.lines().count() > 1);
    assert!(text.contains("X[i+0]"));
}

#[test]
fn coalesced_storage_executes_correctly() {
    // After §6 minimisation, chains share one location; the semaphore
    // model must still produce identical values.
    let sdsp = tpn_lang::compile(L2).unwrap();
    let (optimised, report) = tpn_storage::minimize_storage(&sdsp).unwrap();
    assert!(report.after < report.before);
    let schedule = schedule_of(&optimised);
    let program = emit(&optimised, &schedule, 40);
    let env = Env::ramp(&["X", "Y", "W"], 64, |ai, i| ai as f64 * 2.0 + i as f64);
    let outcome = run(&program, &optimised, &env).unwrap();
    let reference = execute(&optimised, &env, 40).unwrap();
    let names = optimised.names();
    assert_eq!(
        outcome.value(names["E"], 39).to_bits(),
        reference.value(names["E"], 39).to_bits()
    );
}

#[test]
fn balanced_storage_executes_correctly() {
    // Capacity-2 buffers (the FIFO extension) double-buffer the DOALL
    // kernels; values must still match.
    let sdsp =
        tpn_lang::compile("doall i from 1 to n { A[i] := X[i] + 1; B[i] := A[i] * 2; }").unwrap();
    let (balanced, report) = tpn_storage::balance(&sdsp).unwrap();
    assert_eq!(report.rate_after, tpn_petri::Ratio::ONE);
    let schedule = schedule_of(&balanced);
    assert_eq!(schedule.rate(), tpn_petri::Ratio::ONE);
    let program = emit(&balanced, &schedule, 40);
    let mut env = Env::new();
    env.insert("X", (0..64).map(|i| i as f64).collect());
    let outcome = run(&program, &balanced, &env).unwrap();
    let names = balanced.names();
    assert_eq!(outcome.value(names["B"], 39), (39.0 + 1.0) * 2.0);
}

#[test]
fn width_limit_is_enforced() {
    // L2's kernel issues several ops per cycle; a width-1 machine must
    // reject it.
    let sdsp = tpn_lang::compile(L2).unwrap();
    let schedule = schedule_of(&sdsp);
    let program = emit(&sdsp, &schedule, 20);
    let env = Env::ramp(&["X", "Y", "W"], 32, |_, i| i as f64);
    assert!(matches!(
        run_with_width(&program, &sdsp, &env, Some(1)),
        Err(CodegenError::TooWide { width: 1, .. })
    ));
    // The SCP schedule, by contrast, fits width 1.
    let lp = tpn::CompiledLoop::from_sdsp(sdsp.clone());
    let scp = lp.scp(4).unwrap();
    let scp_program = emit(&sdsp, &scp.schedule, 20);
    // Pipeline transit: operand availability in the simulator uses node
    // latency only, while the SCP schedule waits the full pipe — so the
    // run is conservative and must succeed.
    run_with_width(&scp_program, &sdsp, &env, Some(1)).unwrap();
}

#[test]
fn corrupted_schedule_is_caught_by_the_simulator() {
    // Hand-build a program that reads B's input before A wrote it.
    let sdsp =
        tpn_lang::compile("doall i from 1 to n { A[i] := X[i] + 1; B[i] := A[i] * 2; }").unwrap();
    let names = sdsp.names();
    let (a, b) = (names["A"], names["B"]);
    let arc = sdsp.arc_of_operand(b, 0).unwrap();
    let bad = Program {
        bundles: vec![
            Bundle {
                cycle: 0,
                ops: vec![Op {
                    node: b,
                    iteration: 0,
                    kind: sdsp.node(b).op,
                    srcs: vec![Src::Arc(arc), Src::Lit(2.0)],
                    dsts: vec![],
                }],
            },
            Bundle {
                cycle: 1,
                ops: vec![Op {
                    node: a,
                    iteration: 0,
                    kind: sdsp.node(a).op,
                    srcs: vec![
                        Src::Env {
                            array: "X".into(),
                            offset: 0,
                        },
                        Src::Lit(1.0),
                    ],
                    dsts: vec![arc],
                }],
            },
        ],
        period: 2,
        iterations_per_period: 1,
        iterations: 1,
        buffer_capacity: sdsp.acks().map(|(_, k)| k.capacity).collect(),
        max_width: 1,
    };
    let mut env = Env::new();
    env.insert("X", vec![1.0]);
    assert!(matches!(
        run(&bad, &sdsp, &env),
        Err(CodegenError::BufferUnderflow { .. })
    ));
}

#[test]
fn premature_read_is_caught() {
    // A valid order but a read one cycle too early for a 3-cycle multiply.
    let mut b = tpn_dataflow::SdspBuilder::new();
    let a = b.node("A", OpKind::Mul, [Operand::env("X", 0), Operand::lit(2.0)]);
    let c = b.node("C", OpKind::Neg, [Operand::node(a)]);
    b.set_time(a, 3);
    let sdsp = b.finish().unwrap();
    let arc = sdsp.arc_of_operand(c, 0).unwrap();
    let program = Program {
        bundles: vec![
            Bundle {
                cycle: 0,
                ops: vec![Op {
                    node: a,
                    iteration: 0,
                    kind: OpKind::Mul,
                    srcs: vec![
                        Src::Env {
                            array: "X".into(),
                            offset: 0,
                        },
                        Src::Lit(2.0),
                    ],
                    dsts: vec![arc],
                }],
            },
            Bundle {
                cycle: 2, // too early: available at 3
                ops: vec![Op {
                    node: c,
                    iteration: 0,
                    kind: OpKind::Neg,
                    srcs: vec![Src::Arc(arc)],
                    dsts: vec![],
                }],
            },
        ],
        period: 3,
        iterations_per_period: 1,
        iterations: 1,
        buffer_capacity: sdsp.acks().map(|(_, k)| k.capacity).collect(),
        max_width: 1,
    };
    let mut env = Env::new();
    env.insert("X", vec![1.0]);
    assert!(matches!(
        run(&program, &sdsp, &env),
        Err(CodegenError::NotYetAvailable { available: 3, .. })
    ));
}

#[test]
fn overflow_is_caught() {
    // Two writes into a capacity-1 buffer with no intervening read.
    let mut b = tpn_dataflow::SdspBuilder::new();
    let a = b.node("A", OpKind::Neg, [Operand::env("X", 0)]);
    let c = b.node("C", OpKind::Neg, [Operand::node(a)]);
    let sdsp = b.finish().unwrap();
    let arc = sdsp.arc_of_operand(c, 0).unwrap();
    let write_a = |cycle: u64, iteration: u64| Bundle {
        cycle,
        ops: vec![Op {
            node: a,
            iteration,
            kind: OpKind::Neg,
            srcs: vec![Src::Env {
                array: "X".into(),
                offset: 0,
            }],
            dsts: vec![arc],
        }],
    };
    let program = Program {
        bundles: vec![write_a(0, 0), write_a(1, 1)],
        period: 2,
        iterations_per_period: 1,
        iterations: 2,
        buffer_capacity: sdsp.acks().map(|(_, k)| k.capacity).collect(),
        max_width: 1,
    };
    let mut env = Env::new();
    env.insert("X", vec![1.0, 2.0]);
    assert!(matches!(
        run(&program, &sdsp, &env),
        Err(CodegenError::BufferOverflow { capacity: 1, .. })
    ));
}

#[test]
fn errors_render() {
    let e = CodegenError::TooWide {
        cycle: 3,
        ops: 4,
        width: 2,
    };
    assert!(e.to_string().contains("width-2"));
    let e = CodegenError::BufferUnderflow {
        buffer: AckId::from_index(1),
        reader: (NodeId::from_index(0), 2),
    };
    assert!(e.to_string().contains("empty buffer"));
}

mod analytic_tests {
    //! Emission from *analytic-engine* schedules: everything above uses
    //! the frustum path, but `emit()` must serve both engines — same
    //! machine discipline, same values, same optimal rate.

    use super::*;
    use tpn_sched::{analytic_schedule, SchedError};

    fn analytic_of(sdsp: &Sdsp) -> LoopSchedule {
        analytic_schedule(sdsp, &to_petri(sdsp)).unwrap()
    }

    #[test]
    fn emitted_analytic_l2_matches_the_interpreter_and_the_frustum() {
        let sdsp = tpn_lang::compile(L2).unwrap();
        let analytic = analytic_of(&sdsp);
        let frustum = schedule_of(&sdsp);
        assert_eq!(
            analytic.initiation_interval(),
            frustum.initiation_interval()
        );
        let env = Env::ramp(&["X", "Y", "W"], 64, |ai, i| ai as f64 + i as f64 * 0.5);
        let program = emit(&sdsp, &analytic, 50);
        let outcome = run(&program, &sdsp, &env).unwrap();
        let reference = execute(&sdsp, &env, 50).unwrap();
        let frustum_outcome = run(&emit(&sdsp, &frustum, 50), &sdsp, &env).unwrap();
        for (nid, _) in sdsp.nodes() {
            for iter in 0..50u64 {
                assert_eq!(
                    outcome.value(nid, iter).to_bits(),
                    reference.value(nid, iter as usize).to_bits(),
                    "node {nid} iteration {iter}"
                );
                assert_eq!(
                    outcome.value(nid, iter).to_bits(),
                    frustum_outcome.value(nid, iter).to_bits(),
                    "engines disagree at node {nid} iteration {iter}"
                );
            }
        }
    }

    #[test]
    fn analytic_kernels_emit_and_run_cleanly() {
        for kernel in kernels() {
            let sdsp = kernel.sdsp();
            let pn = to_petri(&sdsp);
            let schedule = match analytic_schedule(&sdsp, &pn) {
                Ok(s) => s,
                // Disconnected bodies with unequal component rates have
                // no uniform kernel on either engine.
                Err(SchedError::NonUniformCounts { .. }) => continue,
                Err(e) => panic!("{}: {e}", kernel.name),
            };
            let program = emit(&sdsp, &schedule, 40);
            let env = kernel.env(64);
            let outcome =
                run(&program, &sdsp, &env).unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            let reference = execute(&sdsp, &env, 40).unwrap();
            for (nid, _) in sdsp.nodes() {
                assert_eq!(
                    outcome.value(nid, 39).to_bits(),
                    reference.value(nid, 39).to_bits(),
                    "{}: node {nid}",
                    kernel.name
                );
            }
        }
    }

    #[test]
    fn prologue_kernel_boundary_is_exact_at_every_trip_count() {
        // The fractional 5/2 body: 2 iterations per kernel instance, so
        // trip counts straddling the prologue/kernel boundary (fewer
        // than one kernel, exactly one, one-and-a-half, many) all
        // exercise different emission windows.
        use tpn_dataflow::{OpKind, Operand, SdspBuilder};
        let mut b = SdspBuilder::new();
        let u = b.node("u", OpKind::Id, [Operand::env("X", 0)]);
        let v1 = b.node("v1", OpKind::Id, [Operand::node(u)]);
        let v2 = b.node("v2", OpKind::Id, [Operand::node(v1)]);
        let v3 = b.node("v3", OpKind::Id, [Operand::node(v2)]);
        let w = b.node("w", OpKind::Id, [Operand::feedback(v3, 1)]);
        b.set_operand(u, 0, Operand::feedback(w, 1));
        let sdsp = b.finish().unwrap();
        let schedule = analytic_of(&sdsp);
        assert_eq!(schedule.iterations_per_period(), 2);
        let env = Env::ramp(&["X"], 40, |_, i| 1.0 + i as f64);
        for iterations in [1u64, 2, 3, 5, 8, 21] {
            let program = emit(&sdsp, &schedule, iterations);
            assert_eq!(program.period, schedule.period());
            assert_eq!(
                program.bundles.iter().map(|b| b.ops.len()).sum::<usize>(),
                sdsp.num_nodes() * iterations as usize,
                "trip count {iterations}"
            );
            let outcome = run(&program, &sdsp, &env)
                .unwrap_or_else(|e| panic!("trip count {iterations}: {e}"));
            let reference = execute(&sdsp, &env, iterations as usize).unwrap();
            for (nid, _) in sdsp.nodes() {
                for iter in 0..iterations {
                    assert_eq!(
                        outcome.value(nid, iter).to_bits(),
                        reference.value(nid, iter as usize).to_bits(),
                        "trip count {iterations}, node {nid}, iteration {iter}"
                    );
                }
            }
        }
    }

    #[test]
    fn analytic_balanced_buffers_need_their_capacity() {
        // Double-buffered DOALL body: the analytic schedule reaches rate
        // 1 only because the balanced buffers hold two values in flight.
        let sdsp = tpn_lang::compile("doall i from 1 to n { A[i] := X[i] + 1; B[i] := A[i] * 2; }")
            .unwrap();
        let (balanced, report) = tpn_storage::balance(&sdsp).unwrap();
        assert_eq!(report.rate_after, tpn_petri::Ratio::ONE);
        let schedule = analytic_of(&balanced);
        assert_eq!(schedule.rate(), tpn_petri::Ratio::ONE);
        let program = emit(&balanced, &schedule, 40);
        let mut env = Env::new();
        env.insert("X", (0..64).map(|i| i as f64).collect());
        let outcome = run(&program, &balanced, &env).unwrap();
        let names = balanced.names();
        assert_eq!(outcome.value(names["B"], 39), (39.0 + 1.0) * 2.0);
        // Starving the same program of its second slot must trip the
        // machine's buffer discipline — proof the capacity is load-bearing,
        // not slack.
        let mut starved = program.clone();
        for c in &mut starved.buffer_capacity {
            *c = 1;
        }
        assert!(matches!(
            run(&starved, &balanced, &env),
            Err(CodegenError::BufferOverflow { capacity: 1, .. })
        ));
    }

    #[test]
    fn analytic_width_enforcement_matches_the_emitted_peak() {
        let sdsp = tpn_lang::compile(L2).unwrap();
        let schedule = analytic_of(&sdsp);
        let program = emit(&sdsp, &schedule, 20);
        let env = Env::ramp(&["X", "Y", "W"], 32, |_, i| i as f64);
        assert!(program.max_width > 1);
        // The declared peak is achievable...
        run_with_width(&program, &sdsp, &env, Some(program.max_width)).unwrap();
        // ...and one unit less is not.
        assert!(matches!(
            run_with_width(&program, &sdsp, &env, Some(program.max_width - 1)),
            Err(CodegenError::TooWide { .. })
        ));
    }
}

mod shape_tests {
    use super::*;
    use crate::shape::{assert_shape_matches_unrolled, CodeShape};
    use tpn_livermore::synth::{generate, SynthConfig};

    #[test]
    fn compact_form_matches_unrolled_on_all_kernels() {
        for kernel in tpn_livermore::kernels() {
            let sdsp = kernel.sdsp();
            let schedule = schedule_of(&sdsp);
            for iterations in [1u64, 2, 7, 40] {
                assert_shape_matches_unrolled(&sdsp, &schedule, iterations);
            }
        }
    }

    #[test]
    fn compact_form_matches_unrolled_on_random_bodies() {
        for seed in 0..24u64 {
            let sdsp = generate(&SynthConfig {
                nodes: 3 + (seed as usize % 10),
                forward_density: 0.55,
                recurrences: (seed % 3) as usize,
                distance: 1,
                seed,
            });
            let pn = tpn_dataflow::to_petri::to_petri(&sdsp);
            let f =
                tpn_sched::frustum::detect_frustum_eager(&pn.net, pn.marking.clone(), 2_000_000)
                    .unwrap();
            let Ok(schedule) = LoopSchedule::from_frustum(&sdsp, &pn, &f) else {
                continue; // disconnected body
            };
            assert_shape_matches_unrolled(&sdsp, &schedule, 30);
        }
    }

    #[test]
    fn static_size_is_independent_of_trip_count() {
        let sdsp = tpn_lang::compile(L2).unwrap();
        let schedule = schedule_of(&sdsp);
        let shape = CodeShape::from_schedule(&sdsp, &schedule);
        // Static footprint: prologue + one kernel copy only.
        assert!(shape.static_ops() <= 3 * sdsp.num_nodes());
        // Instantiations of any length agree with the static form.
        let p10 = shape.instantiate(10);
        let p100 = shape.instantiate(100);
        assert_eq!(p10.bundles.iter().map(|b| b.ops.len()).sum::<usize>(), 50);
        assert_eq!(p100.bundles.iter().map(|b| b.ops.len()).sum::<usize>(), 500);
    }

    #[test]
    fn instantiated_shape_runs_on_the_machine() {
        let sdsp = tpn_lang::compile(L2).unwrap();
        let schedule = schedule_of(&sdsp);
        let shape = CodeShape::from_schedule(&sdsp, &schedule);
        let program = shape.instantiate(25);
        let env = Env::ramp(&["X", "Y", "W"], 40, |ai, i| ai as f64 + i as f64);
        let outcome = run(&program, &sdsp, &env).unwrap();
        let reference = tpn_dataflow::interp::execute(&sdsp, &env, 25).unwrap();
        let e = sdsp.names()["E"];
        assert_eq!(
            outcome.value(e, 24).to_bits(),
            reference.value(e, 24).to_bits()
        );
    }

    #[test]
    fn fractional_ii_shapes_round_trip() {
        // The 5-transition, 2-token cycle: period 5, 2 iterations per
        // kernel instance.
        use tpn_dataflow::{OpKind, Operand, SdspBuilder};
        let mut b = SdspBuilder::new();
        let u = b.node("u", OpKind::Id, [Operand::lit(0.0)]);
        let v1 = b.node("v1", OpKind::Id, [Operand::node(u)]);
        let v2 = b.node("v2", OpKind::Id, [Operand::node(v1)]);
        let v3 = b.node("v3", OpKind::Id, [Operand::node(v2)]);
        let w = b.node("w", OpKind::Id, [Operand::feedback(v3, 1)]);
        b.set_operand(u, 0, Operand::feedback(w, 1));
        let sdsp = b.finish().unwrap();
        let schedule = schedule_of(&sdsp);
        assert_eq!(schedule.iterations_per_period(), 2);
        for iterations in [1u64, 2, 3, 9, 20] {
            assert_shape_matches_unrolled(&sdsp, &schedule, iterations);
        }
    }
}
