//! Code emission from timed Petri-net loop schedules.
//!
//! The paper's §2 sketch of how a compiler uses the cyclic frustum —
//! "once this pattern is found, the compiler uses it to overlap operations
//! from successive iterations of the loop body" — is made concrete here:
//! a [`LoopSchedule`] is emitted as **VLIW bundles** (one bundle of
//! parallel operations per machine cycle) addressing the SDSP's storage
//! locations directly. Each acknowledgement group of the SDSP is one
//! architectural buffer of `capacity` cells, matching §6's storage
//! accounting; operands read from buffers, results write to them.
//!
//! The crate also contains a **verifying machine simulator**
//! ([`run`]): it executes the emitted program cycle by cycle, enforcing
//!
//! * the machine's issue width,
//! * buffer discipline — writing to a full buffer or reading from an
//!   empty one is a runtime fault, so the §6 storage claims are checked
//!   *dynamically*, not just by net analysis,
//! * operation latencies (a result is visible only after the producing
//!   node's execution time has elapsed),
//!
//! and returns the computed values for comparison against the reference
//! interpreter.
//!
//! # Example
//!
//! ```
//! use tpn_codegen::{emit, run};
//! use tpn_dataflow::interp::{execute, Env};
//! use tpn_dataflow::to_petri::to_petri;
//! use tpn_sched::frustum::detect_frustum_eager;
//! use tpn_sched::LoopSchedule;
//!
//! let sdsp = tpn_lang::compile(
//!     "do i from 1 to n { X[i] := Z[i] * (Y[i] - X[i-1]); }",
//! )?;
//! let pn = to_petri(&sdsp);
//! let f = detect_frustum_eager(&pn.net, pn.marking.clone(), 10_000)?;
//! let schedule = LoopSchedule::from_frustum(&sdsp, &pn, &f)?;
//!
//! let program = emit(&sdsp, &schedule, 32);
//! let mut env = Env::new();
//! env.insert("Z", (0..32).map(|i| 0.5 + i as f64 * 0.01).collect());
//! env.insert("Y", (0..32).map(|i| 1.0 + i as f64).collect());
//!
//! let outcome = run(&program, &sdsp, &env)?;
//! let reference = execute(&sdsp, &env, 32)?;
//! let x = sdsp.names()["X"];
//! assert_eq!(outcome.value(x, 31), reference.value(x, 31));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use tpn_dataflow::interp::Env;
use tpn_dataflow::{AckId, ArcId, DataflowError, NodeId, OpKind, Operand, Sdsp};
use tpn_sched::schedule::LoopSchedule;

/// A source operand of an emitted operation.
#[derive(Clone, Debug, PartialEq)]
pub enum Src {
    /// Pop the front value in transit on a data arc. The arc's value
    /// physically lives in the storage location of its acknowledgement
    /// group; arcs of a coalesced chain share that location in sequence.
    Arc(ArcId),
    /// Stream element `array[i + offset]` for the instance's iteration
    /// `i`.
    Env {
        /// Array name.
        array: String,
        /// Offset from the iteration counter.
        offset: i64,
    },
    /// Loop-invariant scalar.
    Param(String),
    /// Immediate constant.
    Lit(f64),
    /// The instance's iteration number.
    Index,
}

/// One operation instance in the program.
#[derive(Clone, Debug, PartialEq)]
pub struct Op {
    /// The loop node this instance executes.
    pub node: NodeId,
    /// Which iteration of the loop it performs.
    pub iteration: u64,
    /// The operation.
    pub kind: OpKind,
    /// Source operands, in operation order.
    pub srcs: Vec<Src>,
    /// Destination arcs (one per consuming data arc).
    pub dsts: Vec<ArcId>,
}

/// A VLIW bundle: the operations issued at one cycle.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Bundle {
    /// Machine cycle of issue.
    pub cycle: u64,
    /// The operations issued together.
    pub ops: Vec<Op>,
}

/// An emitted program: the flattened cycle-accurate bundle stream, plus
/// the symbolic kernel for code-size reporting.
#[derive(Clone, Debug)]
pub struct Program {
    /// All non-empty bundles, in cycle order (prologue, steady kernels,
    /// epilogue drain).
    pub bundles: Vec<Bundle>,
    /// The kernel length in cycles (the schedule period).
    pub period: u64,
    /// Iterations per kernel instance.
    pub iterations_per_period: u64,
    /// Total loop iterations the program performs.
    pub iterations: u64,
    /// Buffer capacities, indexed by acknowledgement group.
    pub buffer_capacity: Vec<u32>,
    /// The widest bundle (peak issue width the machine needs).
    pub max_width: usize,
}

impl Program {
    /// Static code size if deployed as prologue + kernel loop: bundles
    /// before the first full kernel plus one kernel instance (what the
    /// paper's "highly compact object codes" refers to), in operations.
    pub fn compact_size(&self) -> usize {
        let kernel_ops = self
            .iterations_per_period
            .saturating_mul(self.num_nodes() as u64) as usize;
        let prologue_ops: usize = self
            .bundles
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|op| op.iteration < self.iterations_per_period)
            .count();
        prologue_ops + kernel_ops
    }

    fn num_nodes(&self) -> usize {
        self.bundles
            .iter()
            .flat_map(|b| &b.ops)
            .map(|op| op.node.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Renders the program as readable assembly-like text (first
    /// `max_cycles` bundles).
    pub fn render(&self, sdsp: &Sdsp, max_cycles: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for bundle in self.bundles.iter().take(max_cycles) {
            let _ = write!(out, "{:>5}: ", bundle.cycle);
            let mut first = true;
            for op in &bundle.ops {
                if !first {
                    let _ = write!(out, " || ");
                }
                first = false;
                let _ = write!(
                    out,
                    "{}@{} := {}",
                    sdsp.node(op.node).name,
                    op.iteration,
                    op.kind
                );
                for (k, src) in op.srcs.iter().enumerate() {
                    let sep = if k == 0 { " " } else { ", " };
                    match src {
                        Src::Arc(a) => {
                            let _ = write!(out, "{sep}buf{}", sdsp.ack_of_arc(*a).index());
                        }
                        Src::Env { array, offset } => {
                            let _ = write!(out, "{sep}{array}[i{offset:+}]");
                        }
                        Src::Param(p) => {
                            let _ = write!(out, "{sep}{p}");
                        }
                        Src::Lit(v) => {
                            let _ = write!(out, "{sep}#{v}");
                        }
                        Src::Index => {
                            let _ = write!(out, "{sep}i");
                        }
                    }
                }
                if !op.dsts.is_empty() {
                    let dsts: Vec<String> = op
                        .dsts
                        .iter()
                        .map(|d| format!("buf{}", sdsp.ack_of_arc(*d).index()))
                        .collect();
                    let _ = write!(out, " -> {}", dsts.join(","));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Errors from the verifying simulator.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CodegenError {
    /// An operation wrote to a buffer that had no free cell — a storage
    /// allocation violation.
    BufferOverflow {
        /// The buffer.
        buffer: AckId,
        /// The writing instance.
        writer: (NodeId, u64),
        /// The buffer's capacity.
        capacity: u32,
    },
    /// An operation read from an empty buffer — a scheduling violation.
    BufferUnderflow {
        /// The buffer.
        buffer: AckId,
        /// The reading instance.
        reader: (NodeId, u64),
    },
    /// An operand was read before the producing operation's latency had
    /// elapsed.
    NotYetAvailable {
        /// The buffer.
        buffer: AckId,
        /// The reading instance.
        reader: (NodeId, u64),
        /// The cycle of the premature read.
        cycle: u64,
        /// The cycle the value becomes visible.
        available: u64,
    },
    /// A bundle exceeded the machine's issue width.
    TooWide {
        /// The offending cycle.
        cycle: u64,
        /// Operations in the bundle.
        ops: usize,
        /// The machine's width.
        width: usize,
    },
    /// The environment lacked an input.
    Env(DataflowError),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::BufferOverflow {
                buffer,
                writer,
                capacity,
            } => write!(
                f,
                "node {} iteration {} overflows buffer {} (capacity {})",
                writer.0, writer.1, buffer, capacity
            ),
            CodegenError::BufferUnderflow { buffer, reader } => write!(
                f,
                "node {} iteration {} reads empty buffer {}",
                reader.0, reader.1, buffer
            ),
            CodegenError::NotYetAvailable {
                buffer,
                reader,
                cycle,
                available,
            } => write!(
                f,
                "node {} iteration {} reads buffer {} at cycle {} but the value lands at {}",
                reader.0, reader.1, buffer, cycle, available
            ),
            CodegenError::TooWide { cycle, ops, width } => {
                write!(
                    f,
                    "bundle at cycle {cycle} has {ops} ops on a width-{width} machine"
                )
            }
            CodegenError::Env(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CodegenError {}

impl From<DataflowError> for CodegenError {
    fn from(e: DataflowError) -> Self {
        CodegenError::Env(e)
    }
}

/// Emits the cycle-accurate VLIW program for `iterations` iterations of
/// `schedule`.
///
/// # Panics
///
/// Panics if the schedule does not cover the SDSP (mismatched node
/// counts).
pub fn emit(sdsp: &Sdsp, schedule: &LoopSchedule, iterations: u64) -> Program {
    assert_eq!(
        schedule.num_nodes(),
        sdsp.num_nodes(),
        "schedule and SDSP disagree on the loop body"
    );
    emit_from_starts(
        sdsp,
        |node, iter| schedule.start_time(node, iter),
        iterations,
        schedule.period(),
        schedule.iterations_per_period(),
    )
}

/// Emits a program from an arbitrary start-time function — e.g. a modulo
/// schedule's `σ(v) + II·i` — rather than a Petri-net-derived
/// [`LoopSchedule`]. The buffer capacities default to the SDSP's
/// allocation; schedules with deeper pipelining (more values in flight)
/// should overwrite [`Program::buffer_capacity`] with their own
/// requirements before running.
pub fn emit_from_starts(
    sdsp: &Sdsp,
    start_time: impl Fn(NodeId, u64) -> u64,
    iterations: u64,
    period: u64,
    iterations_per_period: u64,
) -> Program {
    // Destination arcs per node: one per outgoing data arc.
    let mut dsts_of: Vec<Vec<ArcId>> = vec![Vec::new(); sdsp.num_nodes()];
    for (arc_id, arc) in sdsp.arcs() {
        dsts_of[arc.from.index()].push(arc_id);
    }
    // Source per operand.
    let src_of = |node: NodeId, slot: usize, operand: &Operand| -> Src {
        match operand {
            Operand::Node { .. } => Src::Arc(
                sdsp.arc_of_operand(node, slot)
                    .expect("node operands have arcs"),
            ),
            Operand::Env { array, offset } => Src::Env {
                array: array.clone(),
                offset: *offset,
            },
            Operand::Param(p) => Src::Param(p.clone()),
            Operand::Lit(v) => Src::Lit(*v),
            Operand::Index => Src::Index,
        }
    };

    let mut by_cycle: HashMap<u64, Vec<Op>> = HashMap::new();
    for (node, data) in sdsp.nodes() {
        for iteration in 0..iterations {
            let cycle = start_time(node, iteration);
            let op = Op {
                node,
                iteration,
                kind: data.op,
                srcs: data
                    .operands
                    .iter()
                    .enumerate()
                    .map(|(slot, operand)| src_of(node, slot, operand))
                    .collect(),
                dsts: dsts_of[node.index()].clone(),
            };
            by_cycle.entry(cycle).or_default().push(op);
        }
    }
    let mut cycles: Vec<u64> = by_cycle.keys().copied().collect();
    cycles.sort_unstable();
    let bundles: Vec<Bundle> = cycles
        .into_iter()
        .map(|cycle| {
            let mut ops = by_cycle.remove(&cycle).expect("key exists");
            ops.sort_by_key(|op| (op.node, op.iteration));
            Bundle { cycle, ops }
        })
        .collect();
    let max_width = bundles.iter().map(|b| b.ops.len()).max().unwrap_or(0);
    Program {
        bundles,
        period,
        iterations_per_period,
        iterations,
        buffer_capacity: sdsp.acks().map(|(_, a)| a.capacity).collect(),
        max_width,
    }
}

/// The values a program run produced, per node and iteration.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    values: Vec<HashMap<u64, f64>>,
    /// Cycles the program took (last bundle cycle + 1).
    pub cycles: u64,
}

impl RunOutcome {
    /// The value node `n` produced in iteration `iter`.
    ///
    /// # Panics
    ///
    /// Panics if the instance was not executed.
    pub fn value(&self, n: NodeId, iter: u64) -> f64 {
        self.values[n.index()][&iter]
    }
}

/// A value in transit on a data arc.
#[derive(Clone, Copy, Debug)]
struct Cell {
    value: f64,
    /// Cycle at which the value becomes readable (write cycle + producer
    /// latency — the Petri net deposits the data token at completion).
    available: u64,
}

/// The machine state of one acknowledgement group (storage location set).
///
/// Petri-net timing: the chain-head producer takes a free slot at its
/// **issue** (it consumes an acknowledgement token when it starts firing)
/// and the slot frees at the chain-tail consumer's **completion** (the
/// token returns when that firing ends). Intermediate chain hops reuse the
/// slot in place and touch neither count.
#[derive(Clone, Debug, Default)]
struct Group {
    free: u32,
    /// Cycles at which drained slots return.
    releasing: Vec<u64>,
}

impl Group {
    fn reclaim(&mut self, cycle: u64) {
        let before = self.releasing.len();
        self.releasing.retain(|&f| f > cycle);
        self.free += (before - self.releasing.len()) as u32;
    }
}

/// Executes `program` on the verifying machine with unlimited width.
///
/// # Errors
///
/// Any [`CodegenError`]: buffer overflow/underflow, premature reads, or
/// missing environment inputs.
pub fn run(program: &Program, sdsp: &Sdsp, env: &Env) -> Result<RunOutcome, CodegenError> {
    run_with_width(program, sdsp, env, None)
}

/// Executes `program`, additionally enforcing an issue width.
///
/// # Errors
///
/// Same as [`run`], plus [`CodegenError::TooWide`].
pub fn run_with_width(
    program: &Program,
    sdsp: &Sdsp,
    env: &Env,
    width: Option<usize>,
) -> Result<RunOutcome, CodegenError> {
    // Per-arc transport queues, seeded with loop-carried initial values.
    let mut arc_queues: Vec<std::collections::VecDeque<Cell>> =
        vec![Default::default(); sdsp.arcs().count()];
    for (arc_id, arc) in sdsp.arcs() {
        if arc.initial_tokens() > 0 {
            arc_queues[arc_id.index()].push_back(Cell {
                value: sdsp.node(arc.from).initial_value,
                available: 0,
            });
        }
    }
    // Per-group slot semaphores. A group whose chain closes on itself
    // (self-feedback) has no acknowledgement place: skip its semaphore,
    // exactly as the SDSP-PN translation does.
    let mut groups: Vec<Option<Group>> = sdsp
        .acks()
        .map(|(ack_id, ack)| {
            if ack.from == ack.to {
                return None;
            }
            let used: u32 = ack
                .covers
                .iter()
                .map(|&a| sdsp.arc(a).initial_tokens())
                .sum();
            // The program's capacities govern (they may widen the SDSP's
            // allocation, e.g. for modulo schedules' register pressure).
            let capacity = program.buffer_capacity[ack_id.index()];
            Some(Group {
                free: capacity.saturating_sub(used),
                releasing: Vec::new(),
            })
        })
        .collect();
    // Which arcs acquire (chain head) and release (chain tail) each group.
    let num_arcs = sdsp.arcs().count();
    let mut acquiring_group: Vec<Option<AckId>> = vec![None; num_arcs];
    let mut releasing_group: Vec<Option<AckId>> = vec![None; num_arcs];
    for (ack_id, ack) in sdsp.acks() {
        let head = *ack.covers.first().expect("validated chains are nonempty");
        let tail = *ack.covers.last().expect("validated chains are nonempty");
        acquiring_group[head.index()] = Some(ack_id);
        releasing_group[tail.index()] = Some(ack_id);
    }

    let mut values: Vec<HashMap<u64, f64>> = vec![HashMap::new(); sdsp.num_nodes()];
    let mut args = Vec::new();
    for bundle in &program.bundles {
        if let Some(w) = width {
            if bundle.ops.len() > w {
                return Err(CodegenError::TooWide {
                    cycle: bundle.cycle,
                    ops: bundle.ops.len(),
                    width: w,
                });
            }
        }
        // VLIW semantics: all reads of a bundle precede all writes.
        let mut writes: Vec<(ArcId, Cell, (NodeId, u64))> = Vec::new();
        for op in &bundle.ops {
            args.clear();
            let latency = sdsp.node(op.node).time;
            for src in &op.srcs {
                let v = match src {
                    Src::Arc(a) => {
                        let Some(cell) = arc_queues[a.index()].front().copied() else {
                            return Err(CodegenError::BufferUnderflow {
                                buffer: sdsp.ack_of_arc(*a),
                                reader: (op.node, op.iteration),
                            });
                        };
                        if cell.available > bundle.cycle {
                            return Err(CodegenError::NotYetAvailable {
                                buffer: sdsp.ack_of_arc(*a),
                                reader: (op.node, op.iteration),
                                cycle: bundle.cycle,
                                available: cell.available,
                            });
                        }
                        arc_queues[a.index()].pop_front();
                        if let Some(gid) = releasing_group[a.index()] {
                            if let Some(group) = groups[gid.index()].as_mut() {
                                group.releasing.push(bundle.cycle + latency);
                            }
                        }
                        cell.value
                    }
                    Src::Env { array, offset } => env.get(array, op.iteration as i64 + offset)?,
                    Src::Param(p) => env.scalar(p)?,
                    Src::Lit(v) => *v,
                    Src::Index => op.iteration as f64,
                };
                args.push(v);
            }
            let out = op.kind.eval(&args);
            values[op.node.index()].insert(op.iteration, out);
            for &dst in &op.dsts {
                writes.push((
                    dst,
                    Cell {
                        value: out,
                        available: bundle.cycle + latency,
                    },
                    (op.node, op.iteration),
                ));
            }
        }
        for (dst, cell, writer) in writes {
            if let Some(gid) = acquiring_group[dst.index()] {
                if let Some(group) = groups[gid.index()].as_mut() {
                    group.reclaim(bundle.cycle);
                    if group.free == 0 {
                        return Err(CodegenError::BufferOverflow {
                            buffer: gid,
                            writer,
                            capacity: program.buffer_capacity[gid.index()],
                        });
                    }
                    group.free -= 1;
                }
            }
            arc_queues[dst.index()].push_back(cell);
        }
    }
    let cycles = program.bundles.last().map(|b| b.cycle + 1).unwrap_or(0);
    Ok(RunOutcome { values, cycles })
}

pub mod shape;

#[cfg(test)]
mod tests;
