//! The deployed shape of software-pipelined code: prologue + kernel loop.
//!
//! [`emit`](crate::emit) produces the fully unrolled cycle-accurate bundle
//! stream — exact, but linear in the iteration count. Real compilers emit
//! the paper's "highly compact object codes": a **prologue** that fills
//! the pipeline once, then a **kernel** of `period` cycles executed in a
//! loop, each op's iteration advancing by `k` per trip (plus a ragged
//! epilogue to drain). [`CodeShape`] is that form; its
//! [`instantiate`](CodeShape::instantiate) method re-expands it for any
//! iteration count and — the correctness argument — produces *exactly*
//! the bundles of the unrolled emitter, which the tests check bundle for
//! bundle.

use tpn_dataflow::{NodeId, Sdsp};
use tpn_sched::schedule::LoopSchedule;

use crate::{Bundle, Op, Program, Src};

/// One kernel operation with its iteration anchored to kernel instance 0.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelOp {
    /// The loop node.
    pub node: NodeId,
    /// The iteration this op performs in kernel instance 0; instance `k`
    /// performs `iteration_base + k · iterations_per_period`.
    pub iteration_base: u64,
    /// The operation (sources/destinations as in the unrolled form).
    pub kind: tpn_dataflow::OpKind,
    /// Source operands.
    pub srcs: Vec<Src>,
    /// Destination arcs.
    pub dsts: Vec<tpn_dataflow::ArcId>,
}

/// One cycle of the kernel.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KernelBundle {
    /// Cycle within the kernel, `0 .. period`.
    pub slot: u64,
    /// Operations issued at this slot, every instance.
    pub ops: Vec<KernelOp>,
}

/// Prologue + kernel-loop form of a schedule.
#[derive(Clone, Debug)]
pub struct CodeShape {
    /// Pipeline-fill bundles at absolute cycles (before the first kernel
    /// instance).
    pub prologue: Vec<Bundle>,
    /// The kernel, one entry per non-empty slot.
    pub kernel: Vec<KernelBundle>,
    /// Absolute cycle at which kernel instance 0's slot 0 sits.
    pub kernel_base_cycle: u64,
    /// Kernel length in cycles.
    pub period: u64,
    /// Iterations completed per kernel instance.
    pub iterations_per_period: u64,
    /// Buffer capacities (as in [`Program`]).
    pub buffer_capacity: Vec<u32>,
}

impl CodeShape {
    /// Builds the compact form of a Petri-net-derived schedule.
    ///
    /// # Panics
    ///
    /// Panics if the schedule does not cover the SDSP.
    pub fn from_schedule(sdsp: &Sdsp, schedule: &LoopSchedule) -> CodeShape {
        assert_eq!(
            schedule.num_nodes(),
            sdsp.num_nodes(),
            "schedule and SDSP disagree on the loop body"
        );
        let k = schedule.iterations_per_period();
        // Enough iterations to cover the prologue and one full kernel
        // window for every node.
        let horizon: u64 = sdsp
            .node_ids()
            .map(|n| schedule.recorded_iterations(n) as u64)
            .max()
            .unwrap_or(0);
        let reference = crate::emit(sdsp, schedule, horizon.max(k));
        // The kernel window of node n covers its final k recorded
        // iterations; everything earlier is prologue.
        let kernel_start_iter = |n: NodeId| schedule.recorded_iterations(n) as u64 - k;
        let kernel_base_cycle = sdsp
            .node_ids()
            .map(|n| schedule.start_time(n, kernel_start_iter(n)))
            .min()
            .unwrap_or(0);
        // Align the base so slots are stable: take the cycle of the
        // earliest kernel-window op.
        let mut prologue = Vec::new();
        let mut kernel: Vec<KernelBundle> = Vec::new();
        for bundle in &reference.bundles {
            let mut pro = Vec::new();
            for op in &bundle.ops {
                let ks = kernel_start_iter(op.node);
                if op.iteration < ks {
                    pro.push(op.clone());
                } else if op.iteration < ks + k {
                    let slot = (bundle.cycle - kernel_base_cycle) % schedule.period();
                    let entry = KernelOp {
                        node: op.node,
                        iteration_base: op.iteration,
                        kind: op.kind,
                        srcs: op.srcs.clone(),
                        dsts: op.dsts.clone(),
                    };
                    match kernel.iter_mut().find(|b| b.slot == slot) {
                        Some(b) => b.ops.push(entry),
                        None => kernel.push(KernelBundle {
                            slot,
                            ops: vec![entry],
                        }),
                    }
                }
                // Ops beyond the first kernel window are periodic repeats;
                // ignored here.
            }
            if !pro.is_empty() {
                prologue.push(Bundle {
                    cycle: bundle.cycle,
                    ops: pro,
                });
            }
        }
        kernel.sort_by_key(|b| b.slot);
        for b in &mut kernel {
            b.ops.sort_by_key(|op| (op.node, op.iteration_base));
        }
        CodeShape {
            prologue,
            kernel,
            kernel_base_cycle,
            period: schedule.period(),
            iterations_per_period: k,
            buffer_capacity: reference.buffer_capacity,
        }
    }

    /// Static code size in operations: prologue + one kernel copy (what
    /// gets emitted to memory, regardless of trip count).
    pub fn static_ops(&self) -> usize {
        self.prologue.iter().map(|b| b.ops.len()).sum::<usize>()
            + self.kernel.iter().map(|b| b.ops.len()).sum::<usize>()
    }

    /// Re-expands the compact form into the cycle-accurate program for
    /// `iterations` iterations (per-op predication handles the ragged
    /// tail, standing in for a specialised epilogue).
    pub fn instantiate(&self, iterations: u64) -> Program {
        let mut bundles: Vec<Bundle> = Vec::new();
        for bundle in &self.prologue {
            let ops: Vec<Op> = bundle
                .ops
                .iter()
                .filter(|op| op.iteration < iterations)
                .cloned()
                .collect();
            if !ops.is_empty() {
                bundles.push(Bundle {
                    cycle: bundle.cycle,
                    ops,
                });
            }
        }
        let k = self.iterations_per_period;
        let mut instance = 0u64;
        loop {
            let mut any = false;
            for kb in &self.kernel {
                let cycle = self.kernel_base_cycle + instance * self.period + kb.slot;
                let ops: Vec<Op> = kb
                    .ops
                    .iter()
                    .filter(|op| op.iteration_base + instance * k < iterations)
                    .map(|op| Op {
                        node: op.node,
                        iteration: op.iteration_base + instance * k,
                        kind: op.kind,
                        srcs: op.srcs.clone(),
                        dsts: op.dsts.clone(),
                    })
                    .collect();
                if !ops.is_empty() {
                    any = true;
                    bundles.push(Bundle { cycle, ops });
                }
            }
            if !any {
                break;
            }
            instance += 1;
        }
        bundles.sort_by_key(|b| b.cycle);
        // Merge bundles that landed on the same cycle (prologue tail can
        // overlap the first kernel instance on ragged shapes).
        let mut merged: Vec<Bundle> = Vec::new();
        for bundle in bundles {
            match merged.last_mut() {
                Some(last) if last.cycle == bundle.cycle => last.ops.extend(bundle.ops),
                _ => merged.push(bundle),
            }
        }
        for bundle in &mut merged {
            bundle.ops.sort_by_key(|op| (op.node, op.iteration));
        }
        let max_width = merged.iter().map(|b| b.ops.len()).max().unwrap_or(0);
        Program {
            bundles: merged,
            period: self.period,
            iterations_per_period: k,
            iterations,
            buffer_capacity: self.buffer_capacity.clone(),
            max_width,
        }
    }
}

/// Convenience: proves the compact form equivalent to the unrolled
/// emitter for a given iteration count (used by tests and callers that
/// want the check inline).
///
/// # Panics
///
/// Panics if the two forms diverge — that would be a bug in this module.
pub fn assert_shape_matches_unrolled(sdsp: &Sdsp, schedule: &LoopSchedule, iterations: u64) {
    let unrolled = crate::emit(sdsp, schedule, iterations);
    let shaped = CodeShape::from_schedule(sdsp, schedule).instantiate(iterations);
    assert_eq!(
        unrolled.bundles.len(),
        shaped.bundles.len(),
        "bundle count mismatch"
    );
    for (a, b) in unrolled.bundles.iter().zip(&shaped.bundles) {
        assert_eq!(a, b, "bundle at cycle {} differs", a.cycle);
    }
}
