//! Diagnostics for the loop language.

use std::error::Error;
use std::fmt;

use tpn_dataflow::DataflowError;

/// A half-open byte range into the source text.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// 1-based `(line, column)` of the span start within `source`.
    pub fn line_col(self, source: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in source.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// Errors produced by the loop-language front-end.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum LangError {
    /// A character the lexer does not understand.
    UnexpectedChar {
        /// The character.
        ch: char,
        /// Where it occurred.
        span: Span,
    },
    /// A malformed number literal.
    BadNumber {
        /// The offending text.
        text: String,
        /// Where it occurred.
        span: Span,
    },
    /// The parser expected something else.
    Expected {
        /// Description of what was expected.
        expected: String,
        /// Description of what was found.
        found: String,
        /// Where it occurred.
        span: Span,
    },
    /// A subscript used a variable other than the loop index.
    WrongIndexVariable {
        /// The variable used.
        found: String,
        /// The loop index variable.
        index: String,
        /// Where it occurred.
        span: Span,
    },
    /// A loop-defined array was read at a future iteration (`A[i+k]`).
    FutureReference {
        /// The array.
        array: String,
        /// Where it occurred.
        span: Span,
    },
    /// A variable was assigned more than once (the language is single
    /// assignment, following SISAL).
    DoubleAssignment {
        /// The variable.
        name: String,
        /// Where the second assignment occurred.
        span: Span,
    },
    /// `old` was applied to a name the loop does not define.
    OldOfUndefined {
        /// The name.
        name: String,
        /// Where it occurred.
        span: Span,
    },
    /// A loop-carried reference appeared inside a `doall` loop, which by
    /// definition has none.
    LoopCarriedInDoall {
        /// The referenced name.
        name: String,
        /// Where it occurred.
        span: Span,
    },
    /// A conditional statement defines a name in only one branch; under
    /// the dummy-token treatment both branches execute and a merge actor
    /// needs a value from each.
    BranchDefinitionMismatch {
        /// The one-sided name.
        name: String,
        /// The conditional's location.
        span: Span,
    },
    /// An error from SDSP construction.
    Dataflow(DataflowError),
}

impl LangError {
    /// The source span of the diagnostic, when one applies.
    pub fn span(&self) -> Option<Span> {
        match self {
            LangError::UnexpectedChar { span, .. }
            | LangError::BadNumber { span, .. }
            | LangError::Expected { span, .. }
            | LangError::WrongIndexVariable { span, .. }
            | LangError::FutureReference { span, .. }
            | LangError::DoubleAssignment { span, .. }
            | LangError::OldOfUndefined { span, .. }
            | LangError::LoopCarriedInDoall { span, .. }
            | LangError::BranchDefinitionMismatch { span, .. } => Some(*span),
            LangError::Dataflow(_) => None,
        }
    }

    /// Renders the diagnostic with a `line:column` prefix computed from
    /// `source`.
    pub fn render(&self, source: &str) -> String {
        match self.span() {
            Some(span) => {
                let (line, col) = span.line_col(source);
                format!("{line}:{col}: {self}")
            }
            None => self.to_string(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::UnexpectedChar { ch, .. } => write!(f, "unexpected character {ch:?}"),
            LangError::BadNumber { text, .. } => write!(f, "malformed number literal {text:?}"),
            LangError::Expected {
                expected, found, ..
            } => write!(f, "expected {expected}, found {found}"),
            LangError::WrongIndexVariable { found, index, .. } => write!(
                f,
                "subscript variable {found:?} is not the loop index {index:?}"
            ),
            LangError::FutureReference { array, .. } => write!(
                f,
                "array {array} is defined by this loop and cannot be read at a future iteration"
            ),
            LangError::DoubleAssignment { name, .. } => {
                write!(f, "{name} is assigned more than once")
            }
            LangError::OldOfUndefined { name, .. } => {
                write!(f, "`old {name}` needs {name} to be defined by the loop")
            }
            LangError::LoopCarriedInDoall { name, .. } => write!(
                f,
                "loop-carried reference to {name} inside a doall loop; use `do` instead"
            ),
            LangError::BranchDefinitionMismatch { name, .. } => write!(
                f,
                "{name} is defined in only one branch of the conditional; both branches must define it"
            ),
            LangError::Dataflow(e) => write!(f, "{e}"),
        }
    }
}

impl Error for LangError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LangError::Dataflow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataflowError> for LangError {
    fn from(e: DataflowError) -> Self {
        LangError::Dataflow(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_counts_lines() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(3, 4).line_col(src), (2, 1));
        assert_eq!(Span::new(7, 8).line_col(src), (3, 2));
    }

    #[test]
    fn merge_covers_both() {
        let a = Span::new(3, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.merge(b), Span::new(3, 9));
    }

    #[test]
    fn render_prefixes_position() {
        let e = LangError::DoubleAssignment {
            name: "A".into(),
            span: Span::new(5, 6),
        };
        assert_eq!(e.render("a :=\nb"), "2:1: A is assigned more than once");
    }
}
