//! Lowering from the AST to an SDSP dataflow graph.
//!
//! One node per operation, exactly as the paper's figures draw them: the
//! top operation of each statement carries the defined name (node `A` for
//! `A[i] := X[i] + 5`), inner operations get derived names (`A.1`, …).
//! Dependence analysis is the subscript test of §3.2: a reference to a
//! loop-defined array at `[i]` is a forward (same-iteration) dependence, at
//! `[i−k]` a feedback dependence of distance `k` (realised with one token,
//! buffer actors are inserted by the builder for `k > 1`); `old x` is the
//! scalar spelling of distance 1. References the loop does not define are
//! environment reads and impose no arc.
//!
//! Conditional **statements** follow the paper's §3.2 treatment of
//! well-formed conditional subgraphs: both branches execute every
//! iteration (the unselected branch computes on dummy values) and one
//! merge actor per defined variable selects the live result. The two
//! branches must therefore define exactly the same names. Loop-carried
//! references to an `if`-defined variable read last iteration's *merged*
//! value; same-iteration references inside a branch read the branch-local
//! value.

use std::collections::{HashMap, HashSet};

use tpn_dataflow::{CmpOp, NodeId, OpKind, Operand, Sdsp, SdspBuilder};

use crate::ast::{BinOp, Expr, LoopAst, LoopKind, Stmt};
use crate::error::LangError;

/// Lowers a parsed loop to a validated SDSP.
///
/// # Errors
///
/// Semantic diagnostics ([`LangError::DoubleAssignment`],
/// [`LangError::FutureReference`], [`LangError::WrongIndexVariable`],
/// [`LangError::OldOfUndefined`], [`LangError::LoopCarriedInDoall`],
/// [`LangError::BranchDefinitionMismatch`]) and SDSP validation failures
/// (notably [`tpn_dataflow::DataflowError::ForwardCycle`] for
/// same-iteration dependence cycles).
///
/// # Example
///
/// ```
/// use tpn_lang::{parse, lower};
/// let ast = parse("doall i from 1 to n { A[i] := X[i] + 5; B[i] := Y[i] + A[i]; }")?;
/// let sdsp = lower(&ast)?;
/// assert_eq!(sdsp.num_nodes(), 2);
/// assert_eq!(sdsp.arcs().count(), 1); // A -> B
/// # Ok::<(), tpn_lang::LangError>(())
/// ```
pub fn lower(ast: &LoopAst) -> Result<Sdsp, LangError> {
    // Single-assignment and branch-shape pre-check; collects every name
    // the loop defines.
    let mut defined: HashSet<&str> = HashSet::new();
    collect_defined(&ast.body, &mut defined)?;

    let mut ctx = Lowering {
        ast,
        defined,
        def_node: HashMap::new(),
        scopes: Vec::new(),
        builder: SdspBuilder::new(),
        fixups: Vec::new(),
        current_target: String::new(),
        temp_counter: 0,
        cond_counter: 0,
    };

    ctx.lower_stmts(&ast.body)?;

    // Patch forward references now that every definition has a node.
    for (node, slot, name, distance) in std::mem::take(&mut ctx.fixups) {
        let def = ctx.def_node[&name];
        let operand = if distance == 0 {
            Operand::node(def)
        } else {
            Operand::feedback(def, distance)
        };
        ctx.builder.set_operand(node, slot, operand);
    }

    Ok(ctx.builder.finish()?)
}

/// Recursively checks single assignment and branch definition symmetry,
/// accumulating the defined names.
fn collect_defined<'a>(stmts: &'a [Stmt], out: &mut HashSet<&'a str>) -> Result<(), LangError> {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { target, span, .. } => {
                if !out.insert(target.name()) {
                    return Err(LangError::DoubleAssignment {
                        name: target.name().to_string(),
                        span: *span,
                    });
                }
            }
            Stmt::If {
                then, els, span, ..
            } => {
                let mut t = HashSet::new();
                collect_defined(then, &mut t)?;
                let mut e = HashSet::new();
                collect_defined(els, &mut e)?;
                if let Some(&name) = t.symmetric_difference(&e).next() {
                    return Err(LangError::BranchDefinitionMismatch {
                        name: name.to_string(),
                        span: *span,
                    });
                }
                for name in t {
                    if !out.insert(name) {
                        return Err(LangError::DoubleAssignment {
                            name: name.to_string(),
                            span: *span,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Either a ready operand or a fixup for a not-yet-lowered definition.
#[derive(Clone)]
enum LoweredOperand {
    Ready(Operand),
    /// `(name, distance)` — resolved when the defining scope closes (for
    /// same-iteration branch-local names) or after all statements are
    /// lowered.
    Pending(String, u32),
}

/// One branch scope: its tag (for derived node names) and local
/// definitions.
struct Scope {
    tag: &'static str,
    defs: HashMap<String, NodeId>,
}

struct Lowering<'a> {
    ast: &'a LoopAst,
    defined: HashSet<&'a str>,
    def_node: HashMap<String, NodeId>,
    scopes: Vec<Scope>,
    builder: SdspBuilder,
    /// `(consumer, slot, name, distance)`
    fixups: Vec<(NodeId, usize, String, u32)>,
    current_target: String,
    temp_counter: u32,
    cond_counter: u32,
}

impl<'a> Lowering<'a> {
    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), LangError> {
        for stmt in stmts {
            self.lower_stmt(stmt)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), LangError> {
        match stmt {
            Stmt::Assign { target, value, .. } => {
                let name = target.name().to_string();
                self.current_target = format!("{name}{}", self.branch_tag());
                self.temp_counter = 0;
                let node = match self.lower_expr(value)? {
                    ExprResult::Node(node) => node,
                    // A bare reference or literal still occupies one
                    // instruction: an identity (move) actor.
                    ExprResult::Operand(op) => self.make_node(OpKind::Id, vec![op]),
                };
                // The statement's top operation carries the defined name
                // (branch-tagged inside conditionals).
                self.builder.set_name(node, self.current_target.clone());
                self.define(name, node);
                Ok(())
            }
            Stmt::If {
                cond, then, els, ..
            } => self.lower_if(cond, then, els),
        }
    }

    fn lower_if(&mut self, cond: &Expr, then: &[Stmt], els: &[Stmt]) -> Result<(), LangError> {
        // The condition is evaluated once per iteration.
        self.cond_counter += 1;
        self.current_target = format!("cond{}{}", self.cond_counter, self.branch_tag());
        self.temp_counter = 0;
        let cond_op = self.lower_operand(cond)?;

        let then_defs = self.lower_branch(".t", then)?;
        let else_defs = self.lower_branch(".e", els)?;

        // One merge actor per defined name (the pre-check guarantees the
        // two maps have equal key sets).
        let mut names: Vec<String> = then_defs.keys().cloned().collect();
        names.sort();
        for name in names {
            let t = then_defs[&name];
            let e = else_defs[&name];
            self.current_target = format!("{name}{}", self.branch_tag());
            self.temp_counter = 0;
            let merge = self.make_node(
                OpKind::Merge,
                vec![
                    cond_op.clone(),
                    LoweredOperand::Ready(Operand::node(t)),
                    LoweredOperand::Ready(Operand::node(e)),
                ],
            );
            self.builder.set_name(merge, self.current_target.clone());
            self.define(name, merge);
        }
        Ok(())
    }

    /// Lowers one branch in its own scope; resolves same-iteration fixups
    /// against the branch's local definitions on exit.
    fn lower_branch(
        &mut self,
        tag: &'static str,
        stmts: &[Stmt],
    ) -> Result<HashMap<String, NodeId>, LangError> {
        self.scopes.push(Scope {
            tag,
            defs: HashMap::new(),
        });
        let watermark = self.fixups.len();
        let result = self.lower_stmts(stmts);
        let scope = self.scopes.pop().expect("scope pushed above");
        result?;
        // Same-iteration forward references to branch-local names resolve
        // to the branch's definition; everything else bubbles outward
        // (loop-carried references always target the merged value).
        let mut kept = Vec::new();
        for fixup in self.fixups.drain(watermark..) {
            let (node, slot, ref name, distance) = fixup;
            if distance == 0 {
                if let Some(&def) = scope.defs.get(name) {
                    self.builder.set_operand(node, slot, Operand::node(def));
                    continue;
                }
            }
            kept.push(fixup);
        }
        self.fixups.extend(kept);
        Ok(scope.defs)
    }

    fn branch_tag(&self) -> String {
        self.scopes.iter().map(|s| s.tag).collect()
    }

    fn define(&mut self, name: String, node: NodeId) {
        match self.scopes.last_mut() {
            Some(scope) => {
                scope.defs.insert(name, node);
            }
            None => {
                self.def_node.insert(name, node);
            }
        }
    }

    fn make_node(&mut self, op: OpKind, operands: Vec<LoweredOperand>) -> NodeId {
        self.temp_counter += 1;
        let name = format!("{}.{}", self.current_target, self.temp_counter);
        let resolved: Vec<Operand> = operands
            .iter()
            .map(|lo| match lo {
                LoweredOperand::Ready(op) => op.clone(),
                LoweredOperand::Pending(..) => Operand::lit(0.0), // patched later
            })
            .collect();
        let node = self.builder.node(name, op, resolved);
        for (slot, lo) in operands.into_iter().enumerate() {
            if let LoweredOperand::Pending(name, distance) = lo {
                self.fixups.push((node, slot, name, distance));
            }
        }
        node
    }

    fn lower_expr(&mut self, expr: &Expr) -> Result<ExprResult, LangError> {
        match expr {
            Expr::Number { value, .. } => Ok(ExprResult::Operand(LoweredOperand::Ready(
                Operand::lit(*value),
            ))),
            Expr::Scalar { name, old, span } => {
                if name == &self.ast.index {
                    if *old {
                        return Err(LangError::OldOfUndefined {
                            name: name.clone(),
                            span: *span,
                        });
                    }
                    return Ok(ExprResult::Operand(LoweredOperand::Ready(Operand::index())));
                }
                if *old {
                    if !self.defined.contains(name.as_str()) {
                        return Err(LangError::OldOfUndefined {
                            name: name.clone(),
                            span: *span,
                        });
                    }
                    if self.ast.kind == LoopKind::Doall {
                        return Err(LangError::LoopCarriedInDoall {
                            name: name.clone(),
                            span: *span,
                        });
                    }
                    return Ok(ExprResult::Operand(self.reference(name, 1)));
                }
                if self.defined.contains(name.as_str()) {
                    Ok(ExprResult::Operand(self.reference(name, 0)))
                } else {
                    Ok(ExprResult::Operand(LoweredOperand::Ready(Operand::param(
                        name.clone(),
                    ))))
                }
            }
            Expr::ArrayRef {
                array,
                var,
                offset,
                span,
            } => {
                if var != &self.ast.index {
                    return Err(LangError::WrongIndexVariable {
                        found: var.clone(),
                        index: self.ast.index.clone(),
                        span: *span,
                    });
                }
                if self.defined.contains(array.as_str()) {
                    match *offset {
                        0 => Ok(ExprResult::Operand(self.reference(array, 0))),
                        o if o < 0 => {
                            if self.ast.kind == LoopKind::Doall {
                                return Err(LangError::LoopCarriedInDoall {
                                    name: array.clone(),
                                    span: *span,
                                });
                            }
                            Ok(ExprResult::Operand(self.reference(array, (-o) as u32)))
                        }
                        _ => Err(LangError::FutureReference {
                            array: array.clone(),
                            span: *span,
                        }),
                    }
                } else {
                    Ok(ExprResult::Operand(LoweredOperand::Ready(Operand::env(
                        array.clone(),
                        *offset,
                    ))))
                }
            }
            Expr::Neg { expr, .. } => {
                let inner = self.lower_operand(expr)?;
                Ok(ExprResult::Node(self.make_node(OpKind::Neg, vec![inner])))
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let l = self.lower_operand(lhs)?;
                let r = self.lower_operand(rhs)?;
                let kind = match op {
                    BinOp::Add => OpKind::Add,
                    BinOp::Sub => OpKind::Sub,
                    BinOp::Mul => OpKind::Mul,
                    BinOp::Div => OpKind::Div,
                    BinOp::Min => OpKind::Min,
                    BinOp::Max => OpKind::Max,
                    BinOp::Lt => OpKind::Cmp(CmpOp::Lt),
                    BinOp::Le => OpKind::Cmp(CmpOp::Le),
                    BinOp::Gt => OpKind::Cmp(CmpOp::Gt),
                    BinOp::Ge => OpKind::Cmp(CmpOp::Ge),
                    BinOp::Eq => OpKind::Cmp(CmpOp::Eq),
                    BinOp::Ne => OpKind::Cmp(CmpOp::Ne),
                };
                Ok(ExprResult::Node(self.make_node(kind, vec![l, r])))
            }
            Expr::If {
                cond, then, els, ..
            } => {
                let c = self.lower_operand(cond)?;
                let t = self.lower_operand(then)?;
                let e = self.lower_operand(els)?;
                Ok(ExprResult::Node(
                    self.make_node(OpKind::Merge, vec![c, t, e]),
                ))
            }
        }
    }

    /// Lowers a subexpression into an operand, materialising a node when
    /// it is compound.
    fn lower_operand(&mut self, expr: &Expr) -> Result<LoweredOperand, LangError> {
        match self.lower_expr(expr)? {
            ExprResult::Operand(op) => Ok(op),
            ExprResult::Node(node) => Ok(LoweredOperand::Ready(Operand::node(node))),
        }
    }

    fn reference(&self, name: &str, distance: u32) -> LoweredOperand {
        // Same-iteration references see branch-local definitions first;
        // loop-carried references always mean last iteration's merged
        // value.
        if distance == 0 {
            for scope in self.scopes.iter().rev() {
                if let Some(&node) = scope.defs.get(name) {
                    return LoweredOperand::Ready(Operand::node(node));
                }
            }
        }
        match self.def_node.get(name) {
            Some(&node) if distance == 0 => LoweredOperand::Ready(Operand::node(node)),
            Some(&node) => LoweredOperand::Ready(Operand::feedback(node, distance)),
            None => LoweredOperand::Pending(name.to_string(), distance),
        }
    }
}

enum ExprResult {
    Node(NodeId),
    Operand(LoweredOperand),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use tpn_dataflow::interp::{execute, Env};
    use tpn_dataflow::ArcKind;

    fn compile(src: &str) -> Result<Sdsp, LangError> {
        lower(&parse(src)?)
    }

    #[test]
    fn l1_lowers_to_five_nodes_and_five_arcs() {
        let s = compile(
            "doall i from 1 to n {\
               A[i] := X[i] + 5;\
               B[i] := Y[i] + A[i];\
               C[i] := A[i] + Z[i];\
               D[i] := B[i] + C[i];\
               E[i] := W[i] + D[i];\
             }",
        )
        .unwrap();
        assert_eq!(s.num_nodes(), 5);
        assert_eq!(s.arcs().count(), 5);
        assert!(!s.has_loop_carried_dependence());
        let names = s.names();
        assert!(names.contains_key("A") && names.contains_key("E"));
    }

    #[test]
    fn l2_lowers_with_one_feedback_arc() {
        let s = compile(
            "do i from 1 to n {\
               A[i] := X[i] + 5;\
               B[i] := Y[i] + A[i];\
               C[i] := A[i] + E[i-1];\
               D[i] := B[i] + C[i];\
               E[i] := W[i] + D[i];\
             }",
        )
        .unwrap();
        assert_eq!(s.num_nodes(), 5);
        let fb: Vec<_> = s
            .arcs()
            .filter(|(_, a)| a.kind == ArcKind::Feedback)
            .collect();
        assert_eq!(fb.len(), 1);
        let names = s.names();
        assert_eq!(fb[0].1.from, names["E"]);
        assert_eq!(fb[0].1.to, names["C"]);
    }

    #[test]
    fn intermediate_operations_get_derived_names() {
        let s = compile("doall k from 1 to n { X2[k] := Q + Y[k] * (R * Z[k+10] + T * Z[k+11]); }")
            .unwrap();
        assert_eq!(s.num_nodes(), 5);
        let names: Vec<_> = s.nodes().map(|(_, n)| n.name.clone()).collect();
        assert!(names.contains(&"X2".to_string()));
        assert!(names.iter().any(|n| n.starts_with("X2.")));
    }

    #[test]
    fn scalar_accumulation_via_old() {
        let s = compile("do i from 1 to n { Q := old Q + Z[i] * X[i]; }").unwrap();
        assert_eq!(s.num_nodes(), 2);
        assert!(s.has_loop_carried_dependence());
        let mut env = Env::new();
        env.insert("Z", vec![1.0, 2.0, 3.0]);
        env.insert("X", vec![4.0, 5.0, 6.0]);
        let q = s.names()["Q"];
        let t = execute(&s, &env, 3).unwrap();
        assert_eq!(t.value(q, 2), 32.0);
    }

    #[test]
    fn copies_become_identity_nodes() {
        let s = compile("doall i from 1 to n { A[i] := X[i]; B[i] := A[i]; }").unwrap();
        assert_eq!(s.num_nodes(), 2);
        assert!(s.nodes().all(|(_, n)| n.op == OpKind::Id));
        assert_eq!(s.arcs().count(), 1);
    }

    #[test]
    fn index_variable_reads_lower_to_index_operand() {
        let s = compile("doall i from 1 to n { A[i] := i * 2; }").unwrap();
        let a = s.names()["A"];
        let t = execute(&s, &Env::new(), 3).unwrap();
        assert_eq!(t.series(a), &[0.0, 2.0, 4.0]);
    }

    #[test]
    fn free_scalars_become_params() {
        let s = compile("doall i from 1 to n { A[i] := R * X[i]; }").unwrap();
        let mut env = Env::new();
        env.insert("X", vec![1.0, 2.0]);
        env.insert_scalar("R", 10.0);
        let a = s.names()["A"];
        let t = execute(&s, &env, 2).unwrap();
        assert_eq!(t.series(a), &[10.0, 20.0]);
    }

    #[test]
    fn conditional_expressions_lower_to_merge() {
        let s =
            compile("do i from 1 to n { R2[i] := if X[i] > 0 then X[i] else -X[i] end; }").unwrap();
        assert!(s.nodes().any(|(_, n)| n.op == OpKind::Merge));
        let mut env = Env::new();
        env.insert("X", vec![-3.0, 4.0]);
        let r = s.names()["R2"];
        let t = execute(&s, &env, 2).unwrap();
        assert_eq!(t.series(r), &[3.0, 4.0]);
    }

    #[test]
    fn forward_reference_to_later_statement_is_patched() {
        let s = compile("doall i from 1 to n { A[i] := B[i] + 1; B[i] := X[i] * 2; }").unwrap();
        let names = s.names();
        let (_, arc) = s.arcs().next().unwrap();
        assert_eq!(arc.from, names["B"]);
        assert_eq!(arc.to, names["A"]);
    }

    #[test]
    fn double_assignment_rejected() {
        assert!(matches!(
            compile("do i from 1 to n { A[i] := 1; A[i] := 2; }"),
            Err(LangError::DoubleAssignment { .. })
        ));
    }

    #[test]
    fn future_reference_rejected() {
        assert!(matches!(
            compile("do i from 1 to n { A[i] := A[i+1]; }"),
            Err(LangError::FutureReference { .. })
        ));
    }

    #[test]
    fn lcd_in_doall_rejected() {
        assert!(matches!(
            compile("doall i from 1 to n { A[i] := A[i-1] + 1; }"),
            Err(LangError::LoopCarriedInDoall { .. })
        ));
        assert!(matches!(
            compile("doall i from 1 to n { Q := old Q + 1; }"),
            Err(LangError::LoopCarriedInDoall { .. })
        ));
    }

    #[test]
    fn old_of_undefined_rejected() {
        assert!(matches!(
            compile("do i from 1 to n { A[i] := old Zz + 1; }"),
            Err(LangError::OldOfUndefined { .. })
        ));
        assert!(matches!(
            compile("do i from 1 to n { A[i] := old i; }"),
            Err(LangError::OldOfUndefined { .. })
        ));
    }

    #[test]
    fn wrong_subscript_variable_rejected() {
        assert!(matches!(
            compile("do i from 1 to n { A[i] := X[j]; }"),
            Err(LangError::WrongIndexVariable { .. })
        ));
    }

    #[test]
    fn same_iteration_cycle_rejected() {
        assert!(matches!(
            compile("do i from 1 to n { A[i] := B[i]; B[i] := A[i]; }"),
            Err(LangError::Dataflow(
                tpn_dataflow::DataflowError::ForwardCycle { .. }
            ))
        ));
    }

    #[test]
    fn distance_two_recurrence_gets_buffers() {
        let s = compile("do i from 1 to n { F[i] := F[i-1] + F[i-2]; }").unwrap();
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.nodes().filter(|(_, n)| n.op == OpKind::Id).count(), 2);
        let s2 = compile("do i from 1 to n { F[i] := F[i-1] + F[i-2] + X[i]; }").unwrap();
        let mut env = Env::new();
        env.insert("X", vec![1.0, 0.0, 0.0, 0.0, 0.0]);
        let f = s2.names()["F"];
        let t = execute(&s2, &env, 5).unwrap();
        assert_eq!(t.series(f), &[1.0, 1.0, 2.0, 3.0, 5.0]);
    }

    #[test]
    fn if_statement_merges_each_defined_name() {
        // |X| via a conditional statement with two defs.
        let s = compile(
            r#"do i from 1 to n {
               if X[i] > 0 then
                 A[i] := X[i];
                 B[i] := X[i] * 2;
               else
                 A[i] := -X[i];
                 B[i] := 0 - X[i] * 2;
               end
               C[i] := A[i] + B[i];
             }"#,
        )
        .unwrap();
        // Merge actors for A and B exist; C reads the merged values.
        assert_eq!(s.nodes().filter(|(_, n)| n.op == OpKind::Merge).count(), 2);
        let mut env = Env::new();
        env.insert("X", vec![-2.0, 3.0]);
        let names = s.names();
        let t = execute(&s, &env, 2).unwrap();
        assert_eq!(t.value(names["A"], 0), 2.0);
        assert_eq!(t.value(names["A"], 1), 3.0);
        assert_eq!(t.value(names["C"], 0), 2.0 + 4.0);
        assert_eq!(t.value(names["C"], 1), 3.0 + 6.0);
    }

    #[test]
    fn branch_local_references_bind_to_their_branch() {
        // T is used inside the same branch that defines it.
        let s = compile(
            r#"do i from 1 to n {
               if X[i] > 0 then
                 T[i] := X[i] * 2;
                 U[i] := T[i] + 1;
               else
                 T[i] := 0 - X[i];
                 U[i] := T[i] - 1;
               end
             }"#,
        )
        .unwrap();
        let mut env = Env::new();
        env.insert("X", vec![5.0, -5.0]);
        let names = s.names();
        let t = execute(&s, &env, 2).unwrap();
        assert_eq!(t.value(names["U"], 0), 11.0); // 5*2 + 1
        assert_eq!(t.value(names["U"], 1), 4.0); // 5 - 1
    }

    #[test]
    fn loop_carried_reads_of_branch_defs_use_the_merge() {
        // Running maximum via a conditional statement.
        let s = compile(
            r#"do i from 1 to n {
               if X[i] > old S then
                 S := X[i];
               else
                 S := old S;
               end
             }"#,
        )
        .unwrap();
        let mut env = Env::new();
        env.insert("X", vec![2.0, 7.0, 3.0, 9.0]);
        let names = s.names();
        let t = execute(&s, &env, 4).unwrap();
        assert_eq!(t.series(names["S"]), &[2.0, 7.0, 7.0, 9.0]);
    }

    #[test]
    fn nested_if_statements_lower() {
        let s = compile(
            r#"do i from 1 to n {
               if X[i] > 0 then
                 if X[i] > 10 then V[i] := 2; else V[i] := 1; end
               else
                 V[i] := 0;
               end
             }"#,
        )
        .unwrap();
        let mut env = Env::new();
        env.insert("X", vec![20.0, 5.0, -1.0]);
        let names = s.names();
        let t = execute(&s, &env, 3).unwrap();
        assert_eq!(t.series(names["V"]), &[2.0, 1.0, 0.0]);
    }

    #[test]
    fn branch_mismatch_rejected() {
        assert!(matches!(
            compile("do i from 1 to n { if X[i] > 0 then A[i] := 1; else B[i] := 2; end }"),
            Err(LangError::BranchDefinitionMismatch { .. })
        ));
    }

    #[test]
    fn branch_and_toplevel_double_assignment_rejected() {
        assert!(matches!(
            compile(
                "do i from 1 to n { A[i] := 1; if X[i] > 0 then A[i] := 2; else A[i] := 3; end }"
            ),
            Err(LangError::DoubleAssignment { .. })
        ));
    }

    #[test]
    fn if_statements_schedule_like_ordinary_nodes() {
        use tpn_dataflow::to_petri::to_petri;
        let s = compile(
            r#"do i from 1 to n {
               if X[i] > 0 then A[i] := X[i]; else A[i] := -X[i]; end
               S := old S + A[i];
             }"#,
        )
        .unwrap();
        let pn = to_petri(&s);
        assert!(tpn_petri::marked::check_live_safe(&pn.net, &pn.marking).is_ok());
    }
}
