//! Abstract syntax of the loop language.

use crate::error::Span;

/// Whether the loop promises the absence of loop-carried dependences.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LoopKind {
    /// `doall`: the lowering rejects any loop-carried reference.
    Doall,
    /// `do`: loop-carried references become feedback dependences.
    Do,
}

/// A parsed loop.
#[derive(Clone, Debug, PartialEq)]
pub struct LoopAst {
    /// `doall` or `do`.
    pub kind: LoopKind,
    /// The loop index variable.
    pub index: String,
    /// The statements of the body, in order.
    pub body: Vec<Stmt>,
}

/// The left-hand side of an assignment.
#[derive(Clone, Debug, PartialEq)]
pub enum Target {
    /// `A[i] := …` — defines one element of array `A` per iteration.
    Array {
        /// The array name.
        name: String,
    },
    /// `q := …` — defines a scalar per iteration.
    Scalar {
        /// The scalar name.
        name: String,
    },
}

impl Target {
    /// The defined name.
    pub fn name(&self) -> &str {
        match self {
            Target::Array { name } | Target::Scalar { name } => name,
        }
    }
}

/// A statement of the loop body.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// A single assignment.
    Assign {
        /// What is defined.
        target: Target,
        /// The defining expression.
        value: Expr,
        /// Source location of the whole statement.
        span: Span,
    },
    /// A conditional block: `if c then … else … end`. Under the paper's
    /// dummy-token treatment both branches execute every iteration and a
    /// merge actor selects each defined variable's value, so the two
    /// branches must define exactly the same names.
    If {
        /// The condition.
        cond: Expr,
        /// Statements of the `then` branch.
        then: Vec<Stmt>,
        /// Statements of the `else` branch.
        els: Vec<Stmt>,
        /// Source location of the whole statement.
        span: Span,
    },
}

impl Stmt {
    /// Source location of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. } | Stmt::If { span, .. } => *span,
        }
    }
}

/// Binary operators.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A numeric literal.
    Number {
        /// The value.
        value: f64,
        /// Source location.
        span: Span,
    },
    /// A scalar reference (`q`), possibly of the previous iteration
    /// (`old q`).
    Scalar {
        /// The name.
        name: String,
        /// Whether the reference is `old` (previous iteration).
        old: bool,
        /// Source location.
        span: Span,
    },
    /// An array reference `A[i + offset]`.
    ArrayRef {
        /// The array name.
        array: String,
        /// The subscript variable (validated against the loop index).
        var: String,
        /// The constant offset.
        offset: i64,
        /// Source location.
        span: Span,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Unary negation.
    Neg {
        /// The operand.
        expr: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// `if cond then a else b end`.
    If {
        /// The condition.
        cond: Box<Expr>,
        /// The `then` value.
        then: Box<Expr>,
        /// The `else` value.
        els: Box<Expr>,
        /// Source location.
        span: Span,
    },
}

impl Expr {
    /// Source location of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Number { span, .. }
            | Expr::Scalar { span, .. }
            | Expr::ArrayRef { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Neg { span, .. }
            | Expr::If { span, .. } => *span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_name() {
        assert_eq!(Target::Array { name: "A".into() }.name(), "A");
        assert_eq!(Target::Scalar { name: "q".into() }.name(), "q");
    }

    #[test]
    fn expr_span_accessor() {
        let e = Expr::Number {
            value: 1.0,
            span: Span::new(3, 4),
        };
        assert_eq!(e.span(), Span::new(3, 4));
    }
}
