//! A small SISAL-flavoured loop language.
//!
//! The paper's testbed compiles SISAL to dataflow code; this crate stands
//! in for that front-end with a compact loop language that covers all the
//! loop shapes of §2, §3 and the Livermore kernels of §5:
//!
//! ```text
//! doall i from 1 to n {            // no loop-carried dependences
//!     A[i] := X[i] + 5;
//!     B[i] := Y[i] + A[i];
//! }
//!
//! do i from 1 to n {               // loop-carried dependences allowed
//!     Q := old Q + Z[i] * X[i];    // `old` reads last iteration's value
//!     X2[i] := Z[i] * (Y[i] - X2[i-1]);
//!     R[i] := if X[i] > 0 then X[i] else -X[i] end;
//! }
//! ```
//!
//! * Array references `A[i±k]` on arrays **defined in the loop** become
//!   forward (`k = 0`) or feedback (`k ≥ 1`) dependences; on arrays the
//!   loop does not define they are environment reads with arbitrary
//!   offsets (e.g. `Z[i+10]` in Livermore loop 1).
//! * Scalar names the loop does not define are loop-invariant parameters;
//!   scalars it does define can be read same-iteration by name or
//!   last-iteration via `old`.
//! * Conditionals lower to the merge actor under the paper's dummy-token
//!   treatment (both branches execute, the merge selects).
//!
//! The pipeline is [`parse`] → [`lower()`], or [`compile`] for both at once:
//!
//! ```
//! let sdsp = tpn_lang::compile(
//!     "do i from 1 to n { Q := old Q + Z[i] * X[i]; }",
//! )?;
//! assert_eq!(sdsp.num_nodes(), 2); // the multiply and the accumulate
//! assert!(sdsp.has_loop_carried_dependence());
//! # Ok::<(), tpn_lang::LangError>(())
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod printer;

pub use ast::{BinOp, Expr, LoopAst, LoopKind, Stmt, Target};

pub use error::LangError;
pub use lower::lower;
pub use parser::parse;

use tpn_dataflow::Sdsp;

/// Parses and lowers a loop in one step.
///
/// # Errors
///
/// Any [`LangError`] from parsing, semantic analysis, or lowering.
pub fn compile(source: &str) -> Result<Sdsp, LangError> {
    lower(&parse(source)?)
}
