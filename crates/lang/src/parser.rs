//! Recursive-descent parser for the loop language.
//!
//! Grammar (keywords are ordinary identifiers with special meaning):
//!
//! ```text
//! loop    := ("doall" | "do") IDENT "from" bound "to" bound "{" stmt* "}"
//! bound   := NUMBER | IDENT
//! stmt    := target ":=" expr ";"
//! target  := IDENT "[" IDENT "]" | IDENT
//! expr    := "if" expr "then" expr "else" expr "end" | cmp
//! cmp     := add (("<" | "<=" | ">" | ">=" | "==" | "!=") add)?
//! add     := mul (("+" | "-") mul)*
//! mul     := unary (("*" | "/") unary)*
//! unary   := "-" unary | primary
//! primary := NUMBER
//!          | ("min" | "max") "(" expr "," expr ")"
//!          | "old" IDENT
//!          | IDENT ("[" IDENT (("+" | "-") NUMBER)? "]")?
//!          | "(" expr ")"
//! ```

use crate::ast::{BinOp, Expr, LoopAst, LoopKind, Stmt, Target};
use crate::error::{LangError, Span};
use crate::lexer::{lex, SpannedTok, Tok};

/// Parses one loop from `source`.
///
/// # Errors
///
/// Lexical errors and [`LangError::Expected`] diagnostics with source
/// spans.
///
/// # Example
///
/// ```
/// use tpn_lang::parser::parse;
/// let ast = parse("doall i from 1 to n { A[i] := X[i] + 5; }")?;
/// assert_eq!(ast.index, "i");
/// assert_eq!(ast.body.len(), 1);
/// # Ok::<(), tpn_lang::LangError>(())
/// ```
pub fn parse(source: &str) -> Result<LoopAst, LangError> {
    let toks = lex(source)?;
    let mut p = Parser { toks, pos: 0 };
    let ast = p.loop_decl()?;
    p.expect_eof()?;
    Ok(ast)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &SpannedTok {
        &self.toks[self.pos]
    }

    fn bump(&mut self) -> SpannedTok {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expected(&self, what: &str) -> LangError {
        let cur = self.peek();
        LangError::Expected {
            expected: what.to_string(),
            found: cur.tok.to_string(),
            span: cur.span,
        }
    }

    fn eat(&mut self, tok: &Tok, what: &str) -> Result<Span, LangError> {
        if &self.peek().tok == tok {
            Ok(self.bump().span)
        } else {
            Err(self.expected(what))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), LangError> {
        match &self.peek().tok {
            Tok::Ident(s) => {
                let s = s.clone();
                let span = self.bump().span;
                Ok((s, span))
            }
            _ => Err(self.expected(what)),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<Span, LangError> {
        match &self.peek().tok {
            Tok::Ident(s) if s == kw => Ok(self.bump().span),
            _ => Err(self.expected(&format!("`{kw}`"))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s == kw)
    }

    fn expect_eof(&self) -> Result<(), LangError> {
        if self.peek().tok == Tok::Eof {
            Ok(())
        } else {
            Err(self.expected("end of input"))
        }
    }

    fn loop_decl(&mut self) -> Result<LoopAst, LangError> {
        let kind = if self.peek_keyword("doall") {
            self.bump();
            LoopKind::Doall
        } else if self.peek_keyword("do") {
            self.bump();
            LoopKind::Do
        } else {
            return Err(self.expected("`doall` or `do`"));
        };
        let (index, _) = self.ident("loop index variable")?;
        self.keyword("from")?;
        self.bound()?;
        self.keyword("to")?;
        self.bound()?;
        self.eat(&Tok::LBrace, "`{`")?;
        let mut body = Vec::new();
        while self.peek().tok != Tok::RBrace {
            body.push(self.stmt()?);
        }
        self.eat(&Tok::RBrace, "`}`")?;
        Ok(LoopAst { kind, index, body })
    }

    /// Loop bounds are documentation only (the schedule is iteration-count
    /// independent): a number or a symbolic name.
    fn bound(&mut self) -> Result<(), LangError> {
        match &self.peek().tok {
            Tok::Number(_) | Tok::Ident(_) => {
                self.bump();
                Ok(())
            }
            _ => Err(self.expected("a loop bound (number or name)")),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        if self.peek_keyword("if") {
            return self.if_stmt();
        }
        let (name, start_span) = self.ident("an assignment target")?;
        let target = if self.peek().tok == Tok::LBracket {
            self.bump();
            self.ident("the loop index")?;
            self.eat(&Tok::RBracket, "`]`")?;
            Target::Array { name }
        } else {
            Target::Scalar { name }
        };
        self.eat(&Tok::Assign, "`:=`")?;
        let value = self.expr()?;
        let end = self.eat(&Tok::Semi, "`;`")?;
        Ok(Stmt::Assign {
            target,
            value,
            span: start_span.merge(end),
        })
    }

    /// `if expr then stmt* else stmt* end [;]`
    fn if_stmt(&mut self) -> Result<Stmt, LangError> {
        let start = self.keyword("if")?;
        let cond = self.expr()?;
        self.keyword("then")?;
        let mut then = Vec::new();
        while !self.peek_keyword("else") {
            then.push(self.stmt()?);
        }
        self.keyword("else")?;
        let mut els = Vec::new();
        while !self.peek_keyword("end") {
            els.push(self.stmt()?);
        }
        let mut end = self.keyword("end")?;
        if self.peek().tok == Tok::Semi {
            end = self.bump().span;
        }
        Ok(Stmt::If {
            cond,
            then,
            els,
            span: start.merge(end),
        })
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        if self.peek_keyword("if") {
            let start = self.bump().span;
            let cond = self.expr()?;
            self.keyword("then")?;
            let then = self.expr()?;
            self.keyword("else")?;
            let els = self.expr()?;
            let end = self.keyword("end")?;
            return Ok(Expr::If {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
                span: start.merge(end),
            });
        }
        self.cmp()
    }

    fn cmp(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add()?;
        let op = match self.peek().tok {
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            Tok::EqEq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add()?;
        let span = lhs.span().merge(rhs.span());
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            span,
        })
    }

    fn add(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek().tok {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn mul(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek().tok {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        if self.peek().tok == Tok::Minus {
            let start = self.bump().span;
            let expr = self.unary()?;
            let span = start.merge(expr.span());
            return Ok(Expr::Neg {
                expr: Box::new(expr),
                span,
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        match self.peek().tok.clone() {
            Tok::Number(value) => {
                let span = self.bump().span;
                Ok(Expr::Number { value, span })
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.eat(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(name) if name == "min" || name == "max" => {
                let start = self.bump().span;
                self.eat(&Tok::LParen, "`(`")?;
                let a = self.expr()?;
                self.eat(&Tok::Comma, "`,`")?;
                let b = self.expr()?;
                let end = self.eat(&Tok::RParen, "`)`")?;
                Ok(Expr::Binary {
                    op: if name == "min" {
                        BinOp::Min
                    } else {
                        BinOp::Max
                    },
                    lhs: Box::new(a),
                    rhs: Box::new(b),
                    span: start.merge(end),
                })
            }
            Tok::Ident(name) if name == "old" => {
                let start = self.bump().span;
                let (name, end) = self.ident("a scalar name after `old`")?;
                Ok(Expr::Scalar {
                    name,
                    old: true,
                    span: start.merge(end),
                })
            }
            Tok::Ident(name) => {
                let start = self.bump().span;
                if self.peek().tok == Tok::LBracket {
                    self.bump();
                    let (var, _) = self.ident("a subscript variable")?;
                    let mut offset = 0i64;
                    match self.peek().tok {
                        Tok::Plus | Tok::Minus => {
                            let neg = self.peek().tok == Tok::Minus;
                            self.bump();
                            match self.peek().tok {
                                Tok::Number(n) if n.fract() == 0.0 => {
                                    self.bump();
                                    offset = if neg { -(n as i64) } else { n as i64 };
                                }
                                _ => return Err(self.expected("an integer offset")),
                            }
                        }
                        _ => {}
                    }
                    let end = self.eat(&Tok::RBracket, "`]`")?;
                    Ok(Expr::ArrayRef {
                        array: name,
                        var,
                        offset,
                        span: start.merge(end),
                    })
                } else {
                    Ok(Expr::Scalar {
                        name,
                        old: false,
                        span: start,
                    })
                }
            }
            _ => Err(self.expected("an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_l1() {
        let ast = parse(
            "doall i from 1 to n {\
               A[i] := X[i] + 5;\
               B[i] := Y[i] + A[i];\
               C[i] := A[i] + Z[i];\
               D[i] := B[i] + C[i];\
               E[i] := W[i] + D[i];\
             }",
        )
        .unwrap();
        assert_eq!(ast.kind, LoopKind::Doall);
        assert_eq!(ast.body.len(), 5);
        assert!(matches!(
            &ast.body[0],
            Stmt::Assign { target: Target::Array { name }, .. } if name == "A"
        ));
    }

    #[test]
    fn parses_offsets_and_old() {
        let ast = parse("do i from 1 to n { Q := old Q + Z[i+10] * X[i-1]; }").unwrap();
        let Stmt::Assign { value, .. } = &ast.body[0] else {
            panic!("expected assignment")
        };
        let Expr::Binary {
            op: BinOp::Add,
            lhs,
            rhs,
            ..
        } = value
        else {
            panic!("expected +")
        };
        assert!(matches!(**lhs, Expr::Scalar { old: true, .. }));
        let Expr::Binary {
            op: BinOp::Mul,
            lhs: z,
            rhs: x,
            ..
        } = &**rhs
        else {
            panic!("expected *")
        };
        assert!(matches!(**z, Expr::ArrayRef { offset: 10, .. }));
        assert!(matches!(**x, Expr::ArrayRef { offset: -1, .. }));
    }

    #[test]
    fn precedence_mul_over_add() {
        let ast = parse("do i from 1 to n { A[i] := 1 + 2 * 3; }").unwrap();
        let Stmt::Assign { value, .. } = &ast.body[0] else {
            panic!("expected assignment")
        };
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = value
        else {
            panic!("expected + at top");
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_conditional_and_comparison() {
        let ast =
            parse("do i from 1 to n { R[i] := if X[i] > 0 then X[i] else -X[i] end; }").unwrap();
        let Stmt::Assign { value, .. } = &ast.body[0] else {
            panic!("expected assignment")
        };
        let Expr::If { cond, els, .. } = value else {
            panic!("expected if");
        };
        assert!(matches!(**cond, Expr::Binary { op: BinOp::Gt, .. }));
        assert!(matches!(**els, Expr::Neg { .. }));
    }

    #[test]
    fn parses_min_max_calls() {
        let ast = parse("do i from 1 to n { M[i] := min(X[i], max(Y[i], 0)); }").unwrap();
        let Stmt::Assign { value, .. } = &ast.body[0] else {
            panic!("expected assignment")
        };
        let Expr::Binary {
            op: BinOp::Min,
            rhs,
            ..
        } = value
        else {
            panic!("expected min");
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Max, .. }));
    }

    #[test]
    fn parses_parenthesised_groups() {
        let ast = parse("do i from 1 to n { X2[i] := Z[i] * (Y[i] - X2[i-1]); }").unwrap();
        let Stmt::Assign { value, .. } = &ast.body[0] else {
            panic!("expected assignment")
        };
        let Expr::Binary {
            op: BinOp::Mul,
            rhs,
            ..
        } = value
        else {
            panic!("expected *");
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Sub, .. }));
    }

    #[test]
    fn missing_semicolon_is_reported() {
        match parse("do i from 1 to n { A[i] := 1 }") {
            Err(LangError::Expected { expected, .. }) => assert_eq!(expected, "`;`"),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn trailing_tokens_are_rejected() {
        assert!(matches!(
            parse("do i from 1 to n { } extra"),
            Err(LangError::Expected { .. })
        ));
    }

    #[test]
    fn symbolic_bounds_accepted() {
        assert!(parse("do k from lo to hi { A[k] := 1; }").is_ok());
    }

    #[test]
    fn parses_if_statements() {
        let ast = parse(
            "do i from 1 to n { if X[i] > 0 then A[i] := 1; else A[i] := 2; end B[i] := A[i]; }",
        )
        .unwrap();
        assert_eq!(ast.body.len(), 2);
        let Stmt::If { then, els, .. } = &ast.body[0] else {
            panic!("expected if statement");
        };
        assert_eq!(then.len(), 1);
        assert_eq!(els.len(), 1);
        // Optional trailing semicolon after `end`.
        assert!(
            parse("do i from 1 to n { if X[i] > 0 then A[i] := 1; else A[i] := 2; end; }").is_ok()
        );
        // Nested.
        assert!(parse(
            "do i from 1 to n { if X[i] > 0 then if X[i] > 9 then A[i] := 2; else A[i] := 1; end else A[i] := 0; end }"
        )
        .is_ok());
    }

    #[test]
    fn unterminated_if_statement_is_an_error() {
        assert!(parse("do i from 1 to n { if X[i] > 0 then A[i] := 1; }").is_err());
    }

    #[test]
    fn wrong_loop_keyword_rejected() {
        assert!(matches!(
            parse("for i from 1 to n { }"),
            Err(LangError::Expected { .. })
        ));
    }
}
