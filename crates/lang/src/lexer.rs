//! Tokeniser for the loop language.

use crate::error::{LangError, Span};

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A numeric literal.
    Number(f64),
    /// `:=`
    Assign,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// End of input.
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier {s:?}"),
            Tok::Number(n) => write!(f, "number {n}"),
            Tok::Assign => f.write_str("`:=`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::LBracket => f.write_str("`[`"),
            Tok::RBracket => f.write_str("`]`"),
            Tok::Plus => f.write_str("`+`"),
            Tok::Minus => f.write_str("`-`"),
            Tok::Star => f.write_str("`*`"),
            Tok::Slash => f.write_str("`/`"),
            Tok::Lt => f.write_str("`<`"),
            Tok::Le => f.write_str("`<=`"),
            Tok::Gt => f.write_str("`>`"),
            Tok::Ge => f.write_str("`>=`"),
            Tok::EqEq => f.write_str("`==`"),
            Tok::Ne => f.write_str("`!=`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Where it came from.
    pub span: Span,
}

/// Tokenises `source`. `//` comments run to end of line.
///
/// # Errors
///
/// [`LangError::UnexpectedChar`] and [`LangError::BadNumber`].
pub fn lex(source: &str) -> Result<Vec<SpannedTok>, LangError> {
    let bytes = source.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ':' if bytes.get(i + 1) == Some(&b'=') => {
                toks.push(SpannedTok {
                    tok: Tok::Assign,
                    span: Span::new(start, start + 2),
                });
                i += 2;
            }
            ';' => {
                toks.push(tok1(Tok::Semi, start));
                i += 1;
            }
            ',' => {
                toks.push(tok1(Tok::Comma, start));
                i += 1;
            }
            '(' => {
                toks.push(tok1(Tok::LParen, start));
                i += 1;
            }
            ')' => {
                toks.push(tok1(Tok::RParen, start));
                i += 1;
            }
            '{' => {
                toks.push(tok1(Tok::LBrace, start));
                i += 1;
            }
            '}' => {
                toks.push(tok1(Tok::RBrace, start));
                i += 1;
            }
            '[' => {
                toks.push(tok1(Tok::LBracket, start));
                i += 1;
            }
            ']' => {
                toks.push(tok1(Tok::RBracket, start));
                i += 1;
            }
            '+' => {
                toks.push(tok1(Tok::Plus, start));
                i += 1;
            }
            '-' => {
                toks.push(tok1(Tok::Minus, start));
                i += 1;
            }
            '*' => {
                toks.push(tok1(Tok::Star, start));
                i += 1;
            }
            '/' => {
                toks.push(tok1(Tok::Slash, start));
                i += 1;
            }
            '<' | '>' | '=' | '!' => {
                let two = bytes.get(i + 1) == Some(&b'=');
                let tok = match (c, two) {
                    ('<', true) => Tok::Le,
                    ('<', false) => Tok::Lt,
                    ('>', true) => Tok::Ge,
                    ('>', false) => Tok::Gt,
                    ('=', true) => Tok::EqEq,
                    ('!', true) => Tok::Ne,
                    _ => {
                        return Err(LangError::UnexpectedChar {
                            ch: c,
                            span: Span::new(start, start + 1),
                        })
                    }
                };
                let len = if two { 2 } else { 1 };
                toks.push(SpannedTok {
                    tok,
                    span: Span::new(start, start + len),
                });
                i += len;
            }
            _ if c.is_ascii_digit() => {
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && matches!(bytes.get(i.wrapping_sub(1)), Some(b'e') | Some(b'E'))))
                {
                    i += 1;
                }
                let text = &source[start..i];
                let value = text.parse::<f64>().map_err(|_| LangError::BadNumber {
                    text: text.to_string(),
                    span: Span::new(start, i),
                })?;
                toks.push(SpannedTok {
                    tok: Tok::Number(value),
                    span: Span::new(start, i),
                });
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push(SpannedTok {
                    tok: Tok::Ident(source[start..i].to_string()),
                    span: Span::new(start, i),
                });
            }
            _ => {
                return Err(LangError::UnexpectedChar {
                    ch: c,
                    span: Span::new(start, start + 1),
                })
            }
        }
    }
    toks.push(SpannedTok {
        tok: Tok::Eof,
        span: Span::new(source.len(), source.len()),
    });
    Ok(toks)
}

fn tok1(tok: Tok, start: usize) -> SpannedTok {
    SpannedTok {
        tok,
        span: Span::new(start, start + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_assignment_statement() {
        let toks = kinds("A[i] := X[i] + 5;");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("A".into()),
                Tok::LBracket,
                Tok::Ident("i".into()),
                Tok::RBracket,
                Tok::Assign,
                Tok::Ident("X".into()),
                Tok::LBracket,
                Tok::Ident("i".into()),
                Tok::RBracket,
                Tok::Plus,
                Tok::Number(5.0),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_comparisons() {
        assert_eq!(
            kinds("< <= > >= == !="),
            vec![
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::EqEq,
                Tok::Ne,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // comment\n b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn numbers_with_exponents() {
        assert_eq!(kinds("1.5e-3"), vec![Tok::Number(1.5e-3), Tok::Eof]);
        assert_eq!(kinds("2E4"), vec![Tok::Number(2e4), Tok::Eof]);
    }

    #[test]
    fn unexpected_character_reported_with_span() {
        match lex("a $ b") {
            Err(LangError::UnexpectedChar { ch: '$', span }) => {
                assert_eq!(span.start, 2);
            }
            other => panic!("expected UnexpectedChar, got {other:?}"),
        }
    }

    #[test]
    fn bad_number_reported() {
        assert!(matches!(lex("1.2.3"), Err(LangError::BadNumber { .. })));
    }

    #[test]
    fn spans_cover_tokens() {
        let toks = lex("ab := 12").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
        assert_eq!(toks[2].span, Span::new(6, 8));
    }
}
