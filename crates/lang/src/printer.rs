//! Pretty-printing parsed loops back to source text.
//!
//! The printer emits fully parenthesised expressions, so
//! `parse(print(ast))` reproduces the AST exactly (up to source spans) —
//! the round-trip property the test suite checks on thousands of random
//! programs. It is also the humane way to dump programmatically-built
//! ASTs.

use std::fmt::Write as _;

use crate::ast::{BinOp, Expr, LoopAst, LoopKind, Stmt, Target};

/// Renders a loop as parseable source text.
///
/// # Example
///
/// ```
/// use tpn_lang::{parse, printer::print};
/// let ast = parse("do i from 1 to n { Q := old Q + X[i]; }")?;
/// let text = print(&ast);
/// assert!(text.contains("old Q"));
/// // The round trip is exact (spans aside).
/// let again = parse(&text)?;
/// assert_eq!(again.body.len(), ast.body.len());
/// # Ok::<(), tpn_lang::LangError>(())
/// ```
pub fn print(ast: &LoopAst) -> String {
    let mut out = String::new();
    let kw = match ast.kind {
        LoopKind::Doall => "doall",
        LoopKind::Do => "do",
    };
    let _ = writeln!(out, "{kw} {} from 1 to n {{", ast.index);
    for stmt in &ast.body {
        print_stmt(&mut out, ast, stmt, 1);
    }
    out.push_str("}\n");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_stmt(out: &mut String, ast: &LoopAst, stmt: &Stmt, depth: usize) {
    match stmt {
        Stmt::Assign { target, value, .. } => {
            indent(out, depth);
            match target {
                Target::Array { name } => {
                    let _ = write!(out, "{name}[{}]", ast.index);
                }
                Target::Scalar { name } => {
                    let _ = write!(out, "{name}");
                }
            }
            out.push_str(" := ");
            print_expr(out, ast, value);
            out.push_str(";\n");
        }
        Stmt::If {
            cond, then, els, ..
        } => {
            indent(out, depth);
            out.push_str("if ");
            print_expr(out, ast, cond);
            out.push_str(" then\n");
            for s in then {
                print_stmt(out, ast, s, depth + 1);
            }
            indent(out, depth);
            out.push_str("else\n");
            for s in els {
                print_stmt(out, ast, s, depth + 1);
            }
            indent(out, depth);
            out.push_str("end\n");
        }
    }
}

fn print_expr(out: &mut String, ast: &LoopAst, expr: &Expr) {
    match expr {
        Expr::Number { value, .. } => {
            let _ = write!(out, "{value:?}");
        }
        Expr::Scalar { name, old, .. } => {
            if *old {
                out.push_str("old ");
            }
            out.push_str(name);
        }
        Expr::ArrayRef { array, offset, .. } => match offset {
            0 => {
                let _ = write!(out, "{array}[{}]", ast.index);
            }
            o if *o > 0 => {
                let _ = write!(out, "{array}[{}+{o}]", ast.index);
            }
            o => {
                let _ = write!(out, "{array}[{}-{}]", ast.index, -o);
            }
        },
        Expr::Binary { op, lhs, rhs, .. } => match op {
            BinOp::Min | BinOp::Max => {
                out.push_str(if *op == BinOp::Min { "min(" } else { "max(" });
                print_expr(out, ast, lhs);
                out.push_str(", ");
                print_expr(out, ast, rhs);
                out.push(')');
            }
            _ => {
                out.push('(');
                print_expr(out, ast, lhs);
                let sym = match op {
                    BinOp::Add => " + ",
                    BinOp::Sub => " - ",
                    BinOp::Mul => " * ",
                    BinOp::Div => " / ",
                    BinOp::Lt => " < ",
                    BinOp::Le => " <= ",
                    BinOp::Gt => " > ",
                    BinOp::Ge => " >= ",
                    BinOp::Eq => " == ",
                    BinOp::Ne => " != ",
                    BinOp::Min | BinOp::Max => unreachable!("handled above"),
                };
                out.push_str(sym);
                print_expr(out, ast, rhs);
                out.push(')');
            }
        },
        Expr::Neg { expr, .. } => {
            out.push_str("(-");
            print_expr(out, ast, expr);
            out.push(')');
        }
        Expr::If {
            cond, then, els, ..
        } => {
            out.push_str("(if ");
            print_expr(out, ast, cond);
            out.push_str(" then ");
            print_expr(out, ast, then);
            out.push_str(" else ");
            print_expr(out, ast, els);
            out.push_str(" end)");
        }
    }
}

/// Strips source spans (sets them to the default), for span-insensitive
/// AST comparison.
pub fn strip_spans(ast: &LoopAst) -> LoopAst {
    LoopAst {
        kind: ast.kind,
        index: ast.index.clone(),
        body: ast.body.iter().map(strip_stmt).collect(),
    }
}

fn strip_stmt(stmt: &Stmt) -> Stmt {
    match stmt {
        Stmt::Assign { target, value, .. } => Stmt::Assign {
            target: target.clone(),
            value: strip_expr(value),
            span: Default::default(),
        },
        Stmt::If {
            cond, then, els, ..
        } => Stmt::If {
            cond: strip_expr(cond),
            then: then.iter().map(strip_stmt).collect(),
            els: els.iter().map(strip_stmt).collect(),
            span: Default::default(),
        },
    }
}

fn strip_expr(expr: &Expr) -> Expr {
    match expr {
        Expr::Number { value, .. } => Expr::Number {
            value: *value,
            span: Default::default(),
        },
        Expr::Scalar { name, old, .. } => Expr::Scalar {
            name: name.clone(),
            old: *old,
            span: Default::default(),
        },
        Expr::ArrayRef {
            array, var, offset, ..
        } => Expr::ArrayRef {
            array: array.clone(),
            var: var.clone(),
            offset: *offset,
            span: Default::default(),
        },
        Expr::Binary { op, lhs, rhs, .. } => Expr::Binary {
            op: *op,
            lhs: Box::new(strip_expr(lhs)),
            rhs: Box::new(strip_expr(rhs)),
            span: Default::default(),
        },
        Expr::Neg { expr, .. } => Expr::Neg {
            expr: Box::new(strip_expr(expr)),
            span: Default::default(),
        },
        Expr::If {
            cond, then, els, ..
        } => Expr::If {
            cond: Box::new(strip_expr(cond)),
            then: Box::new(strip_expr(then)),
            els: Box::new(strip_expr(els)),
            span: Default::default(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trips(src: &str) {
        let ast = parse(src).unwrap();
        let printed = print(&ast);
        let again = parse(&printed).unwrap_or_else(|e| {
            panic!(
                "printed text failed to parse: {}\n{}",
                e.render(&printed),
                printed
            )
        });
        assert_eq!(
            strip_spans(&ast),
            strip_spans(&again),
            "round trip changed the AST:\n{printed}"
        );
    }

    #[test]
    fn simple_loops_round_trip() {
        round_trips("doall i from 1 to n { A[i] := X[i] + 5; }");
        round_trips("do i from 1 to n { Q := old Q + Z[i] * X[i]; }");
        round_trips("do i from 2 to n { X2[i] := Z[i] * (Y[i] - X2[i-1]); }");
    }

    #[test]
    fn conditionals_round_trip() {
        round_trips("do i from 1 to n { R[i] := if X[i] > 0 then X[i] else -X[i] end; }");
        round_trips(
            "do i from 1 to n { if X[i] > 0 then A[i] := 1; else A[i] := 2; end B[i] := A[i]; }",
        );
    }

    #[test]
    fn min_max_and_offsets_round_trip() {
        round_trips("do k from 1 to n { M[k] := min(X[k+3], max(Y[k-1], 0)); }");
    }

    #[test]
    fn printed_form_is_indented() {
        let ast =
            parse("do i from 1 to n { if X[i] > 0 then A[i] := 1; else A[i] := 2; end }").unwrap();
        let text = print(&ast);
        assert!(text.contains("    if "));
        assert!(text.contains("        A[i] := "));
    }
}
