//! Criterion benches for the end-to-end compile path: source text to
//! time-optimal schedule — the cost a compiler pays to software-pipeline
//! one loop with this method.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Short measurement windows keep the full suite to a few minutes while
/// remaining stable for these microsecond-scale benchmarks.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
        .sample_size(20)
}
use std::hint::black_box;
use tpn::CompiledLoop;
use tpn_livermore::kernels;
use tpn_storage::minimize_storage;

fn end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_to_schedule");
    for kernel in kernels() {
        group.bench_function(BenchmarkId::from_parameter(kernel.name), |b| {
            b.iter(|| {
                let lp = CompiledLoop::from_source(kernel.source).expect("compiles");
                let schedule = lp.schedule().expect("schedule");
                black_box(schedule.period())
            })
        });
    }
    group.finish();
}

fn storage_optimise(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_minimise");
    for kernel in kernels() {
        let sdsp = kernel.sdsp();
        group.bench_function(BenchmarkId::from_parameter(kernel.name), |b| {
            b.iter(|| {
                let (_, report) = minimize_storage(&sdsp).expect("optimises");
                black_box(report.after)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = end_to_end, storage_optimise
}
criterion_main!(benches);
