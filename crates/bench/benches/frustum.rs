//! Criterion benches for cyclic-frustum detection: the compile-time cost a
//! compiler pays per loop (Tables 1 and 2 of the paper).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Short measurement windows keep the full suite to a few minutes while
/// remaining stable for these microsecond-scale benchmarks.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
        .sample_size(20)
}
use std::hint::black_box;
use tpn_dataflow::to_petri::to_petri;
use tpn_livermore::kernels;
use tpn_livermore::synth::{chain, recurrence_ring};
use tpn_petri::timed::EagerPolicy;
use tpn_sched::frustum::{detect_frustum, detect_frustum_eager, detect_frustum_reference};
use tpn_sched::policy::FifoPolicy;
use tpn_sched::scp::build_scp;

fn frustum_sdsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("frustum_sdsp");
    for kernel in kernels() {
        let pn = to_petri(&kernel.sdsp());
        group.bench_function(BenchmarkId::from_parameter(kernel.name), |b| {
            b.iter(|| {
                let f =
                    detect_frustum_eager(&pn.net, pn.marking.clone(), 1_000_000).expect("frustum");
                black_box(f.repeat_time)
            })
        });
    }
    group.finish();
}

fn frustum_scp(c: &mut Criterion) {
    let mut group = c.benchmark_group("frustum_scp_depth8");
    for kernel in kernels() {
        let pn = to_petri(&kernel.sdsp());
        let scp = build_scp(&pn, 8);
        group.bench_function(BenchmarkId::from_parameter(kernel.name), |b| {
            b.iter(|| {
                let f = detect_frustum(
                    &scp.net,
                    scp.marking.clone(),
                    FifoPolicy::new(&scp),
                    1_000_000,
                )
                .expect("frustum");
                black_box(f.repeat_time)
            })
        });
    }
    group.finish();
}

fn frustum_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("frustum_scaling");
    for n in [16usize, 64, 256, 512] {
        let pn = to_petri(&chain(n));
        group.bench_function(BenchmarkId::new("chain", n), |b| {
            b.iter(|| {
                black_box(
                    detect_frustum_eager(&pn.net, pn.marking.clone(), 1_000_000)
                        .expect("frustum")
                        .repeat_time,
                )
            })
        });
        let pn = to_petri(&recurrence_ring(n));
        group.bench_function(BenchmarkId::new("recurrence_ring", n), |b| {
            b.iter(|| {
                black_box(
                    detect_frustum_eager(&pn.net, pn.marking.clone(), 1_000_000)
                        .expect("frustum")
                        .repeat_time,
                )
            })
        });
    }
    group.finish();
}

/// Digest-indexed detection versus the clone-heavy reference detector on
/// the largest scaling nets — the speedup evidence for the zero-clone
/// engine.
fn frustum_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("frustum_engine");
    for n in [512usize] {
        for (shape, sdsp) in [("chain", chain(n)), ("recurrence_ring", recurrence_ring(n))] {
            let pn = to_petri(&sdsp);
            group.bench_function(BenchmarkId::new(format!("digest_{shape}"), n), |b| {
                b.iter(|| {
                    black_box(
                        detect_frustum_eager(&pn.net, pn.marking.clone(), 1_000_000)
                            .expect("frustum")
                            .repeat_time,
                    )
                })
            });
            group.bench_function(BenchmarkId::new(format!("reference_{shape}"), n), |b| {
                b.iter(|| {
                    black_box(
                        detect_frustum_reference(
                            &pn.net,
                            pn.marking.clone(),
                            EagerPolicy,
                            1_000_000,
                        )
                        .expect("frustum")
                        .repeat_time,
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = frustum_sdsp, frustum_scp, frustum_scaling, frustum_engine
}
criterion_main!(benches);
