//! Criterion benches for critical-cycle analysis: exhaustive enumeration
//! versus the exact parametric (Lawler / Stern–Brocot) method, the
//! polynomial alternative the paper alludes to via the LP formulation.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Short measurement windows keep the full suite to a few minutes while
/// remaining stable for these microsecond-scale benchmarks.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
        .sample_size(20)
}
use std::hint::black_box;
use tpn_dataflow::to_petri::to_petri;
use tpn_livermore::kernels;
use tpn_livermore::synth::{generate, SynthConfig};
use tpn_petri::ratio::{analyze_cycles, critical_ratio};

fn analysis_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("critical_cycle_kernels");
    for kernel in kernels() {
        let pn = to_petri(&kernel.sdsp());
        group.bench_function(BenchmarkId::new("parametric", kernel.name), |b| {
            b.iter(|| {
                black_box(
                    critical_ratio(&pn.net, &pn.marking)
                        .expect("live")
                        .cycle_time,
                )
            })
        });
        group.bench_function(BenchmarkId::new("enumeration", kernel.name), |b| {
            b.iter(|| {
                black_box(
                    analyze_cycles(&pn.net, &pn.marking, 1 << 20)
                        .expect("enumerable")
                        .cycle_time,
                )
            })
        });
    }
    group.finish();
}

fn analysis_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("critical_cycle_scaling");
    for n in [32usize, 128, 512] {
        let sdsp = generate(&SynthConfig {
            nodes: n,
            forward_density: 0.6,
            recurrences: 2,
            distance: 1,
            seed: 11,
        });
        let pn = to_petri(&sdsp);
        group.bench_function(BenchmarkId::new("parametric", n), |b| {
            b.iter(|| {
                black_box(
                    critical_ratio(&pn.net, &pn.marking)
                        .expect("live")
                        .cycle_time,
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = analysis_kernels, analysis_scaling
}
criterion_main!(benches);
