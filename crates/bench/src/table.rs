//! Minimal aligned-text table rendering for the harness binaries.

/// Renders `rows` of pre-formatted cells under `headers` with columns
/// padded to their widest cell.
///
/// # Example
///
/// ```
/// let text = tpn_bench::table::render(
///     &["name", "n"],
///     &[vec!["loop1".into(), "5".into()]],
/// );
/// assert!(text.contains("loop1"));
/// assert!(text.lines().count() >= 3);
/// ```
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            for _ in cell.len()..widths[i] {
                out.push(' ');
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    line(&mut out, &rule);
    for row in rows {
        line(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::render;

    #[test]
    fn columns_align() {
        let text = render(
            &["a", "bbbb"],
            &[vec!["xx".into(), "1".into()], vec!["y".into(), "22".into()]],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Second column starts at the same offset on every line.
        let col = lines[0].find("bbbb").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
        assert_eq!(lines[3].find("22").unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        let _ = render(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
