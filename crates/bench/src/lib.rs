//! Benchmark harness regenerating every table and figure of the paper.
//!
//! | Artefact | Binary | What it reproduces |
//! |---|---|---|
//! | Table 1 | `table1` | SDSP-PN simulation of the Livermore loops |
//! | Table 2 | `table2` | SDSP-SCP-PN (8-stage pipeline) simulation |
//! | Figure 1 | `figures fig1` | L1: graph → net → behaviour → frustum → schedule |
//! | Figure 2 | `figures fig2` | L2 with loop-carried dependence |
//! | Figure 3 | `figures fig3` | SDSP-SCP-PN construction and behaviour |
//! | Figure 4 | `figures fig4` | storage minimisation on L2 |
//! | §5 claim | `scaling` | O(n) frustum detection across loop sizes |
//! | §4 bounds | `bounds_check` | polynomial bounds incl. multiple critical cycles |
//! | §7 framing | `compare` | software pipelining vs classical baselines |
//!
//! Every binary accepts `--json` to emit machine-readable rows (serde)
//! instead of the aligned text table.

pub mod table;

use serde::Serialize;
use tpn::{CompiledLoop, Error};
use tpn_livermore::Kernel;
use tpn_petri::rational::Ratio;
use tpn_sched::bounds::{bd_scp, bd_sdsp};
use tpn_sched::rate::{RateReport, ScpRateReport};

/// One row of Table 1 (SDSP-PN model).
#[derive(Clone, Debug, Serialize)]
pub struct Table1Row {
    /// Kernel name.
    pub name: String,
    /// The paper's kernel description.
    pub description: String,
    /// Whether the loop carries a dependence.
    pub lcd: bool,
    /// Size of the loop body (`n`).
    pub size: usize,
    /// Start time: first occurrence of the repeated instantaneous state.
    pub start_time: u64,
    /// Repeat time: second occurrence.
    pub repeat_time: u64,
    /// Length of the frustum (`repeat − start`).
    pub frustum_len: u64,
    /// Occurrences of each transition in the frustum.
    pub transition_count: u64,
    /// Steady-state computation rate of every node.
    pub rate: String,
    /// The rate as a float, for plotting.
    pub rate_f64: f64,
    /// Whether the rate equals the critical-cycle optimum.
    pub time_optimal: bool,
    /// The empirical detection bound `BD = 2n`.
    pub bd: u64,
}

/// One row of Table 2 (SDSP-SCP-PN model).
#[derive(Clone, Debug, Serialize)]
pub struct Table2Row {
    /// Kernel name.
    pub name: String,
    /// Whether the loop carries a dependence.
    pub lcd: bool,
    /// Size of the loop body (`n`).
    pub size: usize,
    /// Pipeline depth `l`.
    pub depth: u64,
    /// Start time of the repeated state.
    pub start_time: u64,
    /// Repeat time.
    pub repeat_time: u64,
    /// Frustum length.
    pub frustum_len: u64,
    /// Issues of each instruction per frustum.
    pub transition_count: u64,
    /// Steady-state issue rate of every node.
    pub rate: String,
    /// The rate as a float.
    pub rate_f64: f64,
    /// Pipeline (processor) usage.
    pub usage: String,
    /// Usage as a float.
    pub usage_f64: f64,
    /// The resource ceiling `1/n` (Theorem 5.2.2), as a float.
    pub bound_f64: f64,
    /// The empirical detection bound `BD = 2·n·l`.
    pub bd: u64,
}

/// Computes a Table 1 row for `kernel`.
///
/// # Errors
///
/// Pipeline errors from compilation or detection.
pub fn table1_row(kernel: &Kernel) -> Result<Table1Row, Error> {
    let lp = CompiledLoop::from_source(kernel.source)?;
    let frustum = lp.frustum()?;
    let report = RateReport::for_sdsp_pn(lp.petri_net(), &frustum).map_err(Error::Sched)?;
    let count = frustum
        .uniform_count()
        .expect("marked-graph frustums fire uniformly");
    Ok(Table1Row {
        name: kernel.name.to_string(),
        description: kernel.description.to_string(),
        lcd: kernel.has_lcd,
        size: lp.size(),
        start_time: frustum.start_time,
        repeat_time: frustum.repeat_time,
        frustum_len: frustum.period(),
        transition_count: count,
        rate: report.measured.to_string(),
        rate_f64: report.measured.to_f64(),
        time_optimal: report.is_time_optimal(),
        bd: bd_sdsp(lp.size()),
    })
}

/// Computes a Table 2 row for `kernel` at pipeline depth `depth`.
///
/// # Errors
///
/// Pipeline errors from compilation or detection.
pub fn table2_row(kernel: &Kernel, depth: u64) -> Result<Table2Row, Error> {
    let lp = CompiledLoop::from_source(kernel.source)?;
    let run = lp.scp(depth)?;
    let n = lp.size();
    let count = run.frustum.counts[run.model.transition_of[0].index()];
    let rates: &ScpRateReport = &run.rates;
    Ok(Table2Row {
        name: kernel.name.to_string(),
        lcd: kernel.has_lcd,
        size: n,
        depth,
        start_time: run.frustum.start_time,
        repeat_time: run.frustum.repeat_time,
        frustum_len: run.frustum.period(),
        transition_count: count,
        rate: rates.measured.to_string(),
        rate_f64: rates.measured.to_f64(),
        usage: rates.utilization.to_string(),
        usage_f64: rates.utilization.to_f64(),
        bound_f64: rates.resource_bound.to_f64(),
        bd: bd_scp(n, depth),
    })
}

/// One row of the baseline comparison (§7 framing).
#[derive(Clone, Debug, Serialize)]
pub struct CompareRow {
    /// Kernel name.
    pub name: String,
    /// `II` of sequential issue.
    pub sequential: f64,
    /// `II` of per-iteration list scheduling.
    pub local_parallel: f64,
    /// `II` of unroll-by-4 scheduling (4× code space and resource width).
    pub unrolled4: f64,
    /// `II` of the software-pipelined schedule.
    pub pipelined: f64,
    /// Speedup of pipelining over list scheduling (same resources).
    pub speedup: f64,
}

/// Computes a baseline-comparison row for `kernel`.
///
/// # Errors
///
/// Pipeline errors from compilation or detection.
pub fn compare_row(kernel: &Kernel) -> Result<CompareRow, Error> {
    use tpn_sched::baseline::BaselineComparison;
    let lp = CompiledLoop::from_source(kernel.source)?;
    let schedule = lp.schedule()?;
    let cmp = BaselineComparison::build(lp.sdsp(), schedule.initiation_interval(), &[4]);
    Ok(CompareRow {
        name: kernel.name.to_string(),
        sequential: cmp.sequential.to_f64(),
        local_parallel: cmp.local_parallel.to_f64(),
        unrolled4: cmp.unrolled[0].1.to_f64(),
        pipelined: cmp.pipelined.to_f64(),
        speedup: cmp.speedup_vs_list(),
    })
}

/// Computes every Table 1 row concurrently on the [`tpn::batch`] worker
/// pool. Row order (and content) is identical to mapping
/// [`table1_row`] sequentially.
///
/// # Errors
///
/// The first failing kernel's error, if any.
pub fn table1_rows(kernels: &[Kernel]) -> Result<Vec<Table1Row>, Error> {
    tpn::batch::parallel_map(kernels, tpn::batch::default_threads(), |_, k| table1_row(k))
        .into_iter()
        .collect()
}

/// Computes every Table 2 row (at pipeline depth `depth`) concurrently.
/// Row order and content match sequential [`table2_row`] calls.
///
/// # Errors
///
/// The first failing kernel's error, if any.
pub fn table2_rows(kernels: &[Kernel], depth: u64) -> Result<Vec<Table2Row>, Error> {
    tpn::batch::parallel_map(kernels, tpn::batch::default_threads(), |_, k| {
        table2_row(k, depth)
    })
    .into_iter()
    .collect()
}

/// Computes every baseline-comparison row concurrently.
///
/// # Errors
///
/// The first failing kernel's error, if any.
pub fn compare_rows(kernels: &[Kernel]) -> Result<Vec<CompareRow>, Error> {
    tpn::batch::parallel_map(kernels, tpn::batch::default_threads(), |_, k| {
        compare_row(k)
    })
    .into_iter()
    .collect()
}

/// Ratio of repeat time to loop size — the §5 "detection is O(n)" metric.
pub fn steps_per_node(repeat_time: u64, n: usize) -> Ratio {
    Ratio::new(repeat_time, n as u64)
}

/// Whether `--json` was requested on the command line.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Whether `--profile` was requested on the command line.
pub fn profile_mode() -> bool {
    std::env::args().any(|a| a == "--profile")
}

/// One kernel's profile, as emitted by `--profile --json`.
#[derive(Clone, Debug, Serialize)]
pub struct ProfileRow {
    /// Kernel name.
    pub kernel: String,
    /// The pipeline's metrics report.
    pub profile: tpn::metrics::MetricsReport,
}

/// Re-runs every kernel with profiling enabled and collects the same
/// [`MetricsReport`](tpn::metrics::MetricsReport) `tpnc --profile`
/// produces: stage spans plus engine and detection counters. With
/// `depth = Some(l)` the SCP run at pipeline depth `l` is profiled too
/// (the Table 2 configuration).
///
/// # Errors
///
/// The first failing kernel's error, if any.
pub fn profile_rows(kernels: &[Kernel], depth: Option<u64>) -> Result<Vec<ProfileRow>, Error> {
    kernels
        .iter()
        .map(|k| {
            let lp =
                CompiledLoop::from_source_with(k.source, tpn::CompileOptions::new().profile(true))?;
            lp.rate_report()?;
            lp.schedule()?;
            if let Some(l) = depth {
                lp.scp(l)?;
            }
            Ok(ProfileRow {
                kernel: k.name.to_string(),
                profile: lp.metrics_report(),
            })
        })
        .collect()
}

/// Profiles prebuilt synthetic cases (the `scaling` and `bounds_check`
/// workloads, which have no Livermore source text): compiles each SDSP
/// with profiling enabled, drives frustum detection, and collects the
/// same [`MetricsReport`](tpn::metrics::MetricsReport) `tpnc --profile`
/// produces.
///
/// # Errors
///
/// The first failing case's error, if any.
pub fn profile_sdsp_rows(cases: &[(String, tpn_dataflow::Sdsp)]) -> Result<Vec<ProfileRow>, Error> {
    cases
        .iter()
        .map(|(name, sdsp)| {
            let lp = CompiledLoop::from_sdsp_with(
                sdsp.clone(),
                tpn::CompileOptions::new().profile(true),
            );
            lp.frustum()?;
            Ok(ProfileRow {
                kernel: name.clone(),
                profile: lp.metrics_report(),
            })
        })
        .collect()
}

/// Prints profile rows after the table: JSON lines under `--json`, else
/// one labelled text block per kernel.
pub fn emit_profiles(rows: &[ProfileRow]) {
    if json_mode() {
        for row in rows {
            println!(
                "{}",
                serde_json::to_string(row).expect("rows serialise infallibly")
            );
        }
    } else {
        for row in rows {
            print!("\n== {} ==\n{}", row.kernel, row.profile.render_text());
        }
    }
}

/// Prints rows either as JSON lines or via the provided text renderer.
pub fn emit<T: Serialize>(rows: &[T], render_text: impl Fn(&[T]) -> String) {
    if json_mode() {
        for row in rows {
            println!(
                "{}",
                serde_json::to_string(row).expect("rows serialise infallibly")
            );
        }
    } else {
        print!("{}", render_text(rows));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_livermore::kernels;

    #[test]
    fn table1_rows_for_all_kernels() {
        for k in kernels() {
            let row = table1_row(&k).unwrap();
            assert_eq!(row.lcd, k.has_lcd);
            assert!(row.time_optimal, "{} not time-optimal", k.name);
            assert!(
                row.repeat_time <= row.bd,
                "{}: repeat {} exceeds BD {}",
                k.name,
                row.repeat_time,
                row.bd
            );
        }
    }

    #[test]
    fn table2_rows_respect_resource_bound() {
        for k in kernels() {
            let row = table2_row(&k, 8).unwrap();
            assert!(
                row.rate_f64 <= row.bound_f64 + 1e-12,
                "{}: rate {} above 1/n",
                k.name,
                row.rate
            );
            assert!(row.usage_f64 <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn batched_rows_match_sequential_rows() {
        let ks = kernels();
        let batched = table1_rows(&ks).unwrap();
        for (k, row) in ks.iter().zip(&batched) {
            let seq = table1_row(k).unwrap();
            assert_eq!(row.name, seq.name);
            assert_eq!(row.start_time, seq.start_time);
            assert_eq!(row.repeat_time, seq.repeat_time);
            assert_eq!(row.transition_count, seq.transition_count);
            assert_eq!(row.rate, seq.rate);
        }
        let batched2 = table2_rows(&ks, 8).unwrap();
        for (k, row) in ks.iter().zip(&batched2) {
            let seq = table2_row(k, 8).unwrap();
            assert_eq!(row.start_time, seq.start_time);
            assert_eq!(row.repeat_time, seq.repeat_time);
            assert_eq!(row.rate, seq.rate);
            assert_eq!(row.usage, seq.usage);
        }
    }

    #[test]
    fn profile_sdsp_rows_carry_detection_counters() {
        let cases = vec![
            ("chain/4".to_string(), tpn_livermore::synth::chain(4)),
            ("wide/4".to_string(), tpn_livermore::synth::wide(4)),
        ];
        let rows = profile_sdsp_rows(&cases).unwrap();
        assert_eq!(rows.len(), 2);
        for (row, (name, _)) in rows.iter().zip(&cases) {
            assert_eq!(&row.kernel, name);
            let text = row.profile.render_text();
            assert!(text.contains("frustum_detection"), "got: {text}");
            assert!(text.contains("detection frustum"), "got: {text}");
        }
    }

    #[test]
    fn compare_rows_show_pipelining_never_loses_to_list_scheduling() {
        for k in kernels() {
            let row = compare_row(&k).unwrap();
            assert!(
                row.speedup >= 1.0 - 1e-12,
                "{}: pipelining lost to list scheduling ({})",
                k.name,
                row.speedup
            );
            // The pipelined II never exceeds the loop body's critical path.
            assert!(row.pipelined <= row.local_parallel + 1e-12);
        }
    }
}
