//! Throughput of the conformance harness itself: cases per second through
//! the full differential oracle stack, per generator shape, plus the
//! structural profile of what the generator produces (node counts,
//! multiple-critical share, storage savings).
//!
//! Run: `cargo run --release -p tpn-bench --bin conform [-- --json]`

use std::time::Instant;

use serde::Serialize;
use tpn_bench::{emit, table};
use tpn_conform::{check_sdsp, generate, OracleConfig, Shape};

const CASES: u64 = 100;

#[derive(Clone, Debug, Serialize)]
struct ConformRow {
    shape: String,
    cases: u64,
    passed: u64,
    cases_per_sec: u64,
    mean_nodes: u64,
    max_nodes: usize,
    multiple_critical: u64,
    enumeration_skips: u64,
    mean_storage_saved_pct: u64,
}

fn row(shape: Shape) -> ConformRow {
    let config = OracleConfig::default();
    let start = Instant::now();
    let mut passed = 0u64;
    let mut nodes_sum = 0u64;
    let mut max_nodes = 0usize;
    let mut multiple = 0u64;
    let mut skips = 0u64;
    let mut saved_pct_sum = 0u64;
    let mut saved_pct_count = 0u64;
    for case in 0..CASES {
        let sdsp = generate(0, case, shape);
        let report = check_sdsp(case, &sdsp, &config);
        passed += u64::from(report.passed());
        nodes_sum += report.nodes as u64;
        max_nodes = max_nodes.max(report.nodes);
        multiple += u64::from(report.multiple_critical);
        skips += u64::from(!report.enumerated);
        if report.storage_before > 0 {
            saved_pct_sum += 100 * (report.storage_before - report.storage_after) as u64
                / report.storage_before as u64;
            saved_pct_count += 1;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    ConformRow {
        shape: shape.as_str().to_string(),
        cases: CASES,
        passed,
        cases_per_sec: (CASES as f64 / elapsed) as u64,
        mean_nodes: nodes_sum / CASES,
        max_nodes,
        multiple_critical: multiple,
        enumeration_skips: skips,
        mean_storage_saved_pct: saved_pct_sum.checked_div(saved_pct_count).unwrap_or(0),
    }
}

fn main() {
    let rows: Vec<ConformRow> = Shape::ALL.iter().map(|&s| row(s)).collect();
    emit(&rows, |rows| {
        let mut out = String::from("Conformance harness throughput (oracle stack, seed 0)\n\n");
        out.push_str(&table::render(
            &[
                "shape",
                "cases",
                "passed",
                "cases/s",
                "nodes(mean/max)",
                "multi-crit",
                "enum-skips",
                "storage saved",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.shape.clone(),
                        r.cases.to_string(),
                        r.passed.to_string(),
                        r.cases_per_sec.to_string(),
                        format!("{}/{}", r.mean_nodes, r.max_nodes),
                        r.multiple_critical.to_string(),
                        r.enumeration_skips.to_string(),
                        format!("{}%", r.mean_storage_saved_pct),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push_str(
            "\nEvery case runs the full stack: enumeration vs parametric search vs\n\
             frustum simulation vs trace replay vs storage minimisation.\n",
        );
        out
    });
    assert!(
        rows.iter().all(|r| r.passed == r.cases),
        "conformance failures during benchmarking"
    );
}
