//! Execution-oracle throughput: emitted-kernel machine simulation vs
//! the dataflow interpreter, per generator shape — how fast the
//! verifying machine retires values relative to the reference
//! interpreter, plus a conformance sweep (every value bit-exact, every
//! small net's kernel at the certified optimal initiation interval).
//!
//! Run: `cargo run --release -p tpn-bench --bin exec [-- --json]`

use std::time::Instant;

use serde::Serialize;
use tpn_bench::{emit as emit_rows, table};
use tpn_codegen::{emit, run};
use tpn_conform::exec::{build_env, check_exec, env_seed, ExecConfig};
use tpn_conform::{generate, Shape};
use tpn_dataflow::interp::execute;
use tpn_dataflow::to_petri::to_petri;
use tpn_sched::analytic_schedule;
use tpn_sched::frustum::detect_frustum_eager;
use tpn_sched::schedule::LoopSchedule;

const CASES: u64 = 40;
const ITERATIONS: u64 = 256;

#[derive(Clone, Debug, Serialize)]
struct ExecRow {
    shape: String,
    cases: u64,
    conformant: u64,
    exact_confirmed: u64,
    /// Values per second through the reference interpreter.
    interp_values_per_sec: u64,
    /// Values per second through the verifying machine, frustum-emitted.
    frustum_values_per_sec: u64,
    /// Values per second through the verifying machine, analytic-emitted.
    analytic_values_per_sec: u64,
    /// Simulated machine cycles per wall-clock second (frustum programs).
    machine_cycles_per_sec: u64,
}

fn row(shape: Shape) -> ExecRow {
    // Conformance sweep first: short iterations, full three-way oracle.
    let config = ExecConfig::default();
    let mut conformant = 0u64;
    let mut exact_confirmed = 0u64;
    for case in 0..CASES {
        let sdsp = generate(0, case, shape);
        let report = check_exec(case, &sdsp, env_seed(0, case), &config);
        conformant += u64::from(report.passed());
        exact_confirmed += u64::from(report.passed() && report.exact_ii.is_some());
    }

    // Throughput: long runs over prepared bodies, schedules and envs, so
    // the timed region is execution only.
    let prepared: Vec<_> = (0..CASES)
        .map(|case| {
            let sdsp = generate(0, case, shape);
            let pn = to_petri(&sdsp);
            let f = detect_frustum_eager(&pn.net, pn.marking.clone(), 100_000).unwrap();
            let frustum = LoopSchedule::from_frustum(&sdsp, &pn, &f).unwrap();
            let analytic = analytic_schedule(&sdsp, &pn).unwrap();
            let env = build_env(&sdsp, env_seed(0, case), ITERATIONS as usize + 8);
            let fp = emit(&sdsp, &frustum, ITERATIONS);
            let ap = emit(&sdsp, &analytic, ITERATIONS);
            (sdsp, env, fp, ap)
        })
        .collect();
    let values: u64 = prepared
        .iter()
        .map(|(sdsp, ..)| sdsp.num_nodes() as u64 * ITERATIONS)
        .sum();

    let start = Instant::now();
    for (sdsp, env, ..) in &prepared {
        execute(sdsp, env, ITERATIONS as usize).unwrap();
    }
    let interp_elapsed = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut machine_cycles = 0u64;
    for (sdsp, env, fp, _) in &prepared {
        machine_cycles += run(fp, sdsp, env).unwrap().cycles;
    }
    let frustum_elapsed = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for (sdsp, env, _, ap) in &prepared {
        run(ap, sdsp, env).unwrap();
    }
    let analytic_elapsed = start.elapsed().as_secs_f64();

    ExecRow {
        shape: shape.as_str().to_string(),
        cases: CASES,
        conformant,
        exact_confirmed,
        interp_values_per_sec: (values as f64 / interp_elapsed) as u64,
        frustum_values_per_sec: (values as f64 / frustum_elapsed) as u64,
        analytic_values_per_sec: (values as f64 / analytic_elapsed) as u64,
        machine_cycles_per_sec: (machine_cycles as f64 / frustum_elapsed) as u64,
    }
}

fn main() {
    let rows: Vec<ExecRow> = Shape::ALL.iter().map(|&s| row(s)).collect();
    emit_rows(&rows, |rows| {
        let mut out = String::from(
            "Execution oracle: emitted-kernel machine simulation vs interpreter (seed 0)\n\n",
        );
        out.push_str(&table::render(
            &[
                "shape",
                "cases",
                "conformant",
                "exact-II ok",
                "interp vals/s",
                "frustum vals/s",
                "analytic vals/s",
                "machine cyc/s",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.shape.clone(),
                        r.cases.to_string(),
                        r.conformant.to_string(),
                        r.exact_confirmed.to_string(),
                        r.interp_values_per_sec.to_string(),
                        r.frustum_values_per_sec.to_string(),
                        r.analytic_values_per_sec.to_string(),
                        r.machine_cycles_per_sec.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push_str(
            "\nConformant = bit-exact three-way value agreement (frustum-emitted,\n\
             analytic-emitted, interpreted); exact-II ok = kernel initiation interval\n\
             certified optimal by the exhaustive checker (nets <= 12 transitions).\n",
        );
        out
    });
    assert!(
        rows.iter().all(|r| r.conformant == r.cases),
        "execution-conformance failures during benchmarking"
    );
}
