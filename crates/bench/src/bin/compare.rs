//! The §7 framing made quantitative: software pipelining versus the
//! classical non-pipelined baselines (sequential issue, per-iteration list
//! scheduling, unroll-by-4) on the Livermore kernels. Reports initiation
//! intervals and the pipelining speedup over the best baseline.
//!
//! Run: `cargo run -p tpn-bench --bin compare [-- --json] [-- --profile]`

use tpn_bench::{compare_rows, emit, emit_profiles, profile_mode, profile_rows, table, CompareRow};
use tpn_livermore::kernels;

fn main() {
    let rows: Vec<CompareRow> = compare_rows(&kernels()).unwrap_or_else(|e| panic!("compare: {e}"));
    emit(&rows, |rows| {
        let mut out = String::from("Initiation intervals (cycles/iteration; lower is better):\n");
        out.push_str(&table::render(
            &[
                "loop",
                "sequential",
                "list",
                "unroll x4*",
                "pipelined",
                "vs list",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.name.clone(),
                        format!("{:.2}", r.sequential),
                        format!("{:.2}", r.local_parallel),
                        format!("{:.2}", r.unrolled4),
                        format!("{:.2}", r.pipelined),
                        format!("{:.2}x", r.speedup),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push_str(
            "\nSoftware pipelining matches or beats list scheduling on every kernel;\n\
             the margin is the cross-iteration overlap list scheduling cannot express.\n\
             (*) unroll x4 replicates the loop body: 4x code space and 4x peak\n\
             resource width. Where it undercuts the pipelined kernel, that is the\n\
             compactness-versus-width trade-off of the paper's section 7 discussion;\n\
             software pipelining reaches its II with one copy of the body.\n",
        );
        out
    });
    if profile_mode() {
        let profiles = profile_rows(&kernels(), None).unwrap_or_else(|e| panic!("profile: {e}"));
        emit_profiles(&profiles);
    }
}
