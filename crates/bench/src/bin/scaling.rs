//! The §5 claim: cyclic-frustum detection costs **O(n)** time steps on
//! real loop shapes. Sweeps loop-body size over three decades for four
//! shapes (chain, wide, full-body recurrence, random LCD body) and reports
//! the detection step count, its ratio to `n`, and the wall-clock time.
//!
//! Run: `cargo run --release -p tpn-bench --bin scaling [-- --json] [-- --profile]`

use std::time::Instant;

use serde::Serialize;
use tpn_bench::{emit, emit_profiles, profile_mode, profile_sdsp_rows, table};
use tpn_dataflow::to_petri::to_petri;
use tpn_dataflow::Sdsp;
use tpn_livermore::synth::{chain, generate, recurrence_ring, wide, SynthConfig};
use tpn_sched::frustum::detect_frustum_eager;

#[derive(Clone, Debug, Serialize)]
struct ScalingRow {
    shape: &'static str,
    n: usize,
    start_time: u64,
    repeat_time: u64,
    steps_per_node: f64,
    rate: String,
    wall_micros: u128,
}

fn run(shape: &'static str, sdsp: Sdsp) -> ScalingRow {
    let n = sdsp.num_nodes();
    let pn = to_petri(&sdsp);
    let budget = (n as u64 * 64).max(100_000);
    let begin = Instant::now();
    let frustum =
        detect_frustum_eager(&pn.net, pn.marking.clone(), budget).expect("detection in budget");
    let wall = begin.elapsed().as_micros();
    ScalingRow {
        shape,
        n,
        start_time: frustum.start_time,
        repeat_time: frustum.repeat_time,
        steps_per_node: frustum.repeat_time as f64 / n as f64,
        rate: frustum.rate_of(pn.transition_of[0]).to_string(),
        wall_micros: wall,
    }
}

fn main() {
    let sizes = [8usize, 16, 32, 64, 128, 256, 512];
    let mut work: Vec<(&'static str, Sdsp)> = Vec::new();
    for &n in &sizes {
        work.push(("chain", chain(n)));
        work.push(("wide", wide(n)));
        work.push(("recurrence-ring", recurrence_ring(n)));
        work.push((
            "random-lcd",
            generate(&SynthConfig {
                nodes: n,
                forward_density: 0.6,
                recurrences: 2,
                distance: 1,
                seed: 7,
            }),
        ));
    }
    // Detection runs concurrently on the batch pool; rows come back in
    // work order, so the table is deterministic.
    let rows =
        tpn::batch::parallel_map(&work, tpn::batch::default_threads(), |_, (shape, sdsp)| {
            run(shape, sdsp.clone())
        });
    emit(&rows, |rows| {
        let mut out =
            String::from("Frustum detection cost vs loop size (the paper's O(n) observation):\n");
        out.push_str(&table::render(
            &[
                "shape", "n", "start", "repeat", "steps/n", "rate", "wall(us)",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.shape.to_string(),
                        r.n.to_string(),
                        r.start_time.to_string(),
                        r.repeat_time.to_string(),
                        format!("{:.2}", r.steps_per_node),
                        r.rate.clone(),
                        r.wall_micros.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push_str(
            "\nsteps/n stays bounded by a small constant across three decades of n,\n\
             i.e. detection is O(n) time steps as reported in §5.\n",
        );
        out
    });
    if profile_mode() {
        let cases: Vec<(String, Sdsp)> = work
            .iter()
            .map(|(shape, sdsp)| (format!("{shape}/n={}", sdsp.num_nodes()), sdsp.clone()))
            .collect();
        let profiles = profile_sdsp_rows(&cases).unwrap_or_else(|e| panic!("profile: {e}"));
        emit_profiles(&profiles);
    }
}
