//! Regenerates **Table 2** of the paper: SDSP-SCP-PN simulation with a
//! single clean 8-stage pipeline (adds processor usage; `BD = 2·n·l`).
//!
//! Run: `cargo run -p tpn-bench --bin table2 [-- --json] [-- --depth L] [-- --profile]`

use tpn_bench::{emit, emit_profiles, profile_mode, profile_rows, table, table2_rows, Table2Row};
use tpn_livermore::kernels;

fn main() {
    let depth = std::env::args()
        .skip_while(|a| a != "--depth")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let rows: Vec<Table2Row> =
        table2_rows(&kernels(), depth).unwrap_or_else(|e| panic!("table 2: {e}"));
    emit(&rows, |rows| {
        let mut out =
            format!("Table 2: single clean pipeline with {depth} stages (FIFO issue policy)\n");
        out.push_str(&table::render(
            &[
                "loop", "LCD", "size", "start", "repeat", "frustum", "count", "rate", "1/n",
                "usage", "BD",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.name.clone(),
                        if r.lcd { "yes" } else { "no" }.into(),
                        r.size.to_string(),
                        r.start_time.to_string(),
                        r.repeat_time.to_string(),
                        r.frustum_len.to_string(),
                        r.transition_count.to_string(),
                        r.rate.clone(),
                        format!("{:.4}", r.bound_f64),
                        r.usage.clone(),
                        r.bd.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push_str(
            "\nEvery issue rate respects Theorem 5.2.2 (rate <= 1/n); the cyclic frustum\n\
             is again found within O(n) steps of the model (BD = 2*n*l).\n",
        );
        out
    });
    if profile_mode() {
        let profiles =
            profile_rows(&kernels(), Some(depth)).unwrap_or_else(|e| panic!("profile: {e}"));
        emit_profiles(&profiles);
    }
}
