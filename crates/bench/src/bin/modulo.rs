//! Historical epilogue: the Petri-net method versus **iterative modulo
//! scheduling** (Rau), the technique that superseded it. Both target the
//! same dependence graphs; modulo scheduling searches for a flat kernel
//! directly instead of simulating the dataflow, and — crucially — it
//! assumes register storage sized to the schedule (rotating registers)
//! rather than the SDSP's fixed one-buffer-per-arc allocation.
//!
//! Per kernel and machine width, reports the initiation intervals of:
//! the PN-derived schedule on the SCP machine (width 1), the modulo
//! schedule at width 1 and width 2, and the lower bounds. Every modulo
//! schedule is machine-verified: emitted as VLIW code with its computed
//! buffer requirements and executed against the reference interpreter.
//!
//! Run: `cargo run --release -p tpn-bench --bin modulo [-- --json]`

use serde::Serialize;
use tpn::CompiledLoop;
use tpn_bench::{emit as emit_rows, table};
use tpn_codegen::{emit_from_starts, run_with_width};
use tpn_dataflow::interp::execute;
use tpn_livermore::kernels;
use tpn_sched::modulo::{modulo_schedule, rec_mii, res_mii};

#[derive(Clone, Debug, Serialize)]
struct ModuloRow {
    name: String,
    n: usize,
    rec_mii: u64,
    scp_ii: String,
    modulo_w1: u64,
    modulo_w2: u64,
    verified: bool,
}

fn main() {
    let rows: Vec<ModuloRow> = kernels()
        .iter()
        .map(|k| {
            let lp = CompiledLoop::from_source(k.source).expect("compiles");
            let sdsp = lp.sdsp();
            let scp = lp.scp(1).expect("scp");
            let w1 = modulo_schedule(sdsp, 1).expect("modulo w1");
            let w2 = modulo_schedule(sdsp, 2).expect("modulo w2");
            w1.validate(sdsp).expect("valid w1");
            w2.validate(sdsp).expect("valid w2");

            // Machine-verify the width-1 modulo schedule end to end.
            let iterations = 24u64;
            let mut program = emit_from_starts(
                sdsp,
                |node, iter| w1.start_time(node, iter),
                iterations,
                w1.ii(),
                1,
            );
            program.buffer_capacity = w1.buffer_requirements(sdsp);
            let env = k.env(64);
            let outcome = run_with_width(&program, sdsp, &env, Some(1)).expect("machine-clean");
            let reference = execute(sdsp, &env, iterations as usize).expect("interpretable");
            let verified = sdsp.node_ids().all(|nid| {
                outcome.value(nid, iterations - 1).to_bits()
                    == reference.value(nid, iterations as usize - 1).to_bits()
            });

            ModuloRow {
                name: k.name.to_string(),
                n: lp.size(),
                rec_mii: rec_mii(sdsp),
                scp_ii: scp.schedule.initiation_interval().to_string(),
                modulo_w1: w1.ii(),
                modulo_w2: w2.ii(),
                verified,
            }
        })
        .collect();
    assert!(rows.iter().all(|r| r.verified));
    emit_rows(&rows, |rows| {
        let mut out = String::from(
            "Petri-net (SCP width 1) vs iterative modulo scheduling, II in cycles/iteration:\n",
        );
        out.push_str(&table::render(
            &[
                "loop",
                "n",
                "RecMII",
                "PN/SCP w1",
                "modulo w1",
                "modulo w2",
                "verified",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.name.clone(),
                        r.n.to_string(),
                        r.rec_mii.to_string(),
                        r.scp_ii.clone(),
                        r.modulo_w1.to_string(),
                        r.modulo_w2.to_string(),
                        if r.verified { "yes" } else { "NO" }.into(),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push_str(
            "\nModulo scheduling reaches max(RecMII, ceil(n/W)) — optimal for these\n\
             kernels. At width 1 with a 1-stage pipe the PN/SCP schedule ties it;\n\
             the gaps that made modulo scheduling the successor show elsewhere:\n\
             deeper pipelines (Table 2: PN/SCP II 18 on loop1 at l = 8, paying\n\
             acknowledgement round-trips, vs modulo's 5 given register storage) and\n\
             multi-issue machines (modulo w2 column), which the single-clean-pipe\n\
             model cannot express. The PN model's lasting contribution is the\n\
             analysis framework — RecMII above is computed with its critical-cycle\n\
             ratio machinery.\n",
        );
        out
    });
    let _ = res_mii; // referenced for doc purposes
}
