//! Regenerates **Table 1** of the paper: SDSP-PN simulation of the
//! Livermore loops (size, start time, repeat time, frustum length,
//! transition count, computation rate, and the `BD = 2n` bound).
//!
//! Run: `cargo run -p tpn-bench --bin table1 [-- --json] [-- --profile]`

use tpn_bench::{emit, emit_profiles, profile_mode, profile_rows, table, table1_rows, Table1Row};
use tpn_livermore::kernels;

fn main() {
    let rows: Vec<Table1Row> = table1_rows(&kernels()).unwrap_or_else(|e| panic!("table 1: {e}"));
    emit(&rows, |rows| {
        let mut out = String::from(
            "Table 1: experimental results for the SDSP-PN model (earliest firing rule)\n",
        );
        out.push_str(&table::render(
            &[
                "loop", "LCD", "size", "start", "repeat", "frustum", "count", "rate", "optimal",
                "BD",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        format!("{} ({})", r.name, r.description),
                        if r.lcd { "yes" } else { "no" }.into(),
                        r.size.to_string(),
                        r.start_time.to_string(),
                        r.repeat_time.to_string(),
                        r.frustum_len.to_string(),
                        r.transition_count.to_string(),
                        r.rate.clone(),
                        if r.time_optimal { "yes" } else { "NO" }.into(),
                        r.bd.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push_str(
            "\nAll repeated states found within BD = 2n time steps; every rate equals the\n\
             critical-cycle bound (time-optimal), as §5 of the paper reports.\n",
        );
        out
    });
    if profile_mode() {
        let profiles = profile_rows(&kernels(), None).unwrap_or_else(|e| panic!("profile: {e}"));
        emit_profiles(&profiles);
    }
}
