//! Ablation for the paper's §7 FIFO-queued future-work item: computation
//! rate versus buffer capacity. Sweeps uniform acknowledgement capacities
//! 1..4 over the Livermore kernels and also reports the *balanced*
//! allocation (per-chain capacities chosen to hit the data-dependence
//! bound exactly).
//!
//! Run: `cargo run -p tpn-bench --bin buffering [-- --json]`

use serde::Serialize;
use tpn_bench::{emit, table};
use tpn_dataflow::to_petri::to_petri;
use tpn_dataflow::AckArc;
use tpn_livermore::kernels;
use tpn_sched::frustum::detect_frustum_eager;
use tpn_storage::balance;

#[derive(Clone, Debug, Serialize)]
struct BufferingRow {
    name: String,
    cap1: String,
    cap2: String,
    cap3: String,
    balanced_rate: String,
    balanced_locations: usize,
    single_locations: usize,
}

fn rate_with_uniform_capacity(sdsp: &tpn_dataflow::Sdsp, capacity: u32) -> String {
    let acks: Vec<AckArc> = sdsp
        .acks()
        .map(|(_, a)| a.clone().with_capacity(capacity))
        .collect();
    let widened = sdsp.with_acks(acks).expect("uniform widening is valid");
    let pn = to_petri(&widened);
    let f = detect_frustum_eager(&pn.net, pn.marking.clone(), 1_000_000).expect("live nets repeat");
    f.rate_of(pn.transition_of[0]).to_string()
}

fn main() {
    let rows: Vec<BufferingRow> = kernels()
        .iter()
        .map(|k| {
            let sdsp = k.sdsp();
            let (balanced, report) = balance(&sdsp).expect("balances");
            BufferingRow {
                name: k.name.to_string(),
                cap1: rate_with_uniform_capacity(&sdsp, 1),
                cap2: rate_with_uniform_capacity(&sdsp, 2),
                cap3: rate_with_uniform_capacity(&sdsp, 3),
                balanced_rate: report.rate_after.to_string(),
                balanced_locations: balanced.storage_locations(),
                single_locations: report.locations_before,
            }
        })
        .collect();
    emit(&rows, |rows| {
        let mut out = String::from(
            "Computation rate vs buffer capacity (FIFO-queued extension, paper sec. 7):\n",
        );
        out.push_str(&table::render(
            &[
                "loop",
                "rate@cap1",
                "rate@cap2",
                "rate@cap3",
                "balanced",
                "locs(bal)",
                "locs(1)",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.name.clone(),
                        r.cap1.clone(),
                        r.cap2.clone(),
                        r.cap3.clone(),
                        r.balanced_rate.clone(),
                        r.balanced_locations.to_string(),
                        r.single_locations.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push_str(
            "\nCapacity 1 is the paper's one-token-per-arc model (DOALL loops capped at\n\
             1/2 by acknowledgement round-trips); capacity 2 already reaches the data\n\
             bound on every kernel here. `balanced` sizes each chain individually.\n",
        );
        out
    });
}
