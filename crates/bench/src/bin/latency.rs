//! Generality beyond unit execution times: the timed model carries
//! per-transition latencies (Appendix A.6 assigns each transition a
//! deterministic integer time), so the same machinery schedules loops for
//! machines with multi-cycle functional units. Sweeps a latency model
//! (add/sub 1, multiply 3, divide 8, compare/select 1) over the kernels
//! and reports optimal and achieved rates.
//!
//! Run: `cargo run -p tpn-bench --bin latency [-- --json] [-- --profile]`

use serde::Serialize;
use tpn_bench::{emit, emit_profiles, profile_mode, profile_rows, table};
use tpn_dataflow::to_petri::to_petri;
use tpn_dataflow::OpKind;
use tpn_livermore::kernels;
use tpn_petri::ratio::critical_ratio;
use tpn_sched::frustum::detect_frustum_eager;

#[derive(Clone, Debug, Serialize)]
struct LatencyRow {
    name: String,
    unit_rate: String,
    timed_rate: String,
    timed_optimal: String,
    time_optimal: bool,
    period: u64,
}

fn main() {
    let rows: Vec<LatencyRow> = kernels()
        .iter()
        .map(|k| {
            let unit = k.sdsp();
            let unit_pn = to_petri(&unit);
            let unit_rate = critical_ratio(&unit_pn.net, &unit_pn.marking)
                .expect("live")
                .rate;
            let timed = unit
                .with_node_times(|_, node| match node.op {
                    OpKind::Mul => 3,
                    OpKind::Div => 8,
                    _ => 1,
                })
                .expect("positive times");
            let pn = to_petri(&timed);
            let optimal = critical_ratio(&pn.net, &pn.marking).expect("live").rate;
            let f = detect_frustum_eager(&pn.net, pn.marking.clone(), 1_000_000).expect("frustum");
            let measured = f.rate_of(pn.transition_of[0]);
            LatencyRow {
                name: k.name.to_string(),
                unit_rate: unit_rate.to_string(),
                timed_rate: measured.to_string(),
                timed_optimal: optimal.to_string(),
                time_optimal: measured == optimal,
                period: f.period(),
            }
        })
        .collect();
    emit(&rows, |rows| {
        let mut out =
            String::from("Rates under a multi-cycle latency model (add 1, mul 3, div 8):\n");
        out.push_str(&table::render(
            &[
                "loop",
                "unit rate",
                "timed rate",
                "timed bound",
                "optimal",
                "period",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.name.clone(),
                        r.unit_rate.clone(),
                        r.timed_rate.clone(),
                        r.timed_optimal.clone(),
                        if r.time_optimal { "yes" } else { "NO" }.into(),
                        r.period.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push_str(
            "\nThe earliest firing rule stays time-optimal under non-uniform latencies:\n\
             every measured rate equals the critical-cycle bound of the timed net.\n",
        );
        out
    });
    if profile_mode() {
        let profiles = profile_rows(&kernels(), None).unwrap_or_else(|e| panic!("profile: {e}"));
        emit_profiles(&profiles);
    }
    assert!(rows.iter().all(|r| r.time_optimal));
}
