//! The PR-7 claim: the analytic fast path derives the steady-state
//! schedule in near-linear time, with no simulation, and agrees with the
//! frustum engine exactly. Compares schedule derivation cost — analytic
//! construction versus frustum detection + read-off — on chains and
//! whole-body recurrence rings across two decades of loop size, up to
//! n = 50 000 where simulation is far past its budget.
//!
//! Run: `cargo run --release -p tpn-bench --bin analytic [-- --json]
//! [-- --bench-json FILE]`; `--bench-json` additionally writes the
//! before/after comparison in the `BENCH_*.json` house format.

use std::time::Instant;

use serde::Serialize;
use tpn_bench::{emit, table};
use tpn_dataflow::to_petri::to_petri;
use tpn_dataflow::Sdsp;
use tpn_livermore::synth::{chain, recurrence_ring};
use tpn_sched::analytic::AnalyticSchedule;
use tpn_sched::frustum::detect_frustum_eager;
use tpn_sched::schedule::LoopSchedule;

/// Frustum measurement ceiling: above this the simulated engine's
/// super-linear step cost stops being a comparison and becomes a stall,
/// so it is recorded as skipped rather than timed.
const FRUSTUM_LIMIT: usize = 4_096;

#[derive(Clone, Debug, Serialize)]
struct Row {
    shape: &'static str,
    n: usize,
    period: u64,
    rate: String,
    analytic_ns: u128,
    frustum_ns: Option<u128>,
    speedup: Option<f64>,
    /// Exact agreement of rate and initiation interval between the two
    /// engines (`None` when the frustum was skipped).
    agree: Option<bool>,
}

/// Times `f` as the minimum over `reps` runs — the usual defence against
/// first-touch, allocator, and scheduler noise on microsecond-scale work.
fn best_of<R>(reps: u32, mut f: impl FnMut() -> R) -> (u128, R) {
    let mut best = u128::MAX;
    let mut result = None;
    for _ in 0..reps.max(1) {
        let begin = Instant::now();
        let r = f();
        best = best.min(begin.elapsed().as_nanos());
        result = Some(r);
    }
    (best, result.expect("at least one run"))
}

fn run(shape: &'static str, sdsp: Sdsp) -> Row {
    let n = sdsp.num_nodes();
    let pn = to_petri(&sdsp);

    // The analytic artifact is the closed-form schedule: exact rate,
    // period, and O(1) start-time queries for every (node, iteration).
    // The pipeline-fill prologue a rendered LoopSchedule would list is
    // O(n²) instruction instances on a chain, so the explicit kernel is
    // only materialized below, where the frustum engine renders one too.
    let reps = if n <= 512 {
        9
    } else if n <= FRUSTUM_LIMIT {
        5
    } else {
        3
    };
    let (analytic_ns, analytic) = best_of(reps, || {
        AnalyticSchedule::for_sdsp_pn(&pn).expect("synthetic loops are marked graphs")
    });

    let (frustum_ns, agree) = if n <= FRUSTUM_LIMIT {
        let schedule = analytic.loop_schedule(&sdsp, &pn);
        let budget = (n as u64 * 70).max(100_000);
        let reps = if n <= 512 { 5 } else { 1 };
        let (ns, simulated) = best_of(reps, || {
            let frustum = detect_frustum_eager(&pn.net, pn.marking.clone(), budget)
                .expect("detection in budget");
            let simulated =
                LoopSchedule::from_frustum(&sdsp, &pn, &frustum).expect("frustum schedule");
            (frustum, simulated)
        });
        let (frustum, simulated) = simulated;
        let agree = simulated.initiation_interval() == schedule.initiation_interval()
            && frustum.rate_of(pn.transition_of[0]) == analytic.rate();
        (Some(ns), Some(agree))
    } else {
        (None, None)
    };

    Row {
        shape,
        n,
        period: analytic.period(),
        rate: analytic.rate().to_string(),
        analytic_ns,
        frustum_ns,
        speedup: frustum_ns.map(|f| f as f64 / analytic_ns.max(1) as f64),
        agree,
    }
}

fn bench_json(rows: &[Row]) -> String {
    let mut cases = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            cases.push_str(",\n");
        }
        let after = r.analytic_ns as f64;
        match r.frustum_ns {
            Some(before) => cases.push_str(&format!(
                "      \"{}/{}\": {{\n        \"before_ns\": {},\n        \
                 \"after_ns\": {},\n        \"speedup\": {:.2},\n        \
                 \"agree\": {}\n      }}",
                r.shape,
                r.n,
                before,
                after,
                r.speedup.unwrap_or(0.0),
                r.agree.unwrap_or(false)
            )),
            None => cases.push_str(&format!(
                "      \"{}/{}\": {{\n        \"before_ns\": null,\n        \
                 \"after_ns\": {},\n        \"speedup\": null,\n        \
                 \"note\": \"frustum skipped past n = {FRUSTUM_LIMIT}\"\n      }}",
                r.shape, r.n, after
            )),
        }
    }
    format!(
        "{{\n  \"benchmark\": \"analytic vs frustum schedule derivation \
         (crates/bench/src/bin/analytic.rs): chains and whole-body recurrence \
         rings\",\n  \"before\": \"frustum engine: earliest-firing simulation to \
         state repetition, schedule read off the cyclic frustum\",\n  \"after\": \
         \"analytic engine: periodic schedule constructed from the exact critical \
         ratio (longest-path offsets + balanced-word issue pattern), no \
         simulation\",\n  \"unit\": \"ns\",\n  \"groups\": {{\n    \
         \"schedule_derivation\": {{\n{cases}\n    }}\n  }}\n}}\n"
    )
}

fn main() {
    let bench_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--bench-json")
            .map(|i| args.get(i + 1).expect("--bench-json needs a file").clone())
    };
    // Warm the process (allocator, page cache, lazy init) off the clock.
    {
        let sdsp = chain(64);
        let pn = to_petri(&sdsp);
        let _ = AnalyticSchedule::for_sdsp_pn(&pn).expect("warm-up");
        let _ = detect_frustum_eager(&pn.net, pn.marking.clone(), 100_000).expect("warm-up");
    }
    let sizes = [512usize, 4_096, 50_000];
    let mut rows = Vec::new();
    for &n in &sizes {
        rows.push(run("chain", chain(n)));
        rows.push(run("ring", recurrence_ring(n)));
    }
    emit(&rows, |rows| {
        let mut out =
            String::from("Schedule derivation: analytic construction vs frustum simulation:\n");
        out.push_str(&table::render(
            &[
                "shape",
                "n",
                "period",
                "rate",
                "analytic(ns)",
                "frustum(ns)",
                "speedup",
                "agree",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.shape.to_string(),
                        r.n.to_string(),
                        r.period.to_string(),
                        r.rate.clone(),
                        r.analytic_ns.to_string(),
                        r.frustum_ns.map_or("skipped".into(), |v| v.to_string()),
                        r.speedup.map_or("-".into(), |s| format!("{s:.1}x")),
                        r.agree.map_or("-".into(), |a| a.to_string()),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push_str(
            "\nBoth engines produce the same initiation interval and rate wherever\n\
             both run; past the frustum limit only the analytic engine completes.\n",
        );
        out
    });
    if let Some(path) = bench_path {
        std::fs::write(&path, bench_json(&rows))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("bench comparison written to {path}");
    }
}
