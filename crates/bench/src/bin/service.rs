//! Service-throughput benchmark: drives the `tpn-service` compile
//! service with a mixed soak (the `tpnc serve --self-test` workload at
//! benchmark scale) and contrasts a **cold** run — every request a
//! distinct key, so nothing amortizes, the one-shot CLI behaviour — with
//! a **warm** run over a small key pool where the sharded result cache
//! carries most requests. Reports hit-rate, p50/p99 latency, and
//! throughput; the warm/cold comparison is BENCH_4.json's
//! before/after. A fourth **hot+journal** phase repeats the hot soak
//! with the request journal enabled, bounding the journal's overhead,
//! and `--prometheus` additionally dumps that phase's counters as a
//! Prometheus text exposition.
//!
//! Run: `cargo run --release -p tpn-bench --bin service [-- --json] [-- --prometheus]`

use std::time::Instant;

use serde::Serialize;
use tpn_bench::{emit, table};
use tpn_service::protocol::{Request, Verb};
use tpn_service::{Service, ServiceConfig};

#[derive(Clone, Debug, Serialize)]
struct ServiceRow {
    phase: String,
    workers: usize,
    requests: u64,
    distinct_keys: usize,
    errors: u64,
    hit_rate: f64,
    p50_micros: u64,
    p99_micros: u64,
    wall_ms: u64,
    requests_per_sec: u64,
}

fn source(seed: u64) -> String {
    let nodes = seed % 3 + 1;
    let body: String = (0..nodes)
        .map(|j| format!("X{j}[i] := X{j}[i-1] + {}; ", seed + 1))
        .collect();
    format!("do i from 2 to n {{ {body}}}")
}

fn soak_request(id: u64, pool: usize) -> Request {
    let verb_cycle = [
        (Verb::Analyze, None),
        (Verb::Schedule, None),
        (Verb::Rate, None),
        (Verb::Scp, Some(2)),
        (Verb::Trace, None),
        (Verb::Storage, None),
    ];
    let (verb, depth) = verb_cycle[id as usize % verb_cycle.len()];
    Request {
        id,
        verb,
        source: source(id % pool as u64),
        depth,
        options: tpn::CompileOptions::new(),
        deadline_ms: None,
        target: None,
    }
}

/// One measured soak: `requests` mixed requests over `pool` distinct
/// keys through a fresh service. Returns the row plus the service's
/// final counters (for the `--prometheus` exposition dump).
fn soak(
    phase: &str,
    workers: usize,
    requests: u64,
    pool: usize,
    journal_capacity: usize,
) -> (ServiceRow, tpn::metrics::ServiceCounters) {
    let service = Service::start(ServiceConfig {
        workers,
        queue_capacity: 4 * workers.max(1),
        journal_capacity,
        ..ServiceConfig::default()
    });
    let started = Instant::now();
    let ids: Vec<u64> = (0..requests).collect();
    let errors: u64 = tpn::batch::parallel_map(&ids, workers, |_, &id| {
        match service.call(soak_request(id, pool)) {
            Ok(response) if response.ok => 0u64,
            _ => 1u64,
        }
    })
    .into_iter()
    .sum();
    let wall = started.elapsed();
    let counters = service.counters();
    let wall_ms = wall.as_millis().max(1) as u64;
    let row = ServiceRow {
        phase: phase.to_string(),
        workers,
        requests,
        distinct_keys: pool,
        errors,
        hit_rate: counters.cache.hit_rate(),
        p50_micros: counters.p50_micros,
        p99_micros: counters.p99_micros,
        wall_ms,
        requests_per_sec: requests * 1_000 / wall_ms,
    };
    (row, counters)
}

fn main() {
    let workers = tpn::batch::default_threads().max(4);
    let requests = 2_000u64;
    // Cold: every request is a new key — the per-request cost of
    // one-shot compilation, nothing shared.
    let (cold, _) = soak("cold", workers, requests, requests as usize, 0);
    // Warm: a quarter as many keys as requests; every key repeats
    // ~4x and the cache serves the rest.
    let (warm, _) = soak("warm", workers, requests, requests as usize / 4, 0);
    // Hot: a handful of keys — the steady state of a service
    // compiling the same production loops over and over.
    let (hot, _) = soak("hot", workers, requests, 16, 0);
    // Hot again with the request journal on: the delta against `hot`
    // bounds the journal's per-request cost.
    let (journaled, journaled_counters) = soak("hot+journal", workers, requests, 16, 256);
    let rows = vec![cold, warm, hot, journaled];
    emit(&rows, |rows| {
        let mut out = String::from("Service soak: mixed verbs through the compile service\n");
        out.push_str(&table::render(
            &[
                "phase", "requests", "keys", "errors", "hit rate", "p50 us", "p99 us", "req/s",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.phase.clone(),
                        r.requests.to_string(),
                        r.distinct_keys.to_string(),
                        r.errors.to_string(),
                        format!("{:.3}", r.hit_rate),
                        r.p50_micros.to_string(),
                        r.p99_micros.to_string(),
                        r.requests_per_sec.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push_str(
            "\nThe result cache converts repeated keys into Arc-shared artifacts: the\n\
             warm and hot phases serve the same mixed verbs at a fraction of the\n\
             cold per-request latency. hot+journal repeats the hot soak with the\n\
             request journal enabled; its delta bounds the journal overhead.\n",
        );
        out
    });
    if std::env::args().any(|a| a == "--prometheus") {
        print!("{}", tpn::metrics::prometheus_service(&journaled_counters));
    }
}
