//! Service-throughput benchmark: drives the `tpn-service` compile
//! service with a mixed soak (the `tpnc serve --self-test` workload at
//! benchmark scale) and contrasts a **cold** run — every request a
//! distinct key, so nothing amortizes, the one-shot CLI behaviour — with
//! a **warm** run over a small key pool where the sharded result cache
//! carries most requests. Reports hit-rate, p50/p99 latency, and
//! throughput; the warm/cold comparison is BENCH_4.json's
//! before/after. A **hot+journal** phase repeats the hot soak with the
//! request journal enabled, bounding the journal's overhead, and
//! `--prometheus` additionally dumps that phase's counters as a
//! Prometheus text exposition.
//!
//! Two fleet phases (BENCH_9.json) exercise the persistence and
//! sharding layers: **cold-restart** populates a persistent artifact
//! store, tears the service down, restarts on the same directory and
//! re-drives the hot soak — the warm-started cache must carry it
//! (hit rate > 0.9) — and **router-2shard** drives the same hot soak
//! through two digest-sharded services, the in-process model of
//! `tpnc route --shards 2`.
//!
//! Run: `cargo run --release -p tpn-bench --bin service [-- --json] [-- --prometheus]`

use std::time::Instant;

use serde::Serialize;
use tpn_bench::{emit, table};
use tpn_service::protocol::{self, Request, Verb};
use tpn_service::{Service, ServiceConfig};

#[derive(Clone, Debug, Serialize)]
struct ServiceRow {
    phase: String,
    workers: usize,
    requests: u64,
    distinct_keys: usize,
    errors: u64,
    hit_rate: f64,
    p50_micros: u64,
    p99_micros: u64,
    wall_ms: u64,
    requests_per_sec: u64,
}

fn source(seed: u64) -> String {
    let nodes = seed % 3 + 1;
    let body: String = (0..nodes)
        .map(|j| format!("X{j}[i] := X{j}[i-1] + {}; ", seed + 1))
        .collect();
    format!("do i from 2 to n {{ {body}}}")
}

fn soak_request(id: u64, pool: usize) -> Request {
    let verb_cycle = [
        (Verb::Analyze, None),
        (Verb::Schedule, None),
        (Verb::Rate, None),
        (Verb::Scp, Some(2)),
        (Verb::Trace, None),
        (Verb::Storage, None),
    ];
    let (verb, depth) = verb_cycle[id as usize % verb_cycle.len()];
    let mut request = Request::basic(id, verb, source(id % pool as u64));
    request.depth = depth;
    request
}

fn config(workers: usize, journal_capacity: usize) -> ServiceConfig {
    let mut builder = ServiceConfig::builder()
        .workers(workers)
        .queue(4 * workers.max(1));
    if journal_capacity > 0 {
        builder = builder.journal(journal_capacity);
    }
    builder.build().expect("bench service config")
}

/// Drives `requests` mixed requests over `pool` distinct keys through
/// `service` from `workers` client threads; returns (errors, wall).
fn drive(
    service: &Service,
    workers: usize,
    requests: u64,
    pool: usize,
) -> (u64, std::time::Duration) {
    let started = Instant::now();
    let ids: Vec<u64> = (0..requests).collect();
    let errors: u64 = tpn::batch::parallel_map(&ids, workers, |_, &id| {
        match service.call(soak_request(id, pool)) {
            Ok(response) if response.ok => 0u64,
            _ => 1u64,
        }
    })
    .into_iter()
    .sum();
    (errors, started.elapsed())
}

fn row(
    phase: &str,
    workers: usize,
    requests: u64,
    pool: usize,
    errors: u64,
    wall: std::time::Duration,
    counters: &tpn::metrics::ServiceCounters,
) -> ServiceRow {
    let wall_ms = wall.as_millis().max(1) as u64;
    ServiceRow {
        phase: phase.to_string(),
        workers,
        requests,
        distinct_keys: pool,
        errors,
        hit_rate: counters.cache.hit_rate(),
        p50_micros: counters.p50_micros,
        p99_micros: counters.p99_micros,
        wall_ms,
        requests_per_sec: requests * 1_000 / wall_ms,
    }
}

/// One measured soak: `requests` mixed requests over `pool` distinct
/// keys through a fresh service. Returns the row plus the service's
/// final counters (for the `--prometheus` exposition dump).
fn soak(
    phase: &str,
    workers: usize,
    requests: u64,
    pool: usize,
    journal_capacity: usize,
) -> (ServiceRow, tpn::metrics::ServiceCounters) {
    let service = Service::start(config(workers, journal_capacity));
    let (errors, wall) = drive(&service, workers, requests, pool);
    let counters = service.counters();
    (
        row(phase, workers, requests, pool, errors, wall, &counters),
        counters,
    )
}

/// The cold-restart phase: populate a store-backed service, drop it
/// (the in-process `kill -9`), restart on the same directory, and
/// measure the re-driven hot soak — served from the warm-started cache.
fn cold_restart(workers: usize, requests: u64, pool: usize) -> ServiceRow {
    let dir = std::env::temp_dir().join(format!("tpn-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store_config = || {
        ServiceConfig::builder()
            .workers(workers)
            .queue(4 * workers.max(1))
            .store(&dir)
            .build()
            .expect("bench store config")
    };
    let populate = Service::try_start(store_config()).expect("store service");
    drive(&populate, workers, requests, pool);
    drop(populate);
    let revived = Service::try_start(store_config()).expect("restarted store service");
    let (errors, wall) = drive(&revived, workers, requests, pool);
    let counters = revived.counters();
    let _ = std::fs::remove_dir_all(&dir);
    row(
        "cold-restart",
        workers,
        requests,
        pool,
        errors,
        wall,
        &counters,
    )
}

/// The router phase: the in-process model of `tpnc route --shards N` —
/// one service per shard, each request forwarded by cache-key digest,
/// aggregate throughput measured across the fleet.
fn router(workers: usize, requests: u64, pool: usize, shards: usize) -> ServiceRow {
    let fleet: Vec<Service> = (0..shards)
        .map(|_| Service::start(config(workers, 0)))
        .collect();
    let started = Instant::now();
    let ids: Vec<u64> = (0..requests).collect();
    let errors: u64 = tpn::batch::parallel_map(&ids, workers, |_, &id| {
        let request = soak_request(id, pool);
        let shard =
            (protocol::cache_key(&request.source, &request.options) % shards as u64) as usize;
        match fleet[shard].call(request) {
            Ok(response) if response.ok => 0u64,
            _ => 1u64,
        }
    })
    .into_iter()
    .sum();
    let wall = started.elapsed();
    // Aggregate the fleet's counters: hit rate and latency percentiles
    // are summarized from the busiest shard's histogram-backed figures,
    // hits/misses summed exactly.
    let all: Vec<tpn::metrics::ServiceCounters> = fleet.iter().map(Service::counters).collect();
    let hits: u64 = all.iter().map(|c| c.cache.hits).sum();
    let misses: u64 = all.iter().map(|c| c.cache.misses).sum();
    let wall_ms = wall.as_millis().max(1) as u64;
    ServiceRow {
        phase: format!("router-{shards}shard"),
        workers,
        requests,
        distinct_keys: pool,
        errors,
        hit_rate: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
        p50_micros: all.iter().map(|c| c.p50_micros).max().unwrap_or(0),
        p99_micros: all.iter().map(|c| c.p99_micros).max().unwrap_or(0),
        wall_ms,
        requests_per_sec: requests * 1_000 / wall_ms,
    }
}

fn main() {
    let workers = tpn::batch::default_threads().max(4);
    let requests = 2_000u64;
    // Cold: every request is a new key — the per-request cost of
    // one-shot compilation, nothing shared.
    let (cold, _) = soak("cold", workers, requests, requests as usize, 0);
    // Warm: a quarter as many keys as requests; every key repeats
    // ~4x and the cache serves the rest.
    let (warm, _) = soak("warm", workers, requests, requests as usize / 4, 0);
    // Hot: a handful of keys — the steady state of a service
    // compiling the same production loops over and over.
    let (hot, _) = soak("hot", workers, requests, 16, 0);
    // Hot again with the request journal on: the delta against `hot`
    // bounds the journal's per-request cost.
    let (journaled, journaled_counters) = soak("hot+journal", workers, requests, 16, 256);
    // Fleet phases: restart persistence and digest sharding.
    let restarted = cold_restart(workers, requests, 16);
    let routed = router(workers, requests, 16, 2);
    let rows = vec![cold, warm, hot, journaled, restarted, routed];
    emit(&rows, |rows| {
        let mut out = String::from("Service soak: mixed verbs through the compile service\n");
        out.push_str(&table::render(
            &[
                "phase", "requests", "keys", "errors", "hit rate", "p50 us", "p99 us", "req/s",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.phase.clone(),
                        r.requests.to_string(),
                        r.distinct_keys.to_string(),
                        r.errors.to_string(),
                        format!("{:.3}", r.hit_rate),
                        r.p50_micros.to_string(),
                        r.p99_micros.to_string(),
                        r.requests_per_sec.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push_str(
            "\nThe result cache converts repeated keys into Arc-shared artifacts: the\n\
             warm and hot phases serve the same mixed verbs at a fraction of the\n\
             cold per-request latency. hot+journal repeats the hot soak with the\n\
             request journal enabled; its delta bounds the journal overhead.\n\
             cold-restart re-drives the hot soak after a kill/restart of a\n\
             store-backed service (the warm-started cache must carry it), and\n\
             router-2shard drives it through two digest-sharded services.\n",
        );
        out
    });
    if std::env::args().any(|a| a == "--prometheus") {
        print!("{}", tpn::metrics::prometheus_service(&journaled_counters));
    }
}
