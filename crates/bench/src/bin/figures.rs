//! Regenerates the paper's worked figures as terminal output (with
//! embedded Graphviz sources for the graph panels).
//!
//! Run: `cargo run -p tpn-bench --bin figures -- <fig1|fig2|fig3|fig4|all>`

use tpn::CompiledLoop;
use tpn_dataflow::dot as sdsp_dot;
use tpn_petri::dot as pn_dot;
use tpn_sched::behavior::BehaviorGraph;
use tpn_sched::steady::steady_state_net;

const L1: &str = "doall i from 1 to n {\n\
    A[i] := X[i] + 5;\n\
    B[i] := Y[i] + A[i];\n\
    C[i] := A[i] + Z[i];\n\
    D[i] := B[i] + C[i];\n\
    E[i] := W[i] + D[i];\n\
}";

const L2: &str = "do i from 1 to n {\n\
    A[i] := X[i] + 5;\n\
    B[i] := Y[i] + A[i];\n\
    C[i] := A[i] + E[i-1];\n\
    D[i] := B[i] + C[i];\n\
    E[i] := W[i] + D[i];\n\
}";

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match which.as_str() {
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "all" => {
            fig1();
            fig2();
            fig3();
            fig4();
        }
        other => {
            eprintln!("unknown figure {other:?}; use fig1|fig2|fig3|fig4|all");
            std::process::exit(2);
        }
    }
}

/// Figure 1: loop L1 from source to time-optimal schedule.
fn fig1() {
    println!("==== Figure 1: loop L1 (DOALL) ====\n");
    println!("(a) source:\n{L1}\n");
    let lp = CompiledLoop::from_source(L1).expect("L1 compiles");
    println!(
        "(b/c) static dataflow graph (Graphviz):\n{}",
        sdsp_dot::to_dot(lp.sdsp())
    );
    let pn = lp.petri_net();
    println!(
        "(d) SDSP-PN (Graphviz):\n{}",
        pn_dot::to_dot(&pn.net, &pn.marking)
    );
    let frustum = lp.frustum().expect("frustum");
    let bg = BehaviorGraph::build(&pn.net, &pn.marking, &frustum.steps);
    println!("(e) behaviour graph under the earliest firing rule:");
    println!("{}", bg.render(&pn.net));
    println!(
        "    initial instantaneous state at t={}, terminal at t={} (frustum length {})\n",
        frustum.start_time,
        frustum.repeat_time,
        frustum.period()
    );
    let steady = steady_state_net(&pn.net, &frustum);
    println!(
        "(f) steady-state equivalent net: {} firing instances, {} places (Graphviz):",
        steady.net.num_transitions(),
        steady.net.num_places()
    );
    println!("{}", pn_dot::to_dot(&steady.net, &steady.marking));
    let schedule = lp.schedule().expect("schedule");
    println!(
        "(g) time-optimal schedule (II = {}, rate = {}):",
        schedule.initiation_interval(),
        schedule.rate()
    );
    println!("{}", schedule.render_kernel());
}

/// Figure 2: loop L2 with loop-carried dependence.
fn fig2() {
    println!("==== Figure 2: loop L2 (loop-carried dependence) ====\n");
    println!("(a) source:\n{L2}\n");
    let lp = CompiledLoop::from_source(L2).expect("L2 compiles");
    println!(
        "(b/c) SDSP with feedback arc (Graphviz):\n{}",
        sdsp_dot::to_dot(lp.sdsp())
    );
    let pn = lp.petri_net();
    println!(
        "(d) SDSP-PN (Graphviz):\n{}",
        pn_dot::to_dot(&pn.net, &pn.marking)
    );
    let analysis = lp.analyze().expect("analysis");
    println!(
        "critical cycle {} with cycle time {} => optimal rate {}\n",
        analysis.critical_nodes.join(" -> "),
        analysis.cycle_time,
        analysis.optimal_rate
    );
}

/// Figure 3: the SDSP-SCP-PN for L1 and its behaviour.
fn fig3() {
    let depth = 8;
    println!("==== Figure 3: SDSP-SCP-PN of L1 (l = {depth}) ====\n");
    let lp = CompiledLoop::from_source(L1).expect("L1 compiles");
    let run = lp.scp(depth).expect("scp run");
    println!(
        "(a) series expansion: {} SDSP transitions + {} dummy transitions of time {}",
        run.model.num_sdsp_transitions(),
        run.model.net.num_transitions() - run.model.num_sdsp_transitions(),
        depth - 1
    );
    println!(
        "(b) run place {} with one token, input and output of every SDSP transition\n",
        run.model.run_place
    );
    let bg = BehaviorGraph::build(&run.model.net, &run.model.marking, &run.frustum.steps);
    println!("(c) behaviour graph (instruction issues only):");
    for row in bg.rows() {
        let issues: Vec<String> = row
            .fired
            .iter()
            .filter(|t| run.model.is_sdsp[t.index()])
            .map(|&t| run.model.net.transition(t).name().to_string())
            .collect();
        if !issues.is_empty() {
            println!("  t={:>4}: issue {}", row.time, issues.join(" "));
        }
    }
    let steady_sequence: Vec<String> = run
        .frustum
        .frustum_steps()
        .iter()
        .flat_map(|s| {
            s.started
                .iter()
                .filter(|t| run.model.is_sdsp[t.index()])
                .map(|&t| run.model.net.transition(t).name().to_string())
                .collect::<Vec<_>>()
        })
        .collect();
    println!(
        "\nsteady-state firing sequence: {}  (period {}, rate {}, usage {})",
        steady_sequence.join(" "),
        run.frustum.period(),
        run.rates.measured,
        run.rates.utilization
    );
    println!("issue schedule kernel:\n{}", run.schedule.render_kernel());
}

/// Figure 4: storage minimisation on L2.
fn fig4() {
    println!("==== Figure 4: minimum storage allocation for L2 ====\n");
    let lp = CompiledLoop::from_source(L2).expect("L2 compiles");
    let sdsp = lp.sdsp();
    let report = tpn_storage::balancing_report(sdsp, 256).expect("balancing");
    println!("balancing ratios (tokens / cycle time):");
    for cycle in &report {
        let names: Vec<String> = cycle
            .nodes
            .iter()
            .map(|&n| sdsp.node(n).name.clone())
            .collect();
        println!(
            "  cycle {:<24} M={} omega={} ratio={}{}",
            names.join("-"),
            cycle.token_sum,
            cycle.time_sum,
            cycle.ratio,
            if cycle.critical { "  <- critical" } else { "" }
        );
    }
    let (_, fig4) = tpn_storage::minimize_storage_steps(sdsp, 1).expect("fig4 step");
    println!(
        "\nFigure 4 merge: acknowledgements of A->B and B->D coalesce into D->A:\n\
         storage {} -> {} locations (saving {}), rate unchanged at {}",
        fig4.before,
        fig4.after,
        fig4.saving_fraction(),
        fig4.cycle_time.recip()
    );
    let (optimised, full) = tpn_storage::minimize_storage(sdsp).expect("fixpoint");
    println!(
        "greedy fixpoint: storage {} -> {} locations at the same rate",
        full.before, full.after
    );
    println!(
        "optimised acknowledgement structure: {} groups\n{}",
        optimised.storage_locations(),
        sdsp_dot::to_dot(&optimised)
    );
}
