//! Empirical check of the §4 bounds, including the multiple-critical-cycle
//! case of §4.2: builds nets with one or several (identical-ratio) critical
//! cycles, detects the frustum, and verifies
//!
//! * detection happens far inside the proven O(n⁴) / O(n³) step bounds;
//! * every transition on a critical cycle settles into the periodic firing
//!   pattern `X^{h+k} − X^h = p` with `k = M(C*)`, `p = Ω(C*)`.
//!
//! Run: `cargo run --release -p tpn-bench --bin bounds_check [-- --json] [-- --profile]`

use serde::Serialize;
use tpn_bench::{emit, emit_profiles, profile_mode, profile_sdsp_rows, table};
use tpn_dataflow::to_petri::to_petri;
use tpn_dataflow::{OpKind, Operand, Sdsp, SdspBuilder};
use tpn_petri::ratio::{analyze_cycles, critical_ratio};
use tpn_sched::bounds::{theoretical_steps_multiple_critical, theoretical_steps_single_critical};
use tpn_sched::frustum::detect_frustum_eager;

/// A loop with `cycles` independent recurrences of length `len` each, plus
/// a shared combining node: `cycles` critical cycles of identical ratio.
fn multi_critical(cycles: usize, len: usize) -> Sdsp {
    let mut b = SdspBuilder::new();
    let mut heads = Vec::new();
    for c in 0..cycles {
        let head = b.node(
            format!("h{c}"),
            OpKind::Add,
            [Operand::env("X", 0), Operand::lit(0.0)],
        );
        let mut prev = head;
        for i in 1..len {
            prev = b.node(format!("c{c}_{i}"), OpKind::Neg, [Operand::node(prev)]);
        }
        b.set_operand(head, 1, Operand::feedback(prev, 1));
        heads.push(prev);
    }
    // Combine the recurrences so the net is one weakly-connected loop body.
    let mut acc = heads[0];
    for (i, &h) in heads.iter().enumerate().skip(1) {
        acc = b.node(
            format!("join{i}"),
            OpKind::Add,
            [Operand::node(acc), Operand::node(h)],
        );
    }
    b.finish().expect("multi-critical bodies are valid")
}

#[derive(Clone, Debug, Serialize)]
struct BoundsRow {
    case: String,
    n: usize,
    critical_cycles: usize,
    cycle_time: String,
    repeat_time: u64,
    bound: u64,
    periodicity_ok: bool,
}

fn check(case: String, sdsp: Sdsp) -> BoundsRow {
    let n = sdsp.num_nodes();
    let pn = to_petri(&sdsp);
    let analysis = analyze_cycles(&pn.net, &pn.marking, 1 << 16).expect("enumerable");
    let multi = analysis.has_multiple_critical_cycles();
    let bound = if multi {
        theoretical_steps_multiple_critical(n)
    } else {
        theoretical_steps_single_critical(n)
    };
    let budget = bound.max(100_000);
    let frustum = detect_frustum_eager(&pn.net, pn.marking.clone(), budget).expect("in budget");

    // Verify X^{h+k} - X^h = p on critical-cycle transitions, using the
    // recorded trace extended by periodicity of the frustum.
    let r = critical_ratio(&pn.net, &pn.marking).expect("live");
    let mut periodicity_ok = true;
    if let tpn_petri::ratio::CriticalWitness::Cycle(cycle) = &r.witness {
        let k: u64 = cycle.token_sum(&pn.marking);
        let p: u64 = cycle.time_sum(&pn.net);
        for &t in cycle.transitions() {
            let starts = frustum.start_times_of(t);
            // Only judge the steady tail (starts inside the frustum window).
            let tail: Vec<u64> = starts
                .iter()
                .copied()
                .filter(|&s| s > frustum.start_time)
                .collect();
            for w in tail.windows(k as usize + 1) {
                if w[k as usize] - w[0] != p {
                    periodicity_ok = false;
                }
            }
        }
    }

    BoundsRow {
        case,
        n,
        critical_cycles: analysis.critical.len(),
        cycle_time: analysis.cycle_time.to_string(),
        repeat_time: frustum.repeat_time,
        bound,
        periodicity_ok,
    }
}

fn main() {
    let mut cases: Vec<(String, Sdsp)> = Vec::new();
    for len in [3usize, 5, 9] {
        cases.push((
            format!("single critical (len {len})"),
            multi_critical(1, len),
        ));
    }
    for cycles in [2usize, 3, 4] {
        cases.push((
            format!("{cycles} critical cycles (len 4)"),
            multi_critical(cycles, 4),
        ));
    }
    let rows: Vec<BoundsRow> = cases
        .iter()
        .map(|(case, sdsp)| check(case.clone(), sdsp.clone()))
        .collect();
    emit(&rows, |rows| {
        let mut out = String::from("Detection vs the proven §4 bounds:\n");
        out.push_str(&table::render(
            &[
                "case",
                "n",
                "#critical",
                "cycle time",
                "repeat",
                "bound",
                "periodic",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.case.clone(),
                        r.n.to_string(),
                        r.critical_cycles.to_string(),
                        r.cycle_time.clone(),
                        r.repeat_time.to_string(),
                        r.bound.to_string(),
                        if r.periodicity_ok { "yes" } else { "NO" }.into(),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push_str(
            "\nRepeat times sit far inside the O(n^4)/O(n^3) bounds of Theorems 4.1.2\n\
             and 4.2.2, and critical-cycle transitions obey X^{h+k} - X^h = p.\n",
        );
        out
    });
    if profile_mode() {
        let profiles = profile_sdsp_rows(&cases).unwrap_or_else(|e| panic!("profile: {e}"));
        emit_profiles(&profiles);
    }
    assert!(
        rows.iter()
            .all(|r| r.repeat_time <= r.bound && r.periodicity_ok),
        "a bound check failed"
    );
}
