//! Static dataflow software pipelines (SDSP) — §3.2 of the paper.
//!
//! An SDSP is the dataflow-graph form of a non-nested loop body: one node
//! (actor) per machine instruction, *forward* data arcs for same-iteration
//! dependences, *feedback* data arcs for loop-carried dependences, and an
//! *acknowledgement* arc for every data arc implementing the static-dataflow
//! one-token-per-arc rule (each forward/acknowledgement pair corresponds to
//! one storage location).
//!
//! This crate provides:
//!
//! * [`Sdsp`] / [`SdspBuilder`] — construction and validation of SDSP
//!   graphs, including conditional actors (the paper's switch/merge nodes
//!   under the dummy-token firing rule, which makes them behave as ordinary
//!   nodes — §3.2).
//! * [`interp`] — a token-pushing functional interpreter that executes an
//!   SDSP on real input arrays. It stands in for the McGill A-code
//!   simulator testbed of §5 and lets the scheduling layer prove that a
//!   derived schedule preserves loop semantics.
//! * [`to_petri`] — the SDSP → SDSP-PN translation of §3.2: one place per
//!   arc, with the initial marking induced by the arcs that initially hold
//!   tokens (feedback arcs carry the loop-carried value, acknowledgement
//!   arcs of empty buffers carry the "slot free" token). The result is a
//!   live, safe marked graph.
//!
//! # Example
//!
//! Loop L1 of the paper, `A[i] := X[i] + 5; B[i] := Y[i] + A[i]; ...`:
//!
//! ```
//! use tpn_dataflow::{SdspBuilder, OpKind, Operand};
//! use tpn_dataflow::to_petri::to_petri;
//!
//! let mut b = SdspBuilder::new();
//! let a = b.node("A", OpKind::Add, [Operand::env("X", 0), Operand::lit(5.0)]);
//! let bb = b.node("B", OpKind::Add, [Operand::env("Y", 0), Operand::node(a)]);
//! let c = b.node("C", OpKind::Add, [Operand::node(a), Operand::env("Z", 0)]);
//! let d = b.node("D", OpKind::Add, [Operand::node(bb), Operand::node(c)]);
//! let _e = b.node("E", OpKind::Add, [Operand::env("W", 0), Operand::node(d)]);
//! let sdsp = b.finish()?;
//!
//! assert_eq!(sdsp.num_nodes(), 5);
//! assert!(!sdsp.has_loop_carried_dependence());
//!
//! let pn = to_petri(&sdsp);
//! assert!(pn.net.is_marked_graph());
//! # Ok::<(), tpn_dataflow::DataflowError>(())
//! ```

pub mod acode;
pub mod builder;
pub mod dot;
pub mod error;
pub mod graph;
pub mod interp;
pub mod ops;
pub mod to_petri;

pub use builder::SdspBuilder;
pub use error::DataflowError;
pub use graph::{AckArc, AckId, ArcId, ArcKind, DataArc, Node, NodeId, Operand, Sdsp};
pub use ops::{CmpOp, OpKind};
