//! A textual dataflow assembly for SDSP graphs ("A-code").
//!
//! The paper's testbed exchanged loops between the compiler and the
//! simulator as *A-code*, a dataflow assembly. This module provides the
//! equivalent for this reproduction: a line-oriented, human-readable,
//! exactly round-tripping serialization of a compiled [`Sdsp`] — including
//! coalesced acknowledgement chains and FIFO capacities, so optimised
//! storage allocations survive the trip.
//!
//! ```text
//! .sdsp
//! actor 0 "A" add time=1 init=0 env:X@+0 lit:5
//! actor 1 "B" add time=1 init=0 env:Y@+0 n0@0
//! ack 1 -> 0 cap=1 covers=a0
//! .end
//! ```
//!
//! # Example
//!
//! ```
//! use tpn_dataflow::acode;
//! let sdsp = tpn_lang::compile("do i from 1 to n { Q := old Q + Z[i] * X[i]; }")?;
//! let text = acode::write(&sdsp);
//! let back = acode::read(&text)?;
//! assert_eq!(back.num_nodes(), sdsp.num_nodes());
//! assert_eq!(back.arcs().count(), sdsp.arcs().count());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt::Write as _;

use crate::builder::SdspBuilder;
use crate::error::DataflowError;
use crate::graph::{AckArc, ArcId, NodeId, Operand, Sdsp};
use crate::ops::{CmpOp, OpKind};

/// Errors from parsing A-code text.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum AcodeError {
    /// A line did not match the expected grammar.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The reconstructed graph failed validation.
    Invalid(DataflowError),
}

impl std::fmt::Display for AcodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AcodeError::Malformed { line, message } => write!(f, "line {line}: {message}"),
            AcodeError::Invalid(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AcodeError {}

impl From<DataflowError> for AcodeError {
    fn from(e: DataflowError) -> Self {
        AcodeError::Invalid(e)
    }
}

fn op_name(op: OpKind) -> &'static str {
    match op {
        OpKind::Add => "add",
        OpKind::Sub => "sub",
        OpKind::Mul => "mul",
        OpKind::Div => "div",
        OpKind::Min => "min",
        OpKind::Max => "max",
        OpKind::Neg => "neg",
        OpKind::Id => "id",
        OpKind::Cmp(CmpOp::Lt) => "cmplt",
        OpKind::Cmp(CmpOp::Le) => "cmple",
        OpKind::Cmp(CmpOp::Gt) => "cmpgt",
        OpKind::Cmp(CmpOp::Ge) => "cmpge",
        OpKind::Cmp(CmpOp::Eq) => "cmpeq",
        OpKind::Cmp(CmpOp::Ne) => "cmpne",
        OpKind::Switch => "switch",
        OpKind::Merge => "merge",
    }
}

fn op_from_name(name: &str) -> Option<OpKind> {
    Some(match name {
        "add" => OpKind::Add,
        "sub" => OpKind::Sub,
        "mul" => OpKind::Mul,
        "div" => OpKind::Div,
        "min" => OpKind::Min,
        "max" => OpKind::Max,
        "neg" => OpKind::Neg,
        "id" => OpKind::Id,
        "cmplt" => OpKind::Cmp(CmpOp::Lt),
        "cmple" => OpKind::Cmp(CmpOp::Le),
        "cmpgt" => OpKind::Cmp(CmpOp::Gt),
        "cmpge" => OpKind::Cmp(CmpOp::Ge),
        "cmpeq" => OpKind::Cmp(CmpOp::Eq),
        "cmpne" => OpKind::Cmp(CmpOp::Ne),
        "switch" => OpKind::Switch,
        "merge" => OpKind::Merge,
        _ => return None,
    })
}

fn quote(s: &str) -> String {
    let mut out = String::from("\"");
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            _ => out.push(ch),
        }
    }
    out.push('"');
    out
}

/// Serialises an SDSP to A-code text.
pub fn write(sdsp: &Sdsp) -> String {
    let mut out = String::from(".sdsp\n");
    for (id, node) in sdsp.nodes() {
        let _ = write!(
            out,
            "actor {} {} {} time={} init={:?}",
            id.index(),
            quote(&node.name),
            op_name(node.op),
            node.time,
            node.initial_value
        );
        for operand in &node.operands {
            match operand {
                Operand::Node { node, distance } => {
                    let _ = write!(out, " n{}@{}", node.index(), distance);
                }
                Operand::Env { array, offset } => {
                    let _ = write!(out, " env:{}@{:+}", quote(array), offset);
                }
                Operand::Param(name) => {
                    let _ = write!(out, " param:{}", quote(name));
                }
                Operand::Lit(v) => {
                    let _ = write!(out, " lit:{v:?}");
                }
                Operand::Index => out.push_str(" index"),
            }
        }
        out.push('\n');
    }
    for (_, ack) in sdsp.acks() {
        let _ = write!(
            out,
            "ack {} -> {} cap={} covers=",
            ack.from.index(),
            ack.to.index(),
            ack.capacity
        );
        let covers: Vec<String> = ack
            .covers
            .iter()
            .map(|a| format!("a{}", a.index()))
            .collect();
        out.push_str(&covers.join(","));
        out.push('\n');
    }
    out.push_str(".end\n");
    out
}

/// Splits a line into whitespace-separated tokens, honouring quotes.
fn tokens(line: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(ch) = chars.next() {
        match ch {
            '"' => {
                in_quotes = !in_quotes;
                cur.push(ch);
            }
            '\\' if in_quotes => {
                cur.push(ch);
                if let Some(next) = chars.next() {
                    cur.push(next);
                }
            }
            c if c.is_whitespace() && !in_quotes => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if in_quotes {
        return Err("unterminated quote".to_string());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    Ok(out)
}

/// Extracts a quoted name from a token (possibly with a prefix already
/// stripped).
fn unquote(token: &str) -> Result<String, String> {
    let inner = token
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted name, found {token:?}"))?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(ch) = chars.next() {
        if ch == '\\' {
            match chars.next() {
                Some(c) => out.push(c),
                None => return Err("dangling escape".to_string()),
            }
        } else {
            out.push(ch);
        }
    }
    Ok(out)
}

/// Parses A-code text back into a validated SDSP.
///
/// # Errors
///
/// [`AcodeError::Malformed`] with a line number for syntax problems;
/// [`AcodeError::Invalid`] if the reconstructed graph fails validation.
pub fn read(text: &str) -> Result<Sdsp, AcodeError> {
    let mut builder = SdspBuilder::new();
    let mut acks: Vec<AckArc> = Vec::new();
    let mut saw_header = false;
    let mut saw_end = false;
    let mut pending_ops: Vec<(NodeId, Vec<Operand>)> = Vec::new();

    let err = |line: usize, message: String| AcodeError::Malformed { line, message };

    for (lineno, raw) in text.lines().enumerate() {
        let line_no = lineno + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line == ".sdsp" {
            saw_header = true;
            continue;
        }
        if line == ".end" {
            saw_end = true;
            continue;
        }
        if !saw_header {
            return Err(err(line_no, "missing .sdsp header".to_string()));
        }
        let toks = tokens(line).map_err(|m| err(line_no, m))?;
        match toks.first().map(String::as_str) {
            Some("actor") => {
                if toks.len() < 6 {
                    return Err(err(line_no, "actor needs id, name, op, time, init".into()));
                }
                let idx: usize = toks[1]
                    .parse()
                    .map_err(|_| err(line_no, format!("bad actor id {:?}", toks[1])))?;
                if idx != builder.len() {
                    return Err(err(line_no, "actor ids must be consecutive from 0".into()));
                }
                let name = unquote(&toks[2]).map_err(|m| err(line_no, m))?;
                let op = op_from_name(&toks[3])
                    .ok_or_else(|| err(line_no, format!("unknown op {:?}", toks[3])))?;
                let time: u64 = toks[4]
                    .strip_prefix("time=")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err(line_no, format!("bad time {:?}", toks[4])))?;
                let init: f64 = toks[5]
                    .strip_prefix("init=")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err(line_no, format!("bad init {:?}", toks[5])))?;
                let mut operands = Vec::new();
                for tok in &toks[6..] {
                    operands.push(parse_operand(tok).map_err(|m| err(line_no, m))?);
                }
                // Node references may be forward; add with placeholders
                // and patch below.
                let placeholders: Vec<Operand> =
                    operands.iter().map(|_| Operand::lit(0.0)).collect();
                let id = builder.node(name, op, placeholders);
                builder.set_time(id, time).set_initial(id, init);
                pending_ops.push((id, operands));
            }
            Some("ack") => {
                // ack FROM -> TO cap=N covers=aI,aJ
                if toks.len() != 6 || toks[2] != "->" {
                    return Err(err(
                        line_no,
                        "ack needs `from -> to cap=N covers=...`".into(),
                    ));
                }
                let from: usize = toks[1]
                    .parse()
                    .map_err(|_| err(line_no, format!("bad node id {:?}", toks[1])))?;
                let to: usize = toks[3]
                    .parse()
                    .map_err(|_| err(line_no, format!("bad node id {:?}", toks[3])))?;
                let capacity: u32 = toks[4]
                    .strip_prefix("cap=")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err(line_no, format!("bad capacity {:?}", toks[4])))?;
                let covers_text = toks[5]
                    .strip_prefix("covers=")
                    .ok_or_else(|| err(line_no, format!("bad covers {:?}", toks[5])))?;
                let mut covers = Vec::new();
                for part in covers_text.split(',') {
                    let idx: usize = part
                        .strip_prefix('a')
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err(line_no, format!("bad arc id {part:?}")))?;
                    covers.push(ArcId::from_index(idx));
                }
                acks.push(AckArc {
                    from: NodeId::from_index(from),
                    to: NodeId::from_index(to),
                    covers,
                    capacity,
                });
            }
            _ => return Err(err(line_no, format!("unknown directive {:?}", toks[0]))),
        }
    }
    if !saw_header || !saw_end {
        return Err(AcodeError::Malformed {
            line: text.lines().count(),
            message: "missing .sdsp/.end delimiters".to_string(),
        });
    }
    for (id, operands) in pending_ops {
        for (slot, operand) in operands.into_iter().enumerate() {
            builder.set_operand(id, slot, operand);
        }
    }
    let sdsp = builder.finish()?;
    if acks.is_empty() {
        Ok(sdsp)
    } else {
        Ok(sdsp.with_acks(acks)?)
    }
}

fn parse_operand(tok: &str) -> Result<Operand, String> {
    if tok == "index" {
        return Ok(Operand::Index);
    }
    if let Some(rest) = tok.strip_prefix("env:") {
        let at = rest
            .rfind('@')
            .ok_or_else(|| format!("env operand needs @offset: {tok:?}"))?;
        let name = unquote(&rest[..at])?;
        let offset: i64 = rest[at + 1..]
            .parse()
            .map_err(|_| format!("bad env offset in {tok:?}"))?;
        return Ok(Operand::Env {
            array: name,
            offset,
        });
    }
    if let Some(rest) = tok.strip_prefix("param:") {
        return Ok(Operand::Param(unquote(rest)?));
    }
    if let Some(rest) = tok.strip_prefix("lit:") {
        let v: f64 = rest.parse().map_err(|_| format!("bad literal {tok:?}"))?;
        return Ok(Operand::Lit(v));
    }
    if let Some(rest) = tok.strip_prefix('n') {
        let at = rest
            .find('@')
            .ok_or_else(|| format!("node operand needs @distance: {tok:?}"))?;
        let node: usize = rest[..at]
            .parse()
            .map_err(|_| format!("bad node id in {tok:?}"))?;
        let distance: u32 = rest[at + 1..]
            .parse()
            .map_err(|_| format!("bad distance in {tok:?}"))?;
        return Ok(Operand::Node {
            node: NodeId::from_index(node),
            distance,
        });
    }
    Err(format!("unknown operand {tok:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ArcKind;

    fn round_trip(sdsp: &Sdsp) -> Sdsp {
        let text = write(sdsp);
        read(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"))
    }

    fn structurally_equal(a: &Sdsp, b: &Sdsp) -> bool {
        a.num_nodes() == b.num_nodes()
            && a.nodes().zip(b.nodes()).all(|((_, x), (_, y))| {
                x.name == y.name
                    && x.op == y.op
                    && x.operands == y.operands
                    && x.time == y.time
                    && x.initial_value == y.initial_value
            })
            && a.arcs().count() == b.arcs().count()
            && a.arcs()
                .zip(b.arcs())
                .all(|((_, x), (_, y))| x.from == y.from && x.to == y.to && x.kind == y.kind)
            && a.acks().count() == b.acks().count()
            && a.acks().zip(b.acks()).all(|((_, x), (_, y))| x == y)
    }

    #[test]
    fn l2_round_trips_exactly() {
        let sdsp = tpn_lang_compile(
            "do i from 1 to n {\
               A[i] := X[i] + 5;\
               B[i] := Y[i] + A[i];\
               C[i] := A[i] + E[i-1];\
               D[i] := B[i] + C[i];\
               E[i] := W[i] + D[i];\
             }",
        );
        let back = round_trip(&sdsp);
        assert!(structurally_equal(&sdsp, &back));
        // The text itself is stable under a second trip.
        assert_eq!(write(&sdsp), write(&back));
    }

    // A tiny local "compile" to avoid a circular dev-dependency on
    // tpn-lang: builds the graphs directly.
    fn tpn_lang_compile(_src: &str) -> Sdsp {
        use crate::graph::Operand as O;
        use crate::ops::OpKind as K;
        let mut b = SdspBuilder::new();
        let a = b.node("A", K::Add, [O::env("X", 0), O::lit(5.0)]);
        let bb = b.node("B", K::Add, [O::env("Y", 0), O::node(a)]);
        let c = b.node("C", K::Add, [O::node(a), O::lit(0.0)]);
        let d = b.node("D", K::Add, [O::node(bb), O::node(c)]);
        let e = b.node("E", K::Add, [O::env("W", 0), O::node(d)]);
        b.set_operand(c, 1, O::feedback(e, 1));
        b.finish().unwrap()
    }

    #[test]
    fn capacities_and_coalesced_chains_survive() {
        let sdsp = tpn_lang_compile("");
        // Coalesce A->B with B->D and double another buffer.
        let names = sdsp.names();
        let (a, b, d) = (names["A"], names["B"], names["D"]);
        let mut ab = None;
        let mut bd = None;
        for (id, arc) in sdsp.arcs() {
            if arc.from == a && arc.to == b {
                ab = Some(id);
            }
            if arc.from == b && arc.to == d {
                bd = Some(id);
            }
        }
        let (ab, bd) = (ab.unwrap(), bd.unwrap());
        let mut acks: Vec<AckArc> = sdsp
            .acks()
            .filter(|(_, k)| !k.covers.contains(&ab) && !k.covers.contains(&bd))
            .map(|(_, k)| k.clone())
            .collect();
        acks[0].capacity = 3;
        acks.push(AckArc {
            from: d,
            to: a,
            covers: vec![ab, bd],
            capacity: 2,
        });
        let custom = sdsp.with_acks(acks).unwrap();
        let back = round_trip(&custom);
        assert!(structurally_equal(&custom, &back));
        assert!(back
            .acks()
            .any(|(_, k)| k.covers.len() == 2 && k.capacity == 2));
        assert!(back.acks().any(|(_, k)| k.capacity == 3));
    }

    #[test]
    fn special_operands_round_trip() {
        use crate::graph::Operand as O;
        let mut b = SdspBuilder::new();
        let q = b.node(
            "odd name \"x\"",
            OpKind::Merge,
            [O::index(), O::param("R coef"), O::lit(-1.5e-3)],
        );
        b.set_operand(q, 0, O::feedback(q, 1));
        b.set_initial(q, 2.5);
        b.set_time(q, 4);
        let sdsp = b.finish().unwrap();
        let back = round_trip(&sdsp);
        assert!(structurally_equal(&sdsp, &back));
        let (_, node) = back.nodes().next().unwrap();
        assert_eq!(node.name, "odd name \"x\"");
        assert_eq!(node.time, 4);
        assert_eq!(node.initial_value, 2.5);
    }

    #[test]
    fn feedback_arcs_survive_as_feedback() {
        let sdsp = tpn_lang_compile("");
        let back = round_trip(&sdsp);
        assert_eq!(
            back.arcs()
                .filter(|(_, a)| a.kind == ArcKind::Feedback)
                .count(),
            1
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let sdsp = tpn_lang_compile("");
        let mut text = String::from("; header comment\n\n");
        text.push_str(&write(&sdsp));
        text.push_str("\n; trailing\n");
        let back = read(&text).unwrap();
        assert!(structurally_equal(&sdsp, &back));
    }

    #[test]
    fn malformed_inputs_report_lines() {
        assert!(matches!(
            read("actor 0 \"x\" add time=1 init=0\n"),
            Err(AcodeError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            read(".sdsp\nactor 5 \"x\" add time=1 init=0\n.end\n"),
            Err(AcodeError::Malformed { line: 2, .. })
        ));
        assert!(matches!(
            read(".sdsp\nwat 0\n.end\n"),
            Err(AcodeError::Malformed { line: 2, .. })
        ));
        assert!(matches!(
            read(".sdsp\nactor 0 \"x\" frob time=1 init=0\n.end\n"),
            Err(AcodeError::Malformed { line: 2, .. })
        ));
        assert!(matches!(read(".sdsp\n"), Err(AcodeError::Malformed { .. })));
    }

    #[test]
    fn unknown_operand_rejected() {
        assert!(matches!(
            read(".sdsp\nactor 0 \"x\" neg time=1 init=0 blob\n.end\n"),
            Err(AcodeError::Malformed { line: 2, .. })
        ));
    }
}
