//! Incremental construction of SDSP graphs.

use std::collections::HashMap;

use crate::error::DataflowError;
use crate::graph::{AckArc, ArcKind, DataArc, Node, NodeId, Operand, Sdsp};
use crate::ops::OpKind;

/// Builder for [`Sdsp`] graphs.
///
/// Nodes are added one at a time; forward references are expressed by
/// adding the node first with a placeholder operand and patching it with
/// [`set_operand`](SdspBuilder::set_operand) (loop-carried self-references
/// need this, since the node id does not exist until the node is added).
///
/// [`finish`](SdspBuilder::finish) expands loop-carried dependences of
/// distance `d > 1` into chains of `d − 1` buffer ([`OpKind::Id`]) actors —
/// the paper's SDSP model carries exactly one token per feedback arc, so
/// longer distances are realised structurally — then derives the data arcs,
/// attaches the default one-acknowledgement-per-arc storage allocation, and
/// validates the result.
///
/// # Example
///
/// Loop 5 of the Livermore suite, `X[i] = Z[i] * (Y[i] - X[i-1])`:
///
/// ```
/// use tpn_dataflow::{SdspBuilder, OpKind, Operand};
///
/// let mut b = SdspBuilder::new();
/// let sub = b.node("t", OpKind::Sub, [Operand::env("Y", 0), Operand::lit(0.0)]);
/// let x = b.node("X", OpKind::Mul, [Operand::env("Z", 0), Operand::node(sub)]);
/// b.set_operand(sub, 1, Operand::feedback(x, 1)); // X[i-1]
/// let sdsp = b.finish()?;
/// assert!(sdsp.has_loop_carried_dependence());
/// # Ok::<(), tpn_dataflow::DataflowError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct SdspBuilder {
    nodes: Vec<Node>,
}

impl SdspBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a unit-time node and returns its id.
    pub fn node(
        &mut self,
        name: impl Into<String>,
        op: OpKind,
        operands: impl IntoIterator<Item = Operand>,
    ) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node {
            name: name.into(),
            op,
            operands: operands.into_iter().collect(),
            time: 1,
            initial_value: 0.0,
        });
        id
    }

    /// Overrides the execution time of `node` (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `node` is unknown.
    pub fn set_time(&mut self, node: NodeId, time: u64) -> &mut Self {
        self.nodes[node.index()].time = time;
        self
    }

    /// Sets the initial (pre-loop) value seen by loop-carried consumers of
    /// `node` (default 0.0).
    ///
    /// # Panics
    ///
    /// Panics if `node` is unknown.
    pub fn set_initial(&mut self, node: NodeId, value: f64) -> &mut Self {
        self.nodes[node.index()].initial_value = value;
        self
    }

    /// Renames `node` (front-ends create operation nodes bottom-up with
    /// derived names and rename the statement's top node afterwards).
    ///
    /// # Panics
    ///
    /// Panics if `node` is unknown.
    pub fn set_name(&mut self, node: NodeId, name: impl Into<String>) -> &mut Self {
        self.nodes[node.index()].name = name.into();
        self
    }

    /// Replaces operand `slot` of `node`, enabling forward and
    /// self-references.
    ///
    /// # Panics
    ///
    /// Panics if `node` is unknown or `slot` is out of range for the
    /// operands supplied at [`node`](SdspBuilder::node) time.
    pub fn set_operand(&mut self, node: NodeId, slot: usize, operand: Operand) -> &mut Self {
        self.nodes[node.index()].operands[slot] = operand;
        self
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finishes construction: expands long feedback distances, derives data
    /// arcs and default acknowledgements, and validates.
    ///
    /// # Errors
    ///
    /// Any [`DataflowError`] reported by [`Sdsp::validate`], most commonly
    /// [`DataflowError::ForwardCycle`] for same-iteration dependence cycles
    /// and [`DataflowError::WrongArity`] for malformed operand lists.
    pub fn finish(mut self) -> Result<Sdsp, DataflowError> {
        self.expand_long_feedback();
        // Liveness repair: a loop-carried buffer of capacity one can
        // deadlock when its producer's first firing transitively waits on
        // its own consumer (the token-free cycle runs through feedback
        // acknowledgements — e.g. cross-coupled recurrences, or a producer
        // with both same-iteration and loop-carried consumers). Static
        // dataflow resolves this with a dedicated buffer actor on the
        // offending feedback; we insert buffers lazily, only where the
        // marked-graph liveness test actually fails, so loops that are
        // live as written (all of the paper's examples) keep their exact
        // structure. Each insertion removes one producer from all non-self
        // feedback positions, so the loop terminates.
        loop {
            let sdsp = self.build_candidate();
            sdsp.validate()?;
            let pn = crate::to_petri::to_petri(&sdsp);
            match tpn_petri::marked::check_live(&pn.net, &pn.marking) {
                Ok(()) => return Ok(sdsp),
                Err(tpn_petri::PetriError::NotLive { cycle }) => {
                    let producer = self
                        .find_feedback_producer_on(&sdsp, &cycle)
                        .expect("a token-free cycle contains a feedback acknowledgement");
                    self.buffer_feedback_of(producer);
                }
                Err(other) => unreachable!("SDSP-PNs are marked graphs: {other}"),
            }
        }
    }

    /// Derives data arcs and the default one-acknowledgement-per-arc
    /// storage allocation from the current nodes.
    fn build_candidate(&self) -> Sdsp {
        let mut arcs = Vec::new();
        for (consumer_idx, node) in self.nodes.iter().enumerate() {
            for operand in &node.operands {
                if let Operand::Node {
                    node: producer,
                    distance,
                } = operand
                {
                    debug_assert!(*distance <= 1, "expanded in finish()");
                    arcs.push(DataArc {
                        from: *producer,
                        to: NodeId::from_index(consumer_idx),
                        kind: if *distance == 0 {
                            ArcKind::Forward
                        } else {
                            ArcKind::Feedback
                        },
                    });
                }
            }
        }
        let acks = arcs
            .iter()
            .enumerate()
            .map(|(i, arc)| AckArc::single(crate::graph::ArcId::from_index(i), arc))
            .collect();
        Sdsp {
            nodes: self.nodes.clone(),
            arcs,
            acks,
        }
    }

    /// Finds, on a witness token-free cycle of the candidate's SDSP-PN, a
    /// feedback producer whose acknowledgement participates — the arc to
    /// buffer. Transition indices equal node indices by construction of
    /// the translation.
    fn find_feedback_producer_on(
        &self,
        sdsp: &Sdsp,
        cycle: &[tpn_petri::TransitionId],
    ) -> Option<NodeId> {
        for (i, t) in cycle.iter().enumerate() {
            let consumer = NodeId::from_index(t.index());
            let producer = NodeId::from_index(cycle[(i + 1) % cycle.len()].index());
            // Is there a feedback arc producer -> consumer (whose ack is
            // the cycle edge consumer -> producer)?
            let has_fb = sdsp.arcs().any(|(_, a)| {
                a.kind == ArcKind::Feedback
                    && a.from == producer
                    && a.to == consumer
                    && a.from != a.to
            });
            if has_fb {
                return Some(producer);
            }
        }
        None
    }

    /// Inserts (or reuses) the buffer actor for `producer` and reroutes
    /// every non-self distance-1 feedback reference through it.
    fn buffer_feedback_of(&mut self, producer: NodeId) {
        let buf_name = format!("{}~fb", self.nodes[producer.index()].name);
        let buf = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node {
            name: buf_name,
            op: OpKind::Id,
            operands: vec![Operand::node(producer)],
            time: 1,
            initial_value: self.nodes[producer.index()].initial_value,
        });
        for idx in 0..self.nodes.len() {
            if idx == producer.index() || idx == buf.index() {
                continue;
            }
            for operand in &mut self.nodes[idx].operands {
                if let Operand::Node { node, distance } = operand {
                    if *node == producer && *distance > 0 {
                        *node = buf;
                    }
                }
            }
        }
    }

    /// Rewrites operands with distance `d > 1` to go through shared chains
    /// of `Id` buffer nodes, each a distance-1 feedback hop.
    fn expand_long_feedback(&mut self) {
        // (producer, delay) -> buffer node holding the producer's value
        // delayed by `delay` iterations.
        let mut buffers: HashMap<(NodeId, u32), NodeId> = HashMap::new();
        for idx in 0..self.nodes.len() {
            for slot in 0..self.nodes[idx].operands.len() {
                let (producer, distance) = match self.nodes[idx].operands[slot] {
                    Operand::Node { node, distance } if distance > 1 => (node, distance),
                    _ => continue,
                };
                // Build (or reuse) buffers delaying by 1 .. distance-1.
                let mut upstream = producer;
                for delay in 1..distance {
                    let key = (producer, delay);
                    upstream = match buffers.get(&key) {
                        Some(&b) => b,
                        None => {
                            let name = format!("{}~{}", self.nodes[producer.index()].name, delay);
                            let initial = self.nodes[producer.index()].initial_value;
                            let id = NodeId::from_index(self.nodes.len());
                            self.nodes.push(Node {
                                name,
                                op: OpKind::Id,
                                operands: vec![Operand::Node {
                                    node: upstream,
                                    distance: 1,
                                }],
                                time: 1,
                                initial_value: initial,
                            });
                            buffers.insert(key, id);
                            id
                        }
                    };
                }
                self.nodes[idx].operands[slot] = Operand::Node {
                    node: upstream,
                    distance: 1,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ArcKind;

    #[test]
    fn distance_two_inserts_buffers_and_stays_live() {
        let mut b = SdspBuilder::new();
        let x = b.node("X", OpKind::Add, [Operand::env("A", 0), Operand::lit(0.0)]);
        b.set_operand(x, 1, Operand::feedback(x, 2));
        b.set_initial(x, 7.0);
        let s = b.finish().unwrap();
        // X, the delay buffer X~1, and the liveness buffer X~fb: a
        // distance-2 recurrence needs two outstanding values, so one
        // capacity-1 hop cannot carry it.
        assert_eq!(s.num_nodes(), 3);
        let buffers: Vec<_> = s.nodes().filter(|(_, n)| n.op == OpKind::Id).collect();
        assert_eq!(buffers.len(), 2);
        for (_, buf) in &buffers {
            assert_eq!(buf.initial_value, 7.0);
        }
        let pn = crate::to_petri::to_petri(&s);
        assert!(tpn_petri::marked::check_live(&pn.net, &pn.marking).is_ok());
    }

    #[test]
    fn shared_buffers_for_same_producer_and_delay() {
        let mut b = SdspBuilder::new();
        let x = b.node("X", OpKind::Add, [Operand::lit(0.0), Operand::lit(0.0)]);
        let y = b.node("Y", OpKind::Add, [Operand::lit(0.0), Operand::lit(0.0)]);
        b.set_operand(x, 0, Operand::feedback(x, 3));
        b.set_operand(y, 0, Operand::feedback(x, 3));
        let s = b.finish().unwrap();
        // X, Y, two shared delay buffers (delays 1 and 2), and the
        // liveness buffer for X.
        assert_eq!(s.num_nodes(), 5);
        let pn = crate::to_petri::to_petri(&s);
        assert!(tpn_petri::marked::check_live(&pn.net, &pn.marking).is_ok());
    }

    #[test]
    fn self_feedback_distance_one_needs_no_buffer() {
        let mut b = SdspBuilder::new();
        let q = b.node("Q", OpKind::Add, [Operand::lit(0.0), Operand::env("Z", 0)]);
        b.set_operand(q, 0, Operand::feedback(q, 1));
        let s = b.finish().unwrap();
        assert_eq!(s.num_nodes(), 1);
        assert_eq!(s.arcs().count(), 1);
        let (_, arc) = s.arcs().next().unwrap();
        assert_eq!(arc.from, q);
        assert_eq!(arc.to, q);
        assert_eq!(arc.kind, ArcKind::Feedback);
    }

    #[test]
    fn mixed_feedback_gets_a_buffer() {
        // E has a same-iteration consumer (Y) and a loop-carried consumer
        // (V): without a buffer the SDSP-PN deadlocks on a token-free
        // cycle through V's acknowledgement.
        let mut b = SdspBuilder::new();
        let e = b.node("E", OpKind::Id, [Operand::env("S", 0)]);
        let y = b.node("Y", OpKind::Mul, [Operand::node(e), Operand::lit(2.0)]);
        let v = b.node(
            "V",
            OpKind::Add,
            [Operand::feedback(e, 1), Operand::node(y)],
        );
        let _ = v;
        let s = b.finish().unwrap();
        // E, Y, V plus the feedback buffer E~fb.
        assert_eq!(s.num_nodes(), 4);
        let buf = s.nodes().find(|(_, n)| n.name == "E~fb").unwrap().0;
        // V now reads the buffer, not E directly.
        let v_node = s.node(v);
        assert!(v_node
            .operands
            .iter()
            .any(|o| *o == Operand::feedback(buf, 1)));
    }

    #[test]
    fn self_feedback_with_forward_consumers_needs_no_buffer() {
        // Q := old Q + x, and R reads Q[i]: the self cycle is direct, no
        // buffer required.
        let mut b = SdspBuilder::new();
        let q = b.node("Q", OpKind::Add, [Operand::lit(0.0), Operand::env("X", 0)]);
        b.set_operand(q, 0, Operand::feedback(q, 1));
        b.node("R", OpKind::Add, [Operand::node(q), Operand::lit(1.0)]);
        let s = b.finish().unwrap();
        assert_eq!(s.num_nodes(), 2);
    }

    #[test]
    fn builder_setters_apply() {
        let mut b = SdspBuilder::new();
        let n = b.node("slow", OpKind::Neg, [Operand::lit(1.0)]);
        b.set_time(n, 4);
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
        let s = b.finish().unwrap();
        assert_eq!(s.node(n).time, 4);
    }

    #[test]
    fn empty_builder_produces_empty_graph() {
        let s = SdspBuilder::new().finish().unwrap();
        assert_eq!(s.num_nodes(), 0);
        assert_eq!(s.storage_locations(), 0);
    }

    #[test]
    fn wrong_arity_reported() {
        let mut b = SdspBuilder::new();
        b.node("bad", OpKind::Add, [Operand::lit(1.0)]);
        assert!(matches!(
            b.finish(),
            Err(DataflowError::WrongArity {
                expected: 2,
                found: 1,
                ..
            })
        ));
    }
}
