//! Graphviz export of SDSP graphs (forward, feedback and acknowledgement
//! arcs rendered in the style of the paper's figures).

use std::fmt::Write as _;

use crate::graph::{ArcKind, Sdsp};

/// Renders the SDSP in Graphviz dot format: solid edges for forward data
/// arcs, bold dashed edges for feedback arcs (labelled with the initial
/// token), dotted edges for acknowledgement arcs.
///
/// # Example
///
/// ```
/// use tpn_dataflow::{SdspBuilder, OpKind, Operand};
/// use tpn_dataflow::dot::to_dot;
///
/// let mut b = SdspBuilder::new();
/// let a = b.node("A", OpKind::Neg, [Operand::env("X", 0)]);
/// let _c = b.node("B", OpKind::Neg, [Operand::node(a)]);
/// let dot = to_dot(&b.finish()?);
/// assert!(dot.contains("digraph sdsp"));
/// # Ok::<(), tpn_dataflow::DataflowError>(())
/// ```
pub fn to_dot(sdsp: &Sdsp) -> String {
    let mut out = String::from("digraph sdsp {\n  rankdir=TB;\n");
    for (id, node) in sdsp.nodes() {
        let _ = writeln!(
            out,
            "  {id} [shape=ellipse, label=\"{} [{}]\"];",
            escape(&node.name),
            node.op
        );
    }
    for (_, arc) in sdsp.arcs() {
        match arc.kind {
            ArcKind::Forward => {
                let _ = writeln!(out, "  {} -> {};", arc.from, arc.to);
            }
            ArcKind::Feedback => {
                let _ = writeln!(
                    out,
                    "  {} -> {} [style=dashed, penwidth=2, label=\"\u{25CF}\"];",
                    arc.from, arc.to
                );
            }
        }
    }
    for (_, ack) in sdsp.acks() {
        if ack.from == ack.to {
            continue;
        }
        let _ = writeln!(
            out,
            "  {} -> {} [style=dotted, color=gray];",
            ack.from, ack.to
        );
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SdspBuilder;
    use crate::graph::Operand;
    use crate::ops::OpKind;

    #[test]
    fn renders_all_arc_kinds() {
        let mut b = SdspBuilder::new();
        let a = b.node("A", OpKind::Neg, [Operand::env("X", 0)]);
        let c = b.node("C", OpKind::Add, [Operand::node(a), Operand::lit(0.0)]);
        b.set_operand(c, 1, Operand::feedback(c, 1));
        let s = b.finish().unwrap();
        let dot = to_dot(&s);
        assert!(dot.contains("style=dashed")); // feedback
        assert!(dot.contains("style=dotted")); // ack
        assert!(dot.contains("n0 -> n1;")); // forward
        assert!(dot.ends_with("}\n"));
    }
}
