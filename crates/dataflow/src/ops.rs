//! Actor operation kinds and their evaluation semantics.

use std::fmt;

/// Comparison operators for conditional dataflow graphs.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Evaluates the comparison, producing `1.0` (true) or `0.0` (false).
    pub fn eval(self, a: f64, b: f64) -> f64 {
        let r = match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        };
        if r {
            1.0
        } else {
            0.0
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// The operation performed by an SDSP actor.
///
/// Every kind fires like an ordinary dataflow node: it consumes one token
/// per operand and produces one result token. This includes [`Switch`] and
/// [`Merge`]: under the dummy-token firing rule of §3.2 of the paper both
/// branches of a conditional always execute and the merge selects the live
/// value, which is exactly the semantics implemented here.
///
/// [`Switch`]: OpKind::Switch
/// [`Merge`]: OpKind::Merge
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum OpKind {
    /// Binary addition.
    Add,
    /// Binary subtraction (`lhs - rhs`).
    Sub,
    /// Binary multiplication.
    Mul,
    /// Binary division (`lhs / rhs`).
    Div,
    /// Binary minimum.
    Min,
    /// Binary maximum.
    Max,
    /// Unary negation.
    Neg,
    /// Identity / buffer actor; used to expand loop-carried dependences of
    /// distance greater than one into safe chains.
    Id,
    /// Comparison producing 1.0 / 0.0.
    Cmp(CmpOp),
    /// `(control, value)`: forwards `value` to both branch subgraphs; the
    /// unselected branch computes on a dummy copy that the matching merge
    /// discards.
    Switch,
    /// `(control, then_value, else_value)`: selects `then_value` when the
    /// control token is nonzero.
    Merge,
}

impl OpKind {
    /// The number of operands the operation consumes.
    pub fn arity(self) -> usize {
        match self {
            OpKind::Add
            | OpKind::Sub
            | OpKind::Mul
            | OpKind::Div
            | OpKind::Min
            | OpKind::Max
            | OpKind::Cmp(_)
            | OpKind::Switch => 2,
            OpKind::Neg | OpKind::Id => 1,
            OpKind::Merge => 3,
        }
    }

    /// Evaluates the operation on `args` (already in operand order).
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != self.arity()`.
    pub fn eval(self, args: &[f64]) -> f64 {
        assert_eq!(args.len(), self.arity(), "wrong arity for {self}");
        match self {
            OpKind::Add => args[0] + args[1],
            OpKind::Sub => args[0] - args[1],
            OpKind::Mul => args[0] * args[1],
            OpKind::Div => args[0] / args[1],
            OpKind::Min => args[0].min(args[1]),
            OpKind::Max => args[0].max(args[1]),
            OpKind::Neg => -args[0],
            OpKind::Id => args[0],
            OpKind::Cmp(op) => op.eval(args[0], args[1]),
            OpKind::Switch => args[1],
            OpKind::Merge => {
                if args[0] != 0.0 {
                    args[1]
                } else {
                    args[2]
                }
            }
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Add => f.write_str("+"),
            OpKind::Sub => f.write_str("-"),
            OpKind::Mul => f.write_str("*"),
            OpKind::Div => f.write_str("/"),
            OpKind::Min => f.write_str("min"),
            OpKind::Max => f.write_str("max"),
            OpKind::Neg => f.write_str("neg"),
            OpKind::Id => f.write_str("id"),
            OpKind::Cmp(op) => write!(f, "cmp{op}"),
            OpKind::Switch => f.write_str("switch"),
            OpKind::Merge => f.write_str("merge"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arities() {
        assert_eq!(OpKind::Add.arity(), 2);
        assert_eq!(OpKind::Neg.arity(), 1);
        assert_eq!(OpKind::Id.arity(), 1);
        assert_eq!(OpKind::Merge.arity(), 3);
        assert_eq!(OpKind::Switch.arity(), 2);
        assert_eq!(OpKind::Cmp(CmpOp::Lt).arity(), 2);
    }

    #[test]
    fn arithmetic_eval() {
        assert_eq!(OpKind::Add.eval(&[2.0, 3.0]), 5.0);
        assert_eq!(OpKind::Sub.eval(&[2.0, 3.0]), -1.0);
        assert_eq!(OpKind::Mul.eval(&[2.0, 3.0]), 6.0);
        assert_eq!(OpKind::Div.eval(&[3.0, 2.0]), 1.5);
        assert_eq!(OpKind::Min.eval(&[3.0, 2.0]), 2.0);
        assert_eq!(OpKind::Max.eval(&[3.0, 2.0]), 3.0);
        assert_eq!(OpKind::Neg.eval(&[4.0]), -4.0);
        assert_eq!(OpKind::Id.eval(&[4.0]), 4.0);
    }

    #[test]
    fn comparisons_return_boolean_floats() {
        assert_eq!(CmpOp::Lt.eval(1.0, 2.0), 1.0);
        assert_eq!(CmpOp::Ge.eval(1.0, 2.0), 0.0);
        assert_eq!(CmpOp::Eq.eval(2.0, 2.0), 1.0);
        assert_eq!(CmpOp::Ne.eval(2.0, 2.0), 0.0);
        assert_eq!(OpKind::Cmp(CmpOp::Gt).eval(&[5.0, 1.0]), 1.0);
    }

    #[test]
    fn switch_and_merge_semantics() {
        assert_eq!(OpKind::Switch.eval(&[1.0, 42.0]), 42.0);
        assert_eq!(OpKind::Switch.eval(&[0.0, 42.0]), 42.0);
        assert_eq!(OpKind::Merge.eval(&[1.0, 10.0, 20.0]), 10.0);
        assert_eq!(OpKind::Merge.eval(&[0.0, 10.0, 20.0]), 20.0);
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn wrong_arity_panics() {
        OpKind::Add.eval(&[1.0]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(OpKind::Add.to_string(), "+");
        assert_eq!(OpKind::Cmp(CmpOp::Le).to_string(), "cmp<=");
        assert_eq!(OpKind::Merge.to_string(), "merge");
    }
}
