//! A functional interpreter for SDSP graphs.
//!
//! Executes the loop body iteration by iteration on real input arrays,
//! following the dataflow semantics: same-iteration operands read this
//! iteration's values (nodes are evaluated in topological order of the
//! forward arcs), loop-carried operands read values from earlier
//! iterations, with each node's `initial_value` standing in before the loop
//! has produced one.
//!
//! The interpreter is the semantic oracle of the reproduction: the
//! scheduling layer replays derived schedules against it to demonstrate
//! that time-optimal software pipelining (and the storage optimisation of
//! §6) preserve loop results.

use std::collections::HashMap;

use crate::error::DataflowError;
use crate::graph::{NodeId, Operand, Sdsp};

/// Input arrays provided by the environment.
///
/// # Example
///
/// ```
/// use tpn_dataflow::interp::Env;
/// let mut env = Env::new();
/// env.insert("X", vec![1.0, 2.0, 3.0]);
/// assert_eq!(env.get("X", 1).unwrap(), 2.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Env {
    arrays: HashMap<String, Vec<f64>>,
    scalars: HashMap<String, f64>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) an input array.
    pub fn insert(&mut self, name: impl Into<String>, values: Vec<f64>) -> &mut Self {
        self.arrays.insert(name.into(), values);
        self
    }

    /// Adds (or replaces) a loop-invariant scalar parameter.
    pub fn insert_scalar(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.scalars.insert(name.into(), value);
        self
    }

    /// Reads a scalar parameter.
    ///
    /// # Errors
    ///
    /// [`DataflowError::MissingParam`] if the scalar was never inserted.
    pub fn scalar(&self, name: &str) -> Result<f64, DataflowError> {
        self.scalars
            .get(name)
            .copied()
            .ok_or_else(|| DataflowError::MissingParam {
                param: name.to_string(),
            })
    }

    /// Reads `name[index]`.
    ///
    /// # Errors
    ///
    /// [`DataflowError::MissingArray`] if the array was never inserted,
    /// [`DataflowError::EnvOutOfRange`] if `index` is outside it.
    pub fn get(&self, name: &str, index: i64) -> Result<f64, DataflowError> {
        let arr = self
            .arrays
            .get(name)
            .ok_or_else(|| DataflowError::MissingArray {
                array: name.to_string(),
            })?;
        usize::try_from(index)
            .ok()
            .and_then(|i| arr.get(i))
            .copied()
            .ok_or_else(|| DataflowError::EnvOutOfRange {
                array: name.to_string(),
                index,
                len: arr.len(),
            })
    }

    /// Builds an environment where every named array is `ramp` applied to
    /// `0..len` — convenient for tests and benchmarks.
    pub fn ramp(names: &[&str], len: usize, ramp: impl Fn(usize, usize) -> f64) -> Self {
        let mut env = Env::new();
        for (ai, &name) in names.iter().enumerate() {
            env.insert(name, (0..len).map(|i| ramp(ai, i)).collect());
        }
        env
    }
}

/// The per-node, per-iteration values computed by [`execute`].
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    values: Vec<Vec<f64>>,
    iterations: usize,
}

impl Trace {
    /// The value node `n` produced in iteration `iter` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `n` or `iter` is out of range.
    pub fn value(&self, n: NodeId, iter: usize) -> f64 {
        self.values[n.index()][iter]
    }

    /// All values of node `n`, one per iteration.
    pub fn series(&self, n: NodeId) -> &[f64] {
        &self.values[n.index()]
    }

    /// The number of iterations executed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

/// Executes `sdsp` for `iterations` iterations against `env`.
///
/// # Errors
///
/// Environment access errors ([`DataflowError::MissingArray`] /
/// [`DataflowError::EnvOutOfRange`]).
///
/// # Example
///
/// ```
/// use tpn_dataflow::{SdspBuilder, OpKind, Operand};
/// use tpn_dataflow::interp::{execute, Env};
///
/// // Q += Z[i] * X[i]  (Livermore loop 3: inner product)
/// let mut b = SdspBuilder::new();
/// let mul = b.node("m", OpKind::Mul, [Operand::env("Z", 0), Operand::env("X", 0)]);
/// let q = b.node("Q", OpKind::Add, [Operand::lit(0.0), Operand::node(mul)]);
/// b.set_operand(q, 0, Operand::feedback(q, 1));
/// let sdsp = b.finish()?;
///
/// let mut env = Env::new();
/// env.insert("Z", vec![1.0, 2.0, 3.0]);
/// env.insert("X", vec![4.0, 5.0, 6.0]);
/// let trace = execute(&sdsp, &env, 3)?;
/// assert_eq!(trace.value(q, 2), 1.0 * 4.0 + 2.0 * 5.0 + 3.0 * 6.0);
/// # Ok::<(), tpn_dataflow::DataflowError>(())
/// ```
pub fn execute(sdsp: &Sdsp, env: &Env, iterations: usize) -> Result<Trace, DataflowError> {
    let order = sdsp.topo_order();
    let mut values = vec![Vec::with_capacity(iterations); sdsp.num_nodes()];
    let mut args = Vec::new();
    for iter in 0..iterations {
        for &nid in &order {
            let node = sdsp.node(nid);
            args.clear();
            for operand in &node.operands {
                let v = match operand {
                    Operand::Node { node: m, distance } => {
                        let d = *distance as usize;
                        if iter >= d {
                            values[m.index()][iter - d]
                        } else {
                            sdsp.node(*m).initial_value
                        }
                    }
                    Operand::Env { array, offset } => env.get(array, iter as i64 + offset)?,
                    Operand::Lit(v) => *v,
                    Operand::Param(name) => env.scalar(name)?,
                    Operand::Index => iter as f64,
                };
                args.push(v);
            }
            let out = node.op.eval(&args);
            values[nid.index()].push(out);
        }
    }
    Ok(Trace { values, iterations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SdspBuilder;
    use crate::ops::{CmpOp, OpKind};

    #[test]
    fn doall_loop_computes_elementwise() {
        // A[i] = X[i] + 5; B[i] = A[i] * 2
        let mut b = SdspBuilder::new();
        let a = b.node("A", OpKind::Add, [Operand::env("X", 0), Operand::lit(5.0)]);
        let bb = b.node("B", OpKind::Mul, [Operand::node(a), Operand::lit(2.0)]);
        let s = b.finish().unwrap();
        let mut env = Env::new();
        env.insert("X", vec![1.0, 2.0, 3.0]);
        let t = execute(&s, &env, 3).unwrap();
        assert_eq!(t.series(a), &[6.0, 7.0, 8.0]);
        assert_eq!(t.series(bb), &[12.0, 14.0, 16.0]);
        assert_eq!(t.iterations(), 3);
    }

    #[test]
    fn recurrence_uses_initial_value() {
        // X[i] = X[i-1] * 2, X[0-before] = 1 => 2, 4, 8, ...
        let mut b = SdspBuilder::new();
        let x = b.node("X", OpKind::Mul, [Operand::lit(2.0), Operand::lit(0.0)]);
        b.set_operand(x, 1, Operand::feedback(x, 1));
        b.set_initial(x, 1.0);
        let s = b.finish().unwrap();
        let t = execute(&s, &Env::new(), 4).unwrap();
        assert_eq!(t.series(x), &[2.0, 4.0, 8.0, 16.0]);
    }

    #[test]
    fn distance_two_recurrence_through_buffers() {
        // Fibonacci-ish: F[i] = F[i-1] + F[i-2], both seeds 1.
        let mut b = SdspBuilder::new();
        let f = b.node("F", OpKind::Add, [Operand::lit(0.0), Operand::lit(0.0)]);
        b.set_operand(f, 0, Operand::feedback(f, 1));
        b.set_operand(f, 1, Operand::feedback(f, 2));
        b.set_initial(f, 1.0);
        let s = b.finish().unwrap();
        let t = execute(&s, &Env::new(), 6).unwrap();
        // iter0: f(-1)+f(-2) = 1+1 = 2  (buffer initial = 1)
        // iter1: f(0)+f(-1) = 2+1 = 3; then 5, 8, 13, 21
        assert_eq!(t.series(f), &[2.0, 3.0, 5.0, 8.0, 13.0, 21.0]);
    }

    #[test]
    fn env_offsets_shift_reads() {
        // D[i] = Y[i+1] - Y[i]  (Livermore loop 12: first difference)
        let mut b = SdspBuilder::new();
        let d = b.node(
            "D",
            OpKind::Sub,
            [Operand::env("Y", 1), Operand::env("Y", 0)],
        );
        let s = b.finish().unwrap();
        let mut env = Env::new();
        env.insert("Y", vec![1.0, 4.0, 9.0, 16.0]);
        let t = execute(&s, &env, 3).unwrap();
        assert_eq!(t.series(d), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn index_operand_counts_iterations() {
        let mut b = SdspBuilder::new();
        let n = b.node("i2", OpKind::Mul, [Operand::index(), Operand::index()]);
        let s = b.finish().unwrap();
        let t = execute(&s, &Env::new(), 4).unwrap();
        assert_eq!(t.series(n), &[0.0, 1.0, 4.0, 9.0]);
    }

    #[test]
    fn conditional_via_merge() {
        // R[i] = if X[i] > 0 then X[i] else -X[i]  (absolute value)
        let mut b = SdspBuilder::new();
        let c = b.node(
            "c",
            OpKind::Cmp(CmpOp::Gt),
            [Operand::env("X", 0), Operand::lit(0.0)],
        );
        let neg = b.node("neg", OpKind::Neg, [Operand::env("X", 0)]);
        let r = b.node(
            "R",
            OpKind::Merge,
            [Operand::node(c), Operand::env("X", 0), Operand::node(neg)],
        );
        let s = b.finish().unwrap();
        let mut env = Env::new();
        env.insert("X", vec![-2.0, 3.0, -4.0]);
        let t = execute(&s, &env, 3).unwrap();
        assert_eq!(t.series(r), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn missing_array_is_reported() {
        let mut b = SdspBuilder::new();
        b.node("A", OpKind::Neg, [Operand::env("X", 0)]);
        let s = b.finish().unwrap();
        assert!(matches!(
            execute(&s, &Env::new(), 1),
            Err(DataflowError::MissingArray { .. })
        ));
    }

    #[test]
    fn out_of_range_read_is_reported() {
        let mut b = SdspBuilder::new();
        b.node("A", OpKind::Neg, [Operand::env("X", 2)]);
        let s = b.finish().unwrap();
        let mut env = Env::new();
        env.insert("X", vec![1.0, 2.0]);
        match execute(&s, &env, 1) {
            Err(DataflowError::EnvOutOfRange {
                index: 2, len: 2, ..
            }) => {}
            other => panic!("expected out-of-range, got {other:?}"),
        }
    }

    #[test]
    fn ramp_env_builder() {
        let env = Env::ramp(&["X", "Y"], 3, |ai, i| (ai * 10 + i) as f64);
        assert_eq!(env.get("X", 2).unwrap(), 2.0);
        assert_eq!(env.get("Y", 0).unwrap(), 10.0);
    }
}
