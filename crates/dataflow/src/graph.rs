//! The SDSP graph structure: nodes, data arcs, acknowledgement arcs.

use std::collections::HashMap;
use std::fmt;

use crate::error::DataflowError;
use crate::ops::OpKind;

/// Identifier of a node (actor) in an [`Sdsp`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub(crate) u32);

/// Identifier of a data arc in an [`Sdsp`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ArcId(pub(crate) u32);

/// Identifier of an acknowledgement arc in an [`Sdsp`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AckId(pub(crate) u32);

macro_rules! impl_id {
    ($ty:ident, $prefix:literal) => {
        impl $ty {
            /// Arena index of this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Reconstructs an id from an arena index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                $ty(u32::try_from(index).expect("index overflows u32"))
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

impl_id!(NodeId, "n");
impl_id!(ArcId, "a");
impl_id!(AckId, "k");

/// Where a node's operand value comes from.
#[derive(Clone, PartialEq, Debug)]
pub enum Operand {
    /// The value produced by another node, `distance` iterations ago.
    /// `distance == 0` is a same-iteration (forward) dependence;
    /// `distance >= 1` is loop-carried (feedback).
    Node {
        /// The producing node.
        node: NodeId,
        /// The dependence distance in iterations.
        distance: u32,
    },
    /// An element of an input array from the environment: `array[i + offset]`
    /// where `i` is the (0-based) iteration counter. Environment reads are
    /// always available and impose no scheduling constraint (§2: successive
    /// waves of array elements are fetched and fed into the pipeline).
    Env {
        /// The array name.
        array: String,
        /// The constant offset from the iteration counter.
        offset: i64,
    },
    /// A literal constant.
    Lit(f64),
    /// A loop-invariant scalar supplied by the environment (e.g. the `Q`,
    /// `R`, `T` coefficients of the Livermore kernels). Like array reads,
    /// parameters are always available and impose no scheduling
    /// constraint.
    Param(String),
    /// The (0-based) iteration counter itself.
    Index,
}

impl Operand {
    /// Same-iteration reference to `node`'s value.
    pub fn node(node: NodeId) -> Self {
        Operand::Node { node, distance: 0 }
    }

    /// Loop-carried reference to `node`'s value `distance` iterations back.
    ///
    /// # Panics
    ///
    /// Panics if `distance == 0` (use [`Operand::node`]).
    pub fn feedback(node: NodeId, distance: u32) -> Self {
        assert!(distance > 0, "feedback distance must be positive");
        Operand::Node { node, distance }
    }

    /// Environment array element `array[i + offset]`.
    pub fn env(array: impl Into<String>, offset: i64) -> Self {
        Operand::Env {
            array: array.into(),
            offset,
        }
    }

    /// Literal constant.
    pub fn lit(value: f64) -> Self {
        Operand::Lit(value)
    }

    /// Loop-invariant environment scalar.
    pub fn param(name: impl Into<String>) -> Self {
        Operand::Param(name.into())
    }

    /// The iteration counter.
    pub fn index() -> Self {
        Operand::Index
    }
}

/// An actor of the SDSP: one machine instruction of the loop body.
#[derive(Clone, Debug)]
pub struct Node {
    /// Human-readable name (usually the defined variable).
    pub name: String,
    /// The operation performed.
    pub op: OpKind,
    /// Operand sources, in operation order.
    pub operands: Vec<Operand>,
    /// Execution time in cycles (≥ 1).
    pub time: u64,
    /// Value seen by loop-carried consumers before the first iteration has
    /// produced one (the initial token of the feedback arc; `t[i]` in
    /// Figure 2 of the paper).
    pub initial_value: f64,
}

/// Whether a data arc carries a same-iteration or loop-carried dependence.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ArcKind {
    /// Same-iteration dependence; initially empty.
    Forward,
    /// Loop-carried dependence of distance 1; initially holds one token
    /// (the value for the first iteration).
    Feedback,
}

/// A data arc of the SDSP: the producer→consumer edge induced by a
/// node-to-node operand.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataArc {
    /// The producing node.
    pub from: NodeId,
    /// The consuming node.
    pub to: NodeId,
    /// Forward or feedback.
    pub kind: ArcKind,
}

impl DataArc {
    /// Tokens initially on this arc: 1 for feedback arcs (the loop-carried
    /// initial value), 0 for forward arcs.
    pub fn initial_tokens(&self) -> u32 {
        match self.kind {
            ArcKind::Forward => 0,
            ArcKind::Feedback => 1,
        }
    }
}

/// An acknowledgement arc: the consumer-side signal that a storage
/// location of a chain of data arcs is free again.
///
/// In the default SDSP every data arc `u → v` has its own acknowledgement
/// arc `v → u` with **capacity 1** (one storage location per arc — the
/// paper's static-dataflow model). Two transformations adjust the
/// structure:
///
/// * the §6 storage optimiser coalesces the acknowledgements of a *chain*
///   of data arcs `u → … → w` into a single arc `w → u`, so one location
///   serves the whole chain;
/// * the FIFO-queued extension the paper's §7 points to raises `capacity`
///   above 1, letting `capacity` values of the chain be outstanding at
///   once (a bounded FIFO queue per arc) — this is what lifts the
///   acknowledgement round-trip limit on DOALL loops.
///
/// The acknowledgement place holds `capacity − (tokens on the chain)`
/// tokens: the number of free slots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AckArc {
    /// The node that releases a location (last consumer of the chain).
    pub from: NodeId,
    /// The node that waits for a location (producer at the chain head).
    pub to: NodeId,
    /// The data arcs sharing this location, in chain order.
    pub covers: Vec<ArcId>,
    /// The number of storage locations (FIFO slots) backing the chain
    /// (≥ 1; 1 is the paper's one-token-per-arc model).
    pub capacity: u32,
}

impl AckArc {
    /// The single-arc, capacity-1 acknowledgement for `arc`.
    pub fn single(arc_id: ArcId, arc: &DataArc) -> Self {
        AckArc {
            from: arc.to,
            to: arc.from,
            covers: vec![arc_id],
            capacity: 1,
        }
    }

    /// This acknowledgement with a different capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(mut self, capacity: u32) -> Self {
        assert!(capacity >= 1, "a buffer has at least one slot");
        self.capacity = capacity;
        self
    }
}

/// A static dataflow software pipeline: the validated loop-body graph.
///
/// Construct via [`crate::SdspBuilder`]; modify acknowledgement structure
/// via [`Sdsp::with_acks`] (used by the storage optimiser).
#[derive(Clone, Debug)]
pub struct Sdsp {
    pub(crate) nodes: Vec<Node>,
    pub(crate) arcs: Vec<DataArc>,
    pub(crate) acks: Vec<AckArc>,
}

impl Sdsp {
    /// Number of nodes — the paper's `n`, the size of the loop body.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Looks up a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterates `(id, node)` in arena order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// All node ids in arena order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + 'static {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Looks up a data arc.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn arc(&self, id: ArcId) -> &DataArc {
        &self.arcs[id.index()]
    }

    /// Iterates `(id, arc)` in arena order.
    pub fn arcs(&self) -> impl Iterator<Item = (ArcId, &DataArc)> {
        self.arcs
            .iter()
            .enumerate()
            .map(|(i, a)| (ArcId::from_index(i), a))
    }

    /// Looks up an acknowledgement arc.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn ack(&self, id: AckId) -> &AckArc {
        &self.acks[id.index()]
    }

    /// Iterates `(id, ack)` in arena order.
    pub fn acks(&self) -> impl Iterator<Item = (AckId, &AckArc)> {
        self.acks
            .iter()
            .enumerate()
            .map(|(i, a)| (AckId::from_index(i), a))
    }

    /// Number of storage locations allocated to the loop: the summed
    /// capacities of the acknowledgement arcs (§6 of the paper; with the
    /// default capacity-1 allocation this is one location per data arc).
    pub fn storage_locations(&self) -> usize {
        self.acks.iter().map(|a| a.capacity as usize).sum()
    }

    /// Whether any dependence is loop-carried.
    pub fn has_loop_carried_dependence(&self) -> bool {
        self.arcs.iter().any(|a| a.kind == ArcKind::Feedback)
    }

    /// Whether the nodes form a single weakly-connected component under
    /// the data arcs.
    ///
    /// Connectivity is the paper's implicit well-formedness assumption for
    /// an SDSP (one pipeline per loop): on a connected body every node
    /// fires equally often in steady state, which underpins both the
    /// single-kernel schedule (Theorem A.5.3) and the per-node SCP rate
    /// bound of Theorem 5.2.2. Disconnected bodies remain executable, but
    /// their components proceed at independent rates.
    pub fn is_weakly_connected(&self) -> bool {
        let n = self.nodes.len();
        if n <= 1 {
            return true;
        }
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for arc in &self.arcs {
            let a = find(&mut parent, arc.from.index());
            let b = find(&mut parent, arc.to.index());
            parent[a] = b;
        }
        let root = find(&mut parent, 0);
        (0..n).all(|i| find(&mut parent, i) == root)
    }

    /// A topological order of the nodes w.r.t. forward arcs.
    ///
    /// # Panics
    ///
    /// Panics if the forward arcs are cyclic (validated graphs never are).
    pub fn topo_order(&self) -> Vec<NodeId> {
        self.try_topo_order()
            .expect("validated SDSP has acyclic forward arcs")
    }

    fn try_topo_order(&self) -> Result<Vec<NodeId>, DataflowError> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for arc in &self.arcs {
            if arc.kind == ArcKind::Forward {
                indeg[arc.to.index()] += 1;
                succ[arc.from.index()].push(arc.to.index());
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        ready.sort_unstable_by(|a, b| b.cmp(a)); // pop smallest first
        let mut order = Vec::with_capacity(n);
        while let Some(v) = ready.pop() {
            order.push(NodeId::from_index(v));
            for &w in &succ[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    // Keep the ready list sorted descending so that pop()
                    // yields the smallest id: a deterministic order.
                    let pos = ready.partition_point(|&x| x > w);
                    ready.insert(pos, w);
                }
            }
        }
        if order.len() < n {
            // Extract a witness cycle among nodes with indeg > 0.
            let cycle = self.forward_cycle_witness();
            return Err(DataflowError::ForwardCycle { cycle });
        }
        Ok(order)
    }

    fn forward_cycle_witness(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for arc in &self.arcs {
            if arc.kind == ArcKind::Forward {
                succ[arc.from.index()].push(arc.to.index());
            }
        }
        let mut colour = vec![0u8; n];
        let mut parent = vec![usize::MAX; n];
        for root in 0..n {
            if colour[root] != 0 {
                continue;
            }
            let mut stack = vec![(root, 0usize)];
            colour[root] = 1;
            while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
                if *ei < succ[v].len() {
                    let w = succ[v][*ei];
                    *ei += 1;
                    match colour[w] {
                        0 => {
                            colour[w] = 1;
                            parent[w] = v;
                            stack.push((w, 0));
                        }
                        1 => {
                            let mut cycle = vec![NodeId::from_index(v)];
                            let mut cur = v;
                            while cur != w {
                                cur = parent[cur];
                                cycle.push(NodeId::from_index(cur));
                            }
                            cycle.reverse();
                            return cycle;
                        }
                        _ => {}
                    }
                } else {
                    colour[v] = 2;
                    stack.pop();
                }
            }
        }
        Vec::new()
    }

    /// The data arc feeding operand `slot` of `node`, if that operand is a
    /// node reference (arcs are created in node order, operand order, so
    /// the mapping is positional).
    ///
    /// # Panics
    ///
    /// Panics if `node` or `slot` is out of range.
    pub fn arc_of_operand(&self, node: NodeId, slot: usize) -> Option<ArcId> {
        let mut arc_idx = 0usize;
        for (nid, n) in self.nodes() {
            for (s, operand) in n.operands.iter().enumerate() {
                if let Operand::Node { .. } = operand {
                    if nid == node && s == slot {
                        return Some(ArcId::from_index(arc_idx));
                    }
                    arc_idx += 1;
                }
            }
            if nid == node {
                assert!(
                    slot < n.operands.len(),
                    "node {node} has no operand slot {slot}"
                );
                return None; // the slot is an env/lit/param/index operand
            }
        }
        panic!("unknown node {node}");
    }

    /// The acknowledgement group (storage location set) covering `arc`.
    ///
    /// # Panics
    ///
    /// Panics if `arc` is out of range (validated graphs cover every arc).
    pub fn ack_of_arc(&self, arc: ArcId) -> AckId {
        assert!(arc.index() < self.arcs.len(), "unknown arc {arc}");
        self.acks()
            .find(|(_, a)| a.covers.contains(&arc))
            .map(|(id, _)| id)
            .expect("validated SDSPs cover every arc exactly once")
    }

    /// Consumers of each node via data arcs: `(arc, consumer)` pairs.
    pub fn consumers(&self, node: NodeId) -> impl Iterator<Item = (ArcId, NodeId)> + '_ {
        self.arcs().filter_map(move |(id, a)| {
            if a.from == node {
                Some((id, a.to))
            } else {
                None
            }
        })
    }

    /// Returns a copy of this SDSP with node execution times replaced by
    /// `time(id, node)` — e.g. to model multi-cycle multiplies or divides
    /// on a machine with non-uniform functional-unit latencies.
    ///
    /// # Errors
    ///
    /// [`DataflowError::ZeroTime`] if the function returns 0 for some
    /// node.
    pub fn with_node_times(
        &self,
        time: impl Fn(NodeId, &Node) -> u64,
    ) -> Result<Sdsp, DataflowError> {
        let mut candidate = self.clone();
        for (i, node) in candidate.nodes.iter_mut().enumerate() {
            node.time = time(NodeId::from_index(i), node);
        }
        candidate.validate()?;
        Ok(candidate)
    }

    /// Replaces the acknowledgement structure (storage allocation) and
    /// revalidates.
    ///
    /// # Errors
    ///
    /// Any validation error of the resulting graph, in particular
    /// [`DataflowError::AckCoverage`] / [`DataflowError::BrokenAckChain`] /
    /// [`DataflowError::AckOverfull`] for malformed allocations.
    pub fn with_acks(&self, acks: Vec<AckArc>) -> Result<Sdsp, DataflowError> {
        let candidate = Sdsp {
            nodes: self.nodes.clone(),
            arcs: self.arcs.clone(),
            acks,
        };
        candidate.validate()?;
        Ok(candidate)
    }

    /// Full structural validation; builders call this before handing out an
    /// `Sdsp`.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a [`DataflowError`].
    pub fn validate(&self) -> Result<(), DataflowError> {
        // Node-level checks.
        for (id, node) in self.nodes() {
            if node.operands.len() != node.op.arity() {
                return Err(DataflowError::WrongArity {
                    node: id,
                    expected: node.op.arity(),
                    found: node.operands.len(),
                });
            }
            if node.time == 0 {
                return Err(DataflowError::ZeroTime { node: id });
            }
            for operand in &node.operands {
                if let Operand::Node { node: m, .. } = operand {
                    if m.index() >= self.nodes.len() {
                        return Err(DataflowError::UnknownNode {
                            node: id,
                            reference: *m,
                        });
                    }
                }
            }
        }
        // Forward acyclicity.
        self.try_topo_order()?;
        // Acknowledgement coverage: each data arc in exactly one group.
        let mut coverage = vec![0usize; self.arcs.len()];
        for ack in &self.acks {
            for arc in &ack.covers {
                if arc.index() >= self.arcs.len() {
                    return Err(DataflowError::BrokenAckChain {
                        covers: ack.covers.clone(),
                    });
                }
                coverage[arc.index()] += 1;
            }
        }
        for (i, &count) in coverage.iter().enumerate() {
            if count != 1 {
                return Err(DataflowError::AckCoverage {
                    arc: ArcId::from_index(i),
                    count,
                });
            }
        }
        // Chain structure and token budget per group.
        for ack in &self.acks {
            if ack.covers.is_empty() {
                return Err(DataflowError::BrokenAckChain {
                    covers: ack.covers.clone(),
                });
            }
            let first = self.arc(ack.covers[0]);
            if first.from != ack.to {
                return Err(DataflowError::BrokenAckChain {
                    covers: ack.covers.clone(),
                });
            }
            for w in ack.covers.windows(2) {
                if self.arc(w[0]).to != self.arc(w[1]).from {
                    return Err(DataflowError::BrokenAckChain {
                        covers: ack.covers.clone(),
                    });
                }
            }
            let last = self.arc(*ack.covers.last().expect("nonempty"));
            if last.to != ack.from {
                return Err(DataflowError::BrokenAckChain {
                    covers: ack.covers.clone(),
                });
            }
            if ack.capacity == 0 {
                return Err(DataflowError::AckOverfull {
                    covers: ack.covers.clone(),
                    tokens: 0,
                });
            }
            let tokens: u32 = ack
                .covers
                .iter()
                .map(|&a| self.arc(a).initial_tokens())
                .sum();
            if tokens > ack.capacity {
                return Err(DataflowError::AckOverfull {
                    covers: ack.covers.clone(),
                    tokens,
                });
            }
        }
        Ok(())
    }

    /// The names of all environment arrays read by the loop, sorted and
    /// deduplicated.
    pub fn input_arrays(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .nodes
            .iter()
            .flat_map(|n| n.operands.iter())
            .filter_map(|o| match o {
                Operand::Env { array, .. } => Some(array.clone()),
                _ => None,
            })
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// The names of all loop-invariant scalar parameters read by the loop,
    /// sorted and deduplicated.
    pub fn params(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .nodes
            .iter()
            .flat_map(|n| n.operands.iter())
            .filter_map(|o| match o {
                Operand::Param(name) => Some(name.clone()),
                _ => None,
            })
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Map from node name to id (first occurrence wins for duplicates).
    pub fn names(&self) -> HashMap<String, NodeId> {
        let mut map = HashMap::new();
        for (id, node) in self.nodes() {
            map.entry(node.name.clone()).or_insert(id);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SdspBuilder;

    fn l1() -> Sdsp {
        let mut b = SdspBuilder::new();
        let a = b.node("A", OpKind::Add, [Operand::env("X", 0), Operand::lit(5.0)]);
        let bb = b.node("B", OpKind::Add, [Operand::env("Y", 0), Operand::node(a)]);
        let c = b.node("C", OpKind::Add, [Operand::node(a), Operand::env("Z", 0)]);
        let d = b.node("D", OpKind::Add, [Operand::node(bb), Operand::node(c)]);
        let _e = b.node("E", OpKind::Add, [Operand::env("W", 0), Operand::node(d)]);
        b.finish().unwrap()
    }

    #[test]
    fn l1_structure() {
        let s = l1();
        assert_eq!(s.num_nodes(), 5);
        assert_eq!(s.arcs().count(), 5); // A->B, A->C, B->D, C->D, D->E
        assert_eq!(s.storage_locations(), 5);
        assert!(!s.has_loop_carried_dependence());
        assert_eq!(s.input_arrays(), vec!["W", "X", "Y", "Z"]);
    }

    #[test]
    fn topo_order_respects_forward_arcs() {
        let s = l1();
        let order = s.topo_order();
        let pos: HashMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for (_, arc) in s.arcs() {
            if arc.kind == ArcKind::Forward {
                assert!(pos[&arc.from] < pos[&arc.to]);
            }
        }
    }

    #[test]
    fn feedback_does_not_block_topo_order() {
        // Loop 5-like: X[i] = Z[i] * (Y[i] - X[i-1]).
        let mut b = SdspBuilder::new();
        let sub = b.node(
            "sub",
            OpKind::Sub,
            [Operand::env("Y", 0), Operand::lit(0.0)],
        );
        let mul = b.node("X", OpKind::Mul, [Operand::env("Z", 0), Operand::node(sub)]);
        b.set_operand(sub, 1, Operand::feedback(mul, 1));
        let s = b.finish().unwrap();
        assert!(s.has_loop_carried_dependence());
        assert_eq!(s.topo_order(), vec![sub, mul]);
    }

    #[test]
    fn forward_cycle_is_rejected() {
        let mut b = SdspBuilder::new();
        let x = b.node("x", OpKind::Add, [Operand::lit(0.0), Operand::lit(0.0)]);
        let y = b.node("y", OpKind::Add, [Operand::node(x), Operand::lit(0.0)]);
        b.set_operand(x, 0, Operand::node(y));
        match b.finish() {
            Err(DataflowError::ForwardCycle { cycle }) => {
                assert_eq!(cycle.len(), 2);
            }
            other => panic!("expected ForwardCycle, got {other:?}"),
        }
    }

    #[test]
    fn with_acks_accepts_valid_chain() {
        let s = l1();
        // Coalesce acks of A->B (arc to B) and B->D into one D->A ack.
        let mut ab = None;
        let mut bd = None;
        for (id, arc) in s.arcs() {
            let from = s.node(arc.from).name.clone();
            let to = s.node(arc.to).name.clone();
            if from == "A" && to == "B" {
                ab = Some(id);
            }
            if from == "B" && to == "D" {
                bd = Some(id);
            }
        }
        let (ab, bd) = (ab.unwrap(), bd.unwrap());
        let mut acks: Vec<AckArc> = s
            .acks()
            .filter(|(_, k)| !k.covers.contains(&ab) && !k.covers.contains(&bd))
            .map(|(_, k)| k.clone())
            .collect();
        acks.push(AckArc {
            from: s.arc(bd).to,
            to: s.arc(ab).from,
            covers: vec![ab, bd],
            capacity: 1,
        });
        let optimised = s.with_acks(acks).unwrap();
        assert_eq!(optimised.storage_locations(), 4);
    }

    #[test]
    fn with_acks_rejects_non_chain() {
        let s = l1();
        // A->B and C->D are not consecutive.
        let mut ab = None;
        let mut cd = None;
        for (id, arc) in s.arcs() {
            let from = s.node(arc.from).name.clone();
            let to = s.node(arc.to).name.clone();
            if from == "A" && to == "B" {
                ab = Some(id);
            }
            if from == "C" && to == "D" {
                cd = Some(id);
            }
        }
        let (ab, cd) = (ab.unwrap(), cd.unwrap());
        let mut acks: Vec<AckArc> = s
            .acks()
            .filter(|(_, k)| !k.covers.contains(&ab) && !k.covers.contains(&cd))
            .map(|(_, k)| k.clone())
            .collect();
        acks.push(AckArc {
            from: s.arc(cd).to,
            to: s.arc(ab).from,
            covers: vec![ab, cd],
            capacity: 1,
        });
        assert!(matches!(
            s.with_acks(acks),
            Err(DataflowError::BrokenAckChain { .. })
        ));
    }

    #[test]
    fn with_acks_rejects_missing_coverage() {
        let s = l1();
        let acks: Vec<AckArc> = s.acks().skip(1).map(|(_, k)| k.clone()).collect();
        assert!(matches!(
            s.with_acks(acks),
            Err(DataflowError::AckCoverage { count: 0, .. })
        ));
    }

    #[test]
    fn names_map_finds_nodes() {
        let s = l1();
        let names = s.names();
        assert_eq!(s.node(names["D"]).name, "D");
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn operand_constructors() {
        let n = NodeId::from_index(3);
        assert_eq!(
            Operand::node(n),
            Operand::Node {
                node: n,
                distance: 0
            }
        );
        assert_eq!(
            Operand::feedback(n, 2),
            Operand::Node {
                node: n,
                distance: 2
            }
        );
        assert_eq!(
            Operand::env("X", -1),
            Operand::Env {
                array: "X".into(),
                offset: -1
            }
        );
        assert_eq!(Operand::lit(2.0), Operand::Lit(2.0));
        assert_eq!(Operand::index(), Operand::Index);
    }

    #[test]
    #[should_panic(expected = "feedback distance must be positive")]
    fn zero_distance_feedback_panics() {
        let _ = Operand::feedback(NodeId::from_index(0), 0);
    }
}
