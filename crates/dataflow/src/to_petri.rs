//! The SDSP → SDSP-PN translation (§3.2 of the paper).
//!
//! Each actor becomes a transition with its execution time; each data arc
//! and each acknowledgement arc becomes a place. Arcs that initially hold a
//! token (feedback arcs, and acknowledgement arcs of chains whose storage
//! location is free) are marked. The two key properties the paper states —
//! that the initial marking is **live and safe** and that the SDSP-PN is a
//! **marked graph** — hold by construction and are re-checked in this
//! module's tests via both the structural theorems and explicit
//! reachability.
//!
//! Environment reads (input arrays, literals, the loop index) impose no
//! scheduling constraint: successive waves of array elements are always
//! available (§2), so they produce no places. A degenerate acknowledgement
//! whose chain already closes a cycle on its own (a self-feedback arc
//! `Q → Q`) would add a token-free self-loop place and deadlock the net;
//! since the data cycle itself already enforces the single-location
//! capacity, such acknowledgements produce no place either (the location is
//! still counted by [`Sdsp::storage_locations`]).

use tpn_petri::{Marking, PetriNet, PlaceId, TransitionId};

use crate::graph::{NodeId, Sdsp};

/// The Petri-net image of an SDSP, with the correspondence maps needed to
/// interpret analysis results back at the dataflow level.
#[derive(Clone, Debug)]
pub struct SdspPn {
    /// The SDSP-PN itself: a marked graph.
    pub net: PetriNet,
    /// Its initial marking (live and safe).
    pub marking: Marking,
    /// Transition of each SDSP node, indexed by node arena order.
    pub transition_of: Vec<TransitionId>,
    /// Place of each data arc, indexed by arc arena order.
    pub place_of_arc: Vec<PlaceId>,
    /// Place of each acknowledgement arc (None for degenerate
    /// self-feedback acknowledgements, which need no place).
    pub place_of_ack: Vec<Option<PlaceId>>,
}

impl SdspPn {
    /// The SDSP node behind `t`, if `t` is a node transition (in plain
    /// SDSP-PNs every transition is; resource models add dummies).
    pub fn node_of(&self, t: TransitionId) -> Option<NodeId> {
        self.transition_of
            .iter()
            .position(|&x| x == t)
            .map(NodeId::from_index)
    }
}

/// Translates a validated SDSP into its SDSP-PN.
///
/// # Example
///
/// ```
/// use tpn_dataflow::{SdspBuilder, OpKind, Operand};
/// use tpn_dataflow::to_petri::to_petri;
/// use tpn_petri::marked::check_live_safe;
///
/// let mut b = SdspBuilder::new();
/// let a = b.node("A", OpKind::Add, [Operand::env("X", 0), Operand::lit(5.0)]);
/// let _b2 = b.node("B", OpKind::Neg, [Operand::node(a)]);
/// let sdsp = b.finish()?;
/// let pn = to_petri(&sdsp);
/// assert!(pn.net.is_marked_graph());
/// assert!(check_live_safe(&pn.net, &pn.marking).is_ok());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn to_petri(sdsp: &Sdsp) -> SdspPn {
    let mut net = PetriNet::new();
    let transition_of: Vec<TransitionId> = sdsp
        .nodes()
        .map(|(_, node)| net.add_transition(node.name.clone(), node.time))
        .collect();

    let mut marking_pairs = Vec::new();
    let place_of_arc: Vec<PlaceId> = sdsp
        .arcs()
        .map(|(_, arc)| {
            let name = format!("{}->{}", sdsp.node(arc.from).name, sdsp.node(arc.to).name);
            let p = net.add_place(name);
            net.connect_tp(transition_of[arc.from.index()], p);
            net.connect_pt(p, transition_of[arc.to.index()]);
            if arc.initial_tokens() > 0 {
                marking_pairs.push((p, arc.initial_tokens()));
            }
            p
        })
        .collect();

    let place_of_ack: Vec<Option<PlaceId>> = sdsp
        .acks()
        .map(|(_, ack)| {
            if ack.from == ack.to {
                // Self-feedback: the data cycle already bounds the buffer.
                return None;
            }
            let name = format!(
                "ack:{}=>{}",
                sdsp.node(ack.from).name,
                sdsp.node(ack.to).name
            );
            let p = net.add_place(name);
            net.connect_tp(transition_of[ack.from.index()], p);
            net.connect_pt(p, transition_of[ack.to.index()]);
            let chain_tokens: u32 = ack
                .covers
                .iter()
                .map(|&a| sdsp.arc(a).initial_tokens())
                .sum();
            debug_assert!(chain_tokens <= ack.capacity, "validated by Sdsp::validate");
            let free_slots = ack.capacity - chain_tokens;
            if free_slots > 0 {
                marking_pairs.push((p, free_slots));
            }
            Some(p)
        })
        .collect();

    let marking = Marking::from_pairs(&net, marking_pairs);
    SdspPn {
        net,
        marking,
        transition_of,
        place_of_arc,
        place_of_ack,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SdspBuilder;
    use crate::graph::Operand;
    use crate::ops::OpKind;
    use tpn_petri::marked::check_live_safe;
    use tpn_petri::ratio::critical_ratio;
    use tpn_petri::reach::explore;
    use tpn_petri::Ratio;

    fn l1() -> Sdsp {
        let mut b = SdspBuilder::new();
        let a = b.node("A", OpKind::Add, [Operand::env("X", 0), Operand::lit(5.0)]);
        let bb = b.node("B", OpKind::Add, [Operand::env("Y", 0), Operand::node(a)]);
        let c = b.node("C", OpKind::Add, [Operand::node(a), Operand::env("Z", 0)]);
        let d = b.node("D", OpKind::Add, [Operand::node(bb), Operand::node(c)]);
        let _e = b.node("E", OpKind::Add, [Operand::env("W", 0), Operand::node(d)]);
        b.finish().unwrap()
    }

    /// Loop L2 of the paper: same as L1 but C[i] reads E[i-1].
    fn l2() -> Sdsp {
        let mut b = SdspBuilder::new();
        let a = b.node("A", OpKind::Add, [Operand::env("X", 0), Operand::lit(5.0)]);
        let bb = b.node("B", OpKind::Add, [Operand::env("Y", 0), Operand::node(a)]);
        let c = b.node("C", OpKind::Add, [Operand::node(a), Operand::lit(0.0)]);
        let d = b.node("D", OpKind::Add, [Operand::node(bb), Operand::node(c)]);
        let e = b.node("E", OpKind::Add, [Operand::env("W", 0), Operand::node(d)]);
        b.set_operand(c, 1, Operand::feedback(e, 1));
        b.finish().unwrap()
    }

    #[test]
    fn l1_pn_is_live_safe_marked_graph() {
        let pn = to_petri(&l1());
        assert!(pn.net.is_marked_graph());
        assert!(check_live_safe(&pn.net, &pn.marking).is_ok());
        // 5 transitions, 5 data places + 5 ack places.
        assert_eq!(pn.net.num_transitions(), 5);
        assert_eq!(pn.net.num_places(), 10);
        // Initially only acks are marked: 5 tokens.
        assert_eq!(pn.marking.total(), 5);
    }

    #[test]
    fn l1_rate_is_one_half() {
        // With unit times and one buffer per arc, each fwd/ack pair is a
        // 2-cycle with one token: cycle time 2, rate 1/2 (Figure 1(e)'s
        // steady state fires each node every other cycle).
        let pn = to_petri(&l1());
        let r = critical_ratio(&pn.net, &pn.marking).unwrap();
        assert_eq!(r.cycle_time, Ratio::new(2, 1));
        assert_eq!(r.rate, Ratio::new(1, 2));
    }

    #[test]
    fn l2_pn_critical_cycle_is_cde() {
        // The paper (§6): critical cycle of L2 is C -> D -> E -> C with
        // cycle time 3, so the maximum computation rate is 1/3.
        let pn = to_petri(&l2());
        assert!(pn.net.is_marked_graph());
        assert!(check_live_safe(&pn.net, &pn.marking).is_ok());
        let r = critical_ratio(&pn.net, &pn.marking).unwrap();
        assert_eq!(r.cycle_time, Ratio::new(3, 1));
        assert_eq!(r.rate, Ratio::new(1, 3));
    }

    #[test]
    fn feedback_arc_carries_the_initial_token() {
        let s = l2();
        let pn = to_petri(&s);
        let (fb_id, _) = s
            .arcs()
            .find(|(_, a)| a.kind == crate::graph::ArcKind::Feedback)
            .unwrap();
        let place = pn.place_of_arc[fb_id.index()];
        assert_eq!(pn.marking.tokens(place), 1);
        // Its acknowledgement place exists but is empty (buffer full).
        let (ack_id, _) = s.acks().find(|(_, k)| k.covers.contains(&fb_id)).unwrap();
        let ack_place = pn.place_of_ack[ack_id.index()].unwrap();
        assert_eq!(pn.marking.tokens(ack_place), 0);
    }

    #[test]
    fn self_feedback_gets_no_ack_place() {
        // Q = Q + Z[i]*X[i] (Livermore loop 3).
        let mut b = SdspBuilder::new();
        let mul = b.node(
            "m",
            OpKind::Mul,
            [Operand::env("Z", 0), Operand::env("X", 0)],
        );
        let q = b.node("Q", OpKind::Add, [Operand::lit(0.0), Operand::node(mul)]);
        b.set_operand(q, 0, Operand::feedback(q, 1));
        let s = b.finish().unwrap();
        let pn = to_petri(&s);
        // Places: m->Q data, Q->Q feedback, ack Q=>m; self-ack omitted.
        assert_eq!(pn.net.num_places(), 3);
        assert!(pn.place_of_ack.iter().any(Option::is_none));
        assert!(check_live_safe(&pn.net, &pn.marking).is_ok());
        let r = critical_ratio(&pn.net, &pn.marking).unwrap();
        // Q -> Q self-cycle: 1 token, time 1... and the m/Q 2-cycle gives
        // cycle time 2.
        assert_eq!(r.cycle_time, Ratio::new(2, 1));
    }

    #[test]
    fn reachability_confirms_structural_theorems() {
        for sdsp in [l1(), l2()] {
            let pn = to_petri(&sdsp);
            let g = explore(&pn.net, pn.marking.clone(), 100_000).unwrap();
            assert!(g.is_live(&pn.net));
            assert!(g.is_safe());
            assert!(g.is_persistent(&pn.net));
        }
    }

    #[test]
    fn node_of_round_trips() {
        let s = l1();
        let pn = to_petri(&s);
        for (nid, _) in s.nodes() {
            assert_eq!(pn.node_of(pn.transition_of[nid.index()]), Some(nid));
        }
    }

    #[test]
    fn coalesced_acks_translate_to_longer_cycles() {
        // L2 with the Figure 4 optimisation: acks of A->B and B->D merged.
        let s = l2();
        let names = s.names();
        let (a, b, d) = (names["A"], names["B"], names["D"]);
        let mut ab = None;
        let mut bd = None;
        for (id, arc) in s.arcs() {
            if arc.from == a && arc.to == b {
                ab = Some(id);
            }
            if arc.from == b && arc.to == d {
                bd = Some(id);
            }
        }
        let (ab, bd) = (ab.unwrap(), bd.unwrap());
        let mut acks: Vec<_> = s
            .acks()
            .filter(|(_, k)| !k.covers.contains(&ab) && !k.covers.contains(&bd))
            .map(|(_, k)| k.clone())
            .collect();
        acks.push(crate::graph::AckArc {
            from: d,
            to: a,
            covers: vec![ab, bd],
            capacity: 1,
        });
        let opt = s.with_acks(acks).unwrap();
        assert_eq!(opt.storage_locations(), 5); // was 6
        let pn = to_petri(&opt);
        assert!(check_live_safe(&pn.net, &pn.marking).is_ok());
        // Rate unchanged: the new A->B->D->A cycle has ratio 3/1 = the
        // critical cycle's, exactly the paper's Figure 4 observation.
        let r = critical_ratio(&pn.net, &pn.marking).unwrap();
        assert_eq!(r.cycle_time, Ratio::new(3, 1));
    }
}
