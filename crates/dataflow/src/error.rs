//! Error types for SDSP construction, validation and interpretation.

use std::error::Error;
use std::fmt;

use crate::graph::{ArcId, NodeId};

/// Errors produced while building, validating or interpreting an SDSP.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum DataflowError {
    /// An operand list does not match the operation's arity.
    WrongArity {
        /// The offending node.
        node: NodeId,
        /// What the operation requires.
        expected: usize,
        /// What was supplied.
        found: usize,
    },
    /// An operand references a node id that does not exist.
    UnknownNode {
        /// The referencing node.
        node: NodeId,
        /// The dangling reference.
        reference: NodeId,
    },
    /// The forward arcs contain a cycle, so the loop body is not a
    /// well-formed dataflow graph (same-iteration dependences must be
    /// acyclic; cyclic dependences must be loop-carried).
    ForwardCycle {
        /// Nodes along a witnessing forward cycle.
        cycle: Vec<NodeId>,
    },
    /// An acknowledgement arc does not cover a contiguous chain of data
    /// arcs.
    BrokenAckChain {
        /// The data arcs of the offending acknowledgement group.
        covers: Vec<ArcId>,
    },
    /// A data arc is covered by no acknowledgement arc, or by more than
    /// one.
    AckCoverage {
        /// The arc with wrong coverage.
        arc: ArcId,
        /// How many acknowledgement groups cover it.
        count: usize,
    },
    /// An acknowledgement group's chain initially holds more than one data
    /// token, exceeding its single storage location.
    AckOverfull {
        /// The data arcs of the offending group.
        covers: Vec<ArcId>,
        /// The number of initial tokens on the chain.
        tokens: u32,
    },
    /// A node's execution time is zero.
    ZeroTime {
        /// The offending node.
        node: NodeId,
    },
    /// The interpreter read outside a provided input array.
    EnvOutOfRange {
        /// The array name.
        array: String,
        /// The requested index.
        index: i64,
        /// The array length.
        len: usize,
    },
    /// The interpreter needed an input array that was not provided.
    MissingArray {
        /// The array name.
        array: String,
    },
    /// The interpreter needed a scalar parameter that was not provided.
    MissingParam {
        /// The parameter name.
        param: String,
    },
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::WrongArity {
                node,
                expected,
                found,
            } => write!(
                f,
                "node {node} supplies {found} operands but its operation takes {expected}"
            ),
            DataflowError::UnknownNode { node, reference } => {
                write!(f, "node {node} references unknown node {reference}")
            }
            DataflowError::ForwardCycle { cycle } => {
                write!(f, "same-iteration dependences form a cycle: ")?;
                for (i, n) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{n}")?;
                }
                Ok(())
            }
            DataflowError::BrokenAckChain { covers } => write!(
                f,
                "acknowledgement arc covers {} data arcs that do not form a chain",
                covers.len()
            ),
            DataflowError::AckCoverage { arc, count } => write!(
                f,
                "data arc {arc} is covered by {count} acknowledgement arcs (expected exactly 1)"
            ),
            DataflowError::AckOverfull { covers, tokens } => write!(
                f,
                "acknowledgement chain of {} arcs initially holds {tokens} tokens but has one storage location",
                covers.len()
            ),
            DataflowError::ZeroTime { node } => {
                write!(f, "node {node} has execution time 0")
            }
            DataflowError::EnvOutOfRange { array, index, len } => write!(
                f,
                "read of {array}[{index}] is outside the provided array of length {len}"
            ),
            DataflowError::MissingArray { array } => {
                write!(f, "input array {array} was not provided")
            }
            DataflowError::MissingParam { param } => {
                write!(f, "scalar parameter {param} was not provided")
            }
        }
    }
}

impl Error for DataflowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_nonempty() {
        let errs: Vec<DataflowError> = vec![
            DataflowError::WrongArity {
                node: NodeId::from_index(0),
                expected: 2,
                found: 1,
            },
            DataflowError::ForwardCycle {
                cycle: vec![NodeId::from_index(0), NodeId::from_index(1)],
            },
            DataflowError::MissingArray {
                array: "X".to_string(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
