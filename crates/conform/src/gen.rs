//! Seeded random generation of live, safe SDSP loop bodies.
//!
//! Bodies are composed from rings (recurrences) and chains (feed-forward
//! pipelines) glued into one weakly connected graph, with forward chords
//! layered on top.  [`SdspBuilder::finish`] guarantees the resulting
//! SDSP-PN is live and safe by construction (capacity-1 acknowledgement
//! arcs; long feedback expanded into buffer chains), so every generated
//! case satisfies the paper's Assumptions A.6.1–A.6.3 and the oracle
//! stack can assert exact rate agreement.
//!
//! [`Shape`] biases generation toward the regimes where the analyses are
//! hardest to get right: multiple critical cycles with exactly equal
//! balancing ratios, near-critical ties one time unit apart, and long
//! recurrence rings with deep feedback.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpn_dataflow::{NodeId, OpKind, Operand, Sdsp, SdspBuilder};

/// The structural bias of a generated case.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Shape {
    /// Random mix of rings and chains with chords (the default).
    #[default]
    Mixed,
    /// Feed-forward chains only (critical cycles are ack 2-cycles).
    Chains,
    /// Recurrence rings with chords, occasionally long and deep.
    Rings,
    /// Two rings with *exactly* equal balancing ratios: guaranteed
    /// multiple critical cycles.
    MultiCritical,
    /// Two rings whose cycle times differ by exactly one time unit: a
    /// unique critical cycle with a near-critical runner-up.
    NearTie,
}

impl Shape {
    /// Every shape, for seed-matrix sweeps.
    pub const ALL: [Shape; 5] = [
        Shape::Mixed,
        Shape::Chains,
        Shape::Rings,
        Shape::MultiCritical,
        Shape::NearTie,
    ];

    /// Parses the CLI spelling.
    pub fn parse(name: &str) -> Option<Shape> {
        match name {
            "mixed" => Some(Shape::Mixed),
            "chains" => Some(Shape::Chains),
            "rings" => Some(Shape::Rings),
            "multi-critical" => Some(Shape::MultiCritical),
            "near-tie" => Some(Shape::NearTie),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Shape::Mixed => "mixed",
            Shape::Chains => "chains",
            Shape::Rings => "rings",
            Shape::MultiCritical => "multi-critical",
            Shape::NearTie => "near-tie",
        }
    }
}

/// Incremental loop-body assembly: tracks every node in creation order
/// (so chords can point strictly backwards, keeping the intra-iteration
/// dependence graph acyclic) and which nodes still have a free second
/// operand slot.
struct Body {
    builder: SdspBuilder,
    all: Vec<NodeId>,
    free_slot: Vec<NodeId>,
}

impl Body {
    fn new() -> Self {
        Body {
            builder: SdspBuilder::new(),
            all: Vec::new(),
            free_slot: Vec::new(),
        }
    }

    /// A binary op; varied for front-end coverage, irrelevant to timing.
    fn sample_op(rng: &mut StdRng) -> OpKind {
        match rng.random_range(0..5u32) {
            0 => OpKind::Add,
            1 => OpKind::Sub,
            2 => OpKind::Mul,
            3 => OpKind::Min,
            _ => OpKind::Max,
        }
    }

    /// Node-time distribution: mostly unit, a band of 2–3, a slow tail.
    fn sample_time(rng: &mut StdRng, cap: u64) -> u64 {
        let t = if rng.random_bool(0.55) {
            1
        } else if rng.random_bool(0.75) {
            rng.random_range(2..4u64)
        } else {
            rng.random_range(4..7u64)
        };
        t.min(cap)
    }

    /// An operand rooting a segment: a node from an earlier segment when
    /// one exists (keeping the body weakly connected), an environment
    /// input otherwise.
    fn connector(&self, rng: &mut StdRng) -> Operand {
        if self.all.is_empty() {
            Operand::env("X", 0)
        } else {
            Operand::node(self.all[rng.random_range(0..self.all.len())])
        }
    }

    fn push_node(&mut self, rng: &mut StdRng, primary: Operand, time: u64) -> NodeId {
        let name = format!("v{}", self.all.len());
        let op = Self::sample_op(rng);
        let id = self.builder.node(name, op, [primary, Operand::env("E", 0)]);
        self.builder.set_time(id, time);
        self.all.push(id);
        id
    }

    /// A feed-forward chain of `len ≥ 1` nodes rooted at a connector.
    fn chain(&mut self, rng: &mut StdRng, len: usize, time_cap: u64) {
        let mut prev: Option<NodeId> = None;
        for _ in 0..len {
            let primary = match prev {
                None => self.connector(rng),
                Some(p) => Operand::node(p),
            };
            let time = Self::sample_time(rng, time_cap);
            let id = self.push_node(rng, primary, time);
            self.free_slot.push(id);
            prev = Some(id);
        }
    }

    /// A recurrence ring: `times.len()` nodes in a data cycle closed by a
    /// feedback arc of the given iteration `distance` from tail to head.
    /// The head's second slot carries the feedback, so only interior
    /// nodes keep a free slot.
    fn ring(&mut self, rng: &mut StdRng, times: &[u64], distance: u32) {
        assert!(!times.is_empty() && distance >= 1);
        let mut prev: Option<NodeId> = None;
        let mut head: Option<NodeId> = None;
        for &time in times {
            let primary = match prev {
                None => self.connector(rng),
                Some(p) => Operand::node(p),
            };
            let id = self.push_node(rng, primary, time);
            if head.is_none() {
                head = Some(id);
            } else {
                self.free_slot.push(id);
            }
            prev = Some(id);
        }
        let (head, tail) = (head.unwrap(), prev.unwrap());
        self.builder
            .set_operand(head, 1, Operand::feedback(tail, distance));
    }

    /// Layers up to `max` forward chords over the body: each rewrites a
    /// free second slot to read a strictly earlier node, creating extra
    /// data arcs (and therefore extra ack cycles) without ever forming a
    /// token-free intra-iteration cycle.
    fn chords(&mut self, rng: &mut StdRng, max: usize) {
        for _ in 0..max {
            if self.free_slot.is_empty() {
                return;
            }
            let slot = rng.random_range(0..self.free_slot.len());
            let target = self.free_slot.swap_remove(slot);
            let pos = self
                .all
                .iter()
                .position(|&n| n == target)
                .expect("free-slot node is in the body");
            if pos == 0 {
                continue;
            }
            let source = self.all[rng.random_range(0..pos)];
            self.builder.set_operand(target, 1, Operand::node(source));
        }
    }

    fn finish(self) -> Sdsp {
        self.builder
            .finish()
            .expect("generated bodies are structurally valid")
    }
}

/// Generates case `case` of the stream identified by `seed`, biased by
/// `shape`.  Deterministic: equal `(seed, case, shape)` give equal
/// bodies, which is what makes `.sdsp` reproducer files redundant-but-
/// convenient snapshots.
pub fn generate(seed: u64, case: u64, shape: Shape) -> Sdsp {
    let stream = seed
        .wrapping_mul(0xD1B5_4A32_D192_ED03)
        .wrapping_add(case)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = StdRng::seed_from_u64(stream);
    let mut body = Body::new();
    match shape {
        Shape::Chains => {
            let segments = rng.random_range(1..4usize);
            for _ in 0..segments {
                let len = rng.random_range(2..7usize);
                body.chain(&mut rng, len, 6);
            }
            let chords = rng.random_range(0..5usize);
            body.chords(&mut rng, chords);
        }
        Shape::Rings => {
            let segments = rng.random_range(1..3usize);
            for _ in 0..segments {
                let long = rng.random_bool(0.25);
                let len = if long {
                    rng.random_range(8..13usize)
                } else {
                    rng.random_range(2..8usize)
                };
                let distance = rng.random_range(1..4u32);
                let times: Vec<u64> = (0..len).map(|_| Body::sample_time(&mut rng, 6)).collect();
                body.ring(&mut rng, &times, distance);
            }
            let chords = rng.random_range(0..4usize);
            body.chords(&mut rng, chords);
        }
        Shape::MultiCritical => {
            // Two rings with identical time vectors and unit feedback:
            // identical Ω and M, so both are critical — provided no other
            // cycle matches their ratio.  Ring nodes run 2–3 time units
            // over length ≥ 5 (Ω ≥ 10) while every ack 2-cycle tops out
            // at Ω = 3 + 3 < 10, so the two rings are exactly the
            // critical set.
            let len = rng.random_range(5..9usize);
            let times: Vec<u64> = (0..len).map(|_| rng.random_range(2..4u64)).collect();
            body.ring(&mut rng, &times, 1);
            body.ring(&mut rng, &times, 1);
        }
        Shape::NearTie => {
            // As MultiCritical, but the second ring runs exactly one time
            // unit longer: a unique critical cycle with a runner-up one
            // unit behind.
            let len = rng.random_range(5..9usize);
            let times: Vec<u64> = (0..len).map(|_| rng.random_range(2..4u64)).collect();
            let mut slower = times.clone();
            slower[rng.random_range(0..len)] += 1;
            body.ring(&mut rng, &times, 1);
            body.ring(&mut rng, &slower, 1);
        }
        Shape::Mixed => {
            let segments = rng.random_range(2..5usize);
            for _ in 0..segments {
                if rng.random_bool(0.6) {
                    let long = rng.random_bool(0.15);
                    let len = if long {
                        rng.random_range(8..13usize)
                    } else {
                        rng.random_range(2..8usize)
                    };
                    let distance = rng.random_range(1..4u32);
                    let times: Vec<u64> =
                        (0..len).map(|_| Body::sample_time(&mut rng, 6)).collect();
                    body.ring(&mut rng, &times, distance);
                } else {
                    let len = rng.random_range(2..6usize);
                    body.chain(&mut rng, len, 6);
                }
            }
            let chords = rng.random_range(0..5usize);
            body.chords(&mut rng, chords);
        }
    }
    body.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_dataflow::to_petri::to_petri;
    use tpn_petri::marked::check_live_safe;
    use tpn_petri::ratio::analyze_cycles;

    #[test]
    fn generation_is_deterministic() {
        for shape in Shape::ALL {
            let a = generate(7, 3, shape);
            let b = generate(7, 3, shape);
            assert_eq!(
                tpn_dataflow::acode::write(&a),
                tpn_dataflow::acode::write(&b)
            );
        }
    }

    #[test]
    fn every_shape_yields_live_safe_nets() {
        for shape in Shape::ALL {
            for case in 0..30 {
                let sdsp = generate(0, case, shape);
                let pn = to_petri(&sdsp);
                check_live_safe(&pn.net, &pn.marking).unwrap_or_else(|e| {
                    panic!("{} case {case}: {e}", shape.as_str());
                });
            }
        }
    }

    #[test]
    fn multi_critical_shape_has_multiple_critical_cycles() {
        for case in 0..30 {
            let sdsp = generate(1, case, Shape::MultiCritical);
            let pn = to_petri(&sdsp);
            let analysis = analyze_cycles(&pn.net, &pn.marking, 50_000).unwrap();
            assert!(
                analysis.has_multiple_critical_cycles(),
                "case {case}: expected a tie, got {:?}",
                analysis.critical
            );
        }
    }

    #[test]
    fn near_tie_shape_has_a_unique_critical_cycle() {
        for case in 0..30 {
            let sdsp = generate(1, case, Shape::NearTie);
            let pn = to_petri(&sdsp);
            let analysis = analyze_cycles(&pn.net, &pn.marking, 50_000).unwrap();
            assert_eq!(analysis.critical.len(), 1, "case {case}");
        }
    }

    #[test]
    fn shape_parsing_round_trips() {
        for shape in Shape::ALL {
            assert_eq!(Shape::parse(shape.as_str()), Some(shape));
        }
        assert_eq!(Shape::parse("bogus"), None);
    }
}
