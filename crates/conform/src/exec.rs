//! Semantic execution conformance: the three-way value oracle.
//!
//! The rate oracles in [`crate::oracle`] prove the *analyses* agree with
//! each other; this module proves the *emitted code computes the right
//! values*. For a generated `Sdsp` it:
//!
//! 1. builds a seeded deterministic [`Env`] ([`build_env`]) — ramps,
//!    alternating signs, denormal-adjacent magnitudes, or hash noise,
//!    chosen by the env seed;
//! 2. derives a [`LoopSchedule`] from **both** engines — the simulated
//!    cyclic frustum and the analytic critical-ratio construction —
//!    emits a VLIW program from each with [`tpn_codegen::emit`], and
//!    executes both on the verifying machine simulator
//!    ([`tpn_codegen::run_with_width`], which enforces issue width,
//!    buffer discipline, and operation latencies);
//! 3. executes the loop on the reference dataflow interpreter
//!    ([`tpn_dataflow::interp::execute`]) over the same `Env`;
//! 4. demands **bit-exact** `f64` agreement (`to_bits`) of every node's
//!    value in every iteration across all three executions;
//! 5. on nets small enough for [`tpn_sched::exact`] (≤
//!    [`tpn_sched::EXACT_LIMIT`] transitions), additionally demands that
//!    the initiation interval both engines achieve equals the
//!    exhaustively certified optimum — "time-optimal" as a tested claim.
//!
//! Bit-exactness is sound because every execution path evaluates nodes
//! with the same `OpKind::eval` over operand values produced by the same
//! dataflow dependences; scheduling only reorders *independent*
//! operations, which cannot change any operand under IEEE-754
//! determinism. A single flipped mantissa bit anywhere in the series is
//! therefore a real scheduling or buffering bug, not float noise.

use serde::Serialize;
use tpn_codegen::{emit, run_with_width};
use tpn_dataflow::interp::{execute, Env};
use tpn_dataflow::to_petri::to_petri;
use tpn_dataflow::Sdsp;
use tpn_sched::frustum::detect_frustum_eager;
use tpn_sched::schedule::LoopSchedule;
use tpn_sched::{analytic_schedule, exact_optimum_sdsp, EXACT_LIMIT};

/// Tuning knobs for the execution oracle.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Loop iterations to execute and compare per case.
    pub iterations: u64,
    /// Step budget for frustum detection.
    pub cycle_limit: u64,
    /// Whether to run the exhaustive optimality cross-check on nets with
    /// at most [`EXACT_LIMIT`] transitions.
    pub check_exact: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            iterations: 32,
            cycle_limit: 50_000,
            check_exact: true,
        }
    }
}

/// Everything the execution oracle measured on one case.
#[derive(Clone, Debug, Serialize)]
pub struct ExecReport {
    /// Case index within the run.
    pub case: u64,
    /// Env seed the inputs were derived from.
    pub env_seed: u64,
    /// Name of the input pattern the env seed selected.
    pub pattern: &'static str,
    /// Loop nodes in the body.
    pub nodes: usize,
    /// Transitions in the SDSP-PN.
    pub transitions: usize,
    /// Iterations executed and compared.
    pub iterations: u64,
    /// `(node, iteration)` values compared bit-exactly, summed over both
    /// engine-vs-interpreter comparisons.
    pub values_checked: u64,
    /// Initiation interval of the frustum-derived kernel, if derived.
    pub frustum_ii: Option<String>,
    /// Initiation interval of the analytic kernel, if derived.
    pub analytic_ii: Option<String>,
    /// The exhaustively certified optimal interval, when the net was
    /// small enough to brute-force.
    pub exact_ii: Option<String>,
    /// Machine cycles the frustum-emitted program took.
    pub frustum_cycles: Option<u64>,
    /// Machine cycles the analytic-emitted program took.
    pub analytic_cycles: Option<u64>,
    /// Every violated invariant, prefixed by the failing leg.
    pub disagreements: Vec<String>,
}

impl ExecReport {
    /// Did every leg agree?
    pub fn passed(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// Derives the deterministic env seed of `(seed, case)` — the value
/// recorded in reproducer dumps, sufficient (with the A-code) to replay
/// the whole oracle.
pub fn env_seed(seed: u64, case: u64) -> u64 {
    splitmix(seed ^ 0xE0EC_5EED_C0DE_F00D_u64.wrapping_add(splitmix(case)))
}

/// The input patterns the oracle rotates through, by `env_seed % 4`.
const PATTERNS: [&str; 4] = ["ramp", "alternating", "denormal-adjacent", "hash-noise"];

/// Builds the deterministic input environment for `sdsp` from an env
/// seed: every input array gets `len` elements of the selected pattern
/// (salted per array), every scalar parameter a stable value. The same
/// `(sdsp, env_seed, len)` always yields the same bits.
pub fn build_env(sdsp: &Sdsp, env_seed: u64, len: usize) -> Env {
    let pattern = (env_seed % PATTERNS.len() as u64) as usize;
    let mut env = Env::new();
    for (ai, name) in sdsp.input_arrays().into_iter().enumerate() {
        let salt = splitmix(env_seed ^ splitmix(ai as u64 + 1));
        let values: Vec<f64> = (0..len).map(|i| element(pattern, salt, i)).collect();
        env.insert(name, values);
    }
    for (pi, name) in sdsp.params().into_iter().enumerate() {
        let salt = splitmix(env_seed ^ splitmix(0x5CA1A5 + pi as u64));
        env.insert_scalar(name, element(pattern, salt, 0));
    }
    env
}

/// The name of the pattern an env seed selects.
pub fn pattern_name(env_seed: u64) -> &'static str {
    PATTERNS[(env_seed % PATTERNS.len() as u64) as usize]
}

/// One input element: position `i` of the pattern, salted per array.
fn element(pattern: usize, salt: u64, i: usize) -> f64 {
    let jitter = (splitmix(salt.wrapping_add(i as u64)) % 1000) as f64 / 1000.0;
    match pattern {
        // Gentle ramp: well-conditioned, catches index/offset mix-ups.
        0 => 1.0 + i as f64 * 0.5 + jitter,
        // Alternating signs: catches dropped negations and swapped
        // operands in subtractions.
        1 => {
            let sign = if i.is_multiple_of(2) { 1.0 } else { -1.0 };
            sign * (1.0 + i as f64 + jitter)
        }
        // Denormal-adjacent magnitudes: exercises gradual underflow,
        // where any re-association would flip result bits.
        2 => {
            let tiny = f64::MIN_POSITIVE * (1.0 + (i % 7) as f64);
            if i.is_multiple_of(3) {
                tiny
            } else {
                tiny * (0.25 + jitter)
            }
        }
        // Full-range hash noise in [-2, 2).
        _ => (splitmix(salt ^ (i as u64)) % 4_000_000) as f64 / 1_000_000.0 - 2.0,
    }
}

/// Runs the three-way value oracle (and the exact-optimality
/// cross-check) on one loop body.
pub fn check_exec(case: u64, sdsp: &Sdsp, env_seed: u64, config: &ExecConfig) -> ExecReport {
    let iterations = config.iterations.max(1);
    let env = build_env(sdsp, env_seed, iterations as usize + 8);
    let pn = to_petri(sdsp);
    let mut report = ExecReport {
        case,
        env_seed,
        pattern: pattern_name(env_seed),
        nodes: sdsp.num_nodes(),
        transitions: pn.net.num_transitions(),
        iterations,
        values_checked: 0,
        frustum_ii: None,
        analytic_ii: None,
        exact_ii: None,
        frustum_cycles: None,
        analytic_cycles: None,
        disagreements: Vec::new(),
    };
    if sdsp.num_nodes() == 0 {
        return report;
    }

    // Reference: the dataflow interpreter.
    let reference = match execute(sdsp, &env, iterations as usize) {
        Ok(trace) => trace,
        Err(e) => {
            report.disagreements.push(format!("exec-interp: {e}"));
            return report;
        }
    };

    // Leg 1: frustum-derived schedule, emitted and machine-executed.
    let frustum_schedule = detect_frustum_eager(&pn.net, pn.marking.clone(), config.cycle_limit)
        .and_then(|f| LoopSchedule::from_frustum(sdsp, &pn, &f));
    match frustum_schedule {
        Ok(schedule) => {
            report.frustum_ii = Some(schedule.initiation_interval().to_string());
            run_leg("frustum", &schedule, sdsp, &env, &reference, &mut report);
        }
        Err(e) => report
            .disagreements
            .push(format!("exec-frustum: schedule derivation failed: {e}")),
    }

    // Leg 2: analytic schedule, emitted and machine-executed.
    match analytic_schedule(sdsp, &pn) {
        Ok(schedule) => {
            report.analytic_ii = Some(schedule.initiation_interval().to_string());
            run_leg("analytic", &schedule, sdsp, &env, &reference, &mut report);
        }
        Err(e) => report
            .disagreements
            .push(format!("exec-analytic: schedule derivation failed: {e}")),
    }

    // Leg 3: the exhaustive optimum on small nets — both engines must
    // land exactly on it.
    if config.check_exact && report.transitions <= EXACT_LIMIT {
        match exact_optimum_sdsp(&pn) {
            Ok(exact) => {
                let optimal = exact.initiation_interval().to_string();
                report.exact_ii = Some(optimal.clone());
                for (engine, ii) in [
                    ("frustum", report.frustum_ii.clone()),
                    ("analytic", report.analytic_ii.clone()),
                ] {
                    if let Some(ii) = ii {
                        if ii != optimal {
                            report.disagreements.push(format!(
                                "exec-exact: {engine} kernel II {ii} != certified optimum {optimal}"
                            ));
                        }
                    }
                }
            }
            Err(e) => report
                .disagreements
                .push(format!("exec-exact: checker failed on a small net: {e}")),
        }
    }

    report
}

/// Emits `schedule`, runs it on the verifying machine (with the
/// program's own peak width enforced), and compares every value
/// bit-exactly against the interpreter trace.
fn run_leg(
    engine: &str,
    schedule: &LoopSchedule,
    sdsp: &Sdsp,
    env: &Env,
    reference: &tpn_dataflow::interp::Trace,
    report: &mut ExecReport,
) {
    let iterations = report.iterations;
    let program = emit(sdsp, schedule, iterations);
    let outcome = match run_with_width(&program, sdsp, env, Some(program.max_width)) {
        Ok(outcome) => outcome,
        Err(e) => {
            report
                .disagreements
                .push(format!("exec-{engine}: machine rejected the program: {e}"));
            return;
        }
    };
    match engine {
        "frustum" => report.frustum_cycles = Some(outcome.cycles),
        _ => report.analytic_cycles = Some(outcome.cycles),
    }
    let mut mismatches = 0u32;
    for node in sdsp.node_ids() {
        for iter in 0..iterations {
            let machine = outcome.value(node, iter);
            let interp = reference.value(node, iter as usize);
            report.values_checked += 1;
            if machine.to_bits() != interp.to_bits() && mismatches < 3 {
                mismatches += 1;
                report.disagreements.push(format!(
                    "exec-{engine}: {} iteration {iter}: machine {machine:?} ({:#018x}) != interp {interp:?} ({:#018x})",
                    sdsp.node(node).name,
                    machine.to_bits(),
                    interp.to_bits()
                ));
            }
        }
    }
}

/// SplitMix64: the standard 64-bit finalizer, deterministic everywhere.
fn splitmix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, Shape};

    #[test]
    fn env_seed_is_deterministic_and_spread() {
        assert_eq!(env_seed(1, 2), env_seed(1, 2));
        assert_ne!(env_seed(1, 2), env_seed(1, 3));
        assert_ne!(env_seed(1, 2), env_seed(2, 2));
    }

    #[test]
    fn build_env_is_bit_reproducible() {
        let sdsp = generate(7, 0, Shape::Mixed);
        let a = build_env(&sdsp, 42, 40);
        let b = build_env(&sdsp, 42, 40);
        for name in sdsp.input_arrays() {
            for i in 0..40 {
                assert_eq!(
                    a.get(&name, i as i64).unwrap().to_bits(),
                    b.get(&name, i as i64).unwrap().to_bits()
                );
            }
        }
    }

    #[test]
    fn all_patterns_are_exercised_across_seeds() {
        let mut seen = std::collections::HashSet::new();
        for s in 0..32 {
            seen.insert(pattern_name(env_seed(0, s)));
        }
        assert_eq!(seen.len(), PATTERNS.len());
    }

    #[test]
    fn generated_cases_pass_on_every_shape() {
        let config = ExecConfig::default();
        for shape in Shape::ALL {
            for case in 0..10 {
                let sdsp = generate(0, case, shape);
                let report = check_exec(case, &sdsp, env_seed(0, case), &config);
                assert!(
                    report.passed(),
                    "{shape:?} case {case}: {:?}",
                    report.disagreements
                );
                assert!(report.values_checked > 0);
                assert!(report.exact_ii.is_some() || report.transitions > EXACT_LIMIT);
            }
        }
    }

    #[test]
    fn denormal_inputs_stay_bit_exact() {
        // Force the denormal-adjacent pattern by searching for a seed
        // that selects it.
        let sdsp = generate(3, 1, Shape::Rings);
        let seed = (0..64)
            .map(|s| env_seed(3, s))
            .find(|s| pattern_name(*s) == "denormal-adjacent")
            .unwrap();
        let report = check_exec(1, &sdsp, seed, &ExecConfig::default());
        assert!(report.passed(), "{:?}", report.disagreements);
    }

    #[test]
    fn value_corruption_is_detected() {
        // A body whose feedback initial value we corrupt after emission
        // would be caught — simulate by comparing against a shifted env:
        // the oracle must flag a mismatch when the machine and the
        // interpreter see genuinely different inputs.
        let sdsp = generate(0, 0, Shape::Chains);
        let config = ExecConfig::default();
        let good = check_exec(0, &sdsp, env_seed(0, 0), &config);
        assert!(good.passed());
        // Direct corruption probe: run the machine against one env and
        // the reference against another.
        let env_a = build_env(&sdsp, 1, config.iterations as usize + 8);
        let reference = execute(
            &sdsp,
            &build_env(&sdsp, 2, config.iterations as usize + 8),
            8,
        )
        .unwrap();
        let pn = to_petri(&sdsp);
        let schedule = analytic_schedule(&sdsp, &pn).unwrap();
        let program = emit(&sdsp, &schedule, 8);
        let outcome = run_with_width(&program, &sdsp, &env_a, None).unwrap();
        let mismatch = sdsp.node_ids().any(|n| {
            (0..8)
                .any(|i| outcome.value(n, i).to_bits() != reference.value(n, i as usize).to_bits())
        });
        assert!(mismatch, "differently-seeded envs must disagree somewhere");
    }
}
