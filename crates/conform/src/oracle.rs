//! The differential oracle stack.
//!
//! Every generated case is pushed through each independent path the
//! codebase has for computing the loop's computation rate, and the
//! answers are cross-checked exactly (all arithmetic is rational — any
//! difference is a bug, not noise):
//!
//! * **liveness** — `check_live_safe` confirms the generator's contract;
//! * **enumeration** — [`analyze_cycles`] (Johnson-style enumeration of
//!   every simple cycle, max `Ω(C)/M(C)`);
//! * **parametric** — [`critical_ratio`] (Lawler's parametric search,
//!   no enumeration);
//! * **rate** — the earliest-firing frustum simulation's measured rate
//!   ([`RateReport`]), which Theorem 4.2 says attains the optimum;
//! * **trace** — the firing trace derived from the frustum, replayed
//!   from events alone by [`replay_trace`] and held to the same rate;
//! * **storage** — [`minimize_storage`]'s coalesced net must keep both
//!   its parametric cycle time and its simulated rate unchanged;
//! * **analytic** — the simulation-free periodic schedule built from the
//!   critical ratio ([`AnalyticSchedule`]) must carry exactly the
//!   parametric rate, pass the independent dependence checker, and its
//!   synthesized firing trace must replay cleanly at the same rate;
//! * **explain** — the scheduling witness (`CompiledLoop::explain`) must
//!   pass its own in-process re-validation and report exactly the
//!   parametric `α*` and rate.
//!
//! [`Mutation`] deliberately breaks one layer (the simulated net) while
//! leaving the analyses untouched; a healthy stack catches the injected
//! rate bug through at least two independent oracles, which is exactly
//! what [`check_mutated`] asserts.

use serde::Serialize;
use tpn_dataflow::to_petri::to_petri;
use tpn_dataflow::Sdsp;
use tpn_petri::marked::check_live_safe;
use tpn_petri::ratio::{analyze_cycles, critical_ratio, CriticalWitness};
use tpn_petri::PetriError;
use tpn_sched::analytic::AnalyticSchedule;
use tpn_sched::frustum::detect_frustum_eager;
use tpn_sched::rate::RateReport;
use tpn_sched::trace::FiringTrace;
use tpn_sched::validate::{check_schedule, replay_trace};
use tpn_storage::minimize_storage;

/// Tuning for one oracle run.
#[derive(Clone, Copy, Debug)]
pub struct OracleConfig {
    /// Cycle-enumeration ceiling; beyond it the enumeration oracle is
    /// recorded as skipped (not failed) for the case.
    pub cycle_limit: usize,
    /// Frustum simulation budget in time steps.
    pub step_budget: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            cycle_limit: 50_000,
            step_budget: 400_000,
        }
    }
}

/// The outcome of running the oracle stack over one case.
#[derive(Clone, Debug, Serialize)]
pub struct CaseReport {
    /// Case index within the seed's stream.
    pub case: u64,
    /// Loop-body node count (after feedback expansion).
    pub nodes: usize,
    /// Parametric critical cycle time `α*`.
    pub cycle_time: String,
    /// Parametric optimal rate `γ = 1/α*`.
    pub rate: String,
    /// Whether cycle enumeration completed within the limit.
    pub enumerated: bool,
    /// Whether the case has multiple critical cycles.
    pub multiple_critical: bool,
    /// Simulated steps until the frustum's terminal state repeated.
    pub repeat_time: u64,
    /// The frustum's steady-state period.
    pub period: u64,
    /// Storage locations before minimisation.
    pub storage_before: usize,
    /// Storage locations after minimisation.
    pub storage_after: usize,
    /// Every oracle disagreement, prefixed by the oracle's name; empty
    /// means the case passed.
    pub disagreements: Vec<String>,
}

impl CaseReport {
    /// Whether every oracle agreed.
    pub fn passed(&self) -> bool {
        self.disagreements.is_empty()
    }

    /// The distinct oracles that flagged this case.
    pub fn flagged_oracles(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .disagreements
            .iter()
            .map(|d| d.split(':').next().unwrap_or("unknown").to_string())
            .collect();
        names.sort();
        names.dedup();
        names
    }
}

/// A deliberately injected rate bug, applied to the *simulated* net only
/// so the analytical oracles keep reporting the pristine optimum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Slows one node past the critical cycle time: the simulated rate
    /// drops strictly below the analytical optimum.
    SlowNode,
    /// Adds a token to the unique critical cycle: the simulation runs
    /// strictly faster than the analytical optimum.  Only applicable
    /// when enumeration confirms a unique critical data cycle.
    ExtraToken,
}

impl Mutation {
    /// Parses the CLI spelling.
    pub fn parse(name: &str) -> Option<Mutation> {
        match name {
            "slow-node" => Some(Mutation::SlowNode),
            "extra-token" => Some(Mutation::ExtraToken),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Mutation::SlowNode => "slow-node",
            Mutation::ExtraToken => "extra-token",
        }
    }
}

/// What happened when a mutation was injected into a case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MutationOutcome {
    /// The named oracles flagged the injected bug.
    Caught(Vec<String>),
    /// No oracle noticed — a conformance-harness failure.
    Missed,
    /// The mutation provably cannot change this case's rate (e.g. an
    /// extra token when critical cycles tie), so it proves nothing.
    NotApplicable,
}

/// Runs the full oracle stack over one pristine case.
pub fn check_sdsp(case: u64, sdsp: &Sdsp, config: &OracleConfig) -> CaseReport {
    run_case(case, sdsp, None, config)
}

/// Injects `mutation` into the simulated net and reports which oracles
/// caught the divergence from the (untouched) analytical optimum.
pub fn check_mutated(
    case: u64,
    sdsp: &Sdsp,
    mutation: Mutation,
    config: &OracleConfig,
) -> MutationOutcome {
    let report = run_case(case, sdsp, Some(mutation), config);
    if report.disagreements.iter().any(|d| d == NOT_APPLICABLE) {
        return MutationOutcome::NotApplicable;
    }
    let oracles = report.flagged_oracles();
    if oracles.is_empty() {
        MutationOutcome::Missed
    } else {
        MutationOutcome::Caught(oracles)
    }
}

/// Sentinel disagreement marking a mutation that cannot bite.
const NOT_APPLICABLE: &str = "mutation: not applicable";

fn run_case(
    case: u64,
    sdsp: &Sdsp,
    mutation: Option<Mutation>,
    config: &OracleConfig,
) -> CaseReport {
    let pn = to_petri(sdsp);
    let mut report = CaseReport {
        case,
        nodes: sdsp.num_nodes(),
        cycle_time: String::new(),
        rate: String::new(),
        enumerated: false,
        multiple_critical: false,
        repeat_time: 0,
        period: 0,
        storage_before: 0,
        storage_after: 0,
        disagreements: Vec::new(),
    };

    // Oracle 0: the generator's structural contract.
    if let Err(e) = check_live_safe(&pn.net, &pn.marking) {
        report
            .disagreements
            .push(format!("liveness: generated net not live and safe: {e}"));
        return report;
    }

    // Oracle 1: Lawler's parametric search — the baseline every other
    // oracle is compared against.
    let param = match critical_ratio(&pn.net, &pn.marking) {
        Ok(p) => p,
        Err(e) => {
            report
                .disagreements
                .push(format!("parametric: critical_ratio failed: {e}"));
            return report;
        }
    };
    report.cycle_time = param.cycle_time.to_string();
    report.rate = param.rate.to_string();

    // Oracle 2: exhaustive cycle enumeration must find the same α*.
    match analyze_cycles(&pn.net, &pn.marking, config.cycle_limit) {
        Ok(analysis) => {
            report.enumerated = true;
            report.multiple_critical = analysis.has_multiple_critical_cycles();
            if analysis.cycle_time != param.cycle_time {
                report.disagreements.push(format!(
                    "enumeration: analyze_cycles α* = {} but critical_ratio α* = {}",
                    analysis.cycle_time, param.cycle_time
                ));
            }
        }
        Err(PetriError::TooManyCycles { .. }) => {}
        Err(e) => report
            .disagreements
            .push(format!("enumeration: analyze_cycles failed: {e}")),
    }

    // Inject the mutation into the simulated net only.
    let mut sim_net = pn.net.clone();
    let mut sim_marking = pn.marking.clone();
    match mutation {
        None => {}
        Some(Mutation::SlowNode) => {
            // One past ⌈α*⌉: the node's implicit self-loop now bounds the
            // rate strictly below the analytical optimum.
            let slow = param.cycle_time.numer().div_ceil(param.cycle_time.denom()) + 1;
            sim_net.set_time(pn.transition_of[0], slow);
        }
        Some(Mutation::ExtraToken) => match &param.witness {
            CriticalWitness::Cycle(c) if report.enumerated && !report.multiple_critical => {
                let p = c.places()[0];
                sim_marking.set(p, sim_marking.tokens(p) + 1);
            }
            _ => {
                report.disagreements.push(NOT_APPLICABLE.to_string());
                return report;
            }
        },
    }

    // Oracles 3 and 4: the earliest-firing simulation and the replayed
    // firing trace must both attain exactly the analytical optimum.
    match detect_frustum_eager(&sim_net, sim_marking.clone(), config.step_budget) {
        Ok(frustum) => {
            report.repeat_time = frustum.repeat_time;
            report.period = frustum.period();
            let measured = frustum.rate_of(pn.transition_of[0]);
            if measured != param.rate {
                report.disagreements.push(format!(
                    "rate: simulated rate {} != analytical optimum {}",
                    measured, param.rate
                ));
            }
            if mutation.is_none() {
                // The public RateReport path must agree with the direct
                // per-transition measurement.
                match RateReport::for_sdsp_pn(&pn, &frustum) {
                    Ok(rr) => {
                        if !rr.is_time_optimal() || rr.measured != measured {
                            report.disagreements.push(format!(
                                "rate: RateReport measured {} optimal {} (direct {})",
                                rr.measured, rr.optimal, measured
                            ));
                        }
                    }
                    Err(e) => report
                        .disagreements
                        .push(format!("rate: RateReport failed: {e}")),
                }
            }
            let trace = FiringTrace::from_frustum(&sim_net, &sim_marking, &frustum);
            match replay_trace(&sim_net, &sim_marking, &trace) {
                Ok(validation) => {
                    if let Err(e) = validation.confirm_rate(sim_net.transition_ids(), param.rate) {
                        report.disagreements.push(format!("trace: {e}"));
                    }
                }
                Err(e) => report
                    .disagreements
                    .push(format!("trace: replay failed: {e}")),
            }
        }
        Err(e) => report
            .disagreements
            .push(format!("rate: frustum detection failed: {e}")),
    }

    // Oracle 5: storage minimisation must not move the rate, neither
    // analytically nor under simulation.  Runs on the pristine loop (the
    // mutation lives in the simulated net, which storage never sees).
    if mutation.is_none() {
        match minimize_storage(sdsp) {
            Ok((optimised, storage_report)) => {
                report.storage_before = storage_report.before;
                report.storage_after = storage_report.after;
                let opn = to_petri(&optimised);
                match critical_ratio(&opn.net, &opn.marking) {
                    Ok(after) => {
                        if after.cycle_time != param.cycle_time {
                            report.disagreements.push(format!(
                                "storage: minimised α* = {} but original α* = {}",
                                after.cycle_time, param.cycle_time
                            ));
                        }
                    }
                    Err(e) => report
                        .disagreements
                        .push(format!("storage: minimised net analysis failed: {e}")),
                }
                match detect_frustum_eager(&opn.net, opn.marking.clone(), config.step_budget) {
                    Ok(f) => {
                        let after = f.rate_of(opn.transition_of[0]);
                        if after != param.rate {
                            report.disagreements.push(format!(
                                "storage: minimised net simulates at {} != {}",
                                after, param.rate
                            ));
                        }
                    }
                    Err(e) => report
                        .disagreements
                        .push(format!("storage: minimised net simulation failed: {e}")),
                }
            }
            Err(e) => report
                .disagreements
                .push(format!("storage: minimize_storage failed: {e}")),
        }
    }

    // Oracle 6: the analytic fast path — the periodic schedule built
    // straight from the critical ratio, no simulation — must agree with
    // the parametric baseline exactly, pass the independent dependence
    // checker, and its synthesized trace must replay cleanly at the same
    // rate.  Runs on the pristine net (like storage, it never sees the
    // mutated copy, so a mutated run would vacuously "disagree").
    if mutation.is_none() {
        match AnalyticSchedule::for_sdsp_pn(&pn) {
            Ok(analytic) => {
                if analytic.rate() != param.rate {
                    report.disagreements.push(format!(
                        "analytic: constructed rate {} != analytical optimum {}",
                        analytic.rate(),
                        param.rate
                    ));
                }
                let schedule = analytic.loop_schedule(sdsp, &pn);
                if schedule.initiation_interval() != param.cycle_time {
                    report.disagreements.push(format!(
                        "analytic: schedule II = {} but α* = {}",
                        schedule.initiation_interval(),
                        param.cycle_time
                    ));
                }
                if let Err(e) = check_schedule(sdsp, &schedule, 24, None, 0) {
                    report
                        .disagreements
                        .push(format!("analytic: schedule check failed: {e}"));
                }
                let trace = analytic.trace(&pn, 2);
                match replay_trace(&pn.net, &pn.marking, &trace) {
                    Ok(validation) => {
                        if let Err(e) = validation.confirm_rate(pn.net.transition_ids(), param.rate)
                        {
                            report.disagreements.push(format!("analytic: {e}"));
                        }
                    }
                    Err(e) => report
                        .disagreements
                        .push(format!("analytic: trace replay failed: {e}")),
                }
            }
            Err(e) => report
                .disagreements
                .push(format!("analytic: construction failed: {e}")),
        }
    }

    // Oracle 7: the explanation witness — `CompiledLoop::explain` must
    // self-validate (its own internal re-derivation finds no
    // discrepancy) and report exactly the parametric α* and rate.
    if mutation.is_none() {
        let lp = tpn::CompiledLoop::from_sdsp(sdsp.clone());
        match lp.explain() {
            Ok(e) => {
                if !e.validated {
                    report.disagreements.push(format!(
                        "explain: witness failed self-validation: {}",
                        e.validation_errors.join("; ")
                    ));
                }
                if e.cycle_time != param.cycle_time || e.rate != param.rate {
                    report.disagreements.push(format!(
                        "explain: reported α* = {} rate {} but parametric α* = {} rate {}",
                        e.cycle_time, e.rate, param.cycle_time, param.rate
                    ));
                }
            }
            Err(e) => report
                .disagreements
                .push(format!("explain: explanation failed: {e}")),
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, Shape};

    #[test]
    fn pristine_cases_pass_every_oracle() {
        let config = OracleConfig::default();
        for shape in Shape::ALL {
            for case in 0..20 {
                let sdsp = generate(0, case, shape);
                let report = check_sdsp(case, &sdsp, &config);
                assert!(
                    report.passed(),
                    "{} case {case}: {:?}",
                    shape.as_str(),
                    report.disagreements
                );
            }
        }
    }

    #[test]
    fn slow_node_mutation_is_caught_by_at_least_two_oracles() {
        let config = OracleConfig::default();
        for shape in Shape::ALL {
            for case in 0..10 {
                let sdsp = generate(0, case, shape);
                match check_mutated(case, &sdsp, Mutation::SlowNode, &config) {
                    MutationOutcome::Caught(oracles) => assert!(
                        oracles.len() >= 2,
                        "{} case {case}: only {oracles:?} caught the bug",
                        shape.as_str()
                    ),
                    other => panic!("{} case {case}: {other:?}", shape.as_str()),
                }
            }
        }
    }

    #[test]
    fn extra_token_mutation_is_caught_when_applicable() {
        let config = OracleConfig::default();
        let mut caught = 0;
        for case in 0..20 {
            let sdsp = generate(0, case, Shape::NearTie);
            match check_mutated(case, &sdsp, Mutation::ExtraToken, &config) {
                MutationOutcome::Caught(oracles) => {
                    assert!(oracles.len() >= 2, "case {case}: {oracles:?}");
                    caught += 1;
                }
                MutationOutcome::NotApplicable => {}
                MutationOutcome::Missed => panic!("case {case}: mutation missed"),
            }
        }
        assert!(caught > 0, "no near-tie case exercised the mutation");
    }
}
