//! Deterministic chaos mode for the compile service.
//!
//! A seeded fault plan assigns each request of a mixed-verb stream one of
//! four fates: run clean, be cancelled mid-flight, carry an
//! already-expired deadline, or panic inside the pipeline (an SCP depth
//! of zero, which the worker's panic isolation must confine).  The same
//! stream is first served by a fault-free reference service; the chaos
//! run must then satisfy:
//!
//! * every clean request's NDJSON line is **byte-identical** to the
//!   reference response (the cache may be hot, cold, or freshly healed
//!   after a panic eviction — the bytes must not care);
//! * every faulted request yields its typed error — or, for the two racy
//!   faults (cancel, deadline), the full byte-identical success when the
//!   fault lost the race;
//! * the service's counters account for every injected fault that bit;
//! * after the storm, a per-source sweep re-queries the chaos service
//!   and must again be byte-identical to the reference — panics evict
//!   poisoned cache entries, so recompilation must heal to the same
//!   bytes (cache coherence).
//!
//! Faults race by design (cancellation is cooperative, deadlines are
//! wall-clock), so the *assertions* are closed under both outcomes while
//! the *fault plan* is fully deterministic in the seed.

use std::panic;
use std::sync::Once;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use tpn_service::protocol::{Request, Verb};
use tpn_service::{Service, ServiceConfig};

/// Tuning for one chaos run.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed of the deterministic fault plan.
    pub seed: u64,
    /// Requests in the storm.
    pub requests: u64,
    /// Worker threads of the service under test.
    pub workers: usize,
    /// Also run the shard kill/restart phase: a service with a
    /// persistent artifact store is torn down and restarted on the same
    /// directory, and its warm cache must re-converge byte-identically.
    pub restart: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            requests: 120,
            workers: 4,
            restart: true,
        }
    }
}

/// One request's planned fate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fault {
    None,
    Cancel,
    Deadline,
    Panic,
}

/// The outcome of a chaos run.
#[derive(Clone, Debug, Serialize)]
pub struct ChaosReport {
    /// Requests in the storm.
    pub requests: u64,
    /// Requests that ran clean.
    pub clean: u64,
    /// Cancellations injected / observed as typed errors.
    pub injected_cancels: u64,
    /// Cancellations that actually interrupted the request.
    pub effective_cancels: u64,
    /// Expired deadlines injected.
    pub injected_deadlines: u64,
    /// Deadlines that actually expired the request.
    pub effective_deadlines: u64,
    /// Panics injected (every one must be observed and confined).
    pub injected_panics: u64,
    /// Post-storm coherence probes, all byte-checked.
    pub coherence_probes: u64,
    /// Kill/restart probes against the persistent store, byte-checked.
    pub restart_probes: u64,
    /// Restart probes served warm from the store-loaded cache.
    pub warm_hits: u64,
    /// Every assertion failure; empty means the run passed.
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Whether the chaos run satisfied every assertion.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn source_pool() -> Vec<String> {
    (0..8usize)
        .map(|i| {
            let nodes = i % 3 + 1;
            let body: String = (0..nodes)
                .map(|j| format!("X{j}[i] := X{j}[i-1] + {}; ", i + 1))
                .collect();
            format!("do i from 2 to n {{ {body}}}")
        })
        .collect()
}

/// The clean form of request `id`: mixed verbs over a small source pool.
fn plan_request(id: u64, pool: &[String]) -> Request {
    let verb_cycle = [
        (Verb::Analyze, None),
        (Verb::Schedule, None),
        (Verb::Rate, None),
        (Verb::Scp, Some(2)),
        (Verb::Trace, None),
        (Verb::Storage, None),
    ];
    let (verb, depth) = verb_cycle[id as usize % verb_cycle.len()];
    let mut request = Request::basic(id, verb, pool[id as usize % pool.len()].clone());
    request.depth = depth;
    request
}

/// Applies a planned fault to a clean request.
fn apply_fault(mut request: Request, fault: Fault) -> Request {
    match fault {
        Fault::None | Fault::Cancel => {}
        // Already expired on admission: stage-1 of the worker's
        // interruption checks fires before any compilation.
        Fault::Deadline => request.deadline_ms = Some(0),
        // An SCP depth of zero panics inside the pipeline; the protocol
        // parser rejects it, but in-process injection goes around the
        // parser on purpose to reach the worker's panic isolation.
        Fault::Panic => {
            request.verb = Verb::Scp;
            request.depth = Some(0);
        }
    }
    request
}

fn sample_fault(rng: &mut StdRng) -> Fault {
    match rng.random_range(0..100u32) {
        0..=69 => Fault::None,
        70..=79 => Fault::Cancel,
        80..=89 => Fault::Deadline,
        _ => Fault::Panic,
    }
}

fn has_error_kind(line: &str, kind: &str) -> bool {
    line.contains(&format!("\"error\":{{\"kind\":\"{kind}\"")) || {
        // Field order is fixed by the serializer, but don't depend on it.
        line.contains(&format!("\"kind\":\"{kind}\"")) && line.contains("\"error\"")
    }
}

/// The panic message of the injected SCP-depth-0 fault.
const INJECTED_PANIC: &str = "pipeline depth must be at least 1";

static SILENCE: Once = Once::new();

/// Installs (once per process) a panic hook that swallows the expected
/// injected-fault panic, so a storm doesn't spray dozens of identical
/// backtraces over the fuzzer's output.  Any other panic still reaches
/// the previous hook untouched.
fn silence_injected_panics() {
    SILENCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let injected = payload
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains(INJECTED_PANIC))
                || payload
                    .downcast_ref::<&str>()
                    .is_some_and(|m| m.contains(INJECTED_PANIC));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Runs the chaos storm and returns its report.
pub fn run_chaos(config: &ChaosConfig) -> ChaosReport {
    silence_injected_panics();
    let mut report = ChaosReport {
        requests: config.requests,
        clean: 0,
        injected_cancels: 0,
        effective_cancels: 0,
        injected_deadlines: 0,
        effective_deadlines: 0,
        injected_panics: 0,
        coherence_probes: 0,
        restart_probes: 0,
        warm_hits: 0,
        violations: Vec::new(),
    };
    let pool = source_pool();
    let service_config = |workers: usize| {
        ServiceConfig::builder()
            .workers(workers)
            .queue(config.requests.max(64) as usize)
            .build()
            .expect("chaos service config")
    };

    // Fault-free reference run: the expected bytes for every request id.
    let reference_service = Service::start(service_config(config.workers));
    let mut reference = Vec::with_capacity(config.requests as usize);
    for id in 0..config.requests {
        match reference_service.call(plan_request(id, &pool)) {
            Ok(response) => reference.push(response.line),
            Err(e) => {
                report
                    .violations
                    .push(format!("reference run overloaded at id {id}: {e}"));
                return report;
            }
        }
    }

    // Deterministic fault plan.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let faults: Vec<Fault> = (0..config.requests)
        .map(|_| sample_fault(&mut rng))
        .collect();

    // The storm: submit in flights, cancel the flagged ones immediately,
    // then collect and assert.
    let chaos_service = Service::start(service_config(config.workers));
    let flight = (config.workers * 4).max(8) as u64;
    let mut id = 0u64;
    while id < config.requests {
        let upper = (id + flight).min(config.requests);
        let mut tickets = Vec::new();
        for i in id..upper {
            let fault = faults[i as usize];
            let request = apply_fault(plan_request(i, &pool), fault);
            match chaos_service.submit(request) {
                Ok(ticket) => {
                    if fault == Fault::Cancel {
                        ticket.canceller().cancel();
                    }
                    tickets.push((i, fault, ticket));
                }
                Err(e) => report
                    .violations
                    .push(format!("chaos run overloaded at id {i}: {e}")),
            }
        }
        for (i, fault, ticket) in tickets {
            let line = ticket.wait().line;
            let expected = &reference[i as usize];
            match fault {
                Fault::None => {
                    report.clean += 1;
                    if &line != expected {
                        report.violations.push(format!(
                            "id {i}: clean response diverged from reference:\n  chaos: {line}\n  ref:   {expected}"
                        ));
                    }
                }
                Fault::Cancel => {
                    report.injected_cancels += 1;
                    if has_error_kind(&line, "cancelled") {
                        report.effective_cancels += 1;
                    } else if &line != expected {
                        report.violations.push(format!(
                            "id {i}: cancelled request neither errored nor matched reference: {line}"
                        ));
                    }
                }
                Fault::Deadline => {
                    report.injected_deadlines += 1;
                    if has_error_kind(&line, "deadline") {
                        report.effective_deadlines += 1;
                    } else if &line != expected {
                        report.violations.push(format!(
                            "id {i}: deadline request neither expired nor matched reference: {line}"
                        ));
                    }
                }
                Fault::Panic => {
                    report.injected_panics += 1;
                    if !has_error_kind(&line, "panic") {
                        report.violations.push(format!(
                            "id {i}: injected panic was not reported as one: {line}"
                        ));
                    }
                }
            }
        }
        id = upper;
    }

    // Counter coherence: the service's books must match what we saw.
    let counters = chaos_service.counters();
    if counters.panicked != report.injected_panics {
        report.violations.push(format!(
            "counters.panicked = {} but {} panics were injected",
            counters.panicked, report.injected_panics
        ));
    }
    if counters.cancelled != report.effective_cancels {
        report.violations.push(format!(
            "counters.cancelled = {} but {} cancellations bit",
            counters.cancelled, report.effective_cancels
        ));
    }
    if counters.deadline_expired != report.effective_deadlines {
        report.violations.push(format!(
            "counters.deadline_expired = {} but {} deadlines bit",
            counters.deadline_expired, report.effective_deadlines
        ));
    }

    // Cache coherence after the storm: panic isolation evicts the
    // poisoned entries, so a fresh sweep must recompile to bytes
    // identical to the fault-free service's.
    for (i, source) in pool.iter().enumerate() {
        let probe = |service: &Service| {
            service.call(Request::basic(
                1_000_000 + i as u64,
                Verb::Analyze,
                source.clone(),
            ))
        };
        match (probe(&chaos_service), probe(&reference_service)) {
            (Ok(chaos), Ok(reference)) => {
                report.coherence_probes += 1;
                if chaos.line != reference.line {
                    report.violations.push(format!(
                        "post-storm sweep diverged on source {i}:\n  chaos: {}\n  ref:   {}",
                        chaos.line, reference.line
                    ));
                }
            }
            (chaos, reference) => report.violations.push(format!(
                "post-storm sweep overloaded on source {i}: {chaos:?} / {reference:?}"
            )),
        }
    }

    if config.restart {
        run_restart_phase(config, &pool, &mut report);
    }

    report
}

/// The shard kill/restart phase: populate a store-backed service, tear
/// it down (the in-process stand-in for `kill -9` of one shard — the
/// store's torn-write crash safety is covered by its own tests),
/// restart on the same directory, and require every re-probe to be a
/// byte-identical warm hit served from the reloaded cache.
fn run_restart_phase(config: &ChaosConfig, pool: &[String], report: &mut ChaosReport) {
    // Concurrent chaos runs in one process (cargo test threads) must
    // not share a store directory: a sequence number keeps each
    // invocation's populate/teardown/restart cycle to itself.
    static DIR_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tpn-chaos-store-{}-{}-{}",
        std::process::id(),
        config.seed,
        DIR_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store_config = || {
        ServiceConfig::builder()
            .workers(config.workers)
            .queue(config.requests.max(64) as usize)
            .store(&dir)
            .build()
            .expect("chaos store config")
    };
    let probe = |i: usize| {
        let mut request = Request::basic(2_000_000 + i as u64, Verb::Schedule, pool[i].clone());
        request.depth = None;
        request
    };
    let outcome = (|| -> Result<(), String> {
        let populate = Service::try_start(store_config())
            .map_err(|e| format!("store-backed service failed to start: {e}"))?;
        let mut expected = Vec::with_capacity(pool.len());
        for i in 0..pool.len() {
            let response = populate
                .call(probe(i))
                .map_err(|e| format!("store populate rejected source {i}: {e}"))?;
            if !response.ok {
                return Err(format!(
                    "store populate failed on source {i}: {}",
                    response.line
                ));
            }
            expected.push(response.line);
        }
        drop(populate);
        let revived = Service::try_start(store_config())
            .map_err(|e| format!("restarted service failed to start: {e}"))?;
        for (i, expected) in expected.iter().enumerate() {
            let response = revived
                .call(probe(i))
                .map_err(|e| format!("restarted service rejected source {i}: {e}"))?;
            report.restart_probes += 1;
            if &response.line != expected {
                return Err(format!(
                    "restart diverged on source {i}:
  before: {expected}
  after:  {}",
                    response.line
                ));
            }
            if response.cache_hit {
                report.warm_hits += 1;
            }
        }
        let counters = revived.counters();
        let store = counters
            .store
            .ok_or("restarted service reports no store counters")?;
        if store.loaded < pool.len() as u64 {
            return Err(format!(
                "store warm-started only {} of {} entries",
                store.loaded,
                pool.len()
            ));
        }
        if report.warm_hits != pool.len() as u64 {
            return Err(format!(
                "only {} of {} restart probes were warm hits",
                report.warm_hits,
                pool.len()
            ));
        }
        Ok(())
    })();
    if let Err(violation) = outcome {
        report.violations.push(violation);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_run_passes_and_injects_every_fault_kind() {
        let report = run_chaos(&ChaosConfig {
            seed: 0,
            requests: 80,
            workers: 4,
            restart: true,
        });
        assert!(report.passed(), "{:#?}", report.violations);
        assert!(report.clean > 0);
        assert!(report.injected_cancels > 0);
        assert!(report.injected_deadlines > 0);
        assert!(report.injected_panics > 0);
        assert_eq!(report.coherence_probes, 8);
        assert_eq!(report.restart_probes, 8);
        assert_eq!(report.warm_hits, 8);
    }

    #[test]
    fn chaos_fault_plan_is_deterministic() {
        let a = run_chaos(&ChaosConfig::default());
        let b = run_chaos(&ChaosConfig::default());
        assert_eq!(a.injected_cancels, b.injected_cancels);
        assert_eq!(a.injected_deadlines, b.injected_deadlines);
        assert_eq!(a.injected_panics, b.injected_panics);
        assert!(a.passed() && b.passed());
    }
}
