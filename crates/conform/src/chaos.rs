//! Deterministic chaos mode for the compile service.
//!
//! A seeded fault plan assigns each request of a mixed-verb stream one of
//! four fates: run clean, be cancelled mid-flight, carry an
//! already-expired deadline, or panic inside the pipeline (an SCP depth
//! of zero, which the worker's panic isolation must confine).  The same
//! stream is first served by a fault-free reference service; the chaos
//! run must then satisfy:
//!
//! * every clean request's NDJSON line is **byte-identical** to the
//!   reference response (the cache may be hot, cold, or freshly healed
//!   after a panic eviction — the bytes must not care);
//! * every faulted request yields its typed error — or, for the two racy
//!   faults (cancel, deadline), the full byte-identical success when the
//!   fault lost the race;
//! * the service's counters account for every injected fault that bit;
//! * after the storm, a per-source sweep re-queries the chaos service
//!   and must again be byte-identical to the reference — panics evict
//!   poisoned cache entries, so recompilation must heal to the same
//!   bytes (cache coherence).
//!
//! Faults race by design (cancellation is cooperative, deadlines are
//! wall-clock), so the *assertions* are closed under both outcomes while
//! the *fault plan* is fully deterministic in the seed.

use std::panic;
use std::sync::Once;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use tpn::CompileOptions;
use tpn_service::protocol::{Request, Verb};
use tpn_service::{Service, ServiceConfig};

/// Tuning for one chaos run.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed of the deterministic fault plan.
    pub seed: u64,
    /// Requests in the storm.
    pub requests: u64,
    /// Worker threads of the service under test.
    pub workers: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            requests: 120,
            workers: 4,
        }
    }
}

/// One request's planned fate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fault {
    None,
    Cancel,
    Deadline,
    Panic,
}

/// The outcome of a chaos run.
#[derive(Clone, Debug, Serialize)]
pub struct ChaosReport {
    /// Requests in the storm.
    pub requests: u64,
    /// Requests that ran clean.
    pub clean: u64,
    /// Cancellations injected / observed as typed errors.
    pub injected_cancels: u64,
    /// Cancellations that actually interrupted the request.
    pub effective_cancels: u64,
    /// Expired deadlines injected.
    pub injected_deadlines: u64,
    /// Deadlines that actually expired the request.
    pub effective_deadlines: u64,
    /// Panics injected (every one must be observed and confined).
    pub injected_panics: u64,
    /// Post-storm coherence probes, all byte-checked.
    pub coherence_probes: u64,
    /// Every assertion failure; empty means the run passed.
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Whether the chaos run satisfied every assertion.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn source_pool() -> Vec<String> {
    (0..8usize)
        .map(|i| {
            let nodes = i % 3 + 1;
            let body: String = (0..nodes)
                .map(|j| format!("X{j}[i] := X{j}[i-1] + {}; ", i + 1))
                .collect();
            format!("do i from 2 to n {{ {body}}}")
        })
        .collect()
}

/// The clean form of request `id`: mixed verbs over a small source pool.
fn plan_request(id: u64, pool: &[String]) -> Request {
    let verb_cycle = [
        (Verb::Analyze, None),
        (Verb::Schedule, None),
        (Verb::Rate, None),
        (Verb::Scp, Some(2)),
        (Verb::Trace, None),
        (Verb::Storage, None),
    ];
    let (verb, depth) = verb_cycle[id as usize % verb_cycle.len()];
    Request {
        id,
        verb,
        source: pool[id as usize % pool.len()].clone(),
        depth,
        options: CompileOptions::new(),
        deadline_ms: None,
        target: None,
    }
}

/// Applies a planned fault to a clean request.
fn apply_fault(mut request: Request, fault: Fault) -> Request {
    match fault {
        Fault::None | Fault::Cancel => {}
        // Already expired on admission: stage-1 of the worker's
        // interruption checks fires before any compilation.
        Fault::Deadline => request.deadline_ms = Some(0),
        // An SCP depth of zero panics inside the pipeline; the protocol
        // parser rejects it, but in-process injection goes around the
        // parser on purpose to reach the worker's panic isolation.
        Fault::Panic => {
            request.verb = Verb::Scp;
            request.depth = Some(0);
        }
    }
    request
}

fn sample_fault(rng: &mut StdRng) -> Fault {
    match rng.random_range(0..100u32) {
        0..=69 => Fault::None,
        70..=79 => Fault::Cancel,
        80..=89 => Fault::Deadline,
        _ => Fault::Panic,
    }
}

fn has_error_kind(line: &str, kind: &str) -> bool {
    line.contains(&format!("\"error\":{{\"kind\":\"{kind}\"")) || {
        // Field order is fixed by the serializer, but don't depend on it.
        line.contains(&format!("\"kind\":\"{kind}\"")) && line.contains("\"error\"")
    }
}

/// The panic message of the injected SCP-depth-0 fault.
const INJECTED_PANIC: &str = "pipeline depth must be at least 1";

static SILENCE: Once = Once::new();

/// Installs (once per process) a panic hook that swallows the expected
/// injected-fault panic, so a storm doesn't spray dozens of identical
/// backtraces over the fuzzer's output.  Any other panic still reaches
/// the previous hook untouched.
fn silence_injected_panics() {
    SILENCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let injected = payload
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains(INJECTED_PANIC))
                || payload
                    .downcast_ref::<&str>()
                    .is_some_and(|m| m.contains(INJECTED_PANIC));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Runs the chaos storm and returns its report.
pub fn run_chaos(config: &ChaosConfig) -> ChaosReport {
    silence_injected_panics();
    let mut report = ChaosReport {
        requests: config.requests,
        clean: 0,
        injected_cancels: 0,
        effective_cancels: 0,
        injected_deadlines: 0,
        effective_deadlines: 0,
        injected_panics: 0,
        coherence_probes: 0,
        violations: Vec::new(),
    };
    let pool = source_pool();
    let service_config = |workers: usize| ServiceConfig {
        workers,
        queue_capacity: config.requests.max(64) as usize,
        ..ServiceConfig::default()
    };

    // Fault-free reference run: the expected bytes for every request id.
    let reference_service = Service::start(service_config(config.workers));
    let mut reference = Vec::with_capacity(config.requests as usize);
    for id in 0..config.requests {
        match reference_service.call(plan_request(id, &pool)) {
            Ok(response) => reference.push(response.line),
            Err(e) => {
                report
                    .violations
                    .push(format!("reference run overloaded at id {id}: {e}"));
                return report;
            }
        }
    }

    // Deterministic fault plan.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let faults: Vec<Fault> = (0..config.requests)
        .map(|_| sample_fault(&mut rng))
        .collect();

    // The storm: submit in flights, cancel the flagged ones immediately,
    // then collect and assert.
    let chaos_service = Service::start(service_config(config.workers));
    let flight = (config.workers * 4).max(8) as u64;
    let mut id = 0u64;
    while id < config.requests {
        let upper = (id + flight).min(config.requests);
        let mut tickets = Vec::new();
        for i in id..upper {
            let fault = faults[i as usize];
            let request = apply_fault(plan_request(i, &pool), fault);
            match chaos_service.submit(request) {
                Ok(ticket) => {
                    if fault == Fault::Cancel {
                        ticket.canceller().cancel();
                    }
                    tickets.push((i, fault, ticket));
                }
                Err(e) => report
                    .violations
                    .push(format!("chaos run overloaded at id {i}: {e}")),
            }
        }
        for (i, fault, ticket) in tickets {
            let line = ticket.wait().line;
            let expected = &reference[i as usize];
            match fault {
                Fault::None => {
                    report.clean += 1;
                    if &line != expected {
                        report.violations.push(format!(
                            "id {i}: clean response diverged from reference:\n  chaos: {line}\n  ref:   {expected}"
                        ));
                    }
                }
                Fault::Cancel => {
                    report.injected_cancels += 1;
                    if has_error_kind(&line, "cancelled") {
                        report.effective_cancels += 1;
                    } else if &line != expected {
                        report.violations.push(format!(
                            "id {i}: cancelled request neither errored nor matched reference: {line}"
                        ));
                    }
                }
                Fault::Deadline => {
                    report.injected_deadlines += 1;
                    if has_error_kind(&line, "deadline") {
                        report.effective_deadlines += 1;
                    } else if &line != expected {
                        report.violations.push(format!(
                            "id {i}: deadline request neither expired nor matched reference: {line}"
                        ));
                    }
                }
                Fault::Panic => {
                    report.injected_panics += 1;
                    if !has_error_kind(&line, "panic") {
                        report.violations.push(format!(
                            "id {i}: injected panic was not reported as one: {line}"
                        ));
                    }
                }
            }
        }
        id = upper;
    }

    // Counter coherence: the service's books must match what we saw.
    let counters = chaos_service.counters();
    if counters.panicked != report.injected_panics {
        report.violations.push(format!(
            "counters.panicked = {} but {} panics were injected",
            counters.panicked, report.injected_panics
        ));
    }
    if counters.cancelled != report.effective_cancels {
        report.violations.push(format!(
            "counters.cancelled = {} but {} cancellations bit",
            counters.cancelled, report.effective_cancels
        ));
    }
    if counters.deadline_expired != report.effective_deadlines {
        report.violations.push(format!(
            "counters.deadline_expired = {} but {} deadlines bit",
            counters.deadline_expired, report.effective_deadlines
        ));
    }

    // Cache coherence after the storm: panic isolation evicts the
    // poisoned entries, so a fresh sweep must recompile to bytes
    // identical to the fault-free service's.
    for (i, source) in pool.iter().enumerate() {
        let probe = |service: &Service| {
            service.call(Request {
                id: 1_000_000 + i as u64,
                verb: Verb::Analyze,
                source: source.clone(),
                depth: None,
                options: CompileOptions::new(),
                deadline_ms: None,
                target: None,
            })
        };
        match (probe(&chaos_service), probe(&reference_service)) {
            (Ok(chaos), Ok(reference)) => {
                report.coherence_probes += 1;
                if chaos.line != reference.line {
                    report.violations.push(format!(
                        "post-storm sweep diverged on source {i}:\n  chaos: {}\n  ref:   {}",
                        chaos.line, reference.line
                    ));
                }
            }
            (chaos, reference) => report.violations.push(format!(
                "post-storm sweep overloaded on source {i}: {chaos:?} / {reference:?}"
            )),
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_run_passes_and_injects_every_fault_kind() {
        let report = run_chaos(&ChaosConfig {
            seed: 0,
            requests: 80,
            workers: 4,
        });
        assert!(report.passed(), "{:#?}", report.violations);
        assert!(report.clean > 0);
        assert!(report.injected_cancels > 0);
        assert!(report.injected_deadlines > 0);
        assert!(report.injected_panics > 0);
        assert_eq!(report.coherence_probes, 8);
    }

    #[test]
    fn chaos_fault_plan_is_deterministic() {
        let a = run_chaos(&ChaosConfig::default());
        let b = run_chaos(&ChaosConfig::default());
        assert_eq!(a.injected_cancels, b.injected_cancels);
        assert_eq!(a.injected_deadlines, b.injected_deadlines);
        assert_eq!(a.injected_panics, b.injected_panics);
        assert!(a.passed() && b.passed());
    }
}
