//! Conformance fuzzing for the timed Petri-net loop-scheduling pipeline.
//!
//! The paper's claims are exact — the optimal computation rate is
//! `γ = min M(C)/Ω(C)` over simple cycles, the earliest-firing schedule
//! attains it, and storage minimisation must not move it — and the
//! codebase implements each claim along several independent paths
//! (enumeration, parametric search, simulation, trace replay, storage
//! rewriting).  This crate turns that redundancy into a test instrument:
//!
//! * [`gen`] — a seeded generator of live, safe SDSP loop bodies biased
//!   toward the hard regimes (multiple critical cycles, near-critical
//!   ties, long recurrence rings);
//! * [`oracle`] — the differential oracle stack cross-checking every
//!   path on every generated case, plus [`oracle::Mutation`] harnesses
//!   that prove the stack actually catches injected rate bugs;
//! * [`exec`] — the semantic execution oracle: emits VLIW programs from
//!   both scheduling engines, runs them on the verifying machine
//!   simulator, and demands bit-exact value agreement with the dataflow
//!   interpreter over seeded deterministic inputs, plus an exhaustive
//!   initiation-interval optimality cross-check on small nets;
//! * [`chaos`] — a deterministic fault-injection mode for the compile
//!   service, asserting byte-identity and cache coherence under
//!   cancellations, deadline expiries and worker panics.
//!
//! The `tpnc fuzz` subcommand is the command-line front door; failing
//! cases are dumped as replayable `.sdsp` A-code files.

pub mod chaos;
pub mod exec;
pub mod gen;
pub mod oracle;

pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use exec::{build_env, check_exec, env_seed, ExecConfig, ExecReport};
pub use gen::{generate, Shape};
pub use oracle::{check_mutated, check_sdsp, CaseReport, Mutation, MutationOutcome, OracleConfig};
