//! Property tests for the analytic fast path: on every fuzz-generated
//! live, safe marked graph — across all generator shapes — the three
//! independent rate computations must agree *exactly* (ℚ arithmetic, no
//! tolerance), and the simulation-free schedule must be as valid as the
//! simulated one:
//!
//! * `AnalyticSchedule::rate()` (simulation-free construction),
//! * `critical_ratio` (Lawler's parametric search),
//! * the frustum `RateReport` (earliest-firing simulation);
//!
//! and the analytic schedule's synthesized firing trace must replay
//! cleanly under `replay_trace` at that rate.

use proptest::prelude::*;
use tpn_conform::{generate, Shape};
use tpn_dataflow::to_petri::to_petri;
use tpn_petri::ratio::critical_ratio;
use tpn_sched::analytic::AnalyticSchedule;
use tpn_sched::frustum::detect_frustum_eager;
use tpn_sched::rate::RateReport;
use tpn_sched::validate::replay_trace;

const STEP_BUDGET: u64 = 400_000;

fn shape_of(index: usize) -> Shape {
    Shape::ALL[index % Shape::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Analytic rate == parametric critical ratio == frustum-measured
    /// rate, exactly, on every generated shape.
    #[test]
    fn analytic_rate_agrees_with_parametric_and_frustum(
        seed in 0u64..8,
        case in 0u64..12,
        shape_index in 0usize..5,
    ) {
        let shape = shape_of(shape_index);
        let sdsp = generate(seed, case, shape);
        let pn = to_petri(&sdsp);

        let param = critical_ratio(&pn.net, &pn.marking).expect("generated net is live");
        let analytic = AnalyticSchedule::for_sdsp_pn(&pn).expect("marked graph");
        prop_assert_eq!(
            analytic.rate(), param.rate,
            "{} seed {} case {}: analytic vs parametric", shape.as_str(), seed, case
        );
        prop_assert_eq!(
            analytic.cycle_time(), param.cycle_time,
            "{} seed {} case {}: cycle time", shape.as_str(), seed, case
        );

        let frustum = detect_frustum_eager(&pn.net, pn.marking.clone(), STEP_BUDGET)
            .expect("generated net reaches a frustum");
        let report = RateReport::for_sdsp_pn(&pn, &frustum).expect("rates");
        prop_assert_eq!(
            analytic.rate(), report.measured,
            "{} seed {} case {}: analytic vs frustum-measured", shape.as_str(), seed, case
        );
        prop_assert!(report.is_time_optimal());
    }

    /// The analytic schedule's synthesized trace replays cleanly — the
    /// event stream alone reconstructs a live, safe, rate-correct run.
    #[test]
    fn analytic_trace_replays_cleanly(
        seed in 8u64..14,
        case in 0u64..10,
        shape_index in 0usize..5,
    ) {
        let shape = shape_of(shape_index);
        let sdsp = generate(seed, case, shape);
        let pn = to_petri(&sdsp);

        let param = critical_ratio(&pn.net, &pn.marking).expect("generated net is live");
        let analytic = AnalyticSchedule::for_sdsp_pn(&pn).expect("marked graph");
        let trace = analytic.trace(&pn, 2);
        let validation = replay_trace(&pn.net, &pn.marking, &trace)
            .map_err(|e| TestCaseError::fail(format!(
                "{} seed {} case {}: replay failed: {e}", shape.as_str(), seed, case
            )))?;
        validation
            .confirm_rate(pn.net.transition_ids(), param.rate)
            .map_err(|e| TestCaseError::fail(format!(
                "{} seed {} case {}: rate not confirmed: {e}", shape.as_str(), seed, case
            )))?;
    }
}
