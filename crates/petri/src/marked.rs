//! Marked-graph structure theory (Appendix A.5 of the paper).
//!
//! A *marked graph* is a Petri net in which every place has exactly one
//! input and one output transition, so places behave like edges of a
//! directed multigraph over the transitions. The classical results of
//! Commoner, Holt, Even & Pnueli connect behavioural properties to cycle
//! structure:
//!
//! * **Theorem A.5.1** — a marking is live iff the token count of every
//!   simple cycle is positive ([`check_live`]).
//! * **Theorem A.5.2** — a live marking is safe iff every place lies on a
//!   simple cycle with token count 1 ([`check_safe`]).
//! * **Theorem A.5.3** — a cyclic firing sequence fires every transition
//!   equally often (checked behaviourally by the scheduling layer).
//!
//! Marked graphs are structurally persistent (each place has a single
//! consumer, so one firing can never disable another) and consistent (the
//! all-ones firing vector reproduces any marking).

use crate::cycles::transition_multigraph;
use crate::error::PetriError;
use crate::ids::{PlaceId, TransitionId};
use crate::marking::Marking;
use crate::net::PetriNet;

/// Checks liveness of `marking` for the marked graph `net`
/// (Theorem A.5.1): no simple cycle may be token-free.
///
/// # Errors
///
/// * [`PetriError::NotAMarkedGraph`] if `net` is not a marked graph.
/// * [`PetriError::NotLive`] with a witnessing token-free cycle otherwise.
///
/// # Example
///
/// ```
/// use tpn_petri::{PetriNet, Marking};
/// use tpn_petri::marked::check_live;
///
/// let mut net = PetriNet::new();
/// let a = net.add_transition("A", 1);
/// let b = net.add_transition("B", 1);
/// let fwd = net.add_place("fwd");
/// let ack = net.add_place("ack");
/// net.connect_tp(a, fwd);
/// net.connect_pt(fwd, b);
/// net.connect_tp(b, ack);
/// net.connect_pt(ack, a);
///
/// assert!(check_live(&net, &Marking::from_pairs(&net, [(ack, 1)])).is_ok());
/// assert!(check_live(&net, &Marking::empty(&net)).is_err());
/// ```
pub fn check_live(net: &PetriNet, marking: &Marking) -> Result<(), PetriError> {
    net.validate_marked_graph()?;
    // A token-free cycle exists iff the transition graph restricted to
    // empty places has a cycle; find one by DFS. The adjacency is CSR
    // (one flat array and offsets) — this check runs on every compile,
    // so per-node allocations would dominate it.
    let n = net.num_transitions();
    let mut start = vec![0usize; n + 1];
    for (pid, place) in net.places() {
        if marking.tokens(pid) == 0 {
            start[place.preset()[0].index() + 1] += 1;
        }
    }
    for v in 0..n {
        start[v + 1] += start[v];
    }
    let mut succ = vec![0usize; start[n]];
    let mut fill: Vec<usize> = start[..n].to_vec();
    for (pid, place) in net.places() {
        if marking.tokens(pid) == 0 {
            let from = place.preset()[0].index();
            succ[fill[from]] = place.postset()[0].index();
            fill[from] += 1;
        }
    }
    // Colours: 0 = white, 1 = on stack, 2 = done.
    let mut colour = vec![0u8; n];
    let mut parent_edge: Vec<usize> = vec![usize::MAX; n];
    for root in 0..n {
        if colour[root] != 0 {
            continue;
        }
        // Iterative DFS keeping the grey path so we can report the cycle.
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        colour[root] = 1;
        while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
            if start[v] + *ei < start[v + 1] {
                let w = succ[start[v] + *ei];
                *ei += 1;
                match colour[w] {
                    0 => {
                        colour[w] = 1;
                        parent_edge[w] = v;
                        stack.push((w, 0));
                    }
                    1 => {
                        // Found a token-free cycle w -> ... -> v -> w.
                        let mut cycle = vec![TransitionId::from_index(v)];
                        let mut cur = v;
                        while cur != w {
                            cur = parent_edge[cur];
                            cycle.push(TransitionId::from_index(cur));
                        }
                        cycle.reverse();
                        return Err(PetriError::NotLive { cycle });
                    }
                    _ => {}
                }
            } else {
                colour[v] = 2;
                stack.pop();
            }
        }
    }
    Ok(())
}

/// Checks safety of a **live** marking for the marked graph `net`
/// (Theorem A.5.2): every place must lie on a simple cycle with token
/// count 1.
///
/// # Errors
///
/// * Whatever [`check_live`] reports if the marking is not live (safety is
///   only meaningful for live markings).
/// * [`PetriError::NotSafe`] naming a place whose minimum token-count cycle
///   has more than one token, or that lies on no cycle at all.
pub fn check_safe(net: &PetriNet, marking: &Marking) -> Result<(), PetriError> {
    check_live(net, marking)?;
    let adj = transition_multigraph(net);
    for (pid, place) in net.places() {
        let producer = place.preset()[0].index();
        let consumer = place.postset()[0].index();
        // Minimum token-count path consumer -> producer closes the minimum
        // token-count simple cycle through this place.
        match min_token_distance(&adj, marking, consumer, producer) {
            Some(d) => {
                let min_cycle_tokens = d + marking.tokens(pid) as u64;
                if min_cycle_tokens != 1 {
                    return Err(PetriError::NotSafe { place: pid });
                }
            }
            None => return Err(PetriError::NotSafe { place: pid }),
        }
    }
    Ok(())
}

/// Convenience: checks both liveness and safety.
///
/// # Errors
///
/// Propagates the first failure from [`check_live`] / [`check_safe`].
pub fn check_live_safe(net: &PetriNet, marking: &Marking) -> Result<(), PetriError> {
    check_safe(net, marking)
}

/// Dijkstra over token counts (non-negative weights) in the transition
/// multigraph; returns the minimum token sum of a path `from -> to`, or
/// `None` if unreachable. A zero-length path has distance 0 only when
/// `from == to`.
fn min_token_distance(
    adj: &[Vec<(usize, PlaceId)>],
    marking: &Marking,
    from: usize,
    to: usize,
) -> Option<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = adj.len();
    let mut dist = vec![u64::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[from] = 0;
    heap.push(Reverse((0u64, from)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v] {
            continue;
        }
        if v == to {
            return Some(d);
        }
        for &(w, pid) in &adj[v] {
            let nd = d + marking.tokens(pid) as u64;
            if nd < dist[w] {
                dist[w] = nd;
                heap.push(Reverse((nd, w)));
            }
        }
    }
    if dist[to] == u64::MAX {
        None
    } else {
        Some(dist[to])
    }
}

/// Whether the integer assignment `weights` (one per transition) witnesses
/// consistency of the net (Appendix A.4): at every place, the weight of its
/// producers equals the weight of its consumers.
///
/// For a marked graph the all-ones vector is such a witness on every
/// weakly-connected net, which is why cyclic frustums fire each transition
/// equally often.
///
/// # Panics
///
/// Panics if `weights.len() != net.num_transitions()`.
pub fn is_consistent_with(net: &PetriNet, weights: &[u64]) -> bool {
    assert_eq!(
        weights.len(),
        net.num_transitions(),
        "one weight per transition"
    );
    if weights.contains(&0) {
        return false;
    }
    net.places().all(|(_, place)| {
        let inflow: u64 = place.preset().iter().map(|t| weights[t.index()]).sum();
        let outflow: u64 = place.postset().iter().map(|t| weights[t.index()]).sum();
        inflow == outflow
    })
}

/// The canonical consistency witness for a marked graph: the all-ones
/// firing vector.
///
/// # Errors
///
/// Returns [`PetriError::NotAMarkedGraph`] if `net` is not a marked graph.
pub fn marked_graph_consistency(net: &PetriNet) -> Result<Vec<u64>, PetriError> {
    net.validate_marked_graph()?;
    Ok(vec![1; net.num_transitions()])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The L2-like net: ring of 3 with one token, plus a 2-cycle.
    fn ring3(tokens_on: &[usize]) -> (PetriNet, Marking, Vec<PlaceId>) {
        let mut net = PetriNet::new();
        let t: Vec<_> = (0..3)
            .map(|i| net.add_transition(format!("t{i}"), 1))
            .collect();
        let mut ps = Vec::new();
        for i in 0..3 {
            let p = net.add_place(format!("p{i}"));
            net.connect_tp(t[i], p);
            net.connect_pt(p, t[(i + 1) % 3]);
            ps.push(p);
        }
        let mut m = Marking::empty(&net);
        for &i in tokens_on {
            m.add(ps[i], 1);
        }
        (net, m, ps)
    }

    #[test]
    fn live_iff_every_cycle_has_token() {
        let (net, m, _) = ring3(&[0]);
        assert!(check_live(&net, &m).is_ok());
        let (net, empty, _) = ring3(&[]);
        let err = check_live(&net, &empty).unwrap_err();
        match err {
            PetriError::NotLive { cycle } => assert_eq!(cycle.len(), 3),
            other => panic!("expected NotLive, got {other:?}"),
        }
    }

    #[test]
    fn safety_requires_token_count_exactly_one() {
        let (net, m, _) = ring3(&[0]);
        assert!(check_safe(&net, &m).is_ok());
        // Two tokens on the only cycle: live but places can hold 2 tokens.
        let (net, m2, _) = ring3(&[0, 1]);
        assert!(check_live(&net, &m2).is_ok());
        assert!(matches!(
            check_safe(&net, &m2),
            Err(PetriError::NotSafe { .. })
        ));
    }

    #[test]
    fn place_on_no_cycle_is_unsafe() {
        // a -> p -> b with no return path: live trivially has no cycles,
        // but p is on no cycle so the marking is not safe (p is unbounded
        // under repeated firing in larger contexts).
        let mut net = PetriNet::new();
        let a = net.add_transition("a", 1);
        let b = net.add_transition("b", 1);
        let p = net.add_place("p");
        net.connect_tp(a, p);
        net.connect_pt(p, b);
        let m = Marking::empty(&net);
        assert!(check_live(&net, &m).is_ok());
        assert_eq!(check_safe(&net, &m), Err(PetriError::NotSafe { place: p }));
    }

    #[test]
    fn self_loop_with_one_token_is_live_and_safe() {
        let mut net = PetriNet::new();
        let t = net.add_transition("t", 1);
        let p = net.add_place("self");
        net.connect_tp(t, p);
        net.connect_pt(p, t);
        let m = Marking::from_pairs(&net, [(p, 1)]);
        assert!(check_live_safe(&net, &m).is_ok());
        let empty = Marking::empty(&net);
        assert!(check_live(&net, &empty).is_err());
    }

    #[test]
    fn consistency_all_ones_for_marked_graph() {
        let (net, _, _) = ring3(&[0]);
        let w = marked_graph_consistency(&net).unwrap();
        assert!(is_consistent_with(&net, &w));
    }

    #[test]
    fn consistency_rejects_unbalanced_weights() {
        let (net, _, _) = ring3(&[0]);
        assert!(!is_consistent_with(&net, &[1, 2, 1]));
        assert!(!is_consistent_with(&net, &[0, 0, 0]));
        // Any uniform positive vector works for a connected marked graph.
        assert!(is_consistent_with(&net, &[4, 4, 4]));
    }

    #[test]
    fn liveness_on_multi_cycle_net_requires_all_cycles_marked() {
        // Ring of 3 plus a chord creating a 2-cycle t0 -> t1 -> t0.
        let (mut net, _, ps) = ring3(&[]);
        let chord = net.add_place("chord");
        net.connect_tp(TransitionId::from_index(1), chord);
        net.connect_pt(chord, TransitionId::from_index(0));
        // Token only on the ring: the 2-cycle t0 -p0-> t1 -chord-> t0 is
        // token-free unless p0 or chord carries a token.
        let m = Marking::from_pairs(&net, [(ps[1], 1)]);
        assert!(check_live(&net, &m).is_err());
        let m2 = Marking::from_pairs(&net, [(ps[1], 1), (chord, 1)]);
        assert!(check_live(&net, &m2).is_ok());
    }
}
