//! Firing-event capture: the [`TraceSink`] trait and a preallocated
//! ring-buffer recorder.
//!
//! The timed engine ([`crate::timed::Engine`]) can narrate its execution as
//! a stream of [`FiringEvent`]s — one per firing *start* and one per firing
//! *completion* — through any [`TraceSink`]. The sink is a monomorphized
//! type parameter with an associated `const ENABLED`, so the default
//! [`NullSink`] compiles to nothing: the untraced `start()`/`tick()` entry
//! points are byte-for-byte the pre-tracing engine.
//!
//! Each event carries the digest of the **marking alone** (no residuals,
//! no policy state; see [`crate::timed::marking_digest`]). Unlike the full
//! repetition digest, the marking changes only *at* events, so a consumer
//! holding nothing but the event stream can replay token movements and
//! verify every digest — the basis of the trace-replay validator in
//! `tpn-sched`.

use crate::ids::TransitionId;

/// Whether a [`FiringEvent`] marks the start or the completion of a firing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// The transition consumed its input tokens and became busy.
    Start,
    /// The transition's residual reached zero and it deposited its outputs.
    Complete,
}

/// One firing event observed by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FiringEvent {
    /// The instant at which the event happened.
    pub time: u64,
    /// The transition that started or completed.
    pub transition: TransitionId,
    /// Start or completion.
    pub kind: EventKind,
    /// The residual firing time immediately after the event: `τ` for a
    /// start, `0` for a completion.
    pub residual: u64,
    /// Digest of the marking immediately after the event's token movement
    /// (see [`crate::timed::marking_digest`]).
    pub marking_digest: u64,
}

/// A consumer of engine firing events.
///
/// Implementations should be cheap: `record` is called on the engine's hot
/// path once per start and once per completion. The associated
/// [`ENABLED`](TraceSink::ENABLED) constant lets the engine skip event
/// construction entirely when the sink provably discards everything —
/// guard work with `if S::ENABLED` and the branch folds away at
/// monomorphization time.
pub trait TraceSink {
    /// Whether this sink observes events at all. Sinks that set this to
    /// `false` never have [`record`](TraceSink::record) called.
    const ENABLED: bool = true;

    /// Receives one firing event.
    fn record(&mut self, event: FiringEvent);
}

/// The disabled sink: records nothing, costs nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: FiringEvent) {}
}

/// A bounded recorder keeping the **last** `capacity` events.
///
/// The buffer is allocated once up front (no growth on the hot path). When
/// more events arrive than fit, the oldest are overwritten and
/// [`dropped`](RingRecorder::dropped) counts them, so consumers can tell a
/// complete trace from a truncated one.
#[derive(Clone, Debug)]
pub struct RingRecorder {
    buf: Vec<FiringEvent>,
    capacity: usize,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl RingRecorder {
    /// Creates a recorder holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingRecorder {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Events recorded and still held, oldest first.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The fixed buffer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events that arrived after the buffer was full and overwrote older
    /// ones. Zero means the trace is complete.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events in arrival order (oldest first).
    pub fn events(&self) -> Vec<FiringEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Consumes the recorder, yielding the retained events in arrival
    /// order.
    pub fn into_events(mut self) -> Vec<FiringEvent> {
        self.buf.rotate_left(self.head);
        self.buf
    }
}

impl TraceSink for RingRecorder {
    #[inline]
    fn record(&mut self, event: FiringEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> FiringEvent {
        FiringEvent {
            time: i,
            transition: TransitionId::from_index(0),
            kind: EventKind::Start,
            residual: 1,
            marking_digest: i,
        }
    }

    #[test]
    fn ring_keeps_everything_under_capacity() {
        let mut r = RingRecorder::with_capacity(8);
        for i in 0..5 {
            r.record(ev(i));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let times: Vec<u64> = r.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.into_events().len(), 5);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut r = RingRecorder::with_capacity(4);
        for i in 0..10 {
            r.record(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let times: Vec<u64> = r.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![6, 7, 8, 9]);
        let times: Vec<u64> = r.into_events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![6, 7, 8, 9]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = RingRecorder::with_capacity(0);
        assert_eq!(r.capacity(), 1);
        r.record(ev(0));
        r.record(ev(1));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.events()[0].time, 1);
    }

    #[test]
    fn null_sink_is_disabled() {
        const { assert!(!NullSink::ENABLED) };
        const { assert!(RingRecorder::ENABLED) };
        NullSink.record(ev(0)); // no-op, must not panic
    }
}
