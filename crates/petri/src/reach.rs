//! Explicit reachability exploration for bounded nets (Appendix A.2–A.3).
//!
//! The structural theorems of [`crate::marked`] are fast but only apply to
//! marked graphs; this module provides the *behavioural* definitions of
//! liveness, boundedness, safety and persistence by exhaustively exploring
//! the forward marking class `R(M₀)`. It is intended for small nets — the
//! exploration takes an explicit state limit — and is used throughout the
//! test suites to cross-validate the structural characterisations.

use std::collections::HashMap;

use crate::error::PetriError;
use crate::ids::TransitionId;
use crate::marking::Marking;
use crate::net::PetriNet;

/// The reachability graph of a bounded net: every reachable marking and
/// every firing between them.
#[derive(Clone, Debug)]
pub struct ReachabilityGraph {
    markings: Vec<Marking>,
    /// `(source marking index, fired transition, target marking index)`.
    edges: Vec<(usize, TransitionId, usize)>,
}

impl ReachabilityGraph {
    /// All distinct reachable markings; index 0 is the initial marking.
    pub fn markings(&self) -> &[Marking] {
        &self.markings
    }

    /// All firings `(from, t, to)` between reachable markings.
    pub fn edges(&self) -> &[(usize, TransitionId, usize)] {
        &self.edges
    }

    /// Number of reachable markings.
    pub fn len(&self) -> usize {
        self.markings.len()
    }

    /// A reachability graph always contains at least the initial marking.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Behavioural liveness: from every reachable marking, every transition
    /// can eventually fire (Appendix A.3).
    pub fn is_live(&self, net: &PetriNet) -> bool {
        // For each transition t: the set of markings from which t is
        // eventually fireable is the backward closure of the sources of
        // t-edges. Live iff that closure covers all markings, for every t.
        let mut pred: Vec<Vec<usize>> = vec![Vec::new(); self.markings.len()];
        for &(from, _, to) in &self.edges {
            pred[to].push(from);
        }
        for t in net.transition_ids() {
            let mut can = vec![false; self.markings.len()];
            let mut work: Vec<usize> = self
                .edges
                .iter()
                .filter(|&&(_, tt, _)| tt == t)
                .map(|&(from, _, _)| from)
                .collect();
            for &w in &work {
                can[w] = true;
            }
            while let Some(m) = work.pop() {
                for &p in &pred[m] {
                    if !can[p] {
                        can[p] = true;
                        work.push(p);
                    }
                }
            }
            if !can.iter().all(|&c| c) {
                return false;
            }
        }
        true
    }

    /// Behavioural boundedness: no reachable marking puts more than `k`
    /// tokens on any place.
    pub fn is_bounded_by(&self, k: u32) -> bool {
        self.markings
            .iter()
            .all(|m| m.marked_places().all(|(_, n)| n <= k))
    }

    /// Behavioural safety: 1-boundedness.
    pub fn is_safe(&self) -> bool {
        self.is_bounded_by(1)
    }

    /// Behavioural persistence: whenever two distinct transitions are both
    /// enabled, firing one leaves the other enabled (Appendix A.3).
    pub fn is_persistent(&self, net: &PetriNet) -> bool {
        for m in &self.markings {
            let enabled = m.enabled_transitions(net);
            for &t1 in &enabled {
                for &t2 in &enabled {
                    if t1 == t2 {
                        continue;
                    }
                    let mut after = m.clone();
                    after.fire(net, t1);
                    if !after.enables(net, t2) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Explores the forward marking class of `initial`, visiting at most
/// `limit` distinct markings.
///
/// # Errors
///
/// Returns [`PetriError::StateSpaceTooLarge`] if more than `limit` markings
/// are reachable (the net may be unbounded).
///
/// # Example
///
/// ```
/// use tpn_petri::{PetriNet, Marking};
/// use tpn_petri::reach::explore;
///
/// let mut net = PetriNet::new();
/// let a = net.add_transition("A", 1);
/// let b = net.add_transition("B", 1);
/// let fwd = net.add_place("fwd");
/// let ack = net.add_place("ack");
/// net.connect_tp(a, fwd);
/// net.connect_pt(fwd, b);
/// net.connect_tp(b, ack);
/// net.connect_pt(ack, a);
///
/// let graph = explore(&net, Marking::from_pairs(&net, [(ack, 1)]), 100)?;
/// assert_eq!(graph.len(), 2); // token on ack / token on fwd
/// assert!(graph.is_live(&net));
/// assert!(graph.is_safe());
/// assert!(graph.is_persistent(&net));
/// # Ok::<(), tpn_petri::PetriError>(())
/// ```
pub fn explore(
    net: &PetriNet,
    initial: Marking,
    limit: usize,
) -> Result<ReachabilityGraph, PetriError> {
    let mut index: HashMap<Marking, usize> = HashMap::new();
    let mut markings = vec![initial.clone()];
    index.insert(initial, 0);
    let mut edges = Vec::new();
    let mut frontier = vec![0usize];
    while let Some(mi) = frontier.pop() {
        let marking = markings[mi].clone();
        for t in marking.enabled_transitions(net) {
            let mut next = marking.clone();
            next.fire(net, t);
            let ni = match index.get(&next) {
                Some(&i) => i,
                None => {
                    if markings.len() >= limit {
                        return Err(PetriError::StateSpaceTooLarge { limit });
                    }
                    let i = markings.len();
                    markings.push(next.clone());
                    index.insert(next, i);
                    frontier.push(i);
                    i
                }
            };
            edges.push((mi, t, ni));
        }
    }
    Ok(ReachabilityGraph { markings, edges })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring3(tokens: &[u32; 3]) -> (PetriNet, Marking) {
        let mut net = PetriNet::new();
        let ts: Vec<_> = (0..3)
            .map(|i| net.add_transition(format!("t{i}"), 1))
            .collect();
        let mut pairs = Vec::new();
        for i in 0..3 {
            let p = net.add_place(format!("p{i}"));
            net.connect_tp(ts[i], p);
            net.connect_pt(p, ts[(i + 1) % 3]);
            pairs.push((p, tokens[i]));
        }
        let m = Marking::from_pairs(&net, pairs);
        (net, m)
    }

    #[test]
    fn ring_reachability_counts() {
        let (net, m) = ring3(&[1, 0, 0]);
        let g = explore(&net, m, 100).unwrap();
        // The token travels around: 3 states.
        assert_eq!(g.len(), 3);
        assert_eq!(g.edges().len(), 3);
        assert!(g.is_live(&net));
        assert!(g.is_safe());
        assert!(g.is_persistent(&net));
    }

    #[test]
    fn dead_ring_is_not_live() {
        let (net, _) = ring3(&[1, 0, 0]);
        let g = explore(&net, Marking::empty(&net), 100).unwrap();
        assert_eq!(g.len(), 1);
        assert!(!g.is_live(&net));
    }

    #[test]
    fn two_tokens_not_safe_but_bounded() {
        let (net, m) = ring3(&[1, 1, 0]);
        let g = explore(&net, m, 100).unwrap();
        assert!(g.is_live(&net));
        assert!(!g.is_safe());
        assert!(g.is_bounded_by(2));
    }

    #[test]
    fn unbounded_net_hits_limit() {
        // A source transition with no inputs produces without bound.
        let mut net = PetriNet::new();
        let t = net.add_transition("src", 1);
        let p = net.add_place("sink");
        net.connect_tp(t, p);
        assert!(matches!(
            explore(&net, Marking::empty(&net), 10),
            Err(PetriError::StateSpaceTooLarge { limit: 10 })
        ));
    }

    #[test]
    fn conflict_net_is_not_persistent() {
        // One token, two competing consumers: firing one disables the
        // other.
        let mut net = PetriNet::new();
        let a = net.add_transition("a", 1);
        let b = net.add_transition("b", 1);
        let shared = net.add_place("shared");
        let ra = net.add_place("ra");
        let rb = net.add_place("rb");
        net.connect_pt(shared, a);
        net.connect_pt(shared, b);
        net.connect_tp(a, ra);
        net.connect_tp(b, rb);
        let m = Marking::from_pairs(&net, [(shared, 1)]);
        let g = explore(&net, m, 100).unwrap();
        assert_eq!(g.len(), 3);
        assert!(!g.is_persistent(&net));
    }
}
