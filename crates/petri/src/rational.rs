//! A small exact rational type for cycle times and computation rates.
//!
//! The quantities of interest in the paper — cycle times `Ω(C)/M(C)` and
//! computation rates `M(C)/Ω(C)` — are ratios of small integers, so we carry
//! them exactly rather than as floats. The type is deliberately minimal: it
//! supports exactly the operations the analyses need.

use std::cmp::Ordering;
use std::fmt;

/// An exact non-negative rational number in lowest terms.
///
/// ```
/// use tpn_petri::Ratio;
/// let a = Ratio::new(4, 6);
/// assert_eq!(a, Ratio::new(2, 3));
/// assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
/// assert_eq!(a.to_string(), "2/3");
/// assert_eq!(Ratio::new(6, 3).to_string(), "2");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Ratio {
    num: u64,
    den: u64,
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

impl Ratio {
    /// The rational number zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates `num / den` reduced to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den != 0, "denominator must be nonzero");
        let g = gcd(num, den);
        Ratio {
            num: num / g,
            den: den / g,
        }
    }

    /// Creates the integer `n` as a rational.
    pub const fn from_integer(n: u64) -> Self {
        Ratio { num: n, den: 1 }
    }

    /// Numerator in lowest terms.
    pub fn numer(self) -> u64 {
        self.num
    }

    /// Denominator in lowest terms (always nonzero).
    pub fn denom(self) -> u64 {
        self.den
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn recip(self) -> Self {
        assert!(self.num != 0, "cannot invert zero");
        Ratio {
            num: self.den,
            den: self.num,
        }
    }

    /// The value as an `f64`, for reporting only.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Checked addition.
    pub fn checked_add(self, other: Ratio) -> Option<Ratio> {
        let num = (self.num as u128)
            .checked_mul(other.den as u128)?
            .checked_add((other.num as u128).checked_mul(self.den as u128)?)?;
        let den = (self.den as u128).checked_mul(other.den as u128)?;
        let g = gcd128(num, den);
        Some(Ratio {
            num: u64::try_from(num / g).ok()?,
            den: u64::try_from(den / g).ok()?,
        })
    }

    /// Checked subtraction: `None` when `other > self` (the type is
    /// non-negative) or the reduced difference overflows `u64`.
    pub fn checked_sub(self, other: Ratio) -> Option<Ratio> {
        let lhs = (self.num as u128).checked_mul(other.den as u128)?;
        let rhs = (other.num as u128).checked_mul(self.den as u128)?;
        let num = lhs.checked_sub(rhs)?;
        let den = (self.den as u128).checked_mul(other.den as u128)?;
        let g = gcd128(num, den);
        Some(Ratio {
            num: u64::try_from(num / g).ok()?,
            den: u64::try_from(den / g).ok()?,
        })
    }

    /// Checked multiplication.
    pub fn checked_mul(self, other: Ratio) -> Option<Ratio> {
        let num = (self.num as u128).checked_mul(other.num as u128)?;
        let den = (self.den as u128).checked_mul(other.den as u128)?;
        let g = gcd128(num, den);
        Some(Ratio {
            num: u64::try_from(num / g).ok()?,
            den: u64::try_from(den / g).ok()?,
        })
    }

    /// Whether `self` equals the integer `n`.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }
}

fn gcd128(mut a: u128, mut b: u128) -> u128 {
    if a == 0 && b == 0 {
        return 1;
    }
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    if a == 0 {
        1
    } else {
        a
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        let lhs = (self.num as u128) * (other.den as u128);
        let rhs = (other.num as u128) * (self.den as u128);
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<u64> for Ratio {
    fn from(n: u64) -> Self {
        Ratio::from_integer(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_lowest_terms() {
        let r = Ratio::new(12, 8);
        assert_eq!(r.numer(), 3);
        assert_eq!(r.denom(), 2);
    }

    #[test]
    fn zero_numerator_normalises() {
        let r = Ratio::new(0, 17);
        assert_eq!(r, Ratio::ZERO);
        assert_eq!(r.denom(), 1);
    }

    #[test]
    #[should_panic(expected = "denominator must be nonzero")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn ordering_cross_multiplies() {
        assert!(Ratio::new(1, 3) < Ratio::new(2, 5));
        assert!(Ratio::new(7, 2) > Ratio::new(10, 3));
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
    }

    #[test]
    fn recip_swaps() {
        assert_eq!(Ratio::new(3, 7).recip(), Ratio::new(7, 3));
    }

    #[test]
    #[should_panic(expected = "cannot invert zero")]
    fn recip_zero_panics() {
        let _ = Ratio::ZERO.recip();
    }

    #[test]
    fn arithmetic() {
        let a = Ratio::new(1, 2);
        let b = Ratio::new(1, 3);
        assert_eq!(a.checked_add(b).unwrap(), Ratio::new(5, 6));
        assert_eq!(a.checked_mul(b).unwrap(), Ratio::new(1, 6));
        assert_eq!(a.checked_sub(b).unwrap(), Ratio::new(1, 6));
        assert_eq!(a.checked_sub(a).unwrap(), Ratio::ZERO);
        // Negative results are unrepresentable: None, not a wrap.
        assert_eq!(b.checked_sub(a), None);
    }

    #[test]
    fn display_integers_without_denominator() {
        assert_eq!(Ratio::new(4, 2).to_string(), "2");
        assert_eq!(Ratio::new(1, 2).to_string(), "1/2");
        assert_eq!(Ratio::ZERO.to_string(), "0");
    }

    #[test]
    fn to_f64_matches() {
        assert!((Ratio::new(1, 4).to_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn from_integer_conversion() {
        let r: Ratio = 5u64.into();
        assert!(r.is_integer());
        assert_eq!(r, Ratio::new(5, 1));
    }

    #[test]
    fn checked_ops_survive_large_operands() {
        // Large but representable: u128 intermediates reduce back to u64.
        let big = Ratio::new(u64::MAX / 2, 3);
        assert!(big.checked_add(Ratio::new(1, 3)).is_some());
        assert!(big.checked_mul(Ratio::new(3, u64::MAX / 2)).is_some());
        // Unreducible overflow reports None instead of wrapping.
        let huge = Ratio::new(u64::MAX, 1);
        assert_eq!(huge.checked_mul(huge), None);
        assert_eq!(huge.checked_add(Ratio::new(1, 3)), None);
    }

    #[test]
    fn ordering_is_total_on_extremes() {
        let max = Ratio::new(u64::MAX, 1);
        let min = Ratio::new(1, u64::MAX);
        assert!(min < Ratio::ONE);
        assert!(Ratio::ONE < max);
        assert!(Ratio::ZERO < min);
        assert_eq!(max.cmp(&max), std::cmp::Ordering::Equal);
    }
}
