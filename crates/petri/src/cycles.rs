//! Enumeration of simple cycles in marked graphs (Johnson's algorithm).
//!
//! In a marked graph every place has exactly one producer and one consumer,
//! so places act as *edges* of a directed multigraph over the transitions.
//! Simple cycles of that multigraph are exactly the simple cycles used by
//! the paper's analyses: the token sum `M(C)` and value (execution-time) sum
//! `Ω(C)` of a cycle determine the cycle time `Ω(C)/M(C)` (Appendix A.7).
//!
//! Cycle counts can be exponential in the worst case (the paper cites
//! Magott's observation to this effect), so enumeration takes an explicit
//! `limit` and fails with [`PetriError::TooManyCycles`] rather than
//! diverging; the parametric search in [`crate::ratio`] covers nets too
//! large to enumerate.

use crate::error::PetriError;
use crate::ids::{PlaceId, TransitionId};
use crate::marking::Marking;
use crate::net::PetriNet;

/// A simple cycle through transitions and places of a marked graph.
///
/// `places[i]` is the place (edge) from `transitions[i]` to
/// `transitions[(i + 1) % len]`. Both vectors always have the same, nonzero
/// length. A self-loop place yields a cycle of length 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cycle {
    transitions: Vec<TransitionId>,
    places: Vec<PlaceId>,
}

impl Cycle {
    /// Builds a cycle from parallel transition/place lists.
    ///
    /// # Panics
    ///
    /// Panics if the lists are empty or of different lengths.
    pub fn new(transitions: Vec<TransitionId>, places: Vec<PlaceId>) -> Self {
        assert!(
            !transitions.is_empty(),
            "a cycle has at least one transition"
        );
        assert_eq!(
            transitions.len(),
            places.len(),
            "a cycle alternates transitions and places"
        );
        Cycle {
            transitions,
            places,
        }
    }

    /// The transitions along the cycle, in order.
    pub fn transitions(&self) -> &[TransitionId] {
        &self.transitions
    }

    /// The places along the cycle; `places()[i]` connects `transitions()[i]`
    /// to the next transition.
    pub fn places(&self) -> &[PlaceId] {
        &self.places
    }

    /// Number of transitions (equivalently places) on the cycle.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Cycles are never empty; this always returns `false`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Token sum `M(C)`: tokens of `marking` on the cycle's places.
    pub fn token_sum(&self, marking: &Marking) -> u64 {
        self.places.iter().map(|&p| marking.tokens(p) as u64).sum()
    }

    /// Value sum `Ω(C)`: total execution time of the cycle's transitions.
    pub fn time_sum(&self, net: &PetriNet) -> u64 {
        self.transitions
            .iter()
            .map(|&t| net.transition(t).time())
            .sum()
    }

    /// Canonical rotation: the cycle rotated so the smallest transition id
    /// comes first. Useful for comparing cycles found by different
    /// algorithms.
    pub fn canonicalize(&self) -> Cycle {
        let pivot = self
            .transitions
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .expect("cycles are nonempty");
        let n = self.len();
        let transitions = (0..n).map(|i| self.transitions[(pivot + i) % n]).collect();
        let places = (0..n).map(|i| self.places[(pivot + i) % n]).collect();
        Cycle {
            transitions,
            places,
        }
    }
}

/// Adjacency representation of the transition multigraph of a marked graph.
pub(crate) fn transition_multigraph(net: &PetriNet) -> Vec<Vec<(usize, PlaceId)>> {
    let mut adj = vec![Vec::new(); net.num_transitions()];
    for (pid, place) in net.places() {
        // Marked graph: exactly one producer and one consumer.
        let from = place.preset()[0].index();
        let to = place.postset()[0].index();
        adj[from].push((to, pid));
    }
    adj
}

/// Enumerates all simple cycles of a marked graph, up to `limit`.
///
/// # Errors
///
/// * [`PetriError::NotAMarkedGraph`] if some place is not a single-producer,
///   single-consumer edge.
/// * [`PetriError::TooManyCycles`] if more than `limit` cycles exist.
///
/// # Example
///
/// ```
/// use tpn_petri::PetriNet;
/// use tpn_petri::cycles::simple_cycles;
///
/// let mut net = PetriNet::new();
/// let a = net.add_transition("A", 1);
/// let b = net.add_transition("B", 1);
/// let fwd = net.add_place("fwd");
/// let ack = net.add_place("ack");
/// net.connect_tp(a, fwd);
/// net.connect_pt(fwd, b);
/// net.connect_tp(b, ack);
/// net.connect_pt(ack, a);
///
/// let cycles = simple_cycles(&net, 16)?;
/// assert_eq!(cycles.len(), 1);
/// assert_eq!(cycles[0].len(), 2);
/// # Ok::<(), tpn_petri::PetriError>(())
/// ```
pub fn simple_cycles(net: &PetriNet, limit: usize) -> Result<Vec<Cycle>, PetriError> {
    net.validate_marked_graph()?;
    let adj = transition_multigraph(net);
    let mut enumerator = Johnson::new(&adj, limit);
    enumerator.run()?;
    Ok(enumerator.cycles)
}

/// Johnson's simple-cycle enumeration, adapted to multigraphs.
struct Johnson<'a> {
    adj: &'a [Vec<(usize, PlaceId)>],
    limit: usize,
    cycles: Vec<Cycle>,
    blocked: Vec<bool>,
    block_lists: Vec<Vec<usize>>,
    /// Vertices on the current DFS path (starting at `start`).
    path: Vec<usize>,
    /// `path_edges[i]` connects `path[i]` to `path[i + 1]`; one shorter than
    /// `path` during the search.
    path_edges: Vec<PlaceId>,
    start: usize,
    /// Vertices allowed in the current round (the SCC under exploration).
    allowed: Vec<bool>,
}

impl<'a> Johnson<'a> {
    fn new(adj: &'a [Vec<(usize, PlaceId)>], limit: usize) -> Self {
        let n = adj.len();
        Johnson {
            adj,
            limit,
            cycles: Vec::new(),
            blocked: vec![false; n],
            block_lists: vec![Vec::new(); n],
            path: Vec::new(),
            path_edges: Vec::new(),
            start: 0,
            allowed: vec![false; n],
        }
    }

    fn run(&mut self) -> Result<(), PetriError> {
        let n = self.adj.len();
        let mut s = 0;
        while s < n {
            // SCCs of the subgraph induced by vertices >= s.
            let sccs = sccs_at_least(self.adj, s);
            // The SCC containing the least vertex >= s that can carry a
            // cycle (size > 1, or a self-loop edge).
            let candidate = sccs
                .into_iter()
                .filter(|scc| {
                    scc.len() > 1
                        || scc
                            .iter()
                            .any(|&v| self.adj[v].iter().any(|&(w, _)| w == v))
                })
                .min_by_key(|scc| *scc.iter().min().expect("nonempty scc"));
            let Some(scc) = candidate else { break };
            let least = *scc.iter().min().expect("nonempty scc");
            self.allowed.iter_mut().for_each(|a| *a = false);
            for &v in &scc {
                self.allowed[v] = true;
            }
            for &v in &scc {
                self.blocked[v] = false;
                self.block_lists[v].clear();
            }
            self.start = least;
            self.circuit(least)?;
            s = least + 1;
        }
        Ok(())
    }

    fn unblock(&mut self, v0: usize) {
        let mut work = vec![v0];
        while let Some(v) = work.pop() {
            self.blocked[v] = false;
            let list = std::mem::take(&mut self.block_lists[v]);
            for w in list {
                if self.blocked[w] {
                    work.push(w);
                }
            }
        }
    }

    /// Iterative version of Johnson's `CIRCUIT` procedure (explicit frames
    /// to stay within thread stack limits on long cycles).
    fn circuit(&mut self, root: usize) -> Result<(), PetriError> {
        struct Frame {
            v: usize,
            edge_idx: usize,
            found: bool,
        }
        let mut frames = Vec::new();
        self.path.push(root);
        self.blocked[root] = true;
        frames.push(Frame {
            v: root,
            edge_idx: 0,
            found: false,
        });
        while let Some(frame) = frames.last_mut() {
            let v = frame.v;
            if frame.edge_idx < self.adj[v].len() {
                let (w, edge) = self.adj[v][frame.edge_idx];
                frame.edge_idx += 1;
                if !self.allowed[w] || w < self.start {
                    continue;
                }
                if w == self.start {
                    // Close the cycle through `edge`.
                    frame.found = true;
                    let transitions = self
                        .path
                        .iter()
                        .map(|&u| TransitionId::from_index(u))
                        .collect::<Vec<_>>();
                    let mut places = self.path_edges.clone();
                    places.push(edge);
                    self.cycles.push(Cycle::new(transitions, places));
                    if self.cycles.len() > self.limit {
                        return Err(PetriError::TooManyCycles { limit: self.limit });
                    }
                } else if !self.blocked[w] {
                    self.path_edges.push(edge);
                    self.path.push(w);
                    self.blocked[w] = true;
                    frames.push(Frame {
                        v: w,
                        edge_idx: 0,
                        found: false,
                    });
                }
            } else {
                let found = frame.found;
                if found {
                    self.unblock(v);
                } else {
                    for i in 0..self.adj[v].len() {
                        let (w, _) = self.adj[v][i];
                        if !self.allowed[w] || w < self.start {
                            continue;
                        }
                        if !self.block_lists[w].contains(&v) {
                            self.block_lists[w].push(v);
                        }
                    }
                }
                frames.pop();
                self.path.pop();
                if let Some(parent) = frames.last_mut() {
                    parent.found |= found;
                    self.path_edges.pop();
                }
            }
        }
        Ok(())
    }
}

/// Tarjan SCCs of the subgraph induced by vertices `>= s`.
fn sccs_at_least(adj: &[Vec<(usize, PlaceId)>], s: usize) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next_index = 0usize;
    let mut sccs = Vec::new();

    // Iterative Tarjan to avoid deep recursion on long chains.
    enum Frame {
        Enter(usize),
        Resume(usize, usize),
    }
    for root in s..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut frames = vec![Frame::Enter(root)];
        while let Some(frame) = frames.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    frames.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut ei) => {
                    let mut descended = false;
                    while ei < adj[v].len() {
                        let (w, _) = adj[v][ei];
                        ei += 1;
                        if w < s {
                            continue;
                        }
                        if index[w] == usize::MAX {
                            frames.push(Frame::Resume(v, ei));
                            frames.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            lowlink[v] = lowlink[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if lowlink[v] == index[v] {
                        let mut scc = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        sccs.push(scc);
                    }
                    // Propagate lowlink to parent.
                    if let Some(Frame::Resume(parent, _)) = frames.last() {
                        let parent = *parent;
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// fwd/ack two-cycle.
    fn two_cycle_net() -> (PetriNet, Marking) {
        let mut net = PetriNet::new();
        let a = net.add_transition("A", 1);
        let b = net.add_transition("B", 1);
        let fwd = net.add_place("fwd");
        let ack = net.add_place("ack");
        net.connect_tp(a, fwd);
        net.connect_pt(fwd, b);
        net.connect_tp(b, ack);
        net.connect_pt(ack, a);
        let m = Marking::from_pairs(&net, [(ack, 1)]);
        (net, m)
    }

    #[test]
    fn finds_single_two_cycle() {
        let (net, m) = two_cycle_net();
        let cycles = simple_cycles(&net, 16).unwrap();
        assert_eq!(cycles.len(), 1);
        let c = &cycles[0];
        assert_eq!(c.len(), 2);
        assert_eq!(c.token_sum(&m), 1);
        assert_eq!(c.time_sum(&net), 2);
    }

    /// Three transitions in a ring plus a chord, giving two simple cycles.
    #[test]
    fn finds_ring_and_chord_cycles() {
        let mut net = PetriNet::new();
        let t: Vec<_> = (0..3)
            .map(|i| net.add_transition(format!("t{i}"), 1))
            .collect();
        // ring 0 -> 1 -> 2 -> 0
        for i in 0..3 {
            let p = net.add_place(format!("ring{i}"));
            net.connect_tp(t[i], p);
            net.connect_pt(p, t[(i + 1) % 3]);
        }
        // chord 1 -> 0
        let chord = net.add_place("chord");
        net.connect_tp(t[1], chord);
        net.connect_pt(chord, t[0]);
        let cycles = simple_cycles(&net, 16).unwrap();
        assert_eq!(cycles.len(), 2);
        let mut lens: Vec<_> = cycles.iter().map(Cycle::len).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![2, 3]);
    }

    #[test]
    fn multigraph_parallel_places_count_as_distinct_cycles() {
        let mut net = PetriNet::new();
        let a = net.add_transition("A", 1);
        let b = net.add_transition("B", 1);
        for name in ["f1", "f2"] {
            let p = net.add_place(name);
            net.connect_tp(a, p);
            net.connect_pt(p, b);
        }
        let back = net.add_place("back");
        net.connect_tp(b, back);
        net.connect_pt(back, a);
        let cycles = simple_cycles(&net, 16).unwrap();
        // Two cycles: A -f1-> B -back-> A and A -f2-> B -back-> A.
        assert_eq!(cycles.len(), 2);
    }

    #[test]
    fn self_loop_place_is_a_cycle_of_length_one() {
        let mut net = PetriNet::new();
        let t = net.add_transition("T", 3);
        let p = net.add_place("self");
        net.connect_tp(t, p);
        net.connect_pt(p, t);
        let cycles = simple_cycles(&net, 16).unwrap();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 1);
        assert_eq!(cycles[0].time_sum(&net), 3);
    }

    #[test]
    fn acyclic_net_has_no_cycles() {
        let mut net = PetriNet::new();
        let a = net.add_transition("A", 1);
        let b = net.add_transition("B", 1);
        let p = net.add_place("p");
        net.connect_tp(a, p);
        net.connect_pt(p, b);
        let cycles = simple_cycles(&net, 16).unwrap();
        assert!(cycles.is_empty());
    }

    #[test]
    fn limit_is_enforced() {
        // Complete bidirectional triangle has 5 simple cycles (3 two-cycles
        // + 2 three-cycles).
        let mut net = PetriNet::new();
        let t: Vec<_> = (0..3)
            .map(|i| net.add_transition(format!("t{i}"), 1))
            .collect();
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    let p = net.add_place(format!("p{i}{j}"));
                    net.connect_tp(t[i], p);
                    net.connect_pt(p, t[j]);
                }
            }
        }
        let all = simple_cycles(&net, 100).unwrap();
        assert_eq!(all.len(), 5);
        assert_eq!(
            simple_cycles(&net, 3),
            Err(PetriError::TooManyCycles { limit: 3 })
        );
    }

    #[test]
    fn rejects_non_marked_graph() {
        let mut net = PetriNet::new();
        let a = net.add_transition("A", 1);
        let p = net.add_place("dangling");
        net.connect_tp(a, p);
        assert!(matches!(
            simple_cycles(&net, 16),
            Err(PetriError::NotAMarkedGraph { .. })
        ));
    }

    #[test]
    fn canonicalize_rotates_to_least_transition() {
        let (net, _) = two_cycle_net();
        let cycles = simple_cycles(&net, 16).unwrap();
        let c = cycles[0].canonicalize();
        assert_eq!(c.transitions()[0], TransitionId::from_index(0));
        // Rotating a canonical cycle is a no-op.
        assert_eq!(c.canonicalize(), c);
        let _ = &net;
    }

    #[test]
    fn long_chain_does_not_overflow_stack() {
        // A long cycle of 5000 transitions exercises the iterative Tarjan.
        let mut net = PetriNet::new();
        let n = 5000;
        let ts: Vec<_> = (0..n)
            .map(|i| net.add_transition(format!("t{i}"), 1))
            .collect();
        for i in 0..n {
            let p = net.add_place(format!("p{i}"));
            net.connect_tp(ts[i], p);
            net.connect_pt(p, ts[(i + 1) % n]);
        }
        let cycles = simple_cycles(&net, 10).unwrap();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), n);
    }
}
