//! Place and transition invariants via the incidence matrix.
//!
//! The incidence matrix `C` of a net has one row per place and one column
//! per transition, with `C[p][t] = (tokens t deposits on p) − (tokens t
//! removes from p)`. Two classical invariant notions follow:
//!
//! * a **T-invariant** is a column-space annulator `x ≥ 0` with `C·x = 0`:
//!   firing each transition `x[t]` times reproduces the marking. A net
//!   with a strictly positive T-invariant is *consistent* (Appendix A.4 of
//!   the paper); for connected marked graphs the all-ones vector works,
//!   which is why a cyclic frustum fires every transition equally often.
//! * an **S-invariant** is a row-space annulator `y ≥ 0` with `yᵀ·C = 0`:
//!   the weighted token sum `Σ y[p]·M(p)` is conserved by every firing.
//!   In a marked graph every simple cycle's places form an S-invariant —
//!   the token-count-invariance of cycles that underlies the whole
//!   cycle-time theory.
//!
//! Invariants are computed exactly over the rationals (fraction-free
//! Gaussian elimination on `i128`), returning integer basis vectors.

use crate::cycles::Cycle;
use crate::ids::{PlaceId, TransitionId};
use crate::net::PetriNet;

/// The incidence matrix as dense `i64` rows (place-major).
///
/// # Example
///
/// ```
/// use tpn_petri::PetriNet;
/// use tpn_petri::invariants::incidence_matrix;
///
/// let mut net = PetriNet::new();
/// let t = net.add_transition("t", 1);
/// let p = net.add_place("p");
/// let q = net.add_place("q");
/// net.connect_pt(p, t);
/// net.connect_tp(t, q);
/// let c = incidence_matrix(&net);
/// assert_eq!(c, vec![vec![-1], vec![1]]);
/// ```
pub fn incidence_matrix(net: &PetriNet) -> Vec<Vec<i64>> {
    let mut c = vec![vec![0i64; net.num_transitions()]; net.num_places()];
    for (tid, t) in net.transitions() {
        for &p in t.outputs() {
            c[p.index()][tid.index()] += 1;
        }
        for &p in t.inputs() {
            c[p.index()][tid.index()] -= 1;
        }
    }
    c
}

/// An integer basis of the right nullspace of `matrix` (vectors `x` with
/// `matrix · x = 0`), computed by fraction-free Gaussian elimination.
/// Each basis vector is scaled to integers with positive leading free
/// variable and reduced by its gcd.
pub fn integer_nullspace(matrix: &[Vec<i64>]) -> Vec<Vec<i64>> {
    let rows = matrix.len();
    let cols = if rows == 0 { 0 } else { matrix[0].len() };
    if cols == 0 {
        return Vec::new();
    }
    // Row-reduce a working copy over i128.
    let mut m: Vec<Vec<i128>> = matrix
        .iter()
        .map(|r| r.iter().map(|&v| v as i128).collect())
        .collect();
    let mut pivot_col_of_row = Vec::new();
    let mut r = 0usize;
    for col in 0..cols {
        // Find a pivot.
        let Some(pr) = (r..rows).find(|&i| m[i][col] != 0) else {
            continue;
        };
        m.swap(r, pr);
        // Eliminate this column from all other rows (fraction-free).
        let pivot = m[r][col];
        for i in 0..rows {
            if i == r || m[i][col] == 0 {
                continue;
            }
            let factor = m[i][col];
            let pivot_row = m[r].clone();
            for (cell, &pv) in m[i].iter_mut().zip(&pivot_row) {
                *cell = cell
                    .checked_mul(pivot)
                    .and_then(|a| a.checked_sub(factor.checked_mul(pv)?))
                    .expect("invariant elimination overflow");
            }
            // Keep entries small.
            let g = row_gcd(&m[i]);
            if g > 1 {
                for v in &mut m[i] {
                    *v /= g;
                }
            }
        }
        pivot_col_of_row.push(col);
        r += 1;
        if r == rows {
            break;
        }
    }
    let pivot_cols: Vec<usize> = pivot_col_of_row.clone();
    let is_pivot = |c: usize| pivot_cols.contains(&c);

    // One basis vector per free column.
    let mut basis = Vec::new();
    for free in (0..cols).filter(|&c| !is_pivot(c)) {
        // Solve with free column = 1, other free columns = 0. For each
        // pivot row: pivot·x[pc] + m[row][free]·1 = 0 (other frees zero,
        // other pivots eliminated), so x[pc] = −m[row][free] / pivot —
        // scale by lcm of pivots to stay integral.
        let mut num: Vec<i128> = vec![0; cols];
        num[free] = 1;
        let mut denom_lcm: i128 = 1;
        for (row, &pc) in pivot_cols.iter().enumerate() {
            let pivot = m[row][pc];
            if m[row][free] != 0 {
                denom_lcm = lcm(denom_lcm, pivot.abs());
            }
            let _ = pivot;
        }
        num[free] = denom_lcm;
        for (row, &pc) in pivot_cols.iter().enumerate() {
            let pivot = m[row][pc];
            num[pc] = -m[row][free] * (denom_lcm / pivot);
        }
        let g = row_gcd(&num);
        let vec: Vec<i64> = num
            .iter()
            .map(|&v| i64::try_from(v / g.max(1)).expect("basis entry fits i64"))
            .collect();
        basis.push(vec);
    }
    basis
}

fn row_gcd(row: &[i128]) -> i128 {
    let mut g: i128 = 0;
    for &v in row {
        g = gcd(g, v.abs());
    }
    g.max(1)
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a.abs()
}

fn lcm(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b)) * b
}

/// The identity basis of dimension `n` (for degenerate zero-constraint
/// cases, where the nullspace is the whole space).
fn identity_basis(n: usize) -> Vec<Vec<i64>> {
    (0..n)
        .map(|i| {
            let mut v = vec![0i64; n];
            v[i] = 1;
            v
        })
        .collect()
}

/// T-invariants: an integer basis of `{x : C·x = 0}`, one entry per
/// transition. A net with no places constrains nothing: the basis is the
/// identity.
pub fn t_invariants(net: &PetriNet) -> Vec<Vec<i64>> {
    if net.num_places() == 0 {
        return identity_basis(net.num_transitions());
    }
    integer_nullspace(&incidence_matrix(net))
}

/// S-invariants: an integer basis of `{y : yᵀ·C = 0}`, one entry per
/// place (the nullspace of the transpose). A net with no transitions
/// constrains nothing: the basis is the identity.
pub fn s_invariants(net: &PetriNet) -> Vec<Vec<i64>> {
    if net.num_transitions() == 0 {
        return identity_basis(net.num_places());
    }
    let c = incidence_matrix(net);
    let rows = c.len();
    let cols = if rows == 0 { 0 } else { c[0].len() };
    let transpose: Vec<Vec<i64>> = (0..cols)
        .map(|j| (0..rows).map(|i| c[i][j]).collect())
        .collect();
    integer_nullspace(&transpose)
}

/// Whether the net is consistent (Appendix A.4): some strictly positive
/// `x` with `C·x = 0`. For connected marked graphs this reduces to the
/// all-ones vector; in general a positive vector is sought as a positive
/// combination of the nullspace basis (sufficient here because marked
/// graphs — the nets of this crate — have componentwise all-ones
/// solutions, one per weakly-connected component).
pub fn is_consistent(net: &PetriNet) -> bool {
    if net.num_transitions() == 0 {
        return true;
    }
    let basis = t_invariants(net);
    if basis.is_empty() {
        return false;
    }
    // Try the sum of basis vectors with signs chosen per vector: for
    // marked graphs the basis vectors are indicator-like; a positive
    // combination exists iff flipping each vector's sign to make its
    // first nonzero entry positive yields a positive sum.
    let cols = net.num_transitions();
    let mut sum = vec![0i64; cols];
    for v in &basis {
        let sign = v
            .iter()
            .find(|&&x| x != 0)
            .map(|&x| if x > 0 { 1 } else { -1 })
            .unwrap_or(1);
        for (s, &x) in sum.iter_mut().zip(v) {
            *s += sign * x;
        }
    }
    sum.iter().all(|&s| s > 0)
}

/// The characteristic S-invariant of a simple cycle in a marked graph:
/// 1 on the cycle's places, 0 elsewhere. Verifies (and returns) it —
/// this is Theorem-A.5-style token conservation as an invariant.
///
/// # Panics
///
/// Panics if the cycle's places are not actually conserved (impossible
/// for cycles produced by [`crate::cycles::simple_cycles`]).
pub fn cycle_s_invariant(net: &PetriNet, cycle: &Cycle) -> Vec<i64> {
    let mut y = vec![0i64; net.num_places()];
    for &p in cycle.places() {
        y[p.index()] += 1;
    }
    assert!(
        is_s_invariant(net, &y),
        "a marked-graph cycle's places always form an S-invariant"
    );
    y
}

/// Checks `yᵀ·C = 0`.
pub fn is_s_invariant(net: &PetriNet, y: &[i64]) -> bool {
    assert_eq!(y.len(), net.num_places(), "one weight per place");
    net.transitions().all(|(_, t)| {
        let gain: i64 = t.outputs().iter().map(|p| y[p.index()]).sum();
        let loss: i64 = t.inputs().iter().map(|p| y[p.index()]).sum();
        gain == loss
    })
}

/// Checks `C·x = 0`.
pub fn is_t_invariant(net: &PetriNet, x: &[i64]) -> bool {
    assert_eq!(x.len(), net.num_transitions(), "one count per transition");
    net.places().all(|(_, place)| {
        let gain: i64 = place.preset().iter().map(|t| x[t.index()]).sum();
        let loss: i64 = place.postset().iter().map(|t| x[t.index()]).sum();
        gain == loss
    })
}

/// Ids of places with nonzero weight in an S-invariant (for reporting).
pub fn support_places(y: &[i64]) -> Vec<PlaceId> {
    y.iter()
        .enumerate()
        .filter(|(_, &w)| w != 0)
        .map(|(i, _)| PlaceId::from_index(i))
        .collect()
}

/// Ids of transitions with nonzero count in a T-invariant.
pub fn support_transitions(x: &[i64]) -> Vec<TransitionId> {
    x.iter()
        .enumerate()
        .filter(|(_, &w)| w != 0)
        .map(|(i, _)| TransitionId::from_index(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::simple_cycles;
    use crate::marking::Marking;

    fn ring(n: usize) -> PetriNet {
        let mut net = PetriNet::new();
        let ts: Vec<_> = (0..n)
            .map(|i| net.add_transition(format!("t{i}"), 1))
            .collect();
        for i in 0..n {
            let p = net.add_place(format!("p{i}"));
            net.connect_tp(ts[i], p);
            net.connect_pt(p, ts[(i + 1) % n]);
        }
        net
    }

    #[test]
    fn incidence_of_ring() {
        let net = ring(3);
        let c = incidence_matrix(&net);
        // Place p0: +1 from t0, -1 to t1.
        assert_eq!(c[0], vec![1, -1, 0]);
        assert_eq!(c[1], vec![0, 1, -1]);
        assert_eq!(c[2], vec![-1, 0, 1]);
    }

    #[test]
    fn ring_t_invariant_is_all_ones() {
        let net = ring(4);
        let basis = t_invariants(&net);
        assert_eq!(basis.len(), 1);
        assert!(is_t_invariant(&net, &basis[0]));
        // All-ones up to scale.
        let v = &basis[0];
        assert!(v.iter().all(|&x| x == v[0] && x != 0));
        assert!(is_consistent(&net));
    }

    #[test]
    fn ring_s_invariant_is_all_ones() {
        let net = ring(4);
        let basis = s_invariants(&net);
        assert_eq!(basis.len(), 1);
        assert!(is_s_invariant(&net, &basis[0]));
        assert_eq!(support_places(&basis[0]).len(), 4);
    }

    #[test]
    fn s_invariant_conserves_token_sums_under_firing() {
        let net = ring(3);
        let basis = s_invariants(&net);
        let y = &basis[0];
        let mut m = Marking::from_pairs(&net, [(PlaceId::from_index(0), 1)]);
        let weighted = |m: &Marking| -> i64 {
            net.place_ids()
                .map(|p| y[p.index()] * m.tokens(p) as i64)
                .sum()
        };
        let before = weighted(&m);
        m.fire(&net, TransitionId::from_index(1));
        assert_eq!(weighted(&m), before);
        m.fire(&net, TransitionId::from_index(2));
        assert_eq!(weighted(&m), before);
    }

    #[test]
    fn every_simple_cycle_is_an_s_invariant() {
        // Ring plus a chord: 2 cycles, both conserved.
        let mut net = ring(3);
        let chord = net.add_place("chord");
        net.connect_tp(TransitionId::from_index(1), chord);
        net.connect_pt(chord, TransitionId::from_index(0));
        for cycle in simple_cycles(&net, 64).unwrap() {
            let y = cycle_s_invariant(&net, &cycle);
            assert!(is_s_invariant(&net, &y));
        }
    }

    #[test]
    fn acyclic_net_has_no_t_invariant() {
        let mut net = PetriNet::new();
        let a = net.add_transition("a", 1);
        let b = net.add_transition("b", 1);
        let p = net.add_place("p");
        net.connect_tp(a, p);
        net.connect_pt(p, b);
        let basis = t_invariants(&net);
        // C = [1, -1]: nullspace is spanned by (1,1)?? No: 1·x0 - 1·x1 = 0
        // => x0 = x1: the (1,1) vector. Firing both once conserves p.
        assert_eq!(basis.len(), 1);
        assert!(is_t_invariant(&net, &basis[0]));
        // But the net has no cycle: (1,1) is "fire a then b", which indeed
        // returns p to empty. Consistency (a cyclic firing sequence
        // exists from SOME marking) holds, matching Theorem A.4.1.
        assert!(is_consistent(&net));
    }

    #[test]
    fn source_sink_net_is_inconsistent() {
        // A transition that only produces can never be balanced.
        let mut net = PetriNet::new();
        let src = net.add_transition("src", 1);
        let sink = net.add_transition("sink", 1);
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.connect_tp(src, p);
        net.connect_pt(p, sink);
        net.connect_tp(sink, q);
        // q accumulates: no nonzero firing vector conserves it.
        assert!(!is_consistent(&net));
        assert!(t_invariants(&net).is_empty());
    }

    #[test]
    fn disconnected_components_each_contribute_invariants() {
        let mut net = ring(3);
        // Second, disjoint 2-ring.
        let a = net.add_transition("a", 1);
        let b = net.add_transition("b", 1);
        let p = net.add_place("pa");
        let q = net.add_place("pb");
        net.connect_tp(a, p);
        net.connect_pt(p, b);
        net.connect_tp(b, q);
        net.connect_pt(q, a);
        let basis = t_invariants(&net);
        assert_eq!(basis.len(), 2);
        for v in &basis {
            assert!(is_t_invariant(&net, v));
        }
        assert!(is_consistent(&net));
    }

    #[test]
    fn placeless_net_is_trivially_consistent() {
        let mut net = PetriNet::new();
        net.add_transition("a", 1);
        net.add_transition("b", 1);
        let basis = t_invariants(&net);
        assert_eq!(basis.len(), 2);
        assert!(is_consistent(&net));
    }

    #[test]
    fn transitionless_net_has_identity_s_invariants() {
        let mut net = PetriNet::new();
        net.add_place("p");
        net.add_place("q");
        let basis = s_invariants(&net);
        assert_eq!(basis.len(), 2);
        for y in &basis {
            assert!(is_s_invariant(&net, y));
        }
    }

    #[test]
    fn nullspace_of_full_rank_matrix_is_empty() {
        let m = vec![vec![1, 0], vec![0, 1]];
        assert!(integer_nullspace(&m).is_empty());
    }

    #[test]
    fn nullspace_handles_rationals_exactly() {
        // 2x + 3y - z = 0 ; x - y = 0  =>  x = y, z = 5x: basis (1,1,5).
        let m = vec![vec![2, 3, -1], vec![1, -1, 0]];
        let basis = integer_nullspace(&m);
        assert_eq!(basis.len(), 1);
        let v = &basis[0];
        // Scale-invariant check.
        assert_eq!(v[0], v[1]);
        assert_eq!(v[2], 5 * v[0]);
    }
}
