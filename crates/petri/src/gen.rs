//! Deterministic marked-graph composition helpers.
//!
//! The conformance fuzzer (crate `tpn-conform`) needs to assemble many live,
//! safe marked graphs from simple structural pieces: rings, chains and chord
//! places layered over a backbone cycle.  The primitives here are fully
//! deterministic — randomness stays with the caller — and enforce the
//! structural token rule that makes liveness hold by construction: every
//! "backward" arc (one that closes a cycle against the construction order)
//! must carry at least one token.
//!
//! The helpers return `(PetriNet, Marking)` pairs; each logical arc `u → v`
//! becomes a dedicated place, so the result is a marked graph by
//! construction (`|•p| = |p•| = 1`).

use crate::error::PetriError;
use crate::ids::{PlaceId, TransitionId};
use crate::marking::Marking;
use crate::net::PetriNet;

/// A chord arc layered over a [`compose`] backbone, identified by backbone
/// transition indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chord {
    /// Index of the source transition in the backbone order.
    pub from: usize,
    /// Index of the destination transition in the backbone order.
    pub to: usize,
    /// Initial tokens on the chord place.  Backward chords
    /// (`from >= to`) must carry at least one token.
    pub tokens: u32,
}

/// Incremental builder for marked graphs where every logical arc gets its
/// own place.  Thin sugar over [`PetriNet`] that tracks the marking.
#[derive(Default)]
pub struct MarkedGraphGen {
    net: PetriNet,
    tokens: Vec<(PlaceId, u32)>,
}

impl MarkedGraphGen {
    /// Creates an empty generator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a transition with execution time `time` (must be ≥ 1).
    pub fn transition(&mut self, name: impl Into<String>, time: u64) -> TransitionId {
        self.net.add_transition(name, time)
    }

    /// Adds an arc `from → to` realised as a fresh place carrying `tokens`.
    pub fn arc(&mut self, from: TransitionId, to: TransitionId, tokens: u32) -> PlaceId {
        let p = self.net.add_place(format!("p{}", self.tokens.len()));
        self.net.connect_tp(from, p);
        self.net.connect_pt(p, to);
        self.tokens.push((p, tokens));
        p
    }

    /// Finishes construction, returning the net and its initial marking.
    pub fn finish(self) -> (PetriNet, Marking) {
        let marking = Marking::from_pairs(&self.net, self.tokens.iter().copied());
        (self.net, marking)
    }
}

/// Builds a simple ring of `times.len()` transitions where arc `i → i+1
/// (mod n)` carries `tokens[i]` tokens.
///
/// Returns [`PetriError::NoCycle`] when `times` is empty,
/// [`PetriError::NotLive`] when no arc carries a token (the single cycle
/// would be token-free).
pub fn ring(times: &[u64], tokens: &[u32]) -> Result<(PetriNet, Marking), PetriError> {
    assert_eq!(
        times.len(),
        tokens.len(),
        "ring: times and tokens must have equal length"
    );
    if times.is_empty() {
        return Err(PetriError::NoCycle);
    }
    let mut g = MarkedGraphGen::new();
    let ts: Vec<TransitionId> = times
        .iter()
        .enumerate()
        .map(|(i, &t)| g.transition(format!("r{i}"), t))
        .collect();
    if tokens.iter().all(|&k| k == 0) {
        return Err(PetriError::NotLive { cycle: ts });
    }
    let n = ts.len();
    for i in 0..n {
        g.arc(ts[i], ts[(i + 1) % n], tokens[i]);
    }
    Ok(g.finish())
}

/// Composes a live marked graph from a backbone ring plus chord arcs.
///
/// The backbone visits transitions `0..n` in index order with arc `i → i+1`
/// carrying `backbone_tokens[i]` (index `n-1` is the wrap-around arc back to
/// transition 0).  Chords add extra arcs between backbone transitions.
///
/// Liveness is guaranteed structurally: every simple cycle must use at
/// least one backward arc (the wrap-around or a chord with `from >= to`),
/// so requiring one token on each backward arc puts a token on every cycle
/// (Theorem A.5.1).  The function rejects inputs violating that rule with
/// [`PetriError::NotLive`].
pub fn compose(
    times: &[u64],
    backbone_tokens: &[u32],
    chords: &[Chord],
) -> Result<(PetriNet, Marking), PetriError> {
    assert_eq!(
        times.len(),
        backbone_tokens.len(),
        "compose: times and backbone_tokens must have equal length"
    );
    let n = times.len();
    if n == 0 {
        return Err(PetriError::NoCycle);
    }
    let mut g = MarkedGraphGen::new();
    let ts: Vec<TransitionId> = times
        .iter()
        .enumerate()
        .map(|(i, &t)| g.transition(format!("n{i}"), t))
        .collect();
    if backbone_tokens[n - 1] == 0 {
        // The wrap-around arc closes the backbone cycle; without a token the
        // cycle 0 → 1 → … → n-1 → 0 is token-free.
        return Err(PetriError::NotLive { cycle: ts });
    }
    for i in 0..n {
        g.arc(ts[i], ts[(i + 1) % n], backbone_tokens[i]);
    }
    for c in chords {
        assert!(
            c.from < n && c.to < n,
            "compose: chord index out of range ({} -> {}, n = {n})",
            c.from,
            c.to,
        );
        if c.from >= c.to && c.tokens == 0 {
            return Err(PetriError::NotLive {
                cycle: ts[c.to..=c.from].to_vec(),
            });
        }
        g.arc(ts[c.from], ts[c.to], c.tokens);
    }
    Ok(g.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marked::{check_live, check_live_safe};
    use crate::ratio::critical_ratio;
    use crate::rational::Ratio;

    #[test]
    fn ring_rate_matches_token_count() {
        // 4 unit-time transitions, one token: α* = 4/1.
        let (net, marking) = ring(&[1, 1, 1, 1], &[1, 0, 0, 0]).unwrap();
        check_live_safe(&net, &marking).unwrap();
        let r = critical_ratio(&net, &marking).unwrap();
        assert_eq!(r.cycle_time, Ratio::new(4, 1));
        // Two tokens halve the cycle time (no longer safe, still live).
        let (net, marking) = ring(&[1, 1, 1, 1], &[1, 0, 1, 0]).unwrap();
        check_live(&net, &marking).unwrap();
        let r = critical_ratio(&net, &marking).unwrap();
        assert_eq!(r.cycle_time, Ratio::new(2, 1));
    }

    #[test]
    fn ring_rejects_degenerate_inputs() {
        assert_eq!(ring(&[], &[]).unwrap_err(), PetriError::NoCycle);
        assert!(matches!(
            ring(&[1, 2], &[0, 0]).unwrap_err(),
            PetriError::NotLive { .. }
        ));
    }

    #[test]
    fn compose_is_live_by_construction() {
        // Backbone of 6 with a forward chord (no token needed) and a
        // backward chord (token required).
        let chords = [
            Chord {
                from: 1,
                to: 4,
                tokens: 0,
            },
            Chord {
                from: 5,
                to: 2,
                tokens: 1,
            },
        ];
        let (net, marking) = compose(&[1, 2, 1, 3, 1, 1], &[0, 0, 0, 0, 0, 1], &chords).unwrap();
        check_live(&net, &marking).unwrap();
        let r = critical_ratio(&net, &marking).unwrap();
        // Backbone cycle: Ω = 9, M = 1.  Chord cycle 2→3→4→5→2: Ω = 6,
        // M = 1.  Backbone dominates.
        assert_eq!(r.cycle_time, Ratio::new(9, 1));
    }

    #[test]
    fn compose_rejects_token_free_backward_arcs() {
        assert!(matches!(
            compose(&[1, 1, 1], &[1, 0, 0], &[]).unwrap_err(),
            PetriError::NotLive { .. }
        ));
        let bad = [Chord {
            from: 2,
            to: 1,
            tokens: 0,
        }];
        assert!(matches!(
            compose(&[1, 1, 1], &[0, 0, 1], &bad).unwrap_err(),
            PetriError::NotLive { .. }
        ));
    }
}
