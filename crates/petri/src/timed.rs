//! Timed execution under the earliest firing rule (Appendix A.6).
//!
//! The state of a timed Petri net at an instant is an
//! [`InstantaneousState`]: the current marking plus the *residual firing
//! time vector* `R`, which records, for each transition, how many cycles of
//! an ongoing firing remain (Chretienne). Execution proceeds in discrete
//! unit time steps:
//!
//! 1. ongoing firings whose residual reaches zero **complete**, depositing
//!    one token on each output place;
//! 2. idle transitions whose input places are all marked **start**,
//!    consuming their input tokens and setting their residual to `τ`
//!    (Assumption A.6.2, the earliest firing rule).
//!
//! Assumption A.6.1 — distinct firings of a transition never overlap — is
//! enforced directly by the residual vector instead of materialising the
//! implicit self-loop place.
//!
//! For nets with structural conflicts (the run place of the SDSP-SCP-PN
//! model of §5.2), the set of transitions to start is no longer unique; a
//! [`ChoicePolicy`] resolves the choice deterministically, matching
//! Assumption 5.2.1 ("the machine exhibits repeatable behavior"). The
//! policy's internal state participates in state hashing via
//! [`ChoicePolicy::fingerprint`], so cyclic-frustum detection remains sound.

use std::hash::{Hash, Hasher};

use crate::error::PetriError;
use crate::ids::TransitionId;
use crate::marking::Marking;
use crate::net::PetriNet;

/// Marking plus residual firing times: the full execution state at an
/// instant.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct InstantaneousState {
    /// Tokens on each place.
    pub marking: Marking,
    /// Remaining execution time per transition; `0` means idle.
    pub residual: Vec<u64>,
}

impl InstantaneousState {
    /// The initial state: `marking` with every transition idle.
    pub fn initial(net: &PetriNet, marking: Marking) -> Self {
        InstantaneousState {
            marking,
            residual: vec![0; net.num_transitions()],
        }
    }

    /// Whether transition `t` is currently firing.
    pub fn is_busy(&self, t: TransitionId) -> bool {
        self.residual[t.index()] > 0
    }

    /// Whether no transition is currently firing.
    pub fn all_idle(&self) -> bool {
        self.residual.iter().all(|&r| r == 0)
    }

    /// Whether `t` can start now: idle, and every input place marked.
    pub fn can_start(&self, net: &PetriNet, t: TransitionId) -> bool {
        !self.is_busy(t) && self.marking.enables(net, t)
    }

    /// Transitions that can start now, in id order.
    pub fn startable(&self, net: &PetriNet) -> Vec<TransitionId> {
        net.transition_ids()
            .filter(|&t| self.can_start(net, t))
            .collect()
    }
}

/// Everything a [`ChoicePolicy`] may inspect when resolving a choice.
#[derive(Debug)]
pub struct PolicyCtx<'a> {
    /// The net being executed.
    pub net: &'a PetriNet,
    /// The current state (marking + residuals), mid-instant.
    pub state: &'a InstantaneousState,
    /// Transitions that can start right now, in id order.
    pub startable: &'a [TransitionId],
    /// The current instant.
    pub time: u64,
}

/// Deterministic conflict resolution for nets with structural conflicts.
///
/// Within one instant the engine repeatedly asks the policy for the next
/// transition to start; returning `None` ends the instant. Implementations
/// must be deterministic functions of the observable history so that a
/// repeated instantaneous state implies repeated behaviour (the paper's
/// Assumption 5.2.1); any internal state must be exposed through
/// [`fingerprint`](ChoicePolicy::fingerprint).
pub trait ChoicePolicy {
    /// Picks the next transition to start, from `ctx.startable` (never
    /// empty). Returning `None` leaves the remaining startable transitions
    /// idle this instant.
    fn choose(&mut self, ctx: &PolicyCtx<'_>) -> Option<TransitionId>;

    /// Notifies the policy that an instant ended (after all completions and
    /// starts). Default: no-op.
    fn on_instant_end(&mut self, _net: &PetriNet, _state: &InstantaneousState, _time: u64) {}

    /// A digest of the policy's internal state, combined with the
    /// instantaneous state when detecting repeated states. Stateless
    /// policies return 0 (the default).
    fn fingerprint(&self) -> u64 {
        0
    }
}

/// The maximally parallel policy: starts **every** startable transition.
///
/// On persistent nets (marked graphs) this is the unique earliest-firing
/// behaviour; on nets with conflicts it greedily fires in transition-id
/// order, which is deterministic but usually not what a resource model
/// wants — use a queueing policy there.
#[derive(Clone, Copy, Debug, Default)]
pub struct EagerPolicy;

impl ChoicePolicy for EagerPolicy {
    fn choose(&mut self, ctx: &PolicyCtx<'_>) -> Option<TransitionId> {
        ctx.startable.first().copied()
    }
}

/// One executed instant: what completed, what started, and the state left
/// behind.
#[derive(Clone, Debug)]
pub struct StepRecord {
    /// The instant at which these events happened.
    pub time: u64,
    /// Transitions whose firing completed at this instant (tokens
    /// deposited), in id order.
    pub completed: Vec<TransitionId>,
    /// Transitions that started firing at this instant (tokens consumed),
    /// in start order.
    pub started: Vec<TransitionId>,
    /// The instantaneous state after all events of this instant.
    pub state: InstantaneousState,
    /// The policy fingerprint after this instant.
    pub policy_fingerprint: u64,
}

impl StepRecord {
    /// Hash of `(state, policy_fingerprint)`, the repetition key used for
    /// cyclic-frustum detection.
    pub fn state_key(&self) -> StateKey {
        StateKey {
            state: self.state.clone(),
            policy_fingerprint: self.policy_fingerprint,
        }
    }
}

/// The repetition key for frustum detection: instantaneous state plus the
/// conflict-resolution policy's internal state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StateKey {
    /// Marking and residual firing times.
    pub state: InstantaneousState,
    /// Digest of the policy state.
    pub policy_fingerprint: u64,
}

impl Hash for StateKey {
    fn hash<H: Hasher>(&self, h: &mut H) {
        self.state.hash(h);
        self.policy_fingerprint.hash(h);
    }
}

/// Discrete-time earliest-firing execution engine.
///
/// # Example
///
/// ```
/// use tpn_petri::{PetriNet, Marking};
/// use tpn_petri::timed::{Engine, EagerPolicy};
///
/// // A ring of two transitions: fires alternately forever.
/// let mut net = PetriNet::new();
/// let a = net.add_transition("A", 1);
/// let b = net.add_transition("B", 1);
/// let ab = net.add_place("ab");
/// let ba = net.add_place("ba");
/// net.connect_tp(a, ab);
/// net.connect_pt(ab, b);
/// net.connect_tp(b, ba);
/// net.connect_pt(ba, a);
/// let m = Marking::from_pairs(&net, [(ba, 1)]);
///
/// let mut engine = Engine::new(&net, m, EagerPolicy);
/// assert_eq!(engine.start().started, vec![a]);
/// assert_eq!(engine.tick().started, vec![b]);
/// assert_eq!(engine.tick().started, vec![a]);
/// ```
#[derive(Debug)]
pub struct Engine<'a, P> {
    net: &'a PetriNet,
    state: InstantaneousState,
    time: u64,
    policy: P,
    started: bool,
}

impl<'a, P: ChoicePolicy> Engine<'a, P> {
    /// Creates an engine over `net` at `initial_marking` with all
    /// transitions idle, at time 0.
    ///
    /// # Panics
    ///
    /// Panics if some transition has execution time 0 (use
    /// [`PetriNet::validate_times`] to check first).
    pub fn new(net: &'a PetriNet, initial_marking: Marking, policy: P) -> Self {
        net.validate_times()
            .unwrap_or_else(|e| panic!("invalid net for timed execution: {e}"));
        Engine {
            net,
            state: InstantaneousState::initial(net, initial_marking),
            time: 0,
            policy,
            started: false,
        }
    }

    /// Fallible constructor variant.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::ZeroExecutionTime`] if some transition has
    /// `τ = 0`.
    pub fn try_new(
        net: &'a PetriNet,
        initial_marking: Marking,
        policy: P,
    ) -> Result<Self, PetriError> {
        net.validate_times()?;
        Ok(Engine {
            net,
            state: InstantaneousState::initial(net, initial_marking),
            time: 0,
            policy,
            started: false,
        })
    }

    /// Executes instant 0: fires the initially enabled transitions.
    ///
    /// # Panics
    ///
    /// Panics if called twice, or after [`tick`](Self::tick).
    pub fn start(&mut self) -> StepRecord {
        assert!(!self.started, "start() must be the first step");
        self.started = true;
        let completed = Vec::new();
        let started = self.fire_phase();
        self.policy
            .on_instant_end(self.net, &self.state, self.time);
        StepRecord {
            time: self.time,
            completed,
            started,
            state: self.state.clone(),
            policy_fingerprint: self.policy.fingerprint(),
        }
    }

    /// Executes the next instant: completions, then earliest-rule starts.
    ///
    /// # Panics
    ///
    /// Panics if [`start`](Self::start) has not been called.
    pub fn tick(&mut self) -> StepRecord {
        assert!(self.started, "call start() before tick()");
        self.time += 1;
        let completed = self.complete_phase();
        let started = self.fire_phase();
        self.policy
            .on_instant_end(self.net, &self.state, self.time);
        StepRecord {
            time: self.time,
            completed,
            started,
            state: self.state.clone(),
            policy_fingerprint: self.policy.fingerprint(),
        }
    }

    /// Advances busy transitions by one cycle; completes those reaching 0.
    fn complete_phase(&mut self) -> Vec<TransitionId> {
        let mut completed = Vec::new();
        for idx in 0..self.state.residual.len() {
            if self.state.residual[idx] > 0 {
                self.state.residual[idx] -= 1;
                if self.state.residual[idx] == 0 {
                    let t = TransitionId::from_index(idx);
                    self.state.marking.produce_outputs(self.net, t);
                    completed.push(t);
                }
            }
        }
        completed
    }

    /// Starts transitions under the earliest firing rule, consulting the
    /// policy while choices remain.
    fn fire_phase(&mut self) -> Vec<TransitionId> {
        let mut started = Vec::new();
        loop {
            let startable = self.state.startable(self.net);
            if startable.is_empty() {
                break;
            }
            let ctx = PolicyCtx {
                net: self.net,
                state: &self.state,
                startable: &startable,
                time: self.time,
            };
            let Some(t) = self.policy.choose(&ctx) else {
                break;
            };
            assert!(
                startable.contains(&t),
                "policy chose {t}, which cannot start now"
            );
            self.state.marking.consume_inputs(self.net, t);
            self.state.residual[t.index()] = self.net.transition(t).time();
            started.push(t);
        }
        started
    }

    /// The current instant (0 until the first [`tick`](Self::tick)).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// The current instantaneous state.
    pub fn state(&self) -> &InstantaneousState {
        &self.state
    }

    /// The net being executed.
    pub fn net(&self) -> &'a PetriNet {
        self.net
    }

    /// The repetition key of the current state (see [`StateKey`]).
    pub fn state_key(&self) -> StateKey {
        StateKey {
            state: self.state.clone(),
            policy_fingerprint: self.policy.fingerprint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// L1-like diamond with acknowledgement arcs: A feeds B and C, both
    /// feed D. All unit times.
    fn diamond() -> (PetriNet, Marking, Vec<TransitionId>) {
        let mut net = PetriNet::new();
        let a = net.add_transition("A", 1);
        let b = net.add_transition("B", 1);
        let c = net.add_transition("C", 1);
        let d = net.add_transition("D", 1);
        let mut marking_pairs = Vec::new();
        let wire = |net: &mut PetriNet, from: TransitionId, to: TransitionId| {
            let fwd = net.add_place(format!("{from}->{to}"));
            let ack = net.add_place(format!("{to}=>{from}"));
            net.connect_tp(from, fwd);
            net.connect_pt(fwd, to);
            net.connect_tp(to, ack);
            net.connect_pt(ack, from);
            ack
        };
        for (x, y) in [(a, b), (a, c), (b, d), (c, d)] {
            let ack = wire(&mut net, x, y);
            marking_pairs.push((ack, 1));
        }
        let m = Marking::from_pairs(&net, marking_pairs);
        (net, m, vec![a, b, c, d])
    }

    #[test]
    fn earliest_rule_fires_wavefronts() {
        let (net, m, ts) = diamond();
        let (a, b, c, d) = (ts[0], ts[1], ts[2], ts[3]);
        let mut engine = Engine::new(&net, m, EagerPolicy);
        assert_eq!(engine.start().started, vec![a]);
        let s1 = engine.tick();
        assert_eq!(s1.completed, vec![a]);
        assert_eq!(s1.started, vec![b, c]);
        let s2 = engine.tick();
        // B and C complete; D starts, and A restarts (acks from B, C).
        assert_eq!(s2.completed, vec![b, c]);
        assert_eq!(s2.started, vec![a, d]);
    }

    #[test]
    fn residuals_track_multi_cycle_transitions() {
        let mut net = PetriNet::new();
        let a = net.add_transition("slow", 3);
        let p = net.add_place("self");
        net.connect_tp(a, p);
        net.connect_pt(p, a);
        let m = Marking::from_pairs(&net, [(p, 1)]);
        let mut engine = Engine::new(&net, m, EagerPolicy);
        let s0 = engine.start();
        assert_eq!(s0.started, vec![a]);
        assert!(engine.state().is_busy(a));
        let s1 = engine.tick();
        assert!(s1.completed.is_empty() && s1.started.is_empty());
        let s2 = engine.tick();
        assert!(s2.completed.is_empty());
        let s3 = engine.tick();
        // Completes after exactly 3 cycles and immediately restarts.
        assert_eq!(s3.completed, vec![a]);
        assert_eq!(s3.started, vec![a]);
        assert_eq!(engine.time(), 3);
    }

    #[test]
    fn non_reentrance_is_enforced_without_self_loop() {
        // A source-like transition (no inputs) must not overlap itself.
        let mut net = PetriNet::new();
        let src = net.add_transition("src", 2);
        let sink = net.add_transition("sink", 1);
        let p = net.add_place("p");
        let back = net.add_place("back");
        net.connect_tp(src, p);
        net.connect_pt(p, sink);
        net.connect_tp(sink, back);
        net.connect_pt(back, src);
        let m = Marking::from_pairs(&net, [(back, 1)]);
        let mut engine = Engine::new(&net, m, EagerPolicy);
        engine.start();
        let s1 = engine.tick();
        // src is mid-firing: nothing new starts even though it has no
        // unmarked inputs (its only input is empty anyway here).
        assert!(s1.started.is_empty());
        let s2 = engine.tick();
        assert_eq!(s2.completed, vec![src]);
        assert_eq!(s2.started, vec![sink]);
    }

    #[test]
    fn deterministic_replay_from_equal_states() {
        let (net, m, _) = diamond();
        let mut e1 = Engine::new(&net, m.clone(), EagerPolicy);
        let mut e2 = Engine::new(&net, m, EagerPolicy);
        e1.start();
        e2.start();
        for _ in 0..20 {
            let s1 = e1.tick();
            let s2 = e2.tick();
            assert_eq!(s1.started, s2.started);
            assert_eq!(s1.state, s2.state);
        }
    }

    #[test]
    fn state_key_distinguishes_policy_state() {
        struct Counter(u64);
        impl ChoicePolicy for Counter {
            fn choose(&mut self, ctx: &PolicyCtx<'_>) -> Option<TransitionId> {
                ctx.startable.first().copied()
            }
            fn on_instant_end(&mut self, _: &PetriNet, _: &InstantaneousState, _: u64) {
                self.0 += 1;
            }
            fn fingerprint(&self) -> u64 {
                self.0
            }
        }
        let (net, m, _) = diamond();
        let mut engine = Engine::new(&net, m, Counter(0));
        let s0 = engine.start();
        let s2 = {
            engine.tick();
            engine.tick()
        };
        assert_ne!(s0.state_key(), s2.state_key());
    }

    #[test]
    #[should_panic(expected = "invalid net")]
    fn zero_time_rejected_by_engine() {
        let mut net = PetriNet::new();
        net.add_transition("z", 0);
        let m = Marking::empty(&net);
        let _ = Engine::new(&net, m, EagerPolicy);
    }

    #[test]
    fn try_new_reports_zero_time() {
        let mut net = PetriNet::new();
        let t = net.add_transition("z", 0);
        let m = Marking::empty(&net);
        match Engine::try_new(&net, m, EagerPolicy) {
            Err(PetriError::ZeroExecutionTime { transition }) => assert_eq!(transition, t),
            other => panic!("expected ZeroExecutionTime, got {other:?}"),
        }
    }

    #[test]
    fn dead_net_idles_forever() {
        let (net, _, _) = diamond();
        let mut engine = Engine::new(&net, Marking::empty(&net), EagerPolicy);
        assert!(engine.start().started.is_empty());
        for _ in 0..5 {
            let s = engine.tick();
            assert!(s.started.is_empty() && s.completed.is_empty());
        }
        assert!(engine.state().all_idle());
    }
}
