//! Timed execution under the earliest firing rule (Appendix A.6).
//!
//! The state of a timed Petri net at an instant is an
//! [`InstantaneousState`]: the current marking plus the *residual firing
//! time vector* `R`, which records, for each transition, how many cycles of
//! an ongoing firing remain (Chretienne). Execution proceeds in discrete
//! unit time steps:
//!
//! 1. ongoing firings whose residual reaches zero **complete**, depositing
//!    one token on each output place;
//! 2. idle transitions whose input places are all marked **start**,
//!    consuming their input tokens and setting their residual to `τ`
//!    (Assumption A.6.2, the earliest firing rule).
//!
//! Assumption A.6.1 — distinct firings of a transition never overlap — is
//! enforced directly by the residual vector instead of materialising the
//! implicit self-loop place.
//!
//! For nets with structural conflicts (the run place of the SDSP-SCP-PN
//! model of §5.2), the set of transitions to start is no longer unique; a
//! [`ChoicePolicy`] resolves the choice deterministically, matching
//! Assumption 5.2.1 ("the machine exhibits repeatable behavior"). The
//! policy's internal state participates in state hashing via
//! [`ChoicePolicy::fingerprint`], so cyclic-frustum detection remains sound.
//!
//! # Zero-clone state tracking
//!
//! Traces of the earliest firing rule run for up to O(n⁴) instants
//! (Lemma 3.3.2), so a [`StepRecord`] must stay allocation-light: it
//! carries only the instant's **event lists** plus a 64-bit [`state
//! digest`](state_digest) maintained *incrementally* across the
//! complete/fire phases — the engine never clones the full state per step.
//! The digest is an additive (Zobrist-style) hash: every `(place, token)`
//! and `(transition, residual-cycle)` contributes a fixed pseudo-random
//! word, so token moves update the digest in O(arcs touched). Full states
//! are reconstructed on demand by [`InstantaneousState::apply_step`]
//! (event replay is policy-free: the recorded start events fully determine
//! the evolution) or snapshotted compactly via [`PackedState`].

use std::hash::{Hash, Hasher};

use crate::error::PetriError;
use crate::ids::{PlaceId, TransitionId};
use crate::marking::Marking;
use crate::net::PetriNet;
use crate::trace::{EventKind, FiringEvent, NullSink, TraceSink};

/// Marking plus residual firing times: the full execution state at an
/// instant.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct InstantaneousState {
    /// Tokens on each place.
    pub marking: Marking,
    /// Remaining execution time per transition; `0` means idle.
    pub residual: Vec<u64>,
}

impl InstantaneousState {
    /// The initial state: `marking` with every transition idle.
    pub fn initial(net: &PetriNet, marking: Marking) -> Self {
        InstantaneousState {
            marking,
            residual: vec![0; net.num_transitions()],
        }
    }

    /// Whether transition `t` is currently firing.
    pub fn is_busy(&self, t: TransitionId) -> bool {
        self.residual[t.index()] > 0
    }

    /// Whether no transition is currently firing.
    pub fn all_idle(&self) -> bool {
        self.residual.iter().all(|&r| r == 0)
    }

    /// Whether `t` can start now: idle, and every input place marked.
    pub fn can_start(&self, net: &PetriNet, t: TransitionId) -> bool {
        !self.is_busy(t) && self.marking.enables(net, t)
    }

    /// Transitions that can start now, in id order.
    pub fn startable(&self, net: &PetriNet) -> Vec<TransitionId> {
        net.transition_ids()
            .filter(|&t| self.can_start(net, t))
            .collect()
    }

    /// Replays one recorded instant onto this state: busy residuals
    /// advance one cycle (completions deposit their outputs), then the
    /// recorded `started` transitions consume inputs and begin firing.
    ///
    /// Replay needs no [`ChoicePolicy`] — the event lists already encode
    /// every decision — so any state along a trace can be reconstructed
    /// from the initial state (or a checkpoint) and the [`StepRecord`]s.
    pub fn apply_step(&mut self, net: &PetriNet, started: &[TransitionId]) {
        for idx in 0..self.residual.len() {
            if self.residual[idx] > 0 {
                self.residual[idx] -= 1;
                if self.residual[idx] == 0 {
                    self.marking
                        .produce_outputs(net, TransitionId::from_index(idx));
                }
            }
        }
        for &t in started {
            self.marking.consume_inputs(net, t);
            self.residual[t.index()] = net.transition(t).time();
        }
    }
}

// ---------------------------------------------------------------------------
// State digests
// ---------------------------------------------------------------------------

const PLACE_SALT: u64 = 0x9AE1_6A3B_2F90_404F;
const TRANS_SALT: u64 = 0xD1B5_4A32_D192_ED03;
const POLICY_SALT: u64 = 0x2545_F491_4F6C_DD1D;

/// splitmix64's finalizer: a strong 64-bit mixing permutation.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The pseudo-random word one token on place `p` contributes.
#[inline]
fn place_word(p: usize) -> u64 {
    mix64(PLACE_SALT ^ p as u64)
}

/// The pseudo-random word one residual cycle of transition `t`
/// contributes.
#[inline]
fn transition_word(t: usize) -> u64 {
    mix64(TRANS_SALT ^ t as u64)
}

/// Folds the additive hash and the policy fingerprint into the final
/// digest.
#[inline]
fn finalize_digest(raw: u64, policy_fingerprint: u64) -> u64 {
    mix64(raw) ^ mix64(policy_fingerprint ^ POLICY_SALT)
}

/// Computes the 64-bit repetition digest of a state from scratch.
///
/// The engine maintains the same value incrementally (see
/// [`Engine::digest`]); this standalone recomputation exists for
/// verification and for hashing reconstructed states.
pub fn state_digest(state: &InstantaneousState, policy_fingerprint: u64) -> u64 {
    let mut raw = 0u64;
    for (p, count) in state.marking.marked_places() {
        raw = raw.wrapping_add(place_word(p.index()).wrapping_mul(count as u64));
    }
    for (idx, &r) in state.residual.iter().enumerate() {
        if r > 0 {
            raw = raw.wrapping_add(transition_word(idx).wrapping_mul(r));
        }
    }
    finalize_digest(raw, policy_fingerprint)
}

/// The additive hash of a marking alone (no residuals, no policy state).
#[inline]
fn marking_raw_digest(marking: &Marking) -> u64 {
    let mut raw = 0u64;
    for (p, count) in marking.marked_places() {
        raw = raw.wrapping_add(place_word(p.index()).wrapping_mul(count as u64));
    }
    raw
}

/// Computes the 64-bit digest of a marking alone.
///
/// This is the digest stamped on every [`FiringEvent`]: unlike the full
/// state digest it ignores residual firing times and policy state, so the
/// marking — and hence this digest — changes only *at* start/complete
/// events. A consumer replaying nothing but the event stream can therefore
/// reproduce and verify it exactly (the trace-replay validator in
/// `tpn-sched` does).
pub fn marking_digest(marking: &Marking) -> u64 {
    mix64(marking_raw_digest(marking))
}

// ---------------------------------------------------------------------------
// Packed snapshots
// ---------------------------------------------------------------------------

/// A full instantaneous state flattened into one word buffer: the marking
/// and the residual-time vector packed four 16-bit lanes per `u64` (with a
/// transparent fallback to full 64-bit lanes if any value overflows a
/// lane). Checkpoints along a trace cost `(|P| + |T|) / 4` words instead
/// of a `Marking` plus a `Vec<u64>`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PackedState {
    words: Box<[u64]>,
    wide: bool,
    places: usize,
}

impl PackedState {
    /// Packs a state. Values (token counts and residuals) up to
    /// `u16::MAX` take a 16-bit lane; anything larger switches the whole
    /// snapshot to 64-bit lanes.
    pub fn pack(state: &InstantaneousState) -> Self {
        let places = state.marking.len();
        let total = places + state.residual.len();
        let values = || {
            (0..places)
                .map(|i| state.marking.tokens(PlaceId::from_index(i)) as u64)
                .chain(state.residual.iter().copied())
        };
        let wide = values().any(|v| v > u16::MAX as u64);
        let words = if wide {
            values().collect::<Vec<u64>>().into_boxed_slice()
        } else {
            let mut packed = vec![0u64; total.div_ceil(4)];
            for (i, v) in values().enumerate() {
                packed[i / 4] |= v << ((i % 4) * 16);
            }
            packed.into_boxed_slice()
        };
        PackedState {
            words,
            wide,
            places,
        }
    }

    /// The packed value at flat index `i`.
    fn value(&self, i: usize) -> u64 {
        if self.wide {
            self.words[i]
        } else {
            (self.words[i / 4] >> ((i % 4) * 16)) & 0xFFFF
        }
    }

    /// Reconstructs the full state.
    ///
    /// # Panics
    ///
    /// Panics if `net` has a different shape than the packed snapshot.
    pub fn unpack(&self, net: &PetriNet) -> InstantaneousState {
        assert_eq!(net.num_places(), self.places, "net/place count mismatch");
        let mut marking = Marking::empty(net);
        for i in 0..self.places {
            let v = self.value(i);
            if v > 0 {
                marking.set(PlaceId::from_index(i), v as u32);
            }
        }
        let residual = (0..net.num_transitions())
            .map(|i| self.value(self.places + i))
            .collect();
        InstantaneousState { marking, residual }
    }

    /// The buffer size in words (diagnostics / memory accounting).
    pub fn num_words(&self) -> usize {
        self.words.len()
    }
}

// ---------------------------------------------------------------------------
// Policies
// ---------------------------------------------------------------------------

/// Everything a [`ChoicePolicy`] may inspect when resolving a choice.
#[derive(Debug)]
pub struct PolicyCtx<'a> {
    /// The net being executed.
    pub net: &'a PetriNet,
    /// The current state (marking + residuals), mid-instant.
    pub state: &'a InstantaneousState,
    /// Transitions that can start right now, in id order.
    pub startable: &'a [TransitionId],
    /// The current instant.
    pub time: u64,
}

/// Deterministic conflict resolution for nets with structural conflicts.
///
/// Within one instant the engine repeatedly asks the policy for the next
/// transition to start; returning `None` ends the instant. Implementations
/// must be deterministic functions of the observable history so that a
/// repeated instantaneous state implies repeated behaviour (the paper's
/// Assumption 5.2.1); any internal state must be exposed through
/// [`fingerprint`](ChoicePolicy::fingerprint).
pub trait ChoicePolicy {
    /// Picks the next transition to start, from `ctx.startable` (never
    /// empty). Returning `None` leaves the remaining startable transitions
    /// idle this instant.
    fn choose(&mut self, ctx: &PolicyCtx<'_>) -> Option<TransitionId>;

    /// Notifies the policy that an instant ended (after all completions and
    /// starts). Default: no-op.
    fn on_instant_end(&mut self, _net: &PetriNet, _state: &InstantaneousState, _time: u64) {}

    /// A digest of the policy's internal state, combined with the
    /// instantaneous state when detecting repeated states. Stateless
    /// policies return 0 (the default).
    fn fingerprint(&self) -> u64 {
        0
    }
}

/// The maximally parallel policy: starts **every** startable transition.
///
/// On persistent nets (marked graphs) this is the unique earliest-firing
/// behaviour; on nets with conflicts it greedily fires in transition-id
/// order, which is deterministic but usually not what a resource model
/// wants — use a queueing policy there.
#[derive(Clone, Copy, Debug, Default)]
pub struct EagerPolicy;

impl ChoicePolicy for EagerPolicy {
    fn choose(&mut self, ctx: &PolicyCtx<'_>) -> Option<TransitionId> {
        ctx.startable.first().copied()
    }
}

// ---------------------------------------------------------------------------
// Step records and repetition keys
// ---------------------------------------------------------------------------

/// One executed instant: what completed, what started, and the digest of
/// the state left behind.
///
/// The record deliberately does **not** carry the state itself — traces
/// are long and states are wide. Use
/// [`InstantaneousState::apply_step`] to replay event lists into a
/// concrete state when one is needed.
#[derive(Clone, Debug)]
pub struct StepRecord {
    /// The instant at which these events happened.
    pub time: u64,
    /// Transitions whose firing completed at this instant (tokens
    /// deposited), in id order.
    pub completed: Vec<TransitionId>,
    /// Transitions that started firing at this instant (tokens consumed),
    /// in start order.
    pub started: Vec<TransitionId>,
    /// Digest of `(state, policy_fingerprint)` after all events of this
    /// instant (see [`state_digest`]).
    pub digest: u64,
    /// The policy fingerprint after this instant.
    pub policy_fingerprint: u64,
}

/// The full repetition key for frustum detection: instantaneous state plus
/// the conflict-resolution policy's internal state. The digest-based fast
/// path makes carrying these per step unnecessary; the key remains the
/// ground truth that digest matches are verified against (and the whole
/// key that reference implementations may hash).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StateKey {
    /// Marking and residual firing times.
    pub state: InstantaneousState,
    /// Digest of the policy state.
    pub policy_fingerprint: u64,
}

impl Hash for StateKey {
    fn hash<H: Hasher>(&self, h: &mut H) {
        self.state.hash(h);
        self.policy_fingerprint.hash(h);
    }
}

// ---------------------------------------------------------------------------
// Engine counters
// ---------------------------------------------------------------------------

/// Cheap always-on execution counters maintained by the [`Engine`].
///
/// Every field is a plain `u64` incremented on the hot path (no branches,
/// no allocation), so keeping them unconditionally costs a few ALU ops per
/// instant. Consumers that want a full profile read them out with
/// [`Engine::stats`] after (or during) a run; the scheduler's frustum
/// detector snapshots them into its detection report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Instants simulated: one per [`Engine::start`] / [`Engine::tick`].
    pub instants: u64,
    /// Transition firings started (token consumptions).
    pub firings: u64,
    /// Transition firings completed (token depositions).
    pub completions: u64,
    /// Candidates placed on the startable list across all fire phases —
    /// the work a naive rescan-per-start implementation would redo.
    pub startable_scanned: u64,
    /// Candidates removed by the incremental prune (a started transition
    /// drained one of their input places) without rescanning the net.
    /// `startable_pruned / startable_scanned` is the prune efficiency.
    pub startable_pruned: u64,
}

impl EngineStats {
    /// Field-wise sum, for aggregating the counters of several runs.
    #[must_use]
    pub fn merged(self, other: EngineStats) -> EngineStats {
        EngineStats {
            instants: self.instants + other.instants,
            firings: self.firings + other.firings,
            completions: self.completions + other.completions,
            startable_scanned: self.startable_scanned + other.startable_scanned,
            startable_pruned: self.startable_pruned + other.startable_pruned,
        }
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Discrete-time earliest-firing execution engine.
///
/// # Example
///
/// ```
/// use tpn_petri::{PetriNet, Marking};
/// use tpn_petri::timed::{Engine, EagerPolicy};
///
/// // A ring of two transitions: fires alternately forever.
/// let mut net = PetriNet::new();
/// let a = net.add_transition("A", 1);
/// let b = net.add_transition("B", 1);
/// let ab = net.add_place("ab");
/// let ba = net.add_place("ba");
/// net.connect_tp(a, ab);
/// net.connect_pt(ab, b);
/// net.connect_tp(b, ba);
/// net.connect_pt(ba, a);
/// let m = Marking::from_pairs(&net, [(ba, 1)]);
///
/// let mut engine = Engine::new(&net, m, EagerPolicy);
/// assert_eq!(engine.start().started, vec![a]);
/// assert_eq!(engine.tick().started, vec![b]);
/// assert_eq!(engine.tick().started, vec![a]);
/// ```
#[derive(Debug)]
pub struct Engine<'a, P> {
    net: &'a PetriNet,
    state: InstantaneousState,
    /// Additive state hash, updated in lockstep with every token move and
    /// residual change (before policy-fingerprint folding).
    raw_digest: u64,
    /// Additive hash of the marking alone, maintained unconditionally so
    /// traced and untraced steps can interleave (see [`marking_digest`]).
    marking_raw: u64,
    time: u64,
    policy: P,
    started: bool,
    stats: EngineStats,
}

impl<'a, P: ChoicePolicy> Engine<'a, P> {
    /// Creates an engine over `net` at `initial_marking` with all
    /// transitions idle, at time 0.
    ///
    /// # Panics
    ///
    /// Panics if some transition has execution time 0 (use
    /// [`PetriNet::validate_times`] to check first).
    pub fn new(net: &'a PetriNet, initial_marking: Marking, policy: P) -> Self {
        net.validate_times()
            .unwrap_or_else(|e| panic!("invalid net for timed execution: {e}"));
        Self::new_unchecked(net, initial_marking, policy)
    }

    /// Fallible constructor variant.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::ZeroExecutionTime`] if some transition has
    /// `τ = 0`.
    pub fn try_new(
        net: &'a PetriNet,
        initial_marking: Marking,
        policy: P,
    ) -> Result<Self, PetriError> {
        net.validate_times()?;
        Ok(Self::new_unchecked(net, initial_marking, policy))
    }

    fn new_unchecked(net: &'a PetriNet, initial_marking: Marking, policy: P) -> Self {
        let state = InstantaneousState::initial(net, initial_marking);
        let mut raw_digest = 0u64;
        for (p, count) in state.marking.marked_places() {
            raw_digest = raw_digest.wrapping_add(place_word(p.index()).wrapping_mul(count as u64));
        }
        Engine {
            net,
            state,
            marking_raw: raw_digest,
            raw_digest,
            time: 0,
            policy,
            started: false,
            stats: EngineStats::default(),
        }
    }

    /// Executes instant 0: fires the initially enabled transitions.
    ///
    /// # Panics
    ///
    /// Panics if called twice, or after [`tick`](Self::tick).
    pub fn start(&mut self) -> StepRecord {
        self.start_traced(&mut NullSink)
    }

    /// Executes the next instant: completions, then earliest-rule starts.
    ///
    /// # Panics
    ///
    /// Panics if [`start`](Self::start) has not been called.
    pub fn tick(&mut self) -> StepRecord {
        self.tick_traced(&mut NullSink)
    }

    /// [`start`](Self::start), narrating each firing event to `sink`.
    ///
    /// With [`NullSink`] this monomorphizes to exactly the untraced step
    /// (`S::ENABLED` is a constant, so every recording branch folds away).
    ///
    /// # Panics
    ///
    /// Panics if called twice, or after [`tick`](Self::tick).
    pub fn start_traced<S: TraceSink>(&mut self, sink: &mut S) -> StepRecord {
        assert!(!self.started, "start() must be the first step");
        self.started = true;
        self.stats.instants += 1;
        let completed = Vec::new();
        let started = self.fire_phase(sink);
        self.policy.on_instant_end(self.net, &self.state, self.time);
        self.record(completed, started)
    }

    /// [`tick`](Self::tick), narrating each firing event to `sink`.
    ///
    /// Traced and untraced steps may interleave freely on one engine; the
    /// sink simply misses the events of untraced instants.
    ///
    /// # Panics
    ///
    /// Panics if [`start`](Self::start) has not been called.
    pub fn tick_traced<S: TraceSink>(&mut self, sink: &mut S) -> StepRecord {
        assert!(self.started, "call start() before tick()");
        self.time += 1;
        self.stats.instants += 1;
        let completed = self.complete_phase(sink);
        let started = self.fire_phase(sink);
        self.policy.on_instant_end(self.net, &self.state, self.time);
        self.record(completed, started)
    }

    fn record(&self, completed: Vec<TransitionId>, started: Vec<TransitionId>) -> StepRecord {
        StepRecord {
            time: self.time,
            completed,
            started,
            digest: self.digest(),
            policy_fingerprint: self.policy.fingerprint(),
        }
    }

    /// Advances busy transitions by one cycle; completes those reaching 0.
    fn complete_phase<S: TraceSink>(&mut self, sink: &mut S) -> Vec<TransitionId> {
        let mut completed = Vec::new();
        for idx in 0..self.state.residual.len() {
            if self.state.residual[idx] > 0 {
                self.state.residual[idx] -= 1;
                self.raw_digest = self.raw_digest.wrapping_sub(transition_word(idx));
                if self.state.residual[idx] == 0 {
                    let t = TransitionId::from_index(idx);
                    self.state.marking.produce_outputs(self.net, t);
                    for &p in self.net.transition(t).outputs() {
                        let w = place_word(p.index());
                        self.raw_digest = self.raw_digest.wrapping_add(w);
                        self.marking_raw = self.marking_raw.wrapping_add(w);
                    }
                    completed.push(t);
                    if S::ENABLED {
                        sink.record(FiringEvent {
                            time: self.time,
                            transition: t,
                            kind: EventKind::Complete,
                            residual: 0,
                            marking_digest: mix64(self.marking_raw),
                        });
                    }
                }
            }
        }
        self.stats.completions += completed.len() as u64;
        completed
    }

    /// Starts transitions under the earliest firing rule, consulting the
    /// policy while choices remain.
    ///
    /// Within one fire phase, starts only consume tokens and mark the
    /// started transition busy, so the startable set shrinks monotonically.
    /// It is therefore scanned once and pruned incrementally: starting `t`
    /// removes `t` itself plus any candidate sharing a drained input place
    /// (found via the place postsets), instead of rescanning the whole net
    /// after every start.
    fn fire_phase<S: TraceSink>(&mut self, sink: &mut S) -> Vec<TransitionId> {
        let mut started = Vec::new();
        let mut startable = self.state.startable(self.net);
        // Counters accumulate in locals so the loop body below touches no
        // `self.stats` memory; they fold in once on exit.
        let scanned = startable.len() as u64;
        let mut pruned = 0u64;
        let mut is_candidate = vec![false; self.net.num_transitions()];
        for &t in &startable {
            is_candidate[t.index()] = true;
        }
        while !startable.is_empty() {
            let ctx = PolicyCtx {
                net: self.net,
                state: &self.state,
                startable: &startable,
                time: self.time,
            };
            let Some(t) = self.policy.choose(&ctx) else {
                break;
            };
            assert!(
                is_candidate[t.index()] && startable.contains(&t),
                "policy chose {t}, which cannot start now"
            );
            self.state.marking.consume_inputs(self.net, t);
            for &p in self.net.transition(t).inputs() {
                let w = place_word(p.index());
                self.raw_digest = self.raw_digest.wrapping_sub(w);
                self.marking_raw = self.marking_raw.wrapping_sub(w);
            }
            let tau = self.net.transition(t).time();
            self.state.residual[t.index()] = tau;
            self.raw_digest = self
                .raw_digest
                .wrapping_add(transition_word(t.index()).wrapping_mul(tau));
            started.push(t);
            if S::ENABLED {
                sink.record(FiringEvent {
                    time: self.time,
                    transition: t,
                    kind: EventKind::Start,
                    residual: tau,
                    marking_digest: mix64(self.marking_raw),
                });
            }
            is_candidate[t.index()] = false;
            for &p in self.net.transition(t).inputs() {
                for &u in self.net.place(p).postset() {
                    if is_candidate[u.index()] && !self.state.marking.enables(self.net, u) {
                        is_candidate[u.index()] = false;
                        pruned += 1;
                    }
                }
            }
            startable.retain(|&u| is_candidate[u.index()]);
        }
        self.stats.startable_scanned += scanned;
        self.stats.startable_pruned += pruned;
        self.stats.firings += started.len() as u64;
        started
    }

    /// The current instant (0 until the first [`tick`](Self::tick)).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// The current instantaneous state.
    pub fn state(&self) -> &InstantaneousState {
        &self.state
    }

    /// The net being executed.
    pub fn net(&self) -> &'a PetriNet {
        self.net
    }

    /// The policy's current fingerprint.
    pub fn policy_fingerprint(&self) -> u64 {
        self.policy.fingerprint()
    }

    /// The execution counters accumulated so far (see [`EngineStats`]).
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The current repetition digest, maintained incrementally — equal to
    /// [`state_digest`]`(self.state(), self.policy_fingerprint())` at
    /// every instant boundary, without rehashing the state.
    pub fn digest(&self) -> u64 {
        finalize_digest(self.raw_digest, self.policy.fingerprint())
    }

    /// A compact snapshot of the current state (for checkpointing).
    pub fn packed_state(&self) -> PackedState {
        PackedState::pack(&self.state)
    }

    /// The full repetition key of the current state (see [`StateKey`]).
    /// Clones the state: intended for reference implementations and
    /// verification, not per-step use.
    pub fn state_key(&self) -> StateKey {
        StateKey {
            state: self.state.clone(),
            policy_fingerprint: self.policy.fingerprint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// L1-like diamond with acknowledgement arcs: A feeds B and C, both
    /// feed D. All unit times.
    fn diamond() -> (PetriNet, Marking, Vec<TransitionId>) {
        let mut net = PetriNet::new();
        let a = net.add_transition("A", 1);
        let b = net.add_transition("B", 1);
        let c = net.add_transition("C", 1);
        let d = net.add_transition("D", 1);
        let mut marking_pairs = Vec::new();
        let wire = |net: &mut PetriNet, from: TransitionId, to: TransitionId| {
            let fwd = net.add_place(format!("{from}->{to}"));
            let ack = net.add_place(format!("{to}=>{from}"));
            net.connect_tp(from, fwd);
            net.connect_pt(fwd, to);
            net.connect_tp(to, ack);
            net.connect_pt(ack, from);
            ack
        };
        for (x, y) in [(a, b), (a, c), (b, d), (c, d)] {
            let ack = wire(&mut net, x, y);
            marking_pairs.push((ack, 1));
        }
        let m = Marking::from_pairs(&net, marking_pairs);
        (net, m, vec![a, b, c, d])
    }

    #[test]
    fn earliest_rule_fires_wavefronts() {
        let (net, m, ts) = diamond();
        let (a, b, c, d) = (ts[0], ts[1], ts[2], ts[3]);
        let mut engine = Engine::new(&net, m, EagerPolicy);
        assert_eq!(engine.start().started, vec![a]);
        let s1 = engine.tick();
        assert_eq!(s1.completed, vec![a]);
        assert_eq!(s1.started, vec![b, c]);
        let s2 = engine.tick();
        // B and C complete; D starts, and A restarts (acks from B, C).
        assert_eq!(s2.completed, vec![b, c]);
        assert_eq!(s2.started, vec![a, d]);
    }

    #[test]
    fn residuals_track_multi_cycle_transitions() {
        let mut net = PetriNet::new();
        let a = net.add_transition("slow", 3);
        let p = net.add_place("self");
        net.connect_tp(a, p);
        net.connect_pt(p, a);
        let m = Marking::from_pairs(&net, [(p, 1)]);
        let mut engine = Engine::new(&net, m, EagerPolicy);
        let s0 = engine.start();
        assert_eq!(s0.started, vec![a]);
        assert!(engine.state().is_busy(a));
        let s1 = engine.tick();
        assert!(s1.completed.is_empty() && s1.started.is_empty());
        let s2 = engine.tick();
        assert!(s2.completed.is_empty());
        let s3 = engine.tick();
        // Completes after exactly 3 cycles and immediately restarts.
        assert_eq!(s3.completed, vec![a]);
        assert_eq!(s3.started, vec![a]);
        assert_eq!(engine.time(), 3);
    }

    #[test]
    fn non_reentrance_is_enforced_without_self_loop() {
        // A source-like transition (no inputs) must not overlap itself.
        let mut net = PetriNet::new();
        let src = net.add_transition("src", 2);
        let sink = net.add_transition("sink", 1);
        let p = net.add_place("p");
        let back = net.add_place("back");
        net.connect_tp(src, p);
        net.connect_pt(p, sink);
        net.connect_tp(sink, back);
        net.connect_pt(back, src);
        let m = Marking::from_pairs(&net, [(back, 1)]);
        let mut engine = Engine::new(&net, m, EagerPolicy);
        engine.start();
        let s1 = engine.tick();
        // src is mid-firing: nothing new starts even though it has no
        // unmarked inputs (its only input is empty anyway here).
        assert!(s1.started.is_empty());
        let s2 = engine.tick();
        assert_eq!(s2.completed, vec![src]);
        assert_eq!(s2.started, vec![sink]);
    }

    #[test]
    fn deterministic_replay_from_equal_states() {
        let (net, m, _) = diamond();
        let mut e1 = Engine::new(&net, m.clone(), EagerPolicy);
        let mut e2 = Engine::new(&net, m, EagerPolicy);
        e1.start();
        e2.start();
        for _ in 0..20 {
            let s1 = e1.tick();
            let s2 = e2.tick();
            assert_eq!(s1.started, s2.started);
            assert_eq!(s1.digest, s2.digest);
            assert_eq!(e1.state(), e2.state());
        }
    }

    #[test]
    fn incremental_digest_matches_from_scratch_hash() {
        let (net, m, _) = diamond();
        let mut engine = Engine::new(&net, m, EagerPolicy);
        let s0 = engine.start();
        assert_eq!(
            s0.digest,
            state_digest(engine.state(), engine.policy_fingerprint())
        );
        for _ in 0..40 {
            let step = engine.tick();
            assert_eq!(
                step.digest,
                state_digest(engine.state(), engine.policy_fingerprint()),
                "incremental digest diverged at instant {}",
                step.time
            );
        }
    }

    #[test]
    fn event_replay_reconstructs_states() {
        let (net, m, _) = diamond();
        let mut engine = Engine::new(&net, m.clone(), EagerPolicy);
        let mut replayed = InstantaneousState::initial(&net, m);
        let s0 = engine.start();
        replayed.apply_step(&net, &s0.started);
        assert_eq!(&replayed, engine.state());
        for _ in 0..30 {
            let step = engine.tick();
            replayed.apply_step(&net, &step.started);
            assert_eq!(&replayed, engine.state(), "diverged at {}", step.time);
            assert_eq!(
                state_digest(&replayed, step.policy_fingerprint),
                step.digest
            );
        }
    }

    #[test]
    fn packed_state_round_trips() {
        let (net, m, _) = diamond();
        let mut engine = Engine::new(&net, m, EagerPolicy);
        engine.start();
        for _ in 0..10 {
            engine.tick();
            let packed = engine.packed_state();
            assert_eq!(&packed.unpack(&net), engine.state());
            // 8 places + 4 transitions at 4 lanes/word -> 3 words.
            assert_eq!(packed.num_words(), 3);
        }
    }

    #[test]
    fn packed_state_wide_fallback_round_trips() {
        let mut net = PetriNet::new();
        let t = net.add_transition("huge", (u16::MAX as u64) + 10);
        let p = net.add_place("self");
        net.connect_tp(t, p);
        net.connect_pt(p, t);
        let m = Marking::from_pairs(&net, [(p, 1)]);
        let mut engine = Engine::new(&net, m, EagerPolicy);
        engine.start();
        let packed = engine.packed_state();
        assert_eq!(&packed.unpack(&net), engine.state());
        assert_eq!(packed.num_words(), 2); // one place + one transition, wide
    }

    #[test]
    fn state_key_distinguishes_policy_state() {
        struct Counter(u64);
        impl ChoicePolicy for Counter {
            fn choose(&mut self, ctx: &PolicyCtx<'_>) -> Option<TransitionId> {
                ctx.startable.first().copied()
            }
            fn on_instant_end(&mut self, _: &PetriNet, _: &InstantaneousState, _: u64) {
                self.0 += 1;
            }
            fn fingerprint(&self) -> u64 {
                self.0
            }
        }
        let (net, m, _) = diamond();
        let mut engine = Engine::new(&net, m, Counter(0));
        let s0 = engine.start();
        let s2 = {
            engine.tick();
            engine.tick()
        };
        // Policy fingerprints differ, so both the digest and the full
        // state key must differ even when the raw state repeats.
        assert_ne!(s0.digest, s2.digest);
        assert_ne!(s0.policy_fingerprint, s2.policy_fingerprint);
    }

    #[test]
    #[should_panic(expected = "invalid net")]
    fn zero_time_rejected_by_engine() {
        let mut net = PetriNet::new();
        net.add_transition("z", 0);
        let m = Marking::empty(&net);
        let _ = Engine::new(&net, m, EagerPolicy);
    }

    #[test]
    fn try_new_reports_zero_time() {
        let mut net = PetriNet::new();
        let t = net.add_transition("z", 0);
        let m = Marking::empty(&net);
        match Engine::try_new(&net, m, EagerPolicy) {
            Err(PetriError::ZeroExecutionTime { transition }) => assert_eq!(transition, t),
            other => panic!("expected ZeroExecutionTime, got {other:?}"),
        }
    }

    #[test]
    fn engine_stats_count_instants_and_events() {
        let (net, m, _) = diamond();
        let mut engine = Engine::new(&net, m, EagerPolicy);
        let mut firings = 0u64;
        let mut completions = 0u64;
        firings += engine.start().started.len() as u64;
        for _ in 0..19 {
            let s = engine.tick();
            firings += s.started.len() as u64;
            completions += s.completed.len() as u64;
        }
        let stats = engine.stats();
        assert_eq!(stats.instants, 20);
        assert_eq!(stats.firings, firings);
        assert_eq!(stats.completions, completions);
        assert!(stats.firings > 0 && stats.completions > 0);
        // Every candidate either starts or is pruned (the eager policy
        // starts everything it can), so scanned = fired + pruned.
        assert_eq!(
            stats.startable_scanned,
            stats.firings + stats.startable_pruned
        );
        let merged = stats.merged(stats);
        assert_eq!(merged.instants, 40);
        assert_eq!(merged.firings, 2 * stats.firings);
    }

    #[test]
    fn traced_run_matches_step_records_and_marking_digests() {
        use crate::trace::RingRecorder;
        let (net, m, _) = diamond();
        let mut traced = Engine::new(&net, m.clone(), EagerPolicy);
        let mut plain = Engine::new(&net, m.clone(), EagerPolicy);
        let mut rec = RingRecorder::with_capacity(4096);
        let mut steps = vec![traced.start_traced(&mut rec)];
        plain.start();
        for _ in 0..30 {
            let s = traced.tick_traced(&mut rec);
            let p = plain.tick();
            // Tracing must not perturb execution: digests stay identical.
            assert_eq!(p.digest, s.digest);
            steps.push(s);
        }
        assert_eq!(rec.dropped(), 0);
        let events = rec.into_events();
        // Events arrive in mutation order: per instant, completions in id
        // order, then starts in start order — replay them onto a marking
        // replica and check every stamped digest.
        let mut replica = m;
        let mut idx = 0;
        for s in &steps {
            for &t in &s.completed {
                let e = events[idx];
                idx += 1;
                replica.produce_outputs(&net, t);
                assert_eq!(
                    (e.time, e.transition, e.kind, e.residual),
                    (s.time, t, EventKind::Complete, 0)
                );
                assert_eq!(e.marking_digest, marking_digest(&replica));
            }
            for &t in &s.started {
                let e = events[idx];
                idx += 1;
                replica.consume_inputs(&net, t);
                assert_eq!(
                    (e.time, e.transition, e.kind),
                    (s.time, t, EventKind::Start)
                );
                assert_eq!(e.residual, net.transition(t).time());
                assert_eq!(e.marking_digest, marking_digest(&replica));
            }
        }
        assert_eq!(idx, events.len());
        assert_eq!(&replica, &traced.state().marking);
    }

    #[test]
    fn traced_and_untraced_instants_interleave() {
        use crate::trace::RingRecorder;
        let (net, m, _) = diamond();
        let mut engine = Engine::new(&net, m, EagerPolicy);
        let mut rec = RingRecorder::with_capacity(64);
        engine.start();
        engine.tick(); // untraced: sink misses these events...
        let s = engine.tick_traced(&mut rec);
        // ...but the digests stamped on later events are still correct.
        if let Some(last) = rec.events().last() {
            assert_eq!(last.marking_digest, marking_digest(&engine.state().marking));
        }
        assert_eq!(s.digest, state_digest(engine.state(), 0));
    }

    #[test]
    fn dead_net_idles_forever() {
        let (net, _, _) = diamond();
        let mut engine = Engine::new(&net, Marking::empty(&net), EagerPolicy);
        assert!(engine.start().started.is_empty());
        for _ in 0..5 {
            let s = engine.tick();
            assert!(s.started.is_empty() && s.completed.is_empty());
        }
        assert!(engine.state().all_idle());
    }
}
