//! Typed indices for places and transitions.
//!
//! Nets store their components in arenas; these newtypes make it impossible
//! to confuse a place index with a transition index (C-NEWTYPE).

use std::fmt;

/// Identifier of a place within a [`crate::PetriNet`].
///
/// Displayed as `p<index>`, matching the figures of the paper.
///
/// ```
/// use tpn_petri::PetriNet;
/// let mut net = tpn_petri::PetriNet::new();
/// let p = net.add_place("buf");
/// assert_eq!(p.to_string(), "p0");
/// # let _ = net;
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PlaceId(pub(crate) u32);

/// Identifier of a transition within a [`crate::PetriNet`].
///
/// Displayed as `t<index>`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TransitionId(pub(crate) u32);

impl PlaceId {
    /// Position of this place in the net's place arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from an arena index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        PlaceId(u32::try_from(index).expect("place index overflows u32"))
    }
}

impl TransitionId {
    /// Position of this transition in the net's transition arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from an arena index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        TransitionId(u32::try_from(index).expect("transition index overflows u32"))
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_indices() {
        let p = PlaceId::from_index(7);
        assert_eq!(p.index(), 7);
        let t = TransitionId::from_index(3);
        assert_eq!(t.index(), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(PlaceId::from_index(12).to_string(), "p12");
        assert_eq!(TransitionId::from_index(0).to_string(), "t0");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(PlaceId::from_index(1) < PlaceId::from_index(2));
        assert!(TransitionId::from_index(0) < TransitionId::from_index(9));
    }
}
