//! Markings and the untimed firing rule (Appendix A.2).

use std::fmt;

use crate::ids::{PlaceId, TransitionId};
use crate::net::PetriNet;

/// A marking `M : P → ℕ`: the number of tokens on each place.
///
/// Markings are dense vectors indexed by [`PlaceId`]; they implement
/// `Hash`/`Eq` so that reachability exploration and cyclic-frustum detection
/// can use them as map keys.
///
/// # Example
///
/// ```
/// use tpn_petri::{PetriNet, Marking};
///
/// let mut net = PetriNet::new();
/// let t = net.add_transition("t", 1);
/// let a = net.add_place("a");
/// let b = net.add_place("b");
/// net.connect_pt(a, t);
/// net.connect_tp(t, b);
///
/// let mut m = Marking::empty(&net);
/// m.set(a, 1);
/// assert!(m.enables(&net, t));
/// m.fire(&net, t);
/// assert_eq!(m.tokens(a), 0);
/// assert_eq!(m.tokens(b), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Marking {
    tokens: Vec<u32>,
}

impl Marking {
    /// The empty marking (no tokens anywhere) for `net`.
    pub fn empty(net: &PetriNet) -> Self {
        Marking {
            tokens: vec![0; net.num_places()],
        }
    }

    /// Builds a marking from `(place, count)` pairs, all other places empty.
    ///
    /// # Panics
    ///
    /// Panics if a place id is out of range for `net`.
    pub fn from_pairs(net: &PetriNet, pairs: impl IntoIterator<Item = (PlaceId, u32)>) -> Self {
        let mut m = Marking::empty(net);
        for (p, n) in pairs {
            m.set(p, n);
        }
        m
    }

    /// Tokens currently on `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn tokens(&self, p: PlaceId) -> u32 {
        self.tokens[p.index()]
    }

    /// Sets the token count of `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn set(&mut self, p: PlaceId, n: u32) {
        self.tokens[p.index()] = n;
    }

    /// Adds `n` tokens to `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or the count overflows.
    #[inline]
    pub fn add(&mut self, p: PlaceId, n: u32) {
        let slot = &mut self.tokens[p.index()];
        *slot = slot.checked_add(n).expect("token count overflow");
    }

    /// Removes `n` tokens from `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or holds fewer than `n` tokens.
    #[inline]
    pub fn remove(&mut self, p: PlaceId, n: u32) {
        let slot = &mut self.tokens[p.index()];
        *slot = slot
            .checked_sub(n)
            .expect("removing tokens from an underfull place");
    }

    /// Total number of tokens in the marking.
    pub fn total(&self) -> u64 {
        self.tokens.iter().map(|&n| n as u64).sum()
    }

    /// Number of places tracked by this marking.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the marking covers no places (only for degenerate nets).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Iterates over `(place, count)` for places with at least one token.
    pub fn marked_places(&self) -> impl Iterator<Item = (PlaceId, u32)> + '_ {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (PlaceId::from_index(i), n))
    }

    /// Whether `M` enables transition `t`: every input place holds a token
    /// (`M →t` in the paper's notation).
    pub fn enables(&self, net: &PetriNet, t: TransitionId) -> bool {
        net.transition(t)
            .inputs()
            .iter()
            .all(|&p| self.tokens(p) > 0)
    }

    /// All transitions enabled at this marking, in id order.
    pub fn enabled_transitions(&self, net: &PetriNet) -> Vec<TransitionId> {
        net.transition_ids()
            .filter(|&t| self.enables(net, t))
            .collect()
    }

    /// Fires `t` atomically (untimed semantics): removes one token from each
    /// input place and deposits one on each output place.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not enabled.
    pub fn fire(&mut self, net: &PetriNet, t: TransitionId) {
        assert!(self.enables(net, t), "transition {t} is not enabled");
        self.consume_inputs(net, t);
        self.produce_outputs(net, t);
    }

    /// Removes one token from each input place of `t` (the start of a timed
    /// firing).
    ///
    /// # Panics
    ///
    /// Panics if an input place is empty.
    pub fn consume_inputs(&mut self, net: &PetriNet, t: TransitionId) {
        for &p in net.transition(t).inputs() {
            self.remove(p, 1);
        }
    }

    /// Deposits one token on each output place of `t` (the end of a timed
    /// firing).
    pub fn produce_outputs(&mut self, net: &PetriNet, t: TransitionId) {
        for &p in net.transition(t).outputs() {
            self.add(p, 1);
        }
    }

    /// Whether the marking is safe (at most one token per place) — the
    /// structural snapshot check; see [`crate::marked::check_safe`] for the
    /// behavioural property over all reachable markings.
    pub fn is_safe_snapshot(&self) -> bool {
        self.tokens.iter().all(|&n| n <= 1)
    }

    /// Fires the whole sequence `seq` in order.
    ///
    /// # Panics
    ///
    /// Panics if some transition in the sequence is not enabled when its
    /// turn comes.
    pub fn fire_sequence(&mut self, net: &PetriNet, seq: &[TransitionId]) {
        for &t in seq {
            self.fire(net, t);
        }
    }

    /// The firing vector `f(σ)` of a sequence: occurrence counts per
    /// transition (Appendix A.2).
    pub fn firing_vector(net: &PetriNet, seq: &[TransitionId]) -> Vec<u64> {
        let mut v = vec![0u64; net.num_transitions()];
        for &t in seq {
            v[t.index()] += 1;
        }
        v
    }
}

impl fmt::Debug for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Marking{{")?;
        let mut first = true;
        for (p, n) in self.marked_places() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            if n == 1 {
                write!(f, "{p}")?;
            } else {
                write!(f, "{p}:{n}")?;
            }
        }
        if first {
            write!(f, "empty")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> (
        PetriNet,
        TransitionId,
        TransitionId,
        PlaceId,
        PlaceId,
        PlaceId,
    ) {
        // a --(p0)--> t0 --(p1)--> t1 --(p2)
        let mut net = PetriNet::new();
        let t0 = net.add_transition("t0", 1);
        let t1 = net.add_transition("t1", 1);
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        net.connect_pt(p0, t0);
        net.connect_tp(t0, p1);
        net.connect_pt(p1, t1);
        net.connect_tp(t1, p2);
        (net, t0, t1, p0, p1, p2)
    }

    #[test]
    fn enabling_and_firing_moves_tokens() {
        let (net, t0, t1, p0, p1, p2) = chain();
        let mut m = Marking::from_pairs(&net, [(p0, 1)]);
        assert!(m.enables(&net, t0));
        assert!(!m.enables(&net, t1));
        m.fire(&net, t0);
        assert_eq!(m.tokens(p0), 0);
        assert_eq!(m.tokens(p1), 1);
        m.fire(&net, t1);
        assert_eq!(m.tokens(p2), 1);
        assert_eq!(m.total(), 1);
    }

    #[test]
    #[should_panic(expected = "not enabled")]
    fn firing_disabled_transition_panics() {
        let (net, t0, ..) = chain();
        let mut m = Marking::empty(&net);
        m.fire(&net, t0);
    }

    #[test]
    fn enabled_transitions_in_id_order() {
        let (net, t0, t1, p0, p1, _) = chain();
        let m = Marking::from_pairs(&net, [(p0, 1), (p1, 1)]);
        assert_eq!(m.enabled_transitions(&net), vec![t0, t1]);
    }

    #[test]
    fn fire_sequence_and_vector() {
        let (net, t0, t1, p0, ..) = chain();
        let mut m = Marking::from_pairs(&net, [(p0, 2)]);
        m.fire_sequence(&net, &[t0, t1, t0]);
        let v = Marking::firing_vector(&net, &[t0, t1, t0]);
        assert_eq!(v, vec![2, 1]);
        assert_eq!(m.total(), 2);
    }

    #[test]
    fn marked_places_skips_empty() {
        let (net, _, _, p0, _, p2) = chain();
        let m = Marking::from_pairs(&net, [(p0, 1), (p2, 3)]);
        let pairs: Vec<_> = m.marked_places().collect();
        assert_eq!(pairs, vec![(p0, 1), (p2, 3)]);
        assert!(!m.is_safe_snapshot());
    }

    #[test]
    fn debug_format_lists_tokens() {
        let (net, _, _, p0, _, p2) = chain();
        let m = Marking::from_pairs(&net, [(p0, 1), (p2, 2)]);
        assert_eq!(format!("{m:?}"), "Marking{p0, p2:2}");
        let e = Marking::empty(&net);
        assert_eq!(format!("{e:?}"), "Marking{empty}");
    }

    #[test]
    #[should_panic(expected = "underfull")]
    fn remove_from_empty_place_panics() {
        let (net, _, _, p0, ..) = chain();
        let mut m = Marking::empty(&net);
        m.remove(p0, 1);
    }
}
