//! Graphviz export of nets and markings (for the paper's figures).

use std::fmt::Write as _;

use crate::marking::Marking;
use crate::net::PetriNet;

/// Renders `net` with `marking` in Graphviz dot format: places as circles
/// (annotated with their token count), transitions as boxes (annotated with
/// their execution time when it is not 1).
///
/// # Example
///
/// ```
/// use tpn_petri::{PetriNet, Marking};
/// use tpn_petri::dot::to_dot;
///
/// let mut net = PetriNet::new();
/// let t = net.add_transition("A", 1);
/// let p = net.add_place("out");
/// net.connect_tp(t, p);
/// let dot = to_dot(&net, &Marking::empty(&net));
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("\"A\""));
/// ```
pub fn to_dot(net: &PetriNet, marking: &Marking) -> String {
    let mut out = String::from("digraph petri {\n  rankdir=TB;\n");
    for (id, place) in net.places() {
        let tokens = marking.tokens(id);
        let label = if tokens == 0 {
            place.name().to_string()
        } else if tokens == 1 {
            format!("{} \u{25CF}", place.name())
        } else {
            format!("{} \u{25CF}x{}", place.name(), tokens)
        };
        let _ = writeln!(out, "  {id} [shape=circle, label=\"{}\"];", escape(&label));
    }
    for (id, transition) in net.transitions() {
        let label = if transition.time() == 1 {
            transition.name().to_string()
        } else {
            format!("{} ({})", transition.name(), transition.time())
        };
        let _ = writeln!(
            out,
            "  {id} [shape=box, style=filled, fillcolor=lightgray, label=\"{}\"];",
            escape(&label)
        );
    }
    for (tid, transition) in net.transitions() {
        for &p in transition.outputs() {
            let _ = writeln!(out, "  {tid} -> {p};");
        }
        for &p in transition.inputs() {
            let _ = writeln!(out, "  {p} -> {tid};");
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_nodes_and_arcs() {
        let mut net = PetriNet::new();
        let a = net.add_transition("A", 1);
        let b = net.add_transition("B", 2);
        let p = net.add_place("fwd");
        net.connect_tp(a, p);
        net.connect_pt(p, b);
        let m = Marking::from_pairs(&net, [(p, 1)]);
        let dot = to_dot(&net, &m);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("t0 -> p0"));
        assert!(dot.contains("p0 -> t1"));
        assert!(dot.contains("B (2)"));
        assert!(dot.contains('\u{25CF}'));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn names_with_quotes_are_escaped() {
        let mut net = PetriNet::new();
        net.add_transition("say \"hi\"", 1);
        let dot = to_dot(&net, &Marking::empty(&net));
        assert!(dot.contains("say \\\"hi\\\""));
    }
}
