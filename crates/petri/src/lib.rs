//! Timed Petri nets, marked graphs, and critical-cycle analysis.
//!
//! This crate is the foundational substrate of the reproduction of
//! *"A Timed Petri-Net Model for Fine-Grain Loop Scheduling"*
//! (Gao, Wong & Ning, PLDI 1991). It implements the model of Appendix A of
//! the paper:
//!
//! * [`PetriNet`] — places, transitions, arcs, with deterministic integer
//!   execution times on transitions (a *timed* Petri net in the sense of
//!   Ramchandani).
//! * [`Marking`] — token assignments, the untimed firing rule, and the
//!   classical behavioural properties (enabledness, reachability on bounded
//!   nets, liveness / safety / persistence).
//! * [`marked`] — the marked-graph subclass (`|•p| = |p•| = 1` for every
//!   place) together with the classical structure theorems used throughout
//!   the paper: liveness ⇔ every simple cycle carries a token, safety ⇔
//!   every place lies on a token-count-1 cycle, and token-count invariance.
//! * [`timed`] — instantaneous states (marking + residual firing-time
//!   vector) and a deterministic *earliest firing rule* execution engine
//!   with pluggable conflict-resolution policies (Assumption A.6.2 and
//!   Assumption 5.2.1 of the paper).
//! * [`cycles`] — enumeration of simple cycles (Johnson's algorithm on the
//!   transition multigraph).
//! * [`ratio`] — critical cycles: maximisation of Ω(C)/M(C) over simple
//!   cycles, both by enumeration and by an exact parametric search
//!   (Lawler's method driven by a Stern–Brocot descent), yielding the
//!   optimal computation rate of §A.7.
//! * [`rational`] — a small exact rational type used for cycle times and
//!   computation rates.
//!
//! # Example
//!
//! Build the two-transition producer/consumer net (a forward place and an
//! acknowledgement place), compute its cycle time, and run it under the
//! earliest firing rule:
//!
//! ```
//! use tpn_petri::{PetriNet, Marking, timed::{Engine, EagerPolicy}};
//! use tpn_petri::ratio::critical_ratio;
//!
//! let mut net = PetriNet::new();
//! let a = net.add_transition("A", 1);
//! let b = net.add_transition("B", 1);
//! let data = net.add_place("data");
//! let ack = net.add_place("ack");
//! net.connect_tp(a, data);
//! net.connect_pt(data, b);
//! net.connect_tp(b, ack);
//! net.connect_pt(ack, a);
//!
//! let mut marking = Marking::empty(&net);
//! marking.set(ack, 1); // the buffer starts out empty
//!
//! // The only simple cycle is A -> data -> B -> ack -> A with 2 time units
//! // and 1 token, so the cycle time is 2 and the computation rate 1/2.
//! let ratio = critical_ratio(&net, &marking).expect("live net");
//! assert_eq!(ratio.cycle_time.to_string(), "2");
//!
//! let mut engine = Engine::new(&net, marking, EagerPolicy::default());
//! let step0 = engine.start();
//! assert_eq!(step0.started, vec![a]);
//! let step1 = engine.tick();
//! assert_eq!(step1.started, vec![b]);
//! ```

pub mod coverability;
pub mod cycles;
pub mod dot;
pub mod error;
pub mod gen;
pub mod ids;
pub mod invariants;
pub mod marked;
pub mod marking;
pub mod net;
pub mod ratio;
pub mod rational;
pub mod reach;
pub mod timed;
pub mod trace;

pub use error::PetriError;
pub use ids::{PlaceId, TransitionId};
pub use marking::Marking;
pub use net::{PetriNet, Place, Transition};
pub use rational::Ratio;
