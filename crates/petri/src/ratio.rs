//! Critical cycles and optimal computation rates (Appendix A.7).
//!
//! For a live timed marked graph, all transitions share the same asymptotic
//! *cycle time*
//!
//! ```text
//! α* = max over simple cycles C of Ω(C) / M(C)
//! ```
//!
//! where `Ω(C)` is the total execution time of the cycle's transitions and
//! `M(C)` its token count; the *computation rate* is `γ = 1/α*`
//! (Ramamoorthy & Ho). Cycles attaining the maximum are the **critical
//! cycles**; they bound the performance of a software-pipelined loop and
//! drive both the schedule-quality checks and the storage optimiser.
//!
//! Two independent implementations are provided and cross-checked in tests:
//!
//! * [`analyze_cycles`] — exhaustive enumeration via [`crate::cycles`],
//!   exact but potentially exponential; returns every cycle with its ratio.
//! * [`critical_ratio`] — Howard's policy iteration over the transition
//!   multigraph: exact rational arithmetic throughout, near-linear in
//!   practice, with the critical cycle read off the converged policy. If
//!   policy iteration fails to settle within its sweep budget (never
//!   observed; the bound exists for totality) the solver falls back to
//!   Lawler's parametric method — an exact Stern–Brocot descent over
//!   candidate ratios, each step a positive-cycle (Bellman–Ford) test —
//!   which is the polynomial-time replacement the paper alludes to when it
//!   cites the linear-programming formulation of the cycle-time problem.
//!
//! The implicit self-loop of Assumption A.6.1 (a transition cannot overlap
//! its own firings) contributes the candidate cycle time `τ(t)` for every
//! transition; both entry points take it into account, so an acyclic net
//! still has the well-defined cycle time `max τ`.

use crate::cycles::{simple_cycles, Cycle};
use crate::error::PetriError;
use crate::ids::{PlaceId, TransitionId};
use crate::marked::check_live;
use crate::marking::Marking;
use crate::net::PetriNet;
use crate::rational::Ratio;

/// What attains the critical cycle time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CriticalWitness {
    /// An explicit simple cycle with `Ω/M` equal to the cycle time.
    Cycle(Cycle),
    /// The implicit self-loop of a transition whose execution time alone
    /// dominates every explicit cycle ratio.
    SelfLoop(TransitionId),
}

/// Result of critical-cycle analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalRatio {
    /// The cycle time `α* = max Ω(C)/M(C)` (at least `max τ`).
    pub cycle_time: Ratio,
    /// The optimal computation rate `γ = 1/α*`.
    pub rate: Ratio,
    /// A cycle (or self-loop) attaining `α*`.
    pub witness: CriticalWitness,
}

/// Per-cycle data from exhaustive enumeration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleInfo {
    /// The cycle itself.
    pub cycle: Cycle,
    /// `Ω(C)`: summed execution time.
    pub time_sum: u64,
    /// `M(C)`: summed tokens.
    pub token_sum: u64,
    /// `Ω(C)/M(C)` as an exact rational.
    pub cycle_time: Ratio,
}

/// Result of [`analyze_cycles`]: every simple cycle with its ratio, plus
/// the net-wide cycle time and rate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleAnalysis {
    /// All simple cycles of the net (excluding implicit self-loops).
    pub cycles: Vec<CycleInfo>,
    /// The net cycle time including the implicit self-loop bound `max τ`.
    pub cycle_time: Ratio,
    /// `1 / cycle_time`.
    pub rate: Ratio,
    /// Indices into `cycles` of the cycles attaining `cycle_time` (empty if
    /// the bound comes from a self-loop only).
    pub critical: Vec<usize>,
}

impl CycleAnalysis {
    /// The critical cycles themselves.
    pub fn critical_cycles(&self) -> impl Iterator<Item = &CycleInfo> {
        self.critical.iter().map(|&i| &self.cycles[i])
    }

    /// Whether the net has more than one critical cycle — the harder case
    /// of §4.2 of the paper.
    pub fn has_multiple_critical_cycles(&self) -> bool {
        self.critical.len() > 1
    }
}

/// Exhaustive critical-cycle analysis by cycle enumeration.
///
/// # Errors
///
/// * Errors from [`simple_cycles`] (not a marked graph / too many cycles).
/// * [`PetriError::NotLive`] if some cycle is token-free (the cycle time
///   would be infinite).
/// * [`PetriError::NoCycle`] for a net with no transitions at all.
pub fn analyze_cycles(
    net: &PetriNet,
    marking: &Marking,
    limit: usize,
) -> Result<CycleAnalysis, PetriError> {
    if net.num_transitions() == 0 {
        return Err(PetriError::NoCycle);
    }
    let cycles = simple_cycles(net, limit)?;
    let mut infos = Vec::with_capacity(cycles.len());
    for cycle in cycles {
        let time_sum = cycle.time_sum(net);
        let token_sum = cycle.token_sum(marking);
        if token_sum == 0 {
            return Err(PetriError::NotLive {
                cycle: cycle.transitions().to_vec(),
            });
        }
        infos.push(CycleInfo {
            cycle_time: Ratio::new(time_sum, token_sum),
            cycle,
            time_sum,
            token_sum,
        });
    }
    let self_loop_bound = net
        .transitions()
        .map(|(_, t)| t.time())
        .max()
        .map(Ratio::from_integer)
        .unwrap_or(Ratio::ZERO);
    let cycle_bound = infos
        .iter()
        .map(|i| i.cycle_time)
        .max()
        .unwrap_or(Ratio::ZERO);
    let cycle_time = self_loop_bound.max(cycle_bound);
    let critical = infos
        .iter()
        .enumerate()
        .filter(|(_, i)| i.cycle_time == cycle_time)
        .map(|(idx, _)| idx)
        .collect();
    Ok(CycleAnalysis {
        cycles: infos,
        cycle_time,
        rate: cycle_time.recip(),
        critical,
    })
}

/// Exact polynomial-time critical-cycle analysis (Lawler's parametric
/// method with a Stern–Brocot descent).
///
/// # Errors
///
/// * [`PetriError::NotAMarkedGraph`] / [`PetriError::NotLive`] if the input
///   is malformed — liveness is required, otherwise some cycle has token
///   count 0 and infinite ratio.
/// * [`PetriError::NoCycle`] for a net with no transitions.
/// * [`PetriError::ZeroExecutionTime`] if some transition has `τ = 0`
///   (the cycle time of its self-loop would be degenerate).
///
/// # Example
///
/// ```
/// use tpn_petri::{PetriNet, Marking};
/// use tpn_petri::ratio::critical_ratio;
///
/// // Ring of three unit-time transitions with one token: cycle time 3.
/// let mut net = PetriNet::new();
/// let t: Vec<_> = (0..3).map(|i| net.add_transition(format!("t{i}"), 1)).collect();
/// let mut first = None;
/// for i in 0..3 {
///     let p = net.add_place(format!("p{i}"));
///     net.connect_tp(t[i], p);
///     net.connect_pt(p, t[(i + 1) % 3]);
///     first.get_or_insert(p);
/// }
/// let m = Marking::from_pairs(&net, [(first.unwrap(), 1)]);
/// let r = critical_ratio(&net, &m)?;
/// assert_eq!(r.cycle_time.to_string(), "3");
/// assert_eq!(r.rate.to_string(), "1/3");
/// # Ok::<(), tpn_petri::PetriError>(())
/// ```
pub fn critical_ratio(net: &PetriNet, marking: &Marking) -> Result<CriticalRatio, PetriError> {
    if net.num_transitions() == 0 {
        return Err(PetriError::NoCycle);
    }
    net.validate_times()?;
    check_live(net, marking)?;
    let graph = ParamGraph::new(net, marking);

    let (self_loop_time, self_loop_t) = net
        .transitions()
        .map(|(id, t)| (t.time(), id))
        .max()
        .expect("nonempty net");

    let self_ratio = Ratio::from_integer(self_loop_time);
    let Some((cycle_ratio, witness)) = max_cycle_ratio(&graph) else {
        return Ok(CriticalRatio {
            cycle_time: self_ratio,
            rate: self_ratio.recip(),
            witness: CriticalWitness::SelfLoop(self_loop_t),
        });
    };
    if self_ratio > cycle_ratio {
        return Ok(CriticalRatio {
            cycle_time: self_ratio,
            rate: self_ratio.recip(),
            witness: CriticalWitness::SelfLoop(self_loop_t),
        });
    }
    Ok(CriticalRatio {
        cycle_time: cycle_ratio,
        rate: cycle_ratio.recip(),
        witness: CriticalWitness::Cycle(witness),
    })
}

/// The full scheduling witness behind an `explain` request: the solver's
/// [`CriticalRatio`] next to the exhaustive [`CycleAnalysis`] (when the
/// Johnson enumeration fits its budget), so callers can show *which*
/// cycle pins the rate and how much slack every runner-up cycle has.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RateExplanation {
    /// The solver's answer: cycle time, rate, and an attaining witness.
    pub critical: CriticalRatio,
    /// The exhaustive per-cycle spectrum; `None` when enumeration
    /// exceeded the caller's cycle limit (the witness above stays exact —
    /// only the runner-up slack table is unavailable).
    pub analysis: Option<CycleAnalysis>,
}

impl RateExplanation {
    /// Slack `α* − Ω(C)/M(C)` of one enumerated cycle: zero exactly on
    /// critical cycles, positive on runner-ups. `None` only on `u64`
    /// overflow of the reduced difference.
    pub fn slack(&self, info: &CycleInfo) -> Option<Ratio> {
        self.critical.cycle_time.checked_sub(info.cycle_time)
    }

    /// Re-derives every quantity the explanation reports and checks exact
    /// agreement, returning the list of discrepancies (empty means the
    /// witness is validated). This is what makes `explain` output a
    /// tested claim rather than a pretty-printer: the reported cycle's
    /// `Ω(C)/M(C)` must equal the reported cycle time, the rate must be
    /// its exact reciprocal, and the enumerated spectrum (when present)
    /// must agree cycle by cycle.
    pub fn validate(&self, net: &PetriNet, marking: &Marking) -> Vec<String> {
        let mut errors = Vec::new();
        let alpha = self.critical.cycle_time;
        if self.critical.rate != alpha.recip() {
            errors.push(format!(
                "rate {} is not the reciprocal of cycle time {alpha}",
                self.critical.rate
            ));
        }
        match &self.critical.witness {
            CriticalWitness::Cycle(cycle) => {
                let time_sum = cycle.time_sum(net);
                let token_sum = cycle.token_sum(marking);
                if token_sum == 0 {
                    errors.push("witness cycle carries no tokens".into());
                } else if Ratio::new(time_sum, token_sum) != alpha {
                    errors.push(format!(
                        "witness cycle ratio {time_sum}/{token_sum} != cycle time {alpha}"
                    ));
                }
            }
            CriticalWitness::SelfLoop(t) => {
                let tau = net.transition(*t).time();
                if Ratio::from_integer(tau) != alpha {
                    errors.push(format!("self-loop witness τ = {tau} != cycle time {alpha}"));
                }
            }
        }
        if let Some(analysis) = &self.analysis {
            if analysis.cycle_time != alpha {
                errors.push(format!(
                    "enumeration cycle time {} != solver cycle time {alpha}",
                    analysis.cycle_time
                ));
            }
            if analysis.rate != self.critical.rate {
                errors.push(format!(
                    "enumeration rate {} != solver rate {}",
                    analysis.rate, self.critical.rate
                ));
            }
            for (i, info) in analysis.cycles.iter().enumerate() {
                let time_sum = info.cycle.time_sum(net);
                let token_sum = info.cycle.token_sum(marking);
                if time_sum != info.time_sum || token_sum != info.token_sum {
                    errors.push(format!(
                        "cycle {i}: reported Ω={}, M={} but net says Ω={time_sum}, M={token_sum}",
                        info.time_sum, info.token_sum
                    ));
                    continue;
                }
                if token_sum == 0 || Ratio::new(time_sum, token_sum) != info.cycle_time {
                    errors.push(format!(
                        "cycle {i}: ratio {} does not re-derive from Ω={time_sum}, M={token_sum}",
                        info.cycle_time
                    ));
                }
                let is_critical = analysis.critical.contains(&i);
                let slack = self.slack(info);
                if is_critical && slack != Some(Ratio::ZERO) {
                    errors.push(format!("critical cycle {i} has nonzero slack {slack:?}"));
                }
                if !is_critical && slack.is_none_or(|s| s == Ratio::ZERO) {
                    errors.push(format!(
                        "runner-up cycle {i} has zero slack but is not marked critical"
                    ));
                }
            }
        }
        errors
    }
}

/// Critical-cycle analysis with an explicit, self-checkable witness: runs
/// the polynomial-time solver ([`critical_ratio`]) and the exhaustive
/// Johnson enumeration ([`analyze_cycles`]) side by side. Enumeration
/// blowing the `limit` degrades the runner-up table to `None` instead of
/// failing; every other enumeration error is a real input defect and is
/// returned.
///
/// # Errors
///
/// Same conditions as [`critical_ratio`].
pub fn explain_rate(
    net: &PetriNet,
    marking: &Marking,
    limit: usize,
) -> Result<RateExplanation, PetriError> {
    let critical = critical_ratio(net, marking)?;
    let analysis = match analyze_cycles(net, marking, limit) {
        Ok(a) => Some(a),
        Err(PetriError::TooManyCycles { .. }) => None,
        Err(e) => return Err(e),
    };
    Ok(RateExplanation { critical, analysis })
}

/// The critical cycle time of one weakly connected component of the
/// transition multigraph, from [`component_cycle_times`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentRatio {
    /// The component's transitions, in id order.
    pub transitions: Vec<TransitionId>,
    /// Its cycle time `max Ω(C)/M(C)` over cycles inside the component
    /// (at least the component's `max τ`, by the implicit self-loop).
    pub cycle_time: Ratio,
}

/// Critical cycle time of every weakly connected component separately.
///
/// Independent components of a marked graph run at independent rates under
/// the earliest firing rule; a single net-wide periodic schedule exists only
/// when all components share the same cycle time. Callers use this to
/// diagnose disconnected loop bodies exactly.
///
/// # Errors
///
/// Same conditions as [`critical_ratio`].
pub fn component_cycle_times(
    net: &PetriNet,
    marking: &Marking,
) -> Result<Vec<ComponentRatio>, PetriError> {
    if net.num_transitions() == 0 {
        return Err(PetriError::NoCycle);
    }
    net.validate_times()?;
    check_live(net, marking)?;
    let n = net.num_transitions();
    // Union-find over undirected edges.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut v: usize) -> usize {
        while parent[v] != v {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        v
    }
    for (_, place) in net.places() {
        let from = place.preset()[0].index();
        let to = place.postset()[0].index();
        let (a, b) = (find(&mut parent, from), find(&mut parent, to));
        parent[a] = b;
    }
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n];
    for v in 0..n {
        let root = find(&mut parent, v);
        members[root].push(v);
    }
    let mut out = Vec::new();
    for component in &members {
        if component.is_empty() {
            continue;
        }
        let mut keep = vec![false; n];
        for &v in component {
            keep[v] = true;
        }
        let graph = ParamGraph::subset(net, marking, &keep);
        let self_loop = component
            .iter()
            .map(|&v| net.transition(TransitionId::from_index(v)).time())
            .max()
            .map(Ratio::from_integer)
            .unwrap_or(Ratio::ZERO);
        let cycle_time = match max_cycle_ratio(&graph) {
            Some((ratio, _)) => self_loop.max(ratio),
            None => self_loop,
        };
        out.push(ComponentRatio {
            transitions: component
                .iter()
                .map(|&v| TransitionId::from_index(v))
                .collect(),
            cycle_time,
        });
    }
    Ok(out)
}

/// Edge list of the transition multigraph annotated with (τ, tokens).
struct ParamGraph {
    n: usize,
    /// `(from, to, place, time_of_source, tokens)`
    edges: Vec<(usize, usize, PlaceId, u64, u64)>,
}

impl ParamGraph {
    fn new(net: &PetriNet, marking: &Marking) -> Self {
        let mut edges = Vec::with_capacity(net.num_places());
        for (pid, place) in net.places() {
            // Marked graph (validated by the caller): exactly one
            // producer and one consumer per place.
            let from = place.preset()[0];
            let to = place.postset()[0].index();
            edges.push((
                from.index(),
                to,
                pid,
                net.transition(from).time(),
                marking.tokens(pid) as u64,
            ));
        }
        ParamGraph {
            n: net.num_transitions(),
            edges,
        }
    }

    /// Like [`ParamGraph::new`] but keeping only edges whose source
    /// transition is in `keep` (a weakly connected component keeps exactly
    /// its own edges: both endpoints lie inside it).
    fn subset(net: &PetriNet, marking: &Marking, keep: &[bool]) -> Self {
        let mut edges = Vec::new();
        for (pid, place) in net.places() {
            let from = place.preset()[0];
            if !keep[from.index()] {
                continue;
            }
            let to = place.postset()[0].index();
            edges.push((
                from.index(),
                to,
                pid,
                net.transition(from).time(),
                marking.tokens(pid) as u64,
            ));
        }
        ParamGraph {
            n: net.num_transitions(),
            edges,
        }
    }

    fn has_any_cycle(&self) -> bool {
        // Kahn's algorithm: cycle exists iff topological sort is partial.
        let mut indeg = vec![0usize; self.n];
        for &(_, to, ..) in &self.edges {
            indeg[to] += 1;
        }
        let mut queue: Vec<usize> = (0..self.n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0;
        let mut adj = vec![Vec::new(); self.n];
        for &(from, to, ..) in &self.edges {
            adj[from].push(to);
        }
        while let Some(v) = queue.pop() {
            seen += 1;
            for &w in &adj[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        seen < self.n
    }

    /// Is there a cycle with `q·Ω(C) − p·M(C) > 0`, i.e. `Ω/M > p/q`?
    fn exists_cycle_above(&self, p: u64, q: u64) -> bool {
        self.positive_cycle(|time, tokens| {
            (q as i128) * (time as i128) - (p as i128) * (tokens as i128)
        })
    }

    /// Is there a cycle with `q·Ω(C) − p·M(C) ≥ 0`, i.e. `Ω/M ≥ p/q`?
    fn exists_cycle_at_least(&self, p: u64, q: u64) -> bool {
        // Scale so that "≥ 0" becomes "> 0": with at most `m` edges per
        // simple cycle, (m+1)·w + 1 per edge is positive for a cycle iff
        // the original weight is ≥ 0. (Bellman–Ford positive-cycle
        // detection finds a positive *closed walk*, which always contains a
        // positive simple cycle when all other cycles are ≤ 0... and any
        // closed walk decomposes into simple cycles, so a positive walk
        // implies a positive simple cycle.)
        let m = self.edges.len() as i128 + 1;
        self.positive_cycle(|time, tokens| {
            m * ((q as i128) * (time as i128) - (p as i128) * (tokens as i128)) + 1
        })
    }

    /// Bellman–Ford detection of a positive-weight cycle under the edge
    /// weight function `weight(τ_source, tokens)`.
    fn positive_cycle(&self, weight: impl Fn(u64, u64) -> i128) -> bool {
        // Longest-path relaxation from an implicit super-source (d ≡ 0).
        let mut d = vec![0i128; self.n];
        for pass in 0..=self.n {
            let mut improved = false;
            for &(from, to, _, time, tokens) in &self.edges {
                let cand = d[from] + weight(time, tokens);
                if cand > d[to] {
                    d[to] = cand;
                    improved = true;
                }
            }
            if !improved {
                return false;
            }
            if pass == self.n {
                return true;
            }
        }
        unreachable!("loop returns on the final pass")
    }

    /// Extracts a cycle attaining ratio exactly `p/q` (callers guarantee
    /// `p/q` is the maximum ratio, so tight edges w.r.t. converged
    /// longest-path potentials contain such a cycle).
    fn tight_cycle(&self, p: u64, q: u64) -> Cycle {
        let w =
            |time: u64, tokens: u64| (q as i128) * (time as i128) - (p as i128) * (tokens as i128);
        // Converge longest-path potentials (no positive cycles at p/q).
        let mut d = vec![0i128; self.n];
        for _ in 0..=self.n {
            let mut improved = false;
            for &(from, to, _, time, tokens) in &self.edges {
                let cand = d[from] + w(time, tokens);
                if cand > d[to] {
                    d[to] = cand;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        // Tight subgraph: d[from] + w == d[to].
        let mut tight: Vec<Vec<(usize, PlaceId)>> = vec![Vec::new(); self.n];
        for &(from, to, place, time, tokens) in &self.edges {
            if d[from] + w(time, tokens) == d[to] {
                tight[from].push((to, place));
            }
        }
        // Any cycle in the tight subgraph has total weight 0, i.e. ratio
        // exactly p/q. Find one with an iterative DFS.
        let mut colour = vec![0u8; self.n];
        let mut parent: Vec<(usize, PlaceId)> = vec![(usize::MAX, PlaceId::from_index(0)); self.n];
        for root in 0..self.n {
            if colour[root] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            colour[root] = 1;
            while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
                if *ei < tight[v].len() {
                    let (to, place) = tight[v][*ei];
                    *ei += 1;
                    match colour[to] {
                        0 => {
                            colour[to] = 1;
                            parent[to] = (v, place);
                            stack.push((to, 0));
                        }
                        1 => {
                            // Cycle to -> ... -> v -> to found.
                            let mut transitions = vec![TransitionId::from_index(v)];
                            let mut places = vec![place];
                            let mut cur = v;
                            while cur != to {
                                let (prev, via) = parent[cur];
                                transitions.push(TransitionId::from_index(prev));
                                places.push(via);
                                cur = prev;
                            }
                            // Collected back-to-front: reversing both lists
                            // leaves places[i] as the edge out of
                            // transitions[i].
                            transitions.reverse();
                            places.reverse();
                            return Cycle::new(transitions, places);
                        }
                        _ => {}
                    }
                } else {
                    colour[v] = 2;
                    stack.pop();
                }
            }
        }
        unreachable!("a maximum-ratio cycle is always present in the tight subgraph")
    }

    /// Maximum cycle ratio by Howard's policy iteration.
    ///
    /// Every node is given an artificial self-loop of ratio `0/1` (zero
    /// time, one token) so a policy always exists and cycle-free regions
    /// settle at ratio zero; real cycles dominate because `τ ≥ 1` makes
    /// every true ratio positive. Each sweep evaluates the current policy —
    /// the cycles of its functional graph, their exact ratios `λ`, and
    /// longest-path values `d` scaled by `λ`'s denominator — then switches
    /// each node to its lexicographically best out-edge by `(λ, d)`. Any
    /// fixpoint is exact: summing the no-improvement inequality
    /// `q·τ − p·m + d[to] ≤ d[from]` around an arbitrary cycle `C` gives
    /// `q·Ω(C) − p·M(C) ≤ 0`, i.e. `Ω/M ≤ λ_max`, and `λ_max` is itself
    /// attained by a policy cycle. Only termination within the sweep
    /// budget is heuristic; on exhaustion the caller falls back to the
    /// parametric method, so the budget affects speed, never the answer.
    ///
    /// Returns `Ok(None)` when the graph has no cycle at all.
    fn howard(&self) -> Result<Option<(Ratio, Cycle)>, HowardDiverged> {
        let n = self.n;
        if n == 0 {
            return Ok(None);
        }
        // CSR out-adjacency (one flat arc array, one offset array — the
        // solver is allocation-bound otherwise): each node's real edges
        // first, its artificial self-loop in the last slot.
        // Arcs are (to, time, tokens, place).
        let mut start = vec![0usize; n + 1];
        for &(from, ..) in &self.edges {
            start[from + 1] += 1;
        }
        for v in 0..n {
            start[v + 1] += start[v] + 1; // +1 for the self-loop slot
        }
        let mut arcs: Vec<(usize, u64, u64, Option<PlaceId>)> = vec![(0, 0, 1, None); start[n]];
        let mut fill: Vec<usize> = start[..n].to_vec();
        for &(from, to, place, time, tokens) in &self.edges {
            arcs[fill[from]] = (to, time, tokens, Some(place));
            fill[from] += 1;
        }
        for v in 0..n {
            arcs[fill[v]] = (v, 0, 1, None);
        }
        // Start on the self-loops: λ ≡ 0, the first sweep bootstraps.
        // `policy[u]` indexes `arcs` directly.
        let mut policy: Vec<usize> = (0..n).map(|v| start[v + 1] - 1).collect();
        let mut lambda = vec![Ratio::ZERO; n];
        let mut d = vec![0i128; n];
        let mut state = vec![0u8; n];
        let mut path = Vec::with_capacity(n);

        for _ in 0..HOWARD_SWEEPS {
            // Evaluate: resolve every node's reached policy cycle (λ) and
            // scaled value d by walking the functional graph once.
            state.fill(0); // 0 = unvisited, 1 = on the current walk, 2 = resolved
            for root in 0..n {
                if state[root] != 0 {
                    continue;
                }
                path.clear();
                let mut u = root;
                while state[u] == 0 {
                    state[u] = 1;
                    path.push(u);
                    u = arcs[policy[u]].0;
                }
                let resolved_from = if state[u] == 1 {
                    // New cycle: path[pos..] in policy order, closing at u,
                    // with u as the d = 0 reference.
                    let pos = path.iter().position(|&x| x == u).expect("u is on the walk");
                    let cyc = &path[pos..];
                    let (mut time_sum, mut token_sum) = (0u64, 0u64);
                    for &x in cyc {
                        let (_, time, tokens, _) = arcs[policy[x]];
                        time_sum += time;
                        token_sum += tokens;
                    }
                    // token_sum ≥ 1: real cycles are live (the caller
                    // checked), artificial loops carry one token.
                    let ratio = Ratio::new(time_sum, token_sum);
                    let (p, q) = (ratio.numer() as i128, ratio.denom() as i128);
                    lambda[u] = ratio;
                    d[u] = 0;
                    state[u] = 2;
                    for i in (pos + 1..path.len()).rev() {
                        let x = path[i];
                        let (to, time, tokens, _) = arcs[policy[x]];
                        d[x] = q * time as i128 - p * tokens as i128 + d[to];
                        lambda[x] = ratio;
                        state[x] = 2;
                    }
                    pos
                } else {
                    path.len()
                };
                // Tree prefix: inherits the successor's cycle.
                for i in (0..resolved_from).rev() {
                    let x = path[i];
                    let (to, time, tokens, _) = arcs[policy[x]];
                    let ratio = lambda[to];
                    let (p, q) = (ratio.numer() as i128, ratio.denom() as i128);
                    d[x] = q * time as i128 - p * tokens as i128 + d[to];
                    lambda[x] = ratio;
                    state[x] = 2;
                }
            }
            // Improve: each node takes its best out-edge by (λ, gain),
            // switching only on strict lexicographic improvement.
            let mut improved = false;
            for u in 0..n {
                let (mut best_l, mut best_d, mut best_i) = (lambda[u], d[u], policy[u]);
                for (i, &(to, time, tokens, _)) in
                    arcs.iter().enumerate().take(start[u + 1]).skip(start[u])
                {
                    let l = lambda[to];
                    if l < best_l {
                        continue;
                    }
                    let (p, q) = (l.numer() as i128, l.denom() as i128);
                    let gain = q * time as i128 - p * tokens as i128 + d[to];
                    if l > best_l || gain > best_d {
                        (best_l, best_d, best_i) = (l, gain, i);
                    }
                }
                if best_i != policy[u] {
                    policy[u] = best_i;
                    improved = true;
                }
            }
            if improved {
                continue;
            }
            // Converged. λ_max = 0 means the only cycles are artificial.
            let best = (0..n).max_by_key(|&u| lambda[u]).expect("n > 0");
            if lambda[best] == Ratio::ZERO {
                return Ok(None);
            }
            // Walk from the best node onto its policy cycle and read the
            // witness off the policy edges.
            let mut mark = vec![false; n];
            let mut u = best;
            while !mark[u] {
                mark[u] = true;
                u = arcs[policy[u]].0;
            }
            let entry = u;
            let mut transitions = Vec::new();
            let mut places = Vec::new();
            loop {
                let (to, _, _, place) = arcs[policy[u]];
                transitions.push(TransitionId::from_index(u));
                places.push(place.expect("a positive-ratio cycle has no artificial edges"));
                u = to;
                if u == entry {
                    break;
                }
            }
            return Ok(Some((lambda[best], Cycle::new(transitions, places))));
        }
        Err(HowardDiverged)
    }
}

/// Sweep budget for Howard's policy iteration. Convergence on real nets
/// takes a handful of sweeps; the cap only bounds the cost of the (never
/// observed) divergent case before the exact fallback takes over.
const HOWARD_SWEEPS: usize = 256;

/// Marker: policy iteration hit [`HOWARD_SWEEPS`] without converging.
struct HowardDiverged;

/// Maximum cycle ratio `max Ω(C)/M(C)` with a witness cycle attaining it,
/// or `None` for an acyclic graph. Howard's policy iteration answers in
/// near-linear time; the Stern–Brocot parametric descent backs it up so
/// the result is exact regardless of how policy iteration behaves.
fn max_cycle_ratio(graph: &ParamGraph) -> Option<(Ratio, Cycle)> {
    match graph.howard() {
        Ok(answer) => answer,
        Err(HowardDiverged) => {
            if !graph.has_any_cycle() {
                return None;
            }
            let (p, q) = stern_brocot(graph);
            Some((Ratio::new(p, q), graph.tight_cycle(p, q)))
        }
    }
}

/// Exact Stern–Brocot descent for the maximum cycle ratio.
///
/// Maintains an open interval `(a/b, c/d)` of the Stern–Brocot tree that
/// contains the answer, and walks continued-fraction steps with exponential
/// galloping. Requires that the graph has at least one cycle and every
/// cycle has positive token count.
fn stern_brocot(graph: &ParamGraph) -> (u64, u64) {
    // λ* ≥ smallest possible positive ratio, and test_ge(0,1) is trivially
    // true; handle the exact-zero case first (cannot happen with τ ≥ 1, but
    // keeps the function total).
    if !graph.exists_cycle_above(0, 1) {
        return (0, 1);
    }
    // Invariant: a/b < λ* < c/d (with c/d possibly 1/0 = ∞).
    let (mut a, mut b, mut c, mut d) = (0u64, 1u64, 1u64, 0u64);
    loop {
        let (p, q) = (a + c, b + d);
        if graph.exists_cycle_above(p, q) {
            // λ* > mediant: gallop toward c/d. Find the largest k ≥ 1 with
            // λ* > (a + k·c)/(b + k·d).
            let above = |k: u64| graph.exists_cycle_above(a + k * c, b + k * d);
            let mut hi_k = 2u64;
            while above(hi_k) {
                hi_k *= 2;
            }
            // Largest good k in [hi_k/2, hi_k).
            let (mut lo_k, mut bad_k) = (hi_k / 2, hi_k);
            while bad_k - lo_k > 1 {
                let mid = lo_k + (bad_k - lo_k) / 2;
                if above(mid) {
                    lo_k = mid;
                } else {
                    bad_k = mid;
                }
            }
            let (np, nq) = (a + bad_k * c, b + bad_k * d);
            if graph.exists_cycle_at_least(np, nq) {
                return (np, nq);
            }
            a += lo_k * c;
            b += lo_k * d;
            c = np;
            d = nq;
        } else if graph.exists_cycle_at_least(p, q) {
            return (p, q);
        } else {
            // λ* < mediant: gallop toward a/b. Find the largest k ≥ 1 with
            // λ* < (k·a + c)/(k·b + d).
            let below = |k: u64| {
                let (p, q) = (k * a + c, k * b + d);
                !graph.exists_cycle_at_least(p, q)
            };
            let mut hi_k = 2u64;
            while below(hi_k) {
                hi_k *= 2;
            }
            let (mut lo_k, mut bad_k) = (hi_k / 2, hi_k);
            while bad_k - lo_k > 1 {
                let mid = lo_k + (bad_k - lo_k) / 2;
                if below(mid) {
                    lo_k = mid;
                } else {
                    bad_k = mid;
                }
            }
            // λ* ≥ (bad_k·a + c)/(bad_k·b + d); equal?
            let (np, nq) = (bad_k * a + c, bad_k * b + d);
            if !graph.exists_cycle_above(np, nq) {
                return (np, nq);
            }
            c += lo_k * a;
            d += lo_k * b;
            a = np;
            b = nq;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(times: &[u64], tokens: &[u32]) -> (PetriNet, Marking) {
        assert_eq!(times.len(), tokens.len());
        let mut net = PetriNet::new();
        let ts: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &tau)| net.add_transition(format!("t{i}"), tau))
            .collect();
        let n = ts.len();
        let mut m_pairs = Vec::new();
        for i in 0..n {
            let p = net.add_place(format!("p{i}"));
            net.connect_tp(ts[i], p);
            net.connect_pt(p, ts[(i + 1) % n]);
            m_pairs.push((p, tokens[i]));
        }
        let m = Marking::from_pairs(&net, m_pairs);
        (net, m)
    }

    #[test]
    fn single_ring_ratio() {
        let (net, m) = ring(&[1, 1, 1], &[1, 0, 0]);
        let r = critical_ratio(&net, &m).unwrap();
        assert_eq!(r.cycle_time, Ratio::new(3, 1));
        assert_eq!(r.rate, Ratio::new(1, 3));
        match r.witness {
            CriticalWitness::Cycle(c) => assert_eq!(c.len(), 3),
            other => panic!("expected cycle witness, got {other:?}"),
        }
    }

    #[test]
    fn explain_rate_produces_a_validated_witness() {
        // Two nested cycles (ring + chord) so there is a runner-up.
        let mut net = PetriNet::new();
        let ts: Vec<_> = (0..3)
            .map(|i| net.add_transition(format!("t{i}"), 1 + i as u64))
            .collect();
        let mut pairs = Vec::new();
        for i in 0..3 {
            let p = net.add_place(format!("p{i}"));
            net.connect_tp(ts[i], p);
            net.connect_pt(p, ts[(i + 1) % 3]);
            pairs.push((p, u32::from(i == 0)));
        }
        // Chord t1 -> t0 with a token: the 2-cycle {t0, t1} has Ω = 3,
        // M = 2; the full ring has Ω = 6, M = 1 and is critical.
        let chord = net.add_place("chord".to_string());
        net.connect_tp(ts[1], chord);
        net.connect_pt(chord, ts[0]);
        pairs.push((chord, 1));
        let m = Marking::from_pairs(&net, pairs);

        let ex = explain_rate(&net, &m, 1_000).unwrap();
        assert_eq!(ex.critical.cycle_time, Ratio::new(6, 1));
        assert!(ex.validate(&net, &m).is_empty());
        let analysis = ex.analysis.as_ref().unwrap();
        assert_eq!(analysis.cycles.len(), 2);
        assert_eq!(analysis.critical.len(), 1);
        // The runner-up 2-cycle has slack 6 − 3/2 = 9/2.
        let runner = analysis
            .cycles
            .iter()
            .enumerate()
            .find(|(i, _)| !analysis.critical.contains(i))
            .map(|(_, info)| info)
            .unwrap();
        assert_eq!(ex.slack(runner), Some(Ratio::new(9, 2)));

        // A doctored witness fails validation instead of passing silently.
        let mut forged = ex.clone();
        forged.critical.rate = Ratio::new(1, 7);
        assert!(!forged.validate(&net, &m).is_empty());
    }

    #[test]
    fn explain_rate_degrades_gracefully_past_the_cycle_limit() {
        let (net, m) = ring(&[2, 1, 1], &[1, 1, 0]);
        // limit 0 forces TooManyCycles inside enumeration; the solver's
        // witness must survive with the spectrum absent.
        let ex = explain_rate(&net, &m, 0).unwrap();
        assert!(ex.analysis.is_none());
        assert_eq!(ex.critical.cycle_time, Ratio::new(2, 1));
        assert!(ex.validate(&net, &m).is_empty());
    }

    #[test]
    fn component_cycle_times_split_disconnected_rings() {
        // Two disjoint rings: a 3-transition ring at cycle time 3 and a
        // 2-transition ring (times 2+2, one token) at cycle time 4.
        let mut net = PetriNet::new();
        let a: Vec<_> = (0..3)
            .map(|i| net.add_transition(format!("a{i}"), 1))
            .collect();
        let b: Vec<_> = (0..2)
            .map(|i| net.add_transition(format!("b{i}"), 2))
            .collect();
        let mut pairs = Vec::new();
        for i in 0..3 {
            let p = net.add_place(format!("pa{i}"));
            net.connect_tp(a[i], p);
            net.connect_pt(p, a[(i + 1) % 3]);
            pairs.push((p, u32::from(i == 0)));
        }
        for i in 0..2 {
            let p = net.add_place(format!("pb{i}"));
            net.connect_tp(b[i], p);
            net.connect_pt(p, b[(i + 1) % 2]);
            pairs.push((p, u32::from(i == 0)));
        }
        let m = Marking::from_pairs(&net, pairs);
        let comps = component_cycle_times(&net, &m).unwrap();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].transitions, a);
        assert_eq!(comps[0].cycle_time, Ratio::new(3, 1));
        assert_eq!(comps[1].transitions, b);
        assert_eq!(comps[1].cycle_time, Ratio::new(4, 1));
        // The net-wide analysis reports the slower component's bound.
        assert_eq!(
            critical_ratio(&net, &m).unwrap().cycle_time,
            Ratio::new(4, 1)
        );
    }

    #[test]
    fn component_cycle_times_agree_with_critical_ratio_when_connected() {
        let (net, m) = ring(&[2, 3, 1], &[1, 1, 0]);
        let comps = component_cycle_times(&net, &m).unwrap();
        assert_eq!(comps.len(), 1);
        assert_eq!(
            comps[0].cycle_time,
            critical_ratio(&net, &m).unwrap().cycle_time
        );
    }

    #[test]
    fn ring_with_more_tokens_is_faster() {
        let (net, m) = ring(&[2, 3, 1], &[1, 1, 0]);
        let r = critical_ratio(&net, &m).unwrap();
        // Ω = 6, M = 2, but the self-loop of t1 only allows cycle time 3;
        // both give 3.
        assert_eq!(r.cycle_time, Ratio::new(3, 1));
    }

    #[test]
    fn fractional_cycle_time() {
        let (net, m) = ring(&[1, 1, 1, 1, 1], &[1, 0, 1, 0, 0]);
        let r = critical_ratio(&net, &m).unwrap();
        assert_eq!(r.cycle_time, Ratio::new(5, 2));
        assert_eq!(r.rate, Ratio::new(2, 5));
    }

    #[test]
    fn acyclic_net_bounded_by_self_loop() {
        let mut net = PetriNet::new();
        let a = net.add_transition("a", 4);
        let b = net.add_transition("b", 1);
        let p = net.add_place("p");
        net.connect_tp(a, p);
        net.connect_pt(p, b);
        let m = Marking::empty(&net);
        let r = critical_ratio(&net, &m).unwrap();
        assert_eq!(r.cycle_time, Ratio::from_integer(4));
        assert_eq!(r.witness, CriticalWitness::SelfLoop(a));
    }

    #[test]
    fn self_loop_dominates_explicit_cycle() {
        // 2-cycle with 2 tokens has ratio (1+5)/2 = 3, but τ(b) = 5 > 3.
        let mut net = PetriNet::new();
        let a = net.add_transition("a", 1);
        let b = net.add_transition("b", 5);
        let fwd = net.add_place("fwd");
        let ack = net.add_place("ack");
        net.connect_tp(a, fwd);
        net.connect_pt(fwd, b);
        net.connect_tp(b, ack);
        net.connect_pt(ack, a);
        let m = Marking::from_pairs(&net, [(fwd, 1), (ack, 1)]);
        let r = critical_ratio(&net, &m).unwrap();
        assert_eq!(r.cycle_time, Ratio::from_integer(5));
        assert_eq!(r.witness, CriticalWitness::SelfLoop(b));
    }

    #[test]
    fn dead_marking_is_rejected() {
        let (net, _) = ring(&[1, 1, 1], &[1, 0, 0]);
        let dead = Marking::empty(&net);
        assert!(matches!(
            critical_ratio(&net, &dead),
            Err(PetriError::NotLive { .. })
        ));
    }

    #[test]
    fn zero_time_transition_is_rejected() {
        let (mut net, m) = ring(&[1, 1, 1], &[1, 0, 0]);
        net.set_time(TransitionId::from_index(1), 0);
        assert!(matches!(
            critical_ratio(&net, &m),
            Err(PetriError::ZeroExecutionTime { .. })
        ));
    }

    #[test]
    fn enumeration_matches_parametric_on_two_cycle_net() {
        // Ring of 3 (time 3, 1 token) plus chord creating 2-cycle with its
        // own token; ratios 3/1 vs 2/1.
        let (mut net, mut m) = ring(&[1, 1, 1], &[1, 0, 0]);
        let chord = net.add_place("chord");
        net.connect_tp(TransitionId::from_index(1), chord);
        net.connect_pt(chord, TransitionId::from_index(0));
        m = {
            let mut pairs: Vec<_> = m.marked_places().collect();
            pairs.push((chord, 1));
            Marking::from_pairs(&net, pairs)
        };
        let en = analyze_cycles(&net, &m, 64).unwrap();
        let pr = critical_ratio(&net, &m).unwrap();
        assert_eq!(en.cycle_time, pr.cycle_time);
        assert_eq!(en.cycle_time, Ratio::from_integer(3));
        assert_eq!(en.cycles.len(), 2);
        assert_eq!(en.critical.len(), 1);
    }

    #[test]
    fn multiple_critical_cycles_detected() {
        // Two disjoint rings of equal ratio joined... keep them disjoint in
        // one net: t0->t1->t0 and t2->t3->t2, each with 1 token: both 2/1.
        let mut net = PetriNet::new();
        let ts: Vec<_> = (0..4)
            .map(|i| net.add_transition(format!("t{i}"), 1))
            .collect();
        let mut pairs = Vec::new();
        for (x, y) in [(0, 1), (2, 3)] {
            let f = net.add_place(format!("f{x}"));
            let bck = net.add_place(format!("b{x}"));
            net.connect_tp(ts[x], f);
            net.connect_pt(f, ts[y]);
            net.connect_tp(ts[y], bck);
            net.connect_pt(bck, ts[x]);
            pairs.push((bck, 1));
        }
        let m = Marking::from_pairs(&net, pairs);
        let en = analyze_cycles(&net, &m, 64).unwrap();
        assert!(en.has_multiple_critical_cycles());
        assert_eq!(en.cycle_time, Ratio::from_integer(2));
        let pr = critical_ratio(&net, &m).unwrap();
        assert_eq!(pr.cycle_time, Ratio::from_integer(2));
    }

    #[test]
    fn witness_cycle_attains_the_ratio() {
        let (net, m) = ring(&[2, 1, 1, 3], &[1, 0, 1, 0]);
        let r = critical_ratio(&net, &m).unwrap();
        if let CriticalWitness::Cycle(c) = &r.witness {
            let ratio = Ratio::new(c.time_sum(&net), c.token_sum(&m));
            assert_eq!(ratio, r.cycle_time);
        } else {
            // Self-loop witness: τ_max must equal the cycle time.
            assert!(r.cycle_time.is_integer());
        }
    }

    #[test]
    fn large_integer_ratio_galloping() {
        // One cycle with Ω = 1000, M = 1: exercises the rightward gallop.
        let times: Vec<u64> = vec![100; 10];
        let tokens = {
            let mut v = vec![0u32; 10];
            v[0] = 1;
            v
        };
        let (net, m) = ring(&times, &tokens);
        let r = critical_ratio(&net, &m).unwrap();
        assert_eq!(r.cycle_time, Ratio::from_integer(1000));
    }

    #[test]
    fn howard_agrees_with_the_parametric_descent() {
        let mut gallop_times = vec![1u64; 51];
        gallop_times[7] = 9;
        let mut gallop_tokens = vec![1u32; 51];
        gallop_tokens[3] = 0;
        let fixtures = [
            ring(&[1, 1, 1], &[1, 0, 0]),
            ring(&[2, 3, 1], &[1, 1, 0]),
            ring(&[1, 1, 1, 1, 1], &[1, 0, 1, 0, 0]),
            ring(&[2, 1, 1, 3], &[1, 0, 1, 0]),
            ring(&gallop_times, &gallop_tokens),
        ];
        for (net, m) in fixtures {
            let graph = ParamGraph::new(&net, &m);
            let Ok(Some((ratio, cycle))) = graph.howard() else {
                panic!("policy iteration did not converge on a small ring");
            };
            let (p, q) = stern_brocot(&graph);
            assert_eq!(ratio, Ratio::new(p, q));
            // The witness really attains the ratio.
            assert_eq!(Ratio::new(cycle.time_sum(&net), cycle.token_sum(&m)), ratio);
        }
    }

    #[test]
    fn near_unit_ratio_galloping() {
        // Cycle with Ω = 51, M = 50 (ratio slightly above 1): exercises the
        // leftward gallop. Build a ring of 50 unit transitions, one of time
        // 2, with a token on every place.
        let mut times = vec![1u64; 50];
        times[7] = 2;
        let tokens = vec![1u32; 50];
        let (net, m) = ring(&times, &tokens);
        let r = critical_ratio(&net, &m).unwrap();
        // Self-loop bound is 2; cycle ratio is 51/50 < 2, so 2 wins.
        assert_eq!(r.cycle_time, Ratio::from_integer(2));
        // Remove the self-loop influence by making all times 1 except the
        // token distribution; use Ω=51 via 51 transitions and 50 tokens.
        let times = vec![1u64; 51];
        let mut tokens = vec![1u32; 51];
        tokens[3] = 0;
        let (net, m) = ring(&times, &tokens);
        let r = critical_ratio(&net, &m).unwrap();
        assert_eq!(r.cycle_time, Ratio::new(51, 50));
    }
}
