//! Critical cycles and optimal computation rates (Appendix A.7).
//!
//! For a live timed marked graph, all transitions share the same asymptotic
//! *cycle time*
//!
//! ```text
//! α* = max over simple cycles C of Ω(C) / M(C)
//! ```
//!
//! where `Ω(C)` is the total execution time of the cycle's transitions and
//! `M(C)` its token count; the *computation rate* is `γ = 1/α*`
//! (Ramamoorthy & Ho). Cycles attaining the maximum are the **critical
//! cycles**; they bound the performance of a software-pipelined loop and
//! drive both the schedule-quality checks and the storage optimiser.
//!
//! Two independent implementations are provided and cross-checked in tests:
//!
//! * [`analyze_cycles`] — exhaustive enumeration via [`crate::cycles`],
//!   exact but potentially exponential; returns every cycle with its ratio.
//! * [`critical_ratio`] — Lawler's parametric method: an exact
//!   Stern–Brocot descent over candidate ratios, each step resolved by a
//!   positive-cycle (Bellman–Ford) test in integer arithmetic. Runs in
//!   polynomial time — this is the practical replacement the paper alludes
//!   to when it cites the linear-programming formulation of the cycle-time
//!   problem.
//!
//! The implicit self-loop of Assumption A.6.1 (a transition cannot overlap
//! its own firings) contributes the candidate cycle time `τ(t)` for every
//! transition; both entry points take it into account, so an acyclic net
//! still has the well-defined cycle time `max τ`.

use crate::cycles::{simple_cycles, transition_multigraph, Cycle};
use crate::error::PetriError;
use crate::ids::{PlaceId, TransitionId};
use crate::marked::check_live;
use crate::marking::Marking;
use crate::net::PetriNet;
use crate::rational::Ratio;

/// What attains the critical cycle time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CriticalWitness {
    /// An explicit simple cycle with `Ω/M` equal to the cycle time.
    Cycle(Cycle),
    /// The implicit self-loop of a transition whose execution time alone
    /// dominates every explicit cycle ratio.
    SelfLoop(TransitionId),
}

/// Result of critical-cycle analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalRatio {
    /// The cycle time `α* = max Ω(C)/M(C)` (at least `max τ`).
    pub cycle_time: Ratio,
    /// The optimal computation rate `γ = 1/α*`.
    pub rate: Ratio,
    /// A cycle (or self-loop) attaining `α*`.
    pub witness: CriticalWitness,
}

/// Per-cycle data from exhaustive enumeration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleInfo {
    /// The cycle itself.
    pub cycle: Cycle,
    /// `Ω(C)`: summed execution time.
    pub time_sum: u64,
    /// `M(C)`: summed tokens.
    pub token_sum: u64,
    /// `Ω(C)/M(C)` as an exact rational.
    pub cycle_time: Ratio,
}

/// Result of [`analyze_cycles`]: every simple cycle with its ratio, plus
/// the net-wide cycle time and rate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleAnalysis {
    /// All simple cycles of the net (excluding implicit self-loops).
    pub cycles: Vec<CycleInfo>,
    /// The net cycle time including the implicit self-loop bound `max τ`.
    pub cycle_time: Ratio,
    /// `1 / cycle_time`.
    pub rate: Ratio,
    /// Indices into `cycles` of the cycles attaining `cycle_time` (empty if
    /// the bound comes from a self-loop only).
    pub critical: Vec<usize>,
}

impl CycleAnalysis {
    /// The critical cycles themselves.
    pub fn critical_cycles(&self) -> impl Iterator<Item = &CycleInfo> {
        self.critical.iter().map(|&i| &self.cycles[i])
    }

    /// Whether the net has more than one critical cycle — the harder case
    /// of §4.2 of the paper.
    pub fn has_multiple_critical_cycles(&self) -> bool {
        self.critical.len() > 1
    }
}

/// Exhaustive critical-cycle analysis by cycle enumeration.
///
/// # Errors
///
/// * Errors from [`simple_cycles`] (not a marked graph / too many cycles).
/// * [`PetriError::NotLive`] if some cycle is token-free (the cycle time
///   would be infinite).
/// * [`PetriError::NoCycle`] for a net with no transitions at all.
pub fn analyze_cycles(
    net: &PetriNet,
    marking: &Marking,
    limit: usize,
) -> Result<CycleAnalysis, PetriError> {
    if net.num_transitions() == 0 {
        return Err(PetriError::NoCycle);
    }
    let cycles = simple_cycles(net, limit)?;
    let mut infos = Vec::with_capacity(cycles.len());
    for cycle in cycles {
        let time_sum = cycle.time_sum(net);
        let token_sum = cycle.token_sum(marking);
        if token_sum == 0 {
            return Err(PetriError::NotLive {
                cycle: cycle.transitions().to_vec(),
            });
        }
        infos.push(CycleInfo {
            cycle_time: Ratio::new(time_sum, token_sum),
            cycle,
            time_sum,
            token_sum,
        });
    }
    let self_loop_bound = net
        .transitions()
        .map(|(_, t)| t.time())
        .max()
        .map(Ratio::from_integer)
        .unwrap_or(Ratio::ZERO);
    let cycle_bound = infos
        .iter()
        .map(|i| i.cycle_time)
        .max()
        .unwrap_or(Ratio::ZERO);
    let cycle_time = self_loop_bound.max(cycle_bound);
    let critical = infos
        .iter()
        .enumerate()
        .filter(|(_, i)| i.cycle_time == cycle_time)
        .map(|(idx, _)| idx)
        .collect();
    Ok(CycleAnalysis {
        cycles: infos,
        cycle_time,
        rate: cycle_time.recip(),
        critical,
    })
}

/// Exact polynomial-time critical-cycle analysis (Lawler's parametric
/// method with a Stern–Brocot descent).
///
/// # Errors
///
/// * [`PetriError::NotAMarkedGraph`] / [`PetriError::NotLive`] if the input
///   is malformed — liveness is required, otherwise some cycle has token
///   count 0 and infinite ratio.
/// * [`PetriError::NoCycle`] for a net with no transitions.
/// * [`PetriError::ZeroExecutionTime`] if some transition has `τ = 0`
///   (the cycle time of its self-loop would be degenerate).
///
/// # Example
///
/// ```
/// use tpn_petri::{PetriNet, Marking};
/// use tpn_petri::ratio::critical_ratio;
///
/// // Ring of three unit-time transitions with one token: cycle time 3.
/// let mut net = PetriNet::new();
/// let t: Vec<_> = (0..3).map(|i| net.add_transition(format!("t{i}"), 1)).collect();
/// let mut first = None;
/// for i in 0..3 {
///     let p = net.add_place(format!("p{i}"));
///     net.connect_tp(t[i], p);
///     net.connect_pt(p, t[(i + 1) % 3]);
///     first.get_or_insert(p);
/// }
/// let m = Marking::from_pairs(&net, [(first.unwrap(), 1)]);
/// let r = critical_ratio(&net, &m)?;
/// assert_eq!(r.cycle_time.to_string(), "3");
/// assert_eq!(r.rate.to_string(), "1/3");
/// # Ok::<(), tpn_petri::PetriError>(())
/// ```
pub fn critical_ratio(net: &PetriNet, marking: &Marking) -> Result<CriticalRatio, PetriError> {
    if net.num_transitions() == 0 {
        return Err(PetriError::NoCycle);
    }
    net.validate_times()?;
    check_live(net, marking)?;
    let adj = transition_multigraph(net);
    let graph = ParamGraph::new(net, marking, &adj);

    let (self_loop_time, self_loop_t) = net
        .transitions()
        .map(|(id, t)| (t.time(), id))
        .max()
        .expect("nonempty net");

    if !graph.has_any_cycle() {
        let cycle_time = Ratio::from_integer(self_loop_time);
        return Ok(CriticalRatio {
            cycle_time,
            rate: cycle_time.recip(),
            witness: CriticalWitness::SelfLoop(self_loop_t),
        });
    }

    let (p, q) = stern_brocot(&graph);
    let cycle_ratio = Ratio::new(p, q);
    let self_ratio = Ratio::from_integer(self_loop_time);
    if self_ratio > cycle_ratio {
        return Ok(CriticalRatio {
            cycle_time: self_ratio,
            rate: self_ratio.recip(),
            witness: CriticalWitness::SelfLoop(self_loop_t),
        });
    }
    let witness = graph.tight_cycle(p, q);
    Ok(CriticalRatio {
        cycle_time: cycle_ratio,
        rate: cycle_ratio.recip(),
        witness: CriticalWitness::Cycle(witness),
    })
}

/// Edge list of the transition multigraph annotated with (τ, tokens).
struct ParamGraph {
    n: usize,
    /// `(from, to, place, time_of_source, tokens)`
    edges: Vec<(usize, usize, PlaceId, u64, u64)>,
}

impl ParamGraph {
    fn new(net: &PetriNet, marking: &Marking, adj: &[Vec<(usize, PlaceId)>]) -> Self {
        let mut edges = Vec::new();
        for (from, outs) in adj.iter().enumerate() {
            let time = net.transition(TransitionId::from_index(from)).time();
            for &(to, place) in outs {
                edges.push((from, to, place, time, marking.tokens(place) as u64));
            }
        }
        ParamGraph {
            n: adj.len(),
            edges,
        }
    }

    fn has_any_cycle(&self) -> bool {
        // Kahn's algorithm: cycle exists iff topological sort is partial.
        let mut indeg = vec![0usize; self.n];
        for &(_, to, ..) in &self.edges {
            indeg[to] += 1;
        }
        let mut queue: Vec<usize> = (0..self.n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0;
        let mut adj = vec![Vec::new(); self.n];
        for &(from, to, ..) in &self.edges {
            adj[from].push(to);
        }
        while let Some(v) = queue.pop() {
            seen += 1;
            for &w in &adj[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        seen < self.n
    }

    /// Is there a cycle with `q·Ω(C) − p·M(C) > 0`, i.e. `Ω/M > p/q`?
    fn exists_cycle_above(&self, p: u64, q: u64) -> bool {
        self.positive_cycle(|time, tokens| {
            (q as i128) * (time as i128) - (p as i128) * (tokens as i128)
        })
    }

    /// Is there a cycle with `q·Ω(C) − p·M(C) ≥ 0`, i.e. `Ω/M ≥ p/q`?
    fn exists_cycle_at_least(&self, p: u64, q: u64) -> bool {
        // Scale so that "≥ 0" becomes "> 0": with at most `m` edges per
        // simple cycle, (m+1)·w + 1 per edge is positive for a cycle iff
        // the original weight is ≥ 0. (Bellman–Ford positive-cycle
        // detection finds a positive *closed walk*, which always contains a
        // positive simple cycle when all other cycles are ≤ 0... and any
        // closed walk decomposes into simple cycles, so a positive walk
        // implies a positive simple cycle.)
        let m = self.edges.len() as i128 + 1;
        self.positive_cycle(|time, tokens| {
            m * ((q as i128) * (time as i128) - (p as i128) * (tokens as i128)) + 1
        })
    }

    /// Bellman–Ford detection of a positive-weight cycle under the edge
    /// weight function `weight(τ_source, tokens)`.
    fn positive_cycle(&self, weight: impl Fn(u64, u64) -> i128) -> bool {
        // Longest-path relaxation from an implicit super-source (d ≡ 0).
        let mut d = vec![0i128; self.n];
        for pass in 0..=self.n {
            let mut improved = false;
            for &(from, to, _, time, tokens) in &self.edges {
                let cand = d[from] + weight(time, tokens);
                if cand > d[to] {
                    d[to] = cand;
                    improved = true;
                }
            }
            if !improved {
                return false;
            }
            if pass == self.n {
                return true;
            }
        }
        unreachable!("loop returns on the final pass")
    }

    /// Extracts a cycle attaining ratio exactly `p/q` (callers guarantee
    /// `p/q` is the maximum ratio, so tight edges w.r.t. converged
    /// longest-path potentials contain such a cycle).
    fn tight_cycle(&self, p: u64, q: u64) -> Cycle {
        let w =
            |time: u64, tokens: u64| (q as i128) * (time as i128) - (p as i128) * (tokens as i128);
        // Converge longest-path potentials (no positive cycles at p/q).
        let mut d = vec![0i128; self.n];
        for _ in 0..=self.n {
            let mut improved = false;
            for &(from, to, _, time, tokens) in &self.edges {
                let cand = d[from] + w(time, tokens);
                if cand > d[to] {
                    d[to] = cand;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        // Tight subgraph: d[from] + w == d[to].
        let mut tight: Vec<Vec<(usize, PlaceId)>> = vec![Vec::new(); self.n];
        for &(from, to, place, time, tokens) in &self.edges {
            if d[from] + w(time, tokens) == d[to] {
                tight[from].push((to, place));
            }
        }
        // Any cycle in the tight subgraph has total weight 0, i.e. ratio
        // exactly p/q. Find one with an iterative DFS.
        let mut colour = vec![0u8; self.n];
        let mut parent: Vec<(usize, PlaceId)> = vec![(usize::MAX, PlaceId::from_index(0)); self.n];
        for root in 0..self.n {
            if colour[root] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            colour[root] = 1;
            while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
                if *ei < tight[v].len() {
                    let (to, place) = tight[v][*ei];
                    *ei += 1;
                    match colour[to] {
                        0 => {
                            colour[to] = 1;
                            parent[to] = (v, place);
                            stack.push((to, 0));
                        }
                        1 => {
                            // Cycle to -> ... -> v -> to found.
                            let mut transitions = vec![TransitionId::from_index(v)];
                            let mut places = vec![place];
                            let mut cur = v;
                            while cur != to {
                                let (prev, via) = parent[cur];
                                transitions.push(TransitionId::from_index(prev));
                                places.push(via);
                                cur = prev;
                            }
                            // Collected back-to-front: reversing both lists
                            // leaves places[i] as the edge out of
                            // transitions[i].
                            transitions.reverse();
                            places.reverse();
                            return Cycle::new(transitions, places);
                        }
                        _ => {}
                    }
                } else {
                    colour[v] = 2;
                    stack.pop();
                }
            }
        }
        unreachable!("a maximum-ratio cycle is always present in the tight subgraph")
    }
}

/// Exact Stern–Brocot descent for the maximum cycle ratio.
///
/// Maintains an open interval `(a/b, c/d)` of the Stern–Brocot tree that
/// contains the answer, and walks continued-fraction steps with exponential
/// galloping. Requires that the graph has at least one cycle and every
/// cycle has positive token count.
fn stern_brocot(graph: &ParamGraph) -> (u64, u64) {
    // λ* ≥ smallest possible positive ratio, and test_ge(0,1) is trivially
    // true; handle the exact-zero case first (cannot happen with τ ≥ 1, but
    // keeps the function total).
    if !graph.exists_cycle_above(0, 1) {
        return (0, 1);
    }
    // Invariant: a/b < λ* < c/d (with c/d possibly 1/0 = ∞).
    let (mut a, mut b, mut c, mut d) = (0u64, 1u64, 1u64, 0u64);
    loop {
        let (p, q) = (a + c, b + d);
        if graph.exists_cycle_above(p, q) {
            // λ* > mediant: gallop toward c/d. Find the largest k ≥ 1 with
            // λ* > (a + k·c)/(b + k·d).
            let above = |k: u64| graph.exists_cycle_above(a + k * c, b + k * d);
            let mut hi_k = 2u64;
            while above(hi_k) {
                hi_k *= 2;
            }
            // Largest good k in [hi_k/2, hi_k).
            let (mut lo_k, mut bad_k) = (hi_k / 2, hi_k);
            while bad_k - lo_k > 1 {
                let mid = lo_k + (bad_k - lo_k) / 2;
                if above(mid) {
                    lo_k = mid;
                } else {
                    bad_k = mid;
                }
            }
            let (np, nq) = (a + bad_k * c, b + bad_k * d);
            if graph.exists_cycle_at_least(np, nq) {
                return (np, nq);
            }
            a += lo_k * c;
            b += lo_k * d;
            c = np;
            d = nq;
        } else if graph.exists_cycle_at_least(p, q) {
            return (p, q);
        } else {
            // λ* < mediant: gallop toward a/b. Find the largest k ≥ 1 with
            // λ* < (k·a + c)/(k·b + d).
            let below = |k: u64| {
                let (p, q) = (k * a + c, k * b + d);
                !graph.exists_cycle_at_least(p, q)
            };
            let mut hi_k = 2u64;
            while below(hi_k) {
                hi_k *= 2;
            }
            let (mut lo_k, mut bad_k) = (hi_k / 2, hi_k);
            while bad_k - lo_k > 1 {
                let mid = lo_k + (bad_k - lo_k) / 2;
                if below(mid) {
                    lo_k = mid;
                } else {
                    bad_k = mid;
                }
            }
            // λ* ≥ (bad_k·a + c)/(bad_k·b + d); equal?
            let (np, nq) = (bad_k * a + c, bad_k * b + d);
            if !graph.exists_cycle_above(np, nq) {
                return (np, nq);
            }
            c += lo_k * a;
            d += lo_k * b;
            a = np;
            b = nq;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(times: &[u64], tokens: &[u32]) -> (PetriNet, Marking) {
        assert_eq!(times.len(), tokens.len());
        let mut net = PetriNet::new();
        let ts: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &tau)| net.add_transition(format!("t{i}"), tau))
            .collect();
        let n = ts.len();
        let mut m_pairs = Vec::new();
        for i in 0..n {
            let p = net.add_place(format!("p{i}"));
            net.connect_tp(ts[i], p);
            net.connect_pt(p, ts[(i + 1) % n]);
            m_pairs.push((p, tokens[i]));
        }
        let m = Marking::from_pairs(&net, m_pairs);
        (net, m)
    }

    #[test]
    fn single_ring_ratio() {
        let (net, m) = ring(&[1, 1, 1], &[1, 0, 0]);
        let r = critical_ratio(&net, &m).unwrap();
        assert_eq!(r.cycle_time, Ratio::new(3, 1));
        assert_eq!(r.rate, Ratio::new(1, 3));
        match r.witness {
            CriticalWitness::Cycle(c) => assert_eq!(c.len(), 3),
            other => panic!("expected cycle witness, got {other:?}"),
        }
    }

    #[test]
    fn ring_with_more_tokens_is_faster() {
        let (net, m) = ring(&[2, 3, 1], &[1, 1, 0]);
        let r = critical_ratio(&net, &m).unwrap();
        // Ω = 6, M = 2, but the self-loop of t1 only allows cycle time 3;
        // both give 3.
        assert_eq!(r.cycle_time, Ratio::new(3, 1));
    }

    #[test]
    fn fractional_cycle_time() {
        let (net, m) = ring(&[1, 1, 1, 1, 1], &[1, 0, 1, 0, 0]);
        let r = critical_ratio(&net, &m).unwrap();
        assert_eq!(r.cycle_time, Ratio::new(5, 2));
        assert_eq!(r.rate, Ratio::new(2, 5));
    }

    #[test]
    fn acyclic_net_bounded_by_self_loop() {
        let mut net = PetriNet::new();
        let a = net.add_transition("a", 4);
        let b = net.add_transition("b", 1);
        let p = net.add_place("p");
        net.connect_tp(a, p);
        net.connect_pt(p, b);
        let m = Marking::empty(&net);
        let r = critical_ratio(&net, &m).unwrap();
        assert_eq!(r.cycle_time, Ratio::from_integer(4));
        assert_eq!(r.witness, CriticalWitness::SelfLoop(a));
    }

    #[test]
    fn self_loop_dominates_explicit_cycle() {
        // 2-cycle with 2 tokens has ratio (1+5)/2 = 3, but τ(b) = 5 > 3.
        let mut net = PetriNet::new();
        let a = net.add_transition("a", 1);
        let b = net.add_transition("b", 5);
        let fwd = net.add_place("fwd");
        let ack = net.add_place("ack");
        net.connect_tp(a, fwd);
        net.connect_pt(fwd, b);
        net.connect_tp(b, ack);
        net.connect_pt(ack, a);
        let m = Marking::from_pairs(&net, [(fwd, 1), (ack, 1)]);
        let r = critical_ratio(&net, &m).unwrap();
        assert_eq!(r.cycle_time, Ratio::from_integer(5));
        assert_eq!(r.witness, CriticalWitness::SelfLoop(b));
    }

    #[test]
    fn dead_marking_is_rejected() {
        let (net, _) = ring(&[1, 1, 1], &[1, 0, 0]);
        let dead = Marking::empty(&net);
        assert!(matches!(
            critical_ratio(&net, &dead),
            Err(PetriError::NotLive { .. })
        ));
    }

    #[test]
    fn zero_time_transition_is_rejected() {
        let (mut net, m) = ring(&[1, 1, 1], &[1, 0, 0]);
        net.set_time(TransitionId::from_index(1), 0);
        assert!(matches!(
            critical_ratio(&net, &m),
            Err(PetriError::ZeroExecutionTime { .. })
        ));
    }

    #[test]
    fn enumeration_matches_parametric_on_two_cycle_net() {
        // Ring of 3 (time 3, 1 token) plus chord creating 2-cycle with its
        // own token; ratios 3/1 vs 2/1.
        let (mut net, mut m) = ring(&[1, 1, 1], &[1, 0, 0]);
        let chord = net.add_place("chord");
        net.connect_tp(TransitionId::from_index(1), chord);
        net.connect_pt(chord, TransitionId::from_index(0));
        m = {
            let mut pairs: Vec<_> = m.marked_places().collect();
            pairs.push((chord, 1));
            Marking::from_pairs(&net, pairs)
        };
        let en = analyze_cycles(&net, &m, 64).unwrap();
        let pr = critical_ratio(&net, &m).unwrap();
        assert_eq!(en.cycle_time, pr.cycle_time);
        assert_eq!(en.cycle_time, Ratio::from_integer(3));
        assert_eq!(en.cycles.len(), 2);
        assert_eq!(en.critical.len(), 1);
    }

    #[test]
    fn multiple_critical_cycles_detected() {
        // Two disjoint rings of equal ratio joined... keep them disjoint in
        // one net: t0->t1->t0 and t2->t3->t2, each with 1 token: both 2/1.
        let mut net = PetriNet::new();
        let ts: Vec<_> = (0..4)
            .map(|i| net.add_transition(format!("t{i}"), 1))
            .collect();
        let mut pairs = Vec::new();
        for (x, y) in [(0, 1), (2, 3)] {
            let f = net.add_place(format!("f{x}"));
            let bck = net.add_place(format!("b{x}"));
            net.connect_tp(ts[x], f);
            net.connect_pt(f, ts[y]);
            net.connect_tp(ts[y], bck);
            net.connect_pt(bck, ts[x]);
            pairs.push((bck, 1));
        }
        let m = Marking::from_pairs(&net, pairs);
        let en = analyze_cycles(&net, &m, 64).unwrap();
        assert!(en.has_multiple_critical_cycles());
        assert_eq!(en.cycle_time, Ratio::from_integer(2));
        let pr = critical_ratio(&net, &m).unwrap();
        assert_eq!(pr.cycle_time, Ratio::from_integer(2));
    }

    #[test]
    fn witness_cycle_attains_the_ratio() {
        let (net, m) = ring(&[2, 1, 1, 3], &[1, 0, 1, 0]);
        let r = critical_ratio(&net, &m).unwrap();
        if let CriticalWitness::Cycle(c) = &r.witness {
            let ratio = Ratio::new(c.time_sum(&net), c.token_sum(&m));
            assert_eq!(ratio, r.cycle_time);
        } else {
            // Self-loop witness: τ_max must equal the cycle time.
            assert!(r.cycle_time.is_integer());
        }
    }

    #[test]
    fn large_integer_ratio_galloping() {
        // One cycle with Ω = 1000, M = 1: exercises the rightward gallop.
        let times: Vec<u64> = vec![100; 10];
        let tokens = {
            let mut v = vec![0u32; 10];
            v[0] = 1;
            v
        };
        let (net, m) = ring(&times, &tokens);
        let r = critical_ratio(&net, &m).unwrap();
        assert_eq!(r.cycle_time, Ratio::from_integer(1000));
    }

    #[test]
    fn near_unit_ratio_galloping() {
        // Cycle with Ω = 51, M = 50 (ratio slightly above 1): exercises the
        // leftward gallop. Build a ring of 50 unit transitions, one of time
        // 2, with a token on every place.
        let mut times = vec![1u64; 50];
        times[7] = 2;
        let tokens = vec![1u32; 50];
        let (net, m) = ring(&times, &tokens);
        let r = critical_ratio(&net, &m).unwrap();
        // Self-loop bound is 2; cycle ratio is 51/50 < 2, so 2 wins.
        assert_eq!(r.cycle_time, Ratio::from_integer(2));
        // Remove the self-loop influence by making all times 1 except the
        // token distribution; use Ω=51 via 51 transitions and 50 tokens.
        let times = vec![1u64; 51];
        let mut tokens = vec![1u32; 51];
        tokens[3] = 0;
        let (net, m) = ring(&times, &tokens);
        let r = critical_ratio(&net, &m).unwrap();
        assert_eq!(r.cycle_time, Ratio::new(51, 50));
    }
}
