//! The net structure: places, transitions, and arcs.

use crate::error::PetriError;
use crate::ids::{PlaceId, TransitionId};

/// A place of a Petri net.
///
/// Places hold tokens (see [`crate::Marking`]); structurally a place records
/// its input transitions (`•p`) and output transitions (`p•`).
#[derive(Clone, Debug)]
pub struct Place {
    name: String,
    preset: Vec<TransitionId>,
    postset: Vec<TransitionId>,
}

impl Place {
    /// Human-readable name of the place.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input transitions `•p` — the transitions that deposit tokens here.
    pub fn preset(&self) -> &[TransitionId] {
        &self.preset
    }

    /// Output transitions `p•` — the transitions that consume tokens here.
    pub fn postset(&self) -> &[TransitionId] {
        &self.postset
    }
}

/// A transition of a timed Petri net.
///
/// The execution time `τ` is a positive integer number of machine cycles
/// (Appendix A.6 of the paper assigns a deterministic non-negative integer
/// to each transition; the discrete-time engine of this crate requires at
/// least 1, matching the paper's use).
#[derive(Clone, Debug)]
pub struct Transition {
    name: String,
    time: u64,
    inputs: Vec<PlaceId>,
    outputs: Vec<PlaceId>,
}

impl Transition {
    /// Human-readable name of the transition.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Execution (firing) time `τ` in cycles.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Input places `•t`.
    pub fn inputs(&self) -> &[PlaceId] {
        &self.inputs
    }

    /// Output places `t•`.
    pub fn outputs(&self) -> &[PlaceId] {
        &self.outputs
    }
}

/// A timed Petri net `(P, T, A, Ω)`.
///
/// Places and transitions are stored in arenas and addressed by [`PlaceId`]
/// and [`TransitionId`]. Arcs are kept redundantly on both endpoints so that
/// presets and postsets are O(1) to enumerate.
///
/// # Example
///
/// ```
/// use tpn_petri::PetriNet;
///
/// let mut net = PetriNet::new();
/// let t = net.add_transition("add", 1);
/// let p = net.add_place("result");
/// net.connect_tp(t, p);
/// assert_eq!(net.transition(t).outputs(), &[p]);
/// assert_eq!(net.place(p).preset(), &[t]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PetriNet {
    places: Vec<Place>,
    transitions: Vec<Transition>,
}

impl PetriNet {
    /// Creates an empty net.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a place and returns its id.
    pub fn add_place(&mut self, name: impl Into<String>) -> PlaceId {
        let id = PlaceId::from_index(self.places.len());
        self.places.push(Place {
            name: name.into(),
            preset: Vec::new(),
            postset: Vec::new(),
        });
        id
    }

    /// Adds a transition with execution time `time` and returns its id.
    ///
    /// `time` may be zero at construction (some intermediate representations
    /// use it); the timed engine rejects such nets at run time via
    /// [`PetriError::ZeroExecutionTime`].
    pub fn add_transition(&mut self, name: impl Into<String>, time: u64) -> TransitionId {
        let id = TransitionId::from_index(self.transitions.len());
        self.transitions.push(Transition {
            name: name.into(),
            time,
            inputs: Vec::new(),
            outputs: Vec::new(),
        });
        id
    }

    /// Adds the arc `t → p` (token production).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range or the arc already exists
    /// (arc sets are sets, per the definition in Appendix A.1).
    pub fn connect_tp(&mut self, t: TransitionId, p: PlaceId) {
        assert!(t.index() < self.transitions.len(), "unknown transition {t}");
        assert!(p.index() < self.places.len(), "unknown place {p}");
        assert!(
            !self.transitions[t.index()].outputs.contains(&p),
            "duplicate arc {t} -> {p}"
        );
        self.transitions[t.index()].outputs.push(p);
        self.places[p.index()].preset.push(t);
    }

    /// Adds the arc `p → t` (token consumption).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range or the arc already exists.
    pub fn connect_pt(&mut self, p: PlaceId, t: TransitionId) {
        assert!(t.index() < self.transitions.len(), "unknown transition {t}");
        assert!(p.index() < self.places.len(), "unknown place {p}");
        assert!(
            !self.transitions[t.index()].inputs.contains(&p),
            "duplicate arc {p} -> {t}"
        );
        self.transitions[t.index()].inputs.push(p);
        self.places[p.index()].postset.push(t);
    }

    /// Number of places `|P|`.
    pub fn num_places(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions `|T|`.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Looks up a place.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn place(&self, p: PlaceId) -> &Place {
        &self.places[p.index()]
    }

    /// Looks up a transition.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn transition(&self, t: TransitionId) -> &Transition {
        &self.transitions[t.index()]
    }

    /// Iterates over `(id, place)` pairs in arena order.
    pub fn places(&self) -> impl Iterator<Item = (PlaceId, &Place)> {
        self.places
            .iter()
            .enumerate()
            .map(|(i, p)| (PlaceId::from_index(i), p))
    }

    /// Iterates over `(id, transition)` pairs in arena order.
    pub fn transitions(&self) -> impl Iterator<Item = (TransitionId, &Transition)> {
        self.transitions
            .iter()
            .enumerate()
            .map(|(i, t)| (TransitionId::from_index(i), t))
    }

    /// All place ids in arena order.
    pub fn place_ids(&self) -> impl Iterator<Item = PlaceId> + 'static {
        (0..self.places.len()).map(PlaceId::from_index)
    }

    /// All transition ids in arena order.
    pub fn transition_ids(&self) -> impl Iterator<Item = TransitionId> + 'static {
        (0..self.transitions.len()).map(TransitionId::from_index)
    }

    /// Overrides the execution time of a transition (used by series
    /// expansion when building resource-constrained models).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set_time(&mut self, t: TransitionId, time: u64) {
        self.transitions[t.index()].time = time;
    }

    /// Sum of all transition execution times, `Ω(T)`.
    pub fn total_time(&self) -> u64 {
        self.transitions.iter().map(|t| t.time).sum()
    }

    /// Whether the net satisfies the marked-graph condition
    /// `|•p| = |p•| = 1` for every place (Definition A.5.1).
    pub fn is_marked_graph(&self) -> bool {
        self.validate_marked_graph().is_ok()
    }

    /// Validates the marked-graph condition, reporting the first offending
    /// place.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::NotAMarkedGraph`] naming a place whose preset
    /// or postset does not have exactly one element.
    pub fn validate_marked_graph(&self) -> Result<(), PetriError> {
        for (id, place) in self.places() {
            if place.preset.len() != 1 || place.postset.len() != 1 {
                return Err(PetriError::NotAMarkedGraph {
                    place: id,
                    inputs: place.preset.len(),
                    outputs: place.postset.len(),
                });
            }
        }
        Ok(())
    }

    /// Validates that every transition has a positive execution time, as
    /// required by the discrete-time engine.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::ZeroExecutionTime`] for the first transition
    /// with `τ = 0`.
    pub fn validate_times(&self) -> Result<(), PetriError> {
        for (id, t) in self.transitions() {
            if t.time == 0 {
                return Err(PetriError::ZeroExecutionTime { transition: id });
            }
        }
        Ok(())
    }

    /// Whether the net has a structural conflict: a place with more than one
    /// output transition (Appendix A.4). Structural conflict is a necessary
    /// condition for choice; marked graphs never have one.
    pub fn has_structural_conflict(&self) -> bool {
        self.places.iter().any(|p| p.postset.len() > 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cycle() -> (PetriNet, TransitionId, TransitionId, PlaceId, PlaceId) {
        let mut net = PetriNet::new();
        let a = net.add_transition("A", 1);
        let b = net.add_transition("B", 2);
        let fwd = net.add_place("fwd");
        let ack = net.add_place("ack");
        net.connect_tp(a, fwd);
        net.connect_pt(fwd, b);
        net.connect_tp(b, ack);
        net.connect_pt(ack, a);
        (net, a, b, fwd, ack)
    }

    #[test]
    fn construction_records_arcs_on_both_endpoints() {
        let (net, a, b, fwd, ack) = two_cycle();
        assert_eq!(net.num_places(), 2);
        assert_eq!(net.num_transitions(), 2);
        assert_eq!(net.transition(a).outputs(), &[fwd]);
        assert_eq!(net.transition(a).inputs(), &[ack]);
        assert_eq!(net.transition(b).inputs(), &[fwd]);
        assert_eq!(net.place(fwd).preset(), &[a]);
        assert_eq!(net.place(fwd).postset(), &[b]);
        assert_eq!(net.place(ack).preset(), &[b]);
    }

    #[test]
    fn names_and_times() {
        let (net, a, b, fwd, _) = two_cycle();
        assert_eq!(net.transition(a).name(), "A");
        assert_eq!(net.transition(b).time(), 2);
        assert_eq!(net.place(fwd).name(), "fwd");
        assert_eq!(net.total_time(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate arc")]
    fn duplicate_arc_rejected() {
        let (mut net, a, _, fwd, _) = two_cycle();
        net.connect_tp(a, fwd);
    }

    #[test]
    #[should_panic(expected = "unknown place")]
    fn unknown_place_rejected() {
        let (mut net, a, ..) = two_cycle();
        net.connect_tp(a, PlaceId::from_index(99));
    }

    #[test]
    fn marked_graph_detection() {
        let (mut net, a, _, _, _) = two_cycle();
        assert!(net.is_marked_graph());
        // Add a second consumer of a new place -> no longer a marked graph.
        let p = net.add_place("shared");
        net.connect_pt(p, a);
        assert!(!net.is_marked_graph());
        let err = net.validate_marked_graph().unwrap_err();
        assert!(matches!(err, PetriError::NotAMarkedGraph { inputs: 0, .. }));
    }

    #[test]
    fn structural_conflict_detection() {
        let (mut net, a, b, _, _) = two_cycle();
        assert!(!net.has_structural_conflict());
        let shared = net.add_place("run");
        net.connect_pt(shared, a);
        net.connect_pt(shared, b);
        assert!(net.has_structural_conflict());
    }

    #[test]
    fn validate_times_flags_zero() {
        let mut net = PetriNet::new();
        let t = net.add_transition("z", 0);
        assert_eq!(
            net.validate_times(),
            Err(PetriError::ZeroExecutionTime { transition: t })
        );
        net.set_time(t, 3);
        assert!(net.validate_times().is_ok());
        assert_eq!(net.transition(t).time(), 3);
    }

    #[test]
    fn iterators_are_in_arena_order() {
        let (net, ..) = two_cycle();
        let names: Vec<_> = net.transitions().map(|(_, t)| t.name()).collect();
        assert_eq!(names, vec!["A", "B"]);
        let ids: Vec<_> = net.place_ids().collect();
        assert_eq!(ids, vec![PlaceId::from_index(0), PlaceId::from_index(1)]);
    }
}
