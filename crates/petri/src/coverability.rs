//! Coverability (Karp–Miller) analysis for possibly-unbounded nets.
//!
//! The behaviour-graph machinery of the paper assumes live *safe* nets, so
//! plain reachability ([`crate::reach`]) suffices there. Diagnosing a
//! **broken** model — a translation bug that drops an acknowledgement arc,
//! say — needs the classical generalisation: the Karp–Miller tree, whose
//! markings take counts in ℕ ∪ {ω}. A place reaching ω is unbounded: some
//! firing sequence strictly pumps it. The tree is always finite, so the
//! analysis terminates even where explicit reachability diverges.

use std::collections::VecDeque;

use crate::ids::{PlaceId, TransitionId};
use crate::marking::Marking;
use crate::net::PetriNet;

/// A token count that may be the unbounded symbol ω.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Count {
    /// A concrete number of tokens.
    Finite(u32),
    /// Unbounded ("ω"): pumpable beyond any bound.
    Omega,
}

impl Count {
    fn at_least(self, n: u32) -> bool {
        match self {
            Count::Finite(v) => v >= n,
            Count::Omega => true,
        }
    }

    fn minus(self, n: u32) -> Count {
        match self {
            Count::Finite(v) => Count::Finite(v - n),
            Count::Omega => Count::Omega,
        }
    }

    fn plus(self, n: u32) -> Count {
        match self {
            Count::Finite(v) => Count::Finite(v + n),
            Count::Omega => Count::Omega,
        }
    }
}

impl std::fmt::Display for Count {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Count::Finite(v) => write!(f, "{v}"),
            Count::Omega => write!(f, "\u{03C9}"),
        }
    }
}

/// An extended marking: one [`Count`] per place.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct OmegaMarking {
    counts: Vec<Count>,
}

impl OmegaMarking {
    /// Lifts a concrete marking.
    pub fn from_marking(marking: &Marking) -> Self {
        OmegaMarking {
            counts: (0..marking.len())
                .map(|i| Count::Finite(marking.tokens(PlaceId::from_index(i))))
                .collect(),
        }
    }

    /// The count of `p`.
    pub fn count(&self, p: PlaceId) -> Count {
        self.counts[p.index()]
    }

    /// Whether every count of `self` is ≥ the corresponding count of
    /// `other` (the coverability order).
    pub fn covers(&self, other: &OmegaMarking) -> bool {
        self.counts
            .iter()
            .zip(&other.counts)
            .all(|(a, b)| match (a, b) {
                (Count::Omega, _) => true,
                (Count::Finite(_), Count::Omega) => false,
                (Count::Finite(x), Count::Finite(y)) => x >= y,
            })
    }

    fn enabled(&self, net: &PetriNet, t: TransitionId) -> bool {
        net.transition(t)
            .inputs()
            .iter()
            .all(|&p| self.counts[p.index()].at_least(1))
    }

    fn fire(&self, net: &PetriNet, t: TransitionId) -> OmegaMarking {
        let mut next = self.clone();
        for &p in net.transition(t).inputs() {
            next.counts[p.index()] = next.counts[p.index()].minus(1);
        }
        for &p in net.transition(t).outputs() {
            next.counts[p.index()] = next.counts[p.index()].plus(1);
        }
        next
    }

    /// ω-accelerates against an ancestor: any place strictly grown along a
    /// covering path pumps without bound.
    fn accelerate(&mut self, ancestor: &OmegaMarking) {
        for (mine, old) in self.counts.iter_mut().zip(&ancestor.counts) {
            if let (Count::Finite(a), Count::Finite(b)) = (*mine, *old) {
                if a > b {
                    *mine = Count::Omega;
                }
            }
        }
    }
}

/// The result of coverability analysis.
#[derive(Clone, Debug)]
pub struct Coverability {
    /// All distinct extended markings discovered.
    pub markings: Vec<OmegaMarking>,
    /// Places that can grow without bound.
    pub unbounded_places: Vec<PlaceId>,
}

impl Coverability {
    /// Whether the net (from the analysed marking) is bounded.
    pub fn is_bounded(&self) -> bool {
        self.unbounded_places.is_empty()
    }

    /// The tightest uniform bound `k` such that the net is `k`-bounded,
    /// or `None` if some place is unbounded.
    pub fn bound(&self) -> Option<u32> {
        let mut best = 0u32;
        for m in &self.markings {
            for &c in &m.counts {
                match c {
                    Count::Finite(v) => best = best.max(v),
                    Count::Omega => return None,
                }
            }
        }
        Some(best)
    }
}

/// Builds the Karp–Miller coverability tree from `initial`.
///
/// Always terminates; the tree can be large in pathological cases, so a
/// node `limit` guards against blow-up.
///
/// # Panics
///
/// Panics if more than `limit` tree nodes are generated.
///
/// # Example
///
/// A producer with no consumer is unbounded; adding an acknowledgement
/// bounds it:
///
/// ```
/// use tpn_petri::{PetriNet, Marking};
/// use tpn_petri::coverability::analyze;
///
/// let mut net = PetriNet::new();
/// let src = net.add_transition("src", 1);
/// let p = net.add_place("p");
/// net.connect_tp(src, p);
/// let cov = analyze(&net, &Marking::empty(&net), 10_000);
/// assert!(!cov.is_bounded());
/// assert_eq!(cov.unbounded_places, vec![p]);
/// ```
pub fn analyze(net: &PetriNet, initial: &Marking, limit: usize) -> Coverability {
    let root = OmegaMarking::from_marking(initial);
    // Tree nodes: (marking, parent index).
    let mut nodes: Vec<(OmegaMarking, Option<usize>)> = vec![(root, None)];
    let mut work: VecDeque<usize> = VecDeque::from([0]);
    // Nodes whose subtree is closed because an equal marking exists.
    let mut seen: Vec<OmegaMarking> = vec![nodes[0].0.clone()];

    while let Some(idx) = work.pop_front() {
        let marking = nodes[idx].0.clone();
        for t in net.transition_ids() {
            if !marking.enabled(net, t) {
                continue;
            }
            let mut next = marking.fire(net, t);
            // Accelerate against every ancestor it covers.
            let mut cursor = Some(idx);
            while let Some(c) = cursor {
                let (ancestor, parent) = (&nodes[c].0, nodes[c].1);
                if next.covers(ancestor) && &next != ancestor {
                    let ancestor = ancestor.clone();
                    next.accelerate(&ancestor);
                }
                cursor = parent;
            }
            if seen.contains(&next) {
                continue;
            }
            assert!(
                nodes.len() < limit,
                "coverability tree exceeded {limit} nodes"
            );
            seen.push(next.clone());
            nodes.push((next, Some(idx)));
            work.push_back(nodes.len() - 1);
        }
    }

    let mut unbounded: Vec<PlaceId> = Vec::new();
    for p in net.place_ids() {
        if nodes.iter().any(|(m, _)| m.count(p) == Count::Omega) {
            unbounded.push(p);
        }
    }
    Coverability {
        markings: seen,
        unbounded_places: unbounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_ring_reports_its_bound() {
        let mut net = PetriNet::new();
        let ts: Vec<_> = (0..3)
            .map(|i| net.add_transition(format!("t{i}"), 1))
            .collect();
        let mut first = None;
        for i in 0..3 {
            let p = net.add_place(format!("p{i}"));
            net.connect_tp(ts[i], p);
            net.connect_pt(p, ts[(i + 1) % 3]);
            first.get_or_insert(p);
        }
        let m = Marking::from_pairs(&net, [(first.unwrap(), 2)]);
        let cov = analyze(&net, &m, 10_000);
        assert!(cov.is_bounded());
        assert_eq!(cov.bound(), Some(2));
    }

    #[test]
    fn source_transition_is_unbounded() {
        let mut net = PetriNet::new();
        let src = net.add_transition("src", 1);
        let p = net.add_place("p");
        net.connect_tp(src, p);
        let cov = analyze(&net, &Marking::empty(&net), 10_000);
        assert!(!cov.is_bounded());
        assert_eq!(cov.bound(), None);
        assert_eq!(cov.unbounded_places, vec![p]);
    }

    #[test]
    fn dropping_an_acknowledgement_makes_the_data_place_unbounded() {
        // Producer/consumer WITH ack: bounded. Without: the data place
        // pumps — exactly the translation bug this analysis diagnoses.
        let mut with_ack = PetriNet::new();
        let a = with_ack.add_transition("A", 1);
        let b = with_ack.add_transition("B", 1);
        let data = with_ack.add_place("data");
        let ack = with_ack.add_place("ack");
        with_ack.connect_tp(a, data);
        with_ack.connect_pt(data, b);
        with_ack.connect_tp(b, ack);
        with_ack.connect_pt(ack, a);
        let m = Marking::from_pairs(&with_ack, [(ack, 1)]);
        assert!(analyze(&with_ack, &m, 10_000).is_bounded());

        let mut without = PetriNet::new();
        let a = without.add_transition("A", 1);
        let b = without.add_transition("B", 1);
        let data = without.add_place("data");
        without.connect_tp(a, data);
        without.connect_pt(data, b);
        let _ = (a, b);
        let cov = analyze(&without, &Marking::empty(&without), 10_000);
        assert!(!cov.is_bounded());
        assert_eq!(cov.unbounded_places, vec![data]);
    }

    #[test]
    fn sdsp_pns_are_one_bounded() {
        // Every place of a safe marked graph stays at <= 1 token.
        let mut net = PetriNet::new();
        let a = net.add_transition("A", 1);
        let b = net.add_transition("B", 1);
        let c = net.add_transition("C", 1);
        let mut pairs = Vec::new();
        for (x, y) in [(a, b), (b, c)] {
            let fwd = net.add_place(format!("{x}->{y}"));
            let ack = net.add_place(format!("{y}=>{x}"));
            net.connect_tp(x, fwd);
            net.connect_pt(fwd, y);
            net.connect_tp(y, ack);
            net.connect_pt(ack, x);
            pairs.push((ack, 1));
        }
        let m = Marking::from_pairs(&net, pairs);
        let cov = analyze(&net, &m, 100_000);
        assert_eq!(cov.bound(), Some(1));
    }

    #[test]
    fn capacity_two_buffers_are_two_bounded() {
        let mut net = PetriNet::new();
        let a = net.add_transition("A", 1);
        let b = net.add_transition("B", 1);
        let data = net.add_place("data");
        let ack = net.add_place("ack");
        net.connect_tp(a, data);
        net.connect_pt(data, b);
        net.connect_tp(b, ack);
        net.connect_pt(ack, a);
        let m = Marking::from_pairs(&net, [(ack, 2)]);
        let cov = analyze(&net, &m, 10_000);
        assert_eq!(cov.bound(), Some(2));
    }

    #[test]
    fn omega_counts_display() {
        assert_eq!(Count::Finite(3).to_string(), "3");
        assert_eq!(Count::Omega.to_string(), "\u{03C9}");
        assert!(Count::Omega.at_least(1_000_000));
    }

    #[test]
    fn covers_is_a_partial_order() {
        let mut net = PetriNet::new();
        let _ = net.add_transition("t", 1);
        let p = net.add_place("p");
        let q = net.add_place("q");
        let m10 = OmegaMarking::from_marking(&Marking::from_pairs(&net, [(p, 1)]));
        let m01 = OmegaMarking::from_marking(&Marking::from_pairs(&net, [(q, 1)]));
        let m11 = OmegaMarking::from_marking(&Marking::from_pairs(&net, [(p, 1), (q, 1)]));
        assert!(m11.covers(&m10) && m11.covers(&m01));
        assert!(!m10.covers(&m01) && !m01.covers(&m10));
        assert!(m10.covers(&m10));
    }
}
