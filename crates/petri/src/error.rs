//! Error types for net construction and analysis.

use std::error::Error;
use std::fmt;

use crate::ids::{PlaceId, TransitionId};

/// Errors produced by net construction, validation and analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PetriError {
    /// A place violates the marked-graph condition `|•p| = |p•| = 1`.
    NotAMarkedGraph {
        /// The offending place.
        place: PlaceId,
        /// Number of input transitions of the place.
        inputs: usize,
        /// Number of output transitions of the place.
        outputs: usize,
    },
    /// The marking admits a token-free simple cycle, so it is not live
    /// (Theorem A.5.1 of the paper).
    NotLive {
        /// Transitions along a witnessing token-free cycle.
        cycle: Vec<TransitionId>,
    },
    /// The marking is live but not safe: the given place does not lie on any
    /// simple cycle with token count 1 (Theorem A.5.2).
    NotSafe {
        /// The place that can accumulate more than one token.
        place: PlaceId,
    },
    /// Cycle enumeration exceeded the configured limit.
    TooManyCycles {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The net has no simple cycle at all, so no cycle time is defined.
    NoCycle,
    /// A transition has an execution time of zero; the discrete-time engine
    /// requires `τ ≥ 1`.
    ZeroExecutionTime {
        /// The offending transition.
        transition: TransitionId,
    },
    /// Reachability exploration exceeded the configured state limit.
    StateSpaceTooLarge {
        /// The limit that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for PetriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PetriError::NotAMarkedGraph {
                place,
                inputs,
                outputs,
            } => write!(
                f,
                "place {place} has {inputs} input and {outputs} output transitions; \
                 a marked graph requires exactly one of each"
            ),
            PetriError::NotLive { cycle } => {
                write!(f, "marking is not live: token-free cycle through ")?;
                for (i, t) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{t}")?;
                }
                Ok(())
            }
            PetriError::NotSafe { place } => write!(
                f,
                "marking is not safe: place {place} lies on no simple cycle with token count 1"
            ),
            PetriError::TooManyCycles { limit } => {
                write!(f, "more than {limit} simple cycles; enumeration aborted")
            }
            PetriError::NoCycle => write!(f, "net has no simple cycle; cycle time is undefined"),
            PetriError::ZeroExecutionTime { transition } => write!(
                f,
                "transition {transition} has execution time 0; the engine requires at least 1"
            ),
            PetriError::StateSpaceTooLarge { limit } => {
                write!(f, "reachability exploration exceeded {limit} markings")
            }
        }
    }
}

impl Error for PetriError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs = [
            PetriError::NotAMarkedGraph {
                place: PlaceId::from_index(0),
                inputs: 2,
                outputs: 0,
            },
            PetriError::NotLive {
                cycle: vec![TransitionId::from_index(0), TransitionId::from_index(1)],
            },
            PetriError::NotSafe {
                place: PlaceId::from_index(3),
            },
            PetriError::TooManyCycles { limit: 10 },
            PetriError::NoCycle,
            PetriError::ZeroExecutionTime {
                transition: TransitionId::from_index(2),
            },
            PetriError::StateSpaceTooLarge { limit: 100 },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with('p'));
        }
    }
}
